"""Unit tests for the class-F machinery (Theorem 1)."""

from itertools import permutations

import pytest

from repro.core import BenesNetwork, Permutation
from repro.core.membership import (
    derive_upper_lower,
    enumerate_class_f,
    first_failure,
    in_class_f,
    in_class_f_simulated,
)
from repro.errors import InvalidPermutationError


class TestDeriveUpperLower:
    def test_equations_1_and_2(self):
        # straight switch: U_i = D_{2i}, L_i = D_{2i+1} when (D_{2i})_0=0
        upper, lower = derive_upper_lower([0, 1, 2, 3])
        assert upper == (0, 2) and lower == (1, 3)

    def test_cross_when_upper_tag_odd(self):
        upper, lower = derive_upper_lower([1, 0, 3, 2])
        assert upper == (0, 2) and lower == (1, 3)

    def test_outputs_partition_tags(self):
        perm = (5, 2, 7, 0, 3, 6, 1, 4)
        upper, lower = derive_upper_lower(perm)
        assert sorted(upper + lower) == list(range(8))

    def test_theorem1_direction(self):
        # U holds the tags entering the upper B(n-1): all the tags with
        # the switch decision bit steering up
        perm = (1, 3, 2, 0)
        upper, lower = derive_upper_lower(perm)
        # switch0: D_0=1 odd -> cross: up gets 3; switch1: D_2=2 even ->
        # straight: up gets 2.
        assert upper == (3, 2) and lower == (1, 0)


class TestInClassF:
    def test_identity_always_in_f(self):
        for order in range(1, 7):
            assert in_class_f(list(range(1 << order)))

    def test_fig5_not_in_f(self):
        assert not in_class_f([1, 3, 2, 0])

    def test_all_two_permutations_in_f1(self):
        assert in_class_f([0, 1]) and in_class_f([1, 0])

    def test_counts_match_paper_structure(self):
        # |F(1)| = 2, |F(2)| = 20, |F(3)| = 11632 (exhaustive)
        assert sum(1 for p in permutations(range(2)) if in_class_f(p)) == 2
        assert sum(1 for p in permutations(range(4)) if in_class_f(p)) == 20

    def test_recursion_matches_simulation_exhaustively_n2(self):
        net = BenesNetwork(2)
        for p in permutations(range(4)):
            assert in_class_f(p) == net.route(p).success

    def test_recursion_matches_simulation_sampled_n4(self, rng):
        from repro.core import random_permutation
        net = BenesNetwork(4)
        for _ in range(200):
            p = random_permutation(16, rng)
            assert in_class_f(p) == net.route(p).success


class TestSimulatedVariant:
    def test_reuses_supplied_network(self):
        net = BenesNetwork(3)
        assert in_class_f_simulated(list(range(8)), net)

    def test_network_size_mismatch_rejected(self):
        net = BenesNetwork(3)
        with pytest.raises(InvalidPermutationError):
            in_class_f_simulated([0, 1, 2, 3], net)

    def test_builds_network_when_missing(self):
        assert in_class_f_simulated([1, 0, 3, 2])


class TestEnumerate:
    def test_f2_membership_set(self, f_classes):
        members = set(p.as_tuple() for p in enumerate_class_f(2))
        assert len(members) == 20
        assert (1, 3, 2, 0) not in members
        assert members == {p.as_tuple() for p in f_classes[2]}

    def test_f1_is_everything(self):
        assert len(list(enumerate_class_f(1))) == 2


class TestFirstFailure:
    def test_none_for_members(self):
        assert first_failure([0, 1, 2, 3]) is None

    def test_returns_conflict_for_fig5(self):
        conflict = first_failure([1, 3, 2, 0])
        assert conflict is not None
        # the derived half must NOT be a permutation of 0..1
        assert sorted(conflict) != list(range(len(conflict)))

    def test_consistency_with_membership(self, rng):
        from repro.core import random_permutation
        for _ in range(100):
            p = random_permutation(16, rng)
            assert (first_failure(p) is None) == in_class_f(p)
