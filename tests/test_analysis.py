"""Unit tests for the complexity formulas and class cardinalities."""

import math
import os

import pytest

from repro.accel import have_numpy
from repro.analysis.cardinality import (
    bpc_count,
    class_census,
    class_f_count,
    class_f_count_fast,
    estimate_class_f_density,
)
from repro.analysis.complexity import (
    SETUP_COMPLEXITY,
    batcher_cost,
    benes_cost,
    comparison_table,
    crossbar_cost,
    lang_stone_cost,
    ns13_cost,
    omega_cost,
)
from repro.errors import NotAPowerOfTwoError, SpecificationError


class TestComplexityFormulas:
    def test_benes_matches_structural_model(self):
        from repro.core import BenesNetwork
        for order in (1, 3, 5):
            net = BenesNetwork(order)
            cost = benes_cost(1 << order)
            assert cost.switches == net.n_switches
            assert cost.delay == net.delay

    def test_omega_matches_structural_model(self):
        from repro.networks import OmegaNetwork
        for order in (1, 3, 5):
            net = OmegaNetwork(order)
            cost = omega_cost(1 << order)
            assert cost.switches == net.n_switches
            assert cost.delay == net.delay
            assert cost.realizable == 1 << (order * (1 << order) // 2)

    def test_batcher_matches_structural_model(self):
        from repro.networks import BitonicNetwork
        for order in (2, 4):
            net = BitonicNetwork(order)
            cost = batcher_cost(1 << order)
            assert cost.switches == net.n_switches
            assert cost.delay == net.delay

    def test_crossbar(self):
        cost = crossbar_cost(16)
        assert cost.switches == 256
        assert cost.delay == 1
        assert cost.realizable == math.factorial(16)

    def test_external_benes_realizes_everything(self):
        cost = benes_cost(8, self_routing=False)
        assert cost.realizable == math.factorial(8)

    def test_lang_stone_few_switches_large_delay(self):
        cost = lang_stone_cost(256)
        assert cost.switches == 128
        assert cost.delay == 32  # 2 sqrt(N)

    def test_ns13_interpolates(self):
        # M = N gives a shallow network; M = 2 a deep one
        deep = ns13_cost(64, 2)
        shallow = ns13_cost(64, 64)
        assert deep.delay > shallow.delay

    def test_ns13_validates_m(self):
        with pytest.raises(SpecificationError):
            ns13_cost(16, 3)
        with pytest.raises(SpecificationError):
            ns13_cost(16, 32)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(NotAPowerOfTwoError):
            benes_cost(10)

    def test_comparison_table_rows(self):
        table = comparison_table(16)
        names = [row.name for row in table]
        assert names[0].startswith("Benes")
        assert len(table) == 8
        # the two Batcher variants: same delay, odd-even cheaper
        by_name = {row.name: row for row in table}
        bitonic = by_name["Batcher bitonic"]
        odd_even = by_name["Batcher odd-even merge"]
        assert odd_even.delay == bitonic.delay
        assert odd_even.switches < bitonic.switches

    def test_setup_complexity_mentions_self_routing(self):
        assert any("self-routing" in k for k in SETUP_COMPLEXITY)


class TestCardinality:
    def test_bpc_count(self):
        assert bpc_count(1) == 2
        assert bpc_count(2) == 8
        assert bpc_count(3) == 48

    def test_class_f_counts(self):
        assert class_f_count(1) == 2
        assert class_f_count(2) == 20

    def test_class_f_count_guard(self):
        with pytest.raises(ValueError):
            class_f_count(4)

    @pytest.mark.skipif(not have_numpy(),
                        reason="class_f_count_fast needs the accel "
                               "extra (NumPy)")
    def test_fast_count_agrees_with_exhaustive(self):
        for order in (1, 2, 3):
            assert class_f_count_fast(order) == class_f_count(order)

    def test_fast_count_rejects_order_zero(self):
        with pytest.raises(ValueError):
            class_f_count_fast(0)

    @pytest.mark.skipif(
        not os.environ.get("RUN_SLOW") or not have_numpy(),
        reason="~2 minutes and needs NumPy; the exact value is "
               "recorded in EXPERIMENTS.md — set RUN_SLOW=1 to "
               "recompute",
    )
    def test_exact_f4(self):
        assert class_f_count_fast(4) == 133_488_540_928

    def test_density_estimator_bounds(self, rng):
        density = estimate_class_f_density(3, 200, rng)
        exact = 11632 / math.factorial(8)
        assert abs(density - exact) < 0.15

    def test_census_order2(self):
        census = class_census(2)
        assert census.total == 24
        assert census.in_f == 20
        assert census.in_bpc == 8
        assert census.in_omega == 16
        assert census.in_inverse_omega == 16
        # Theorems 2 and 3: no BPC or inverse-omega member escapes F
        assert census.bpc_not_f == 0
        assert census.inverse_omega_not_f == 0
        # Fig. 5: some omega permutations are outside F
        assert census.omega_not_f > 0

    def test_census_guard(self):
        with pytest.raises(ValueError):
            class_census(4)

    def test_f_strictly_richer_than_each_class(self):
        census = class_census(2)
        assert census.in_f > census.in_bpc
        assert census.in_f > census.in_omega
        assert census.in_f > census.in_inverse_omega
