"""Unit tests for the routing strategy planner."""

import pytest

from repro.core import random_class_f, random_permutation, in_class_f
from repro.permclasses import (
    BPCSpec,
    bit_reversal,
    cyclic_shift,
    matrix_transpose,
)
from repro.planner import plan
from repro.simd import CCC, permute_ccc, sort_permute_ccc
from repro.simd.sort import bitonic_compare_count


class TestNetworkStrategy:
    def test_f_member_self_routes(self, rng):
        report = plan(random_class_f(4, rng))
        assert report.network_strategy == "self-routing"
        assert report.failure_witness is None

    def test_omega_only_uses_omega_mode(self):
        report = plan([1, 3, 2, 0])
        assert not report.in_f and report.in_omega
        assert report.network_strategy == "omega-mode"
        assert report.failure_witness is not None

    def test_general_permutation_needs_external(self, rng):
        perm = random_permutation(16, rng)
        while in_class_f(perm) or plan(perm).in_omega:
            perm = random_permutation(16, rng)
        assert plan(perm).network_strategy == "external-setup"


class TestSkipRules:
    def test_bpc_with_fixed_dims_preferred(self):
        spec = BPCSpec((0, 1, 3, 2), (False,) * 4)  # dims 0,1 fixed
        report = plan(spec.to_permutation())
        assert report.skip_rule == "bpc"
        assert report.bpc == spec

    def test_cyclic_shift_uses_loop_half_skip(self):
        report = plan(cyclic_shift(4, 3))
        assert report.skip_rule in ("omega", "inverse-omega")
        assert report.ccc_unit_routes == 4

    def test_bit_reversal_even_order_no_skip(self):
        # at even order, bit reversal fixes no dimension and is not
        # omega either way: the full loop is required
        report = plan(bit_reversal(4).to_permutation())
        assert report.skip_rule is None
        assert report.ccc_unit_routes == 7

    def test_bit_reversal_odd_order_skips_middle_bit(self):
        # at odd order the middle bit is its own reversal: A_1 = +1 at
        # order 3, so both b = 1 iterations are skipped
        report = plan(bit_reversal(3).to_permutation())
        assert report.skip_rule == "bpc"
        assert report.ccc_unit_routes == 3

    def test_non_f_sorts(self):
        report = plan([1, 3, 2, 0])
        assert report.simd_strategy == "sort"
        assert report.skip_rule is None


class TestPredictedCosts:
    def test_cost_matches_actual_ccc_run(self, rng):
        for _ in range(20):
            spec = BPCSpec.random(4, rng)
            perm = spec.to_permutation()
            report = plan(perm)
            if report.simd_strategy != "simulate":
                continue
            kwargs = {}
            if report.skip_rule == "bpc":
                kwargs["bpc_spec"] = report.bpc
            elif report.skip_rule == "omega":
                kwargs["omega"] = True
            elif report.skip_rule == "inverse-omega":
                kwargs["inverse_omega"] = True
            run = permute_ccc(CCC(4), perm, **kwargs)
            assert run.success
            assert run.unit_routes == report.ccc_unit_routes

    def test_sort_cost_prediction(self, rng):
        perm = random_permutation(16, rng)
        while in_class_f(perm):
            perm = random_permutation(16, rng)
        report = plan(perm)
        assert report.ccc_unit_routes == bitonic_compare_count(4)
        run = sort_permute_ccc(CCC(4), perm)
        assert run.route_instructions == report.ccc_unit_routes


class TestAlternatives:
    def test_non_f_offers_two_pass(self):
        report = plan([1, 3, 2, 0])
        assert "two-pass" in report.alternatives

    def test_f_members_need_no_alternative(self, rng):
        report = plan(random_class_f(4, rng))
        assert report.alternatives == ()

    def test_two_pass_alternative_actually_works(self, rng):
        from repro.core.twopass import route_two_pass
        perm = random_permutation(16, rng)
        while in_class_f(perm):
            perm = random_permutation(16, rng)
        report = plan(perm)
        assert "two-pass" in report.alternatives
        data = list(range(16))
        assert route_two_pass(perm, data) == perm.apply(data)


class TestClassification:
    def test_transpose_report(self):
        report = plan(matrix_transpose(4).to_permutation())
        assert report.in_f
        assert report.bpc == matrix_transpose(4)
        assert not report.in_omega and not report.in_inverse_omega

    def test_identity_report(self):
        report = plan(list(range(8)))
        assert report.in_f and report.in_omega and report.in_inverse_omega
        assert report.skip_rule == "bpc"   # all dims fixed: 0 routes
        assert report.ccc_unit_routes == 0
