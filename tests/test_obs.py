"""Tests for the observability layer (``repro.obs``) and the unified
:class:`~repro.core.routing.BatchRouteResult` API.

Covers the registry primitives, the enabled/disabled facade contract
(identical routing results either way), the JSON-lines trace schema,
the CLI surfaces (``benes metrics``, ``--profile``), the accel cache
introspection, and the removal of the tuple-unpacking shim.
"""

import io
import json
import os
import subprocess
import sys

import pytest

import repro.obs as obs
from repro.accel import (
    batch_route_with_states,
    batch_self_route,
    cache_clear,
    cache_stats,
    have_numpy,
)
from repro.cli import main
from repro.core import BenesNetwork, Permutation
from repro.core.fastpath import fast_self_route
from repro.core.routing import BatchRouteResult
from repro.errors import InvalidParameterError
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import TRACE_SCHEMA_VERSION


@pytest.fixture(autouse=True)
def _clean_obs():
    """Every test starts and ends with collection off and zeroed."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.counter("x").inc(4)
        assert reg.snapshot()["counters"]["x"] == 5

    def test_gauge_keeps_last(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(3.0)
        reg.gauge("g").set(1.5)
        assert reg.snapshot()["gauges"]["g"] == 1.5

    def test_histogram_snapshot_shape(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", bounds=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        snap = reg.snapshot()["histograms"]["h"]
        assert snap["count"] == 3
        assert snap["min"] == 0.5 and snap["max"] == 50.0
        assert snap["sum"] == pytest.approx(55.5)
        # per-bucket (non-cumulative) counts
        assert snap["buckets"]["le_1"] == 1
        assert snap["buckets"]["le_10"] == 1
        assert snap["buckets"]["overflow"] == 1

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("name")
        with pytest.raises(InvalidParameterError):
            reg.gauge("name")

    def test_provider_merged_into_snapshot(self):
        reg = MetricsRegistry()
        reg.register_provider("ext", lambda: {"k": 7})
        assert reg.snapshot()["providers"]["ext"] == {"k": 7}

    def test_reset_zeroes_but_keeps_providers(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.register_provider("ext", lambda: {"k": 7})
        reg.reset()
        snap = reg.snapshot()
        assert snap["counters"]["c"] == 0
        assert snap["providers"]["ext"] == {"k": 7}


class TestFacade:
    def test_disabled_helpers_are_noops(self):
        obs.inc("nope")
        obs.set_gauge("nope2", 1.0)
        obs.observe("nope3", 1.0)
        snap = obs.snapshot()
        assert not snap["enabled"]
        assert "nope" not in snap["counters"]
        assert "nope2" not in snap["gauges"]
        assert "nope3" not in snap["histograms"]

    def test_enable_disable_roundtrip(self):
        assert not obs.enabled()
        obs.enable()
        assert obs.enabled()
        obs.inc("c")
        obs.disable()
        obs.inc("c")                       # ignored again
        assert obs.snapshot()["counters"]["c"] == 1

    def test_env_opt_in(self):
        env = dict(os.environ, BENES_METRICS="1",
                   PYTHONPATH="src")
        out = subprocess.run(
            [sys.executable, "-c",
             "import repro.obs as o; print(o.enabled())"],
            env=env, capture_output=True, text=True, check=True,
        )
        assert out.stdout.strip() == "True"


class TestOnOffParity:
    """Collection must never change routing results."""

    PERMS = [(3, 2, 1, 0), (1, 3, 2, 0), (0, 1, 2, 3)]

    def test_structural_route_parity(self):
        net = BenesNetwork(2)
        for tags in self.PERMS:
            off = net.route(tags)
            obs.enable()
            on = net.route(tags)
            obs.disable()
            assert on.success == off.success
            assert on.realized == off.realized
            assert on.misrouted == off.misrouted

    def test_fastpath_parity(self):
        for tags in self.PERMS:
            off = fast_self_route(tags)
            obs.enable()
            on = fast_self_route(tags)
            obs.disable()
            assert on == off

    def test_batch_parity(self):
        off = batch_self_route(self.PERMS)
        obs.enable()
        on = batch_self_route(self.PERMS)
        obs.disable()
        assert list(on.success_mask) == list(off.success_mask)
        assert [tuple(int(v) for v in row) for row in on.mappings] == \
               [tuple(int(v) for v in row) for row in off.mappings]

    def test_route_counters_accumulate(self):
        obs.enable()
        net = BenesNetwork(2)
        net.route((3, 2, 1, 0))
        net.route((1, 3, 2, 0))
        counters = obs.snapshot()["counters"]
        assert counters["benes.route.calls"] == 2
        assert counters["benes.route.self.success"] == 1
        assert counters["benes.route.self.failure"] == 1


class TestTrace:
    def test_schema_and_sequence(self):
        sink = io.StringIO()
        obs.trace_to(sink)
        BenesNetwork(2).route((3, 2, 1, 0))
        obs.trace_off()
        events = [json.loads(line) for line in
                  sink.getvalue().splitlines()]
        assert [e["ev"] for e in events] == \
               ["route_start", "stage", "stage", "stage", "deliver",
                "span"]
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        for e in events:
            assert e["v"] == TRACE_SCHEMA_VERSION
            assert isinstance(e["ts"], float)
        start, deliver, span = events[0], events[-2], events[-1]
        assert start["tags"] == [3, 2, 1, 0] and start["order"] == 2
        assert deliver["success"] is True
        for stage_event in events[1:4]:
            assert set(stage_event) >= {"stage", "control_bit",
                                        "states", "cross"}
            # v2: mid-span events are stamped with their span's ids
            assert stage_event["span_id"] == span["span_id"]
        assert span["name"] == "route" and span["parent_id"] is None

    def test_no_sink_no_events(self):
        assert not obs.trace_active()
        obs.trace_event("ignored")         # must not raise

    def test_trace_independent_of_metrics(self):
        sink = io.StringIO()
        obs.trace_to(sink)
        assert not obs.enabled()           # tracing without metrics
        BenesNetwork(2).route((0, 1, 2, 3))
        obs.trace_off()
        # route_start + 3 stages + deliver + the route span
        assert sink.getvalue().count("\n") == 6


class TestCLI:
    def test_metrics_command_emits_json(self, capsys):
        assert main(["metrics", "--count", "4"]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["enabled"] is True
        assert snap["counters"]["benes.route.calls"] >= 5
        assert snap["counters"]["cli.command.metrics"] == 1
        assert snap["counters"]["planner.plan.calls"] == 4
        assert "accel.cache" in snap["providers"]

    def test_route_profile_traces_to_stderr(self, capsys):
        assert main(["route", "3,2,1,0", "--profile"]) == 0
        err = capsys.readouterr().err
        events = [json.loads(line) for line in err.splitlines()]
        assert events[0]["ev"] == "route_start"
        assert events[-1]["ev"] == "span"
        assert events[-2]["ev"] == "deliver"
        assert all(e["v"] == TRACE_SCHEMA_VERSION for e in events)

    def test_route_profile_keeps_exit_code(self, capsys):
        assert main(["route", "1,3,2,0", "--profile"]) == 1
        err = capsys.readouterr().err
        events = [json.loads(line) for line in err.splitlines()]
        deliver = next(e for e in events if e["ev"] == "deliver")
        assert not deliver["success"]

    def test_bench_profile_embeds_metrics(self, capsys, tmp_path):
        path = tmp_path / "bench.json"
        assert main(["bench", "--orders", "2", "--batches", "4",
                     "--repeats", "1", "--profile",
                     "--json", str(path)]) == 0
        report = json.loads(path.read_text())
        metrics = report["metrics"]
        assert metrics["counters"]["accel.batch.calls"] >= 1
        assert metrics["counters"]["fastpath.self_route.calls"] >= 4
        stats = metrics["providers"]["accel.cache"]
        assert stats["topology"]["hits"] + \
            stats["topology"]["misses"] > 0

    def test_bench_without_profile_has_no_metrics(self, capsys,
                                                  tmp_path):
        path = tmp_path / "bench.json"
        assert main(["bench", "--orders", "2", "--batches", "4",
                     "--repeats", "1", "--json", str(path)]) == 0
        assert "metrics" not in json.loads(path.read_text())


class TestCacheIntrospection:
    def test_stats_shape(self):
        stats = cache_stats()
        for cache in ("plan", "topology"):
            assert set(stats[cache]) == \
                {"hits", "misses", "size", "maxsize", "building"}

    def test_clear_then_miss_then_hit(self):
        cache_clear()
        assert cache_stats()["topology"]["size"] == 0
        fast_self_route((0, 1, 2, 3))      # populates the cache
        after_miss = cache_stats()["topology"]
        assert after_miss["size"] >= 1
        fast_self_route((0, 1, 2, 3))
        assert cache_stats()["topology"]["hits"] > after_miss["hits"]

    def test_registered_as_provider(self):
        snap = obs.snapshot()
        assert snap["providers"]["accel.cache"] == cache_stats()


class TestBatchRouteResult:
    def test_fields_and_properties(self):
        result = batch_self_route([(3, 2, 1, 0), (1, 3, 2, 0)])
        assert isinstance(result, BatchRouteResult)
        assert result.batch_size == 2
        assert result.n_success == 1
        assert not result.all_success
        assert result.per_stage is None

    def test_stage_data_opt_in(self):
        result = batch_self_route([(3, 2, 1, 0)], stage_data=True)
        if not have_numpy():
            # documented contract: the fallback path has no stage data
            assert result.per_stage is None
        else:
            assert len(result.per_stage) == 3   # stages of B(2)

    def test_tuple_unpacking_removed(self):
        # the PR-2 deprecation cycle is complete: results are not
        # iterable any more, so stale tuple unpacking fails loudly
        result = batch_self_route([(3, 2, 1, 0)])
        with pytest.raises(TypeError):
            success, delivered = result
        with pytest.raises(TypeError):
            iter(result)

    def test_states_batch_all_success(self):
        net = BenesNetwork(2)
        result = batch_route_with_states(
            [net.straight_states()] * 3, 2
        )
        assert result.all_success and result.batch_size == 3
        for row in result.mappings:
            assert tuple(int(v) for v in row) == (0, 1, 2, 3)

    def test_frozen(self):
        result = batch_self_route([(0, 1, 2, 3)])
        with pytest.raises(Exception):
            result.success_mask = None


class TestErrorLint:
    def test_source_tree_is_clean(self):
        import pathlib
        repo = pathlib.Path(__file__).resolve().parents[1]
        out = subprocess.run(
            [sys.executable, str(repo / "tools" / "check_errors.py"),
             str(repo / "src" / "repro")],
            capture_output=True, text=True,
        )
        assert out.returncode == 0, out.stdout + out.stderr


class TestKeywordOnly:
    def test_route_options_are_keyword_only(self):
        net = BenesNetwork(2)
        with pytest.raises(TypeError):
            net.route((0, 1, 2, 3), None, True)

    def test_permutation_still_positional(self):
        perm = Permutation((3, 2, 1, 0))
        assert BenesNetwork(2).route(perm, omega_mode=False).success
