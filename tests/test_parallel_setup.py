"""Unit tests for the data-parallel Benes setup."""

from itertools import permutations

import pytest

from repro.core import BenesNetwork, Permutation, random_permutation
from repro.core.waksman import setup_states
from repro.simd import parallel_setup_states


class TestCorrectness:
    @pytest.mark.parametrize("order", [1, 2])
    def test_realizes_all_permutations_exhaustively(self, order):
        net = BenesNetwork(order)
        for p in permutations(range(1 << order)):
            run = parallel_setup_states(p)
            assert net.route_with_states(run.states).realized == (
                Permutation(p)
            )

    def test_realizes_all_n3(self):
        net = BenesNetwork(3)
        for p in permutations(range(8)):
            run = parallel_setup_states(p)
            assert net.route_with_states(run.states).realized == (
                Permutation(p)
            )

    @pytest.mark.parametrize("order", [4, 5, 6, 7, 8])
    def test_realizes_random_permutations(self, order, rng):
        net = BenesNetwork(order)
        for _ in range(8):
            p = random_permutation(1 << order, rng)
            run = parallel_setup_states(p)
            assert net.route_with_states(run.states).realized == p

    def test_state_shape(self):
        run = parallel_setup_states(list(range(16)))
        assert len(run.states) == 7
        assert all(len(col) == 8 for col in run.states)

    def test_agrees_with_serial_waksman_on_realized_perm(self, rng):
        # the two setups may choose different states (the free side of
        # each loop) but must realize the same permutation
        net = BenesNetwork(5)
        p = random_permutation(32, rng)
        serial = net.route_with_states(setup_states(p)).realized
        parallel = net.route_with_states(
            parallel_setup_states(p).states
        ).realized
        assert serial == parallel == p


class TestStepCounts:
    def test_step_count_is_polylog(self):
        # O(log^2 N) broadcast steps: compare against c * n^2 + c' * n
        for order in (3, 5, 7, 9):
            run = parallel_setup_states(list(range(1 << order)))
            assert run.total_steps <= 2 * order * order + 8 * order

    def test_steps_grow_with_order_not_size(self):
        small = parallel_setup_states(list(range(8))).total_steps
        large = parallel_setup_states(list(range(256))).total_steps
        # size grew 32x; steps should grow far slower (polylog)
        assert large < 8 * small

    def test_counters_positive(self):
        run = parallel_setup_states([3, 2, 1, 0])
        assert run.route_steps > 0
        assert run.compute_steps > 0
        assert run.total_steps == run.route_steps + run.compute_steps
