"""Unit tests for RouteResult / StageTrace and the error hierarchy."""

import pytest

from repro.core import BenesNetwork, Permutation
from repro.core.routing import RouteResult, StageTrace, collect_result
from repro.core.switch import Signal
from repro import errors


class TestRouteResult:
    def _result(self, tags, delivered_sources):
        rows = [
            Signal(tag=o, payload=f"p{src}", source=src)
            if tags[src] == o else
            Signal(tag=tags[src], payload=f"p{src}", source=src)
            for o, src in enumerate(delivered_sources)
        ]
        return collect_result(tags, rows)

    def test_success_when_all_tags_match(self):
        tags = (1, 0, 2, 3)
        rows = [Signal(tag=o, payload=None,
                       source=tags.index(o)) for o in range(4)]
        result = collect_result(tags, rows)
        assert result.success
        assert result.misrouted == ()
        assert result.realized == Permutation(tags)

    def test_misrouted_lists_wrong_outputs(self):
        tags = (0, 1)
        rows = [Signal(tag=1, source=1), Signal(tag=0, source=0)]
        result = collect_result(tags, rows)
        assert not result.success
        assert result.misrouted == (0, 1)

    def test_arrived_tags(self):
        net = BenesNetwork(2)
        result = net.route([1, 0, 3, 2])
        assert result.arrived_tags() == (0, 1, 2, 3)

    def test_realized_always_permutation(self):
        net = BenesNetwork(2)
        result = net.route([1, 3, 2, 0])  # fails, still a bijection
        assert sorted(result.realized) == [0, 1, 2, 3]

    def test_frozen(self):
        net = BenesNetwork(2)
        result = net.route(list(range(4)))
        with pytest.raises(AttributeError):
            result.success = False


class TestStageTrace:
    def test_fields(self):
        net = BenesNetwork(2)
        result = net.route([3, 2, 1, 0], trace=True)
        st = result.stages[0]
        assert isinstance(st, StageTrace)
        assert st.stage == 0
        assert st.control_bit == 0
        assert len(st.input_tags) == 4
        assert len(st.states) == 2
        assert len(st.output_tags) == 4

    def test_stage_chain_consistency(self):
        # the output tags of stage s, pushed through the link, are the
        # input tags of stage s+1
        net = BenesNetwork(3)
        result = net.route([7 - i for i in range(8)], trace=True)
        topo = net.topology
        for st, nxt in zip(result.stages, result.stages[1:]):
            moved = topo.apply_link(st.stage, list(st.output_tags))
            assert tuple(moved) == nxt.input_tags


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in errors.__all__:
            exc = getattr(errors, name)
            assert issubclass(exc, errors.ReproError)

    def test_value_errors_where_appropriate(self):
        assert issubclass(errors.InvalidPermutationError, ValueError)
        assert issubclass(errors.NotAPowerOfTwoError, ValueError)
        assert issubclass(errors.SpecificationError, ValueError)

    def test_runtime_errors_where_appropriate(self):
        assert issubclass(errors.RoutingError, RuntimeError)
        assert issubclass(errors.MachineError, RuntimeError)

    def test_single_catch_covers_library(self):
        try:
            BenesNetwork(2).route([0, 1])
        except errors.ReproError:
            caught = True
        assert caught
