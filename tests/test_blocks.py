"""Unit tests for J-partitions and Theorems 4-6."""

import random

import pytest

from repro.core import Permutation, in_class_f
from repro.errors import SpecificationError
from repro.permclasses.blocks import (
    JPartition,
    blocks_and_within,
    hierarchical,
    within_blocks,
)


def _f_member(order, rng, f_classes):
    return rng.choice(f_classes[order])


class TestJPartition:
    def test_paper_example(self):
        # n=3, J={1}: blocks {0,1,4,5} and {2,3,6,7}
        jp = JPartition(3, (1,))
        assert jp.blocks() == [(0, 1, 4, 5), (2, 3, 6, 7)]

    def test_empty_j_single_block(self):
        jp = JPartition(3, ())
        assert jp.n_blocks == 1
        assert jp.blocks() == [tuple(range(8))]

    def test_full_j_singletons(self):
        jp = JPartition(2, (0, 1))
        assert jp.block_size == 1
        assert jp.n_blocks == 4

    def test_block_local_roundtrip(self):
        jp = JPartition(4, (0, 2))
        for i in range(16):
            assert jp.element(jp.block_of(i), jp.local_index(i)) == i

    def test_same_block_iff_j_bits_agree(self):
        jp = JPartition(4, (1, 3))
        for i in range(16):
            for j in range(16):
                same = (jp.block_of(i) == jp.block_of(j))
                agree = all(
                    (i >> b) & 1 == (j >> b) & 1 for b in (1, 3)
                )
                assert same == agree

    def test_block_sizes(self):
        jp = JPartition(5, (0, 4))
        assert jp.n_blocks == 4
        assert jp.block_size == 8
        assert jp.block_order == 3

    def test_rejects_out_of_range(self):
        with pytest.raises(SpecificationError):
            JPartition(3, (3,))

    def test_rejects_duplicates(self):
        with pytest.raises(SpecificationError):
            JPartition(3, (1, 1))

    def test_local_order_is_relative_order(self):
        # elements within a block are ordered by their numeric value
        jp = JPartition(4, (2,))
        for block in jp.blocks():
            assert list(block) == sorted(block)


class TestTheorem4:
    def test_single_perm_applied_to_all_blocks(self):
        jp = JPartition(3, (2,))
        swap = Permutation((1, 0, 3, 2))
        result = within_blocks(jp, swap)
        assert result.as_tuple() == (1, 0, 3, 2, 5, 4, 7, 6)

    def test_per_block_perms(self):
        jp = JPartition(3, (2,))
        ident = Permutation.identity(4)
        swap = Permutation((1, 0, 3, 2))
        result = within_blocks(jp, [ident, swap])
        assert result.as_tuple() == (0, 1, 2, 3, 5, 4, 7, 6)

    def test_callable_source(self):
        jp = JPartition(3, (0,))
        result = within_blocks(
            jp, lambda b: Permutation((1, 0, 3, 2))
        )
        assert sorted(result) == list(range(8))

    def test_size_mismatch_rejected(self):
        jp = JPartition(3, (2,))
        with pytest.raises(SpecificationError):
            within_blocks(jp, Permutation((1, 0)))

    def test_membership_in_f(self, rng, f_classes):
        for _ in range(60):
            order = rng.choice([3, 4])
            j_bits = tuple(sorted(rng.sample(
                range(order), rng.randrange(1, order)
            )))
            jp = JPartition(order, j_bits)
            if jp.block_order not in f_classes:
                continue
            perms = [
                _f_member(jp.block_order, rng, f_classes)
                for _ in range(jp.n_blocks)
            ]
            assert in_class_f(within_blocks(jp, perms))


class TestTheorem5:
    def test_pure_block_move(self):
        jp = JPartition(3, (2,))
        outer = Permutation((1, 0))
        ident = Permutation.identity(4)
        result = blocks_and_within(jp, outer, ident)
        assert result.as_tuple() == (4, 5, 6, 7, 0, 1, 2, 3)

    def test_outer_size_checked(self):
        jp = JPartition(3, (2,))
        with pytest.raises(SpecificationError):
            blocks_and_within(jp, Permutation((0, 1, 2, 3)),
                              Permutation.identity(4))

    def test_membership_in_f(self, rng, f_classes):
        for _ in range(60):
            order = rng.choice([3, 4])
            j_size = rng.randrange(1, order)
            j_bits = tuple(sorted(rng.sample(range(order), j_size)))
            jp = JPartition(order, j_bits)
            if jp.block_order not in f_classes or j_size not in f_classes:
                continue
            outer = _f_member(j_size, rng, f_classes)
            perms = [
                _f_member(jp.block_order, rng, f_classes)
                for _ in range(jp.n_blocks)
            ]
            assert in_class_f(blocks_and_within(jp, outer, perms))

    def test_generalizes_theorem4(self, rng, f_classes):
        jp = JPartition(4, (1, 3))
        perms = [
            _f_member(2, rng, f_classes) for _ in range(jp.n_blocks)
        ]
        ident_outer = Permutation.identity(jp.n_blocks)
        assert (blocks_and_within(jp, ident_outer, perms)
                == within_blocks(jp, perms))


class TestTheorem6:
    def test_levels_must_cover(self):
        with pytest.raises(SpecificationError):
            hierarchical(3, [(0,), (1,)], [Permutation((1, 0))] * 2)

    def test_levels_must_be_disjoint(self):
        with pytest.raises(SpecificationError):
            hierarchical(
                2, [(0,), (0, 1)],
                [Permutation((1, 0)), Permutation.identity(4)],
            )

    def test_level_permutation_size_checked(self):
        with pytest.raises(SpecificationError):
            hierarchical(2, [(0, 1)], [Permutation((1, 0))])

    def test_identity_levels(self):
        result = hierarchical(
            3, [(2,), (0, 1)],
            [Permutation.identity(2), Permutation.identity(4)],
        )
        assert result.is_identity()

    def test_field_wise_mapping(self):
        # one level per bit, each flipping that bit: full complement
        flip = Permutation((1, 0))
        result = hierarchical(3, [(0,), (1,), (2,)], [flip, flip, flip])
        assert result.as_tuple() == tuple(7 - i for i in range(8))

    def test_membership_in_f_per_level(self, rng, f_classes):
        for _ in range(40):
            order = rng.choice([3, 4, 5])
            bits = list(range(order))
            rng.shuffle(bits)
            levels = []
            while bits:
                take = min(len(bits), rng.choice([1, 2]))
                levels.append(tuple(sorted(bits[:take])))
                bits = bits[take:]
            phis = [
                _f_member(len(level), rng, f_classes) for level in levels
            ]
            assert in_class_f(hierarchical(order, levels, phis))

    def test_membership_with_ancestor_dependent_phi(self, rng, f_classes):
        for trial in range(30):
            order = rng.choice([4, 5])
            bits = list(range(order))
            rng.shuffle(bits)
            levels = []
            while bits:
                take = min(len(bits), rng.choice([1, 2]))
                levels.append(tuple(sorted(bits[:take])))
                bits = bits[take:]

            def phi(level, ancestors, levels=levels, trial=trial):
                local = random.Random(hash((trial, level, ancestors)))
                return local.choice(f_classes[len(levels[level])])

            assert in_class_f(hierarchical(order, levels, phi))
