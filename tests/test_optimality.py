"""Unit tests for the Section III optimality-factor claims."""

import pytest

from repro.analysis.optimality import (
    ccc_active_dimensions,
    ccc_lower_bound,
    mcc_interchange_floor,
    mcc_lower_bound,
)
from repro.permclasses import BPCSpec, matrix_transpose, vector_reversal
from repro.simd import CCC, MCC, permute_ccc, permute_mcc


class TestCCCBounds:
    def test_active_dimensions(self):
        assert ccc_active_dimensions(BPCSpec.identity(4)) == 0
        assert ccc_active_dimensions(matrix_transpose(4)) == 4
        spec = BPCSpec((0, 1, 3, 2), (False,) * 4)
        assert ccc_active_dimensions(spec) == 2

    @pytest.mark.parametrize("order", [2, 3, 4, 5, 6])
    def test_within_factor_two_of_optimal(self, order, rng):
        """'For a BPC permutation the number of routing steps used by
        the algorithm is within a factor of two from the optimal.'"""
        for _ in range(40):
            spec = BPCSpec.random(order, rng)
            run = permute_ccc(CCC(order), spec.to_permutation(),
                              bpc_spec=spec)
            bound = ccc_lower_bound(spec)
            assert run.success
            if bound == 0:
                assert run.unit_routes == 0
            else:
                assert run.unit_routes <= 2 * bound

    def test_factor_two_is_tight(self, rng):
        # some spec actually achieves ratio exactly 2: every active
        # dimension except n-1 visited twice
        order = 4
        spec = matrix_transpose(order)   # no fixed dims
        run = permute_ccc(CCC(order), spec.to_permutation(),
                          bpc_spec=spec)
        # transpose: 2n - 1 = 7 vs bound 4 -> ratio 1.75 (the top
        # dimension is active, so it is visited only once)
        assert run.unit_routes == 2 * ccc_lower_bound(spec) - 1
        # with the top dimension fixed, every active dimension is
        # visited exactly twice: the factor of two is tight
        spec2 = BPCSpec((1, 0, 2, 3), (False, False, False, False))
        run2 = permute_ccc(CCC(order), spec2.to_permutation(),
                           bpc_spec=spec2)
        assert run2.unit_routes == 2 * ccc_lower_bound(spec2)


class TestMCCBounds:
    def test_l1_lower_bound_values(self):
        q = 2
        # vector reversal moves corner (0,0) to (3,3): distance 6
        assert mcc_lower_bound(vector_reversal(2 * q).to_permutation(),
                               q) == 6
        assert mcc_lower_bound(list(range(16)), q) == 0

    def test_interchange_floor_values(self):
        q = 2
        # all 4 dims active: 2+4 (horizontal) + 2+4 (vertical) = 12
        assert mcc_interchange_floor(matrix_transpose(2 * q), q) == 12
        assert mcc_interchange_floor(BPCSpec.identity(2 * q), q) == 0

    def test_floor_order_mismatch(self):
        with pytest.raises(ValueError):
            mcc_interchange_floor(BPCSpec.identity(3), 2)

    @pytest.mark.parametrize("side_order", [1, 2, 3])
    def test_within_factor_two_of_interchange_floor(self, side_order,
                                                    rng):
        """The simulation visits each active dimension at most twice —
        within 2x of the per-dimension optimal cost structure, hence
        inside the paper's 'optimal to within a factor of four'."""
        order = 2 * side_order
        for _ in range(40):
            spec = BPCSpec.random(order, rng)
            run = permute_mcc(MCC(side_order), spec.to_permutation(),
                              bpc_spec=spec)
            floor = mcc_interchange_floor(spec, side_order)
            assert run.success
            if floor == 0:
                assert run.unit_routes == 0
            else:
                assert run.unit_routes <= 2 * floor

    def test_l1_bound_never_violated(self, rng):
        # the true lower bound is respected by construction
        side_order = 2
        for _ in range(30):
            spec = BPCSpec.random(2 * side_order, rng)
            perm = spec.to_permutation()
            run = permute_mcc(MCC(side_order), perm, bpc_spec=spec)
            assert run.unit_routes >= mcc_lower_bound(perm, side_order) \
                or perm.is_identity()
