"""Unit tests for the Section III permutation algorithms."""

from itertools import permutations

import pytest

from repro.core import Permutation, in_class_f, random_permutation
from repro.errors import MachineError, RoutingError
from repro.permclasses import (
    BPCSpec,
    cyclic_shift,
    is_inverse_omega,
    is_omega,
)
from repro.permclasses.bpc import bit_reversal
from repro.simd import (
    CCC,
    MCC,
    PSC,
    benes_dimension_schedule,
    permute_ccc,
    permute_mcc,
    permute_psc,
)


class TestSchedule:
    def test_shape(self):
        assert benes_dimension_schedule(3) == [0, 1, 2, 1, 0]
        assert benes_dimension_schedule(1) == [0]

    def test_length_2n_minus_1(self):
        for order in range(1, 10):
            assert len(benes_dimension_schedule(order)) == 2 * order - 1

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            benes_dimension_schedule(0)


class TestCCCAlgorithm:
    def test_agrees_with_class_f_exhaustive_n2(self):
        for p in permutations(range(4)):
            assert permute_ccc(CCC(2), p).success == in_class_f(p)

    def test_agrees_with_class_f_sampled_n4(self, rng):
        for _ in range(100):
            p = random_permutation(16, rng)
            assert permute_ccc(CCC(4), p).success == in_class_f(p)

    def test_route_count_2n_minus_1(self):
        for order in (1, 2, 3, 4, 5, 6):
            run = permute_ccc(CCC(order), list(range(1 << order)))
            assert run.unit_routes == 2 * order - 1
            assert run.route_instructions == 2 * order - 1

    def test_two_route_interchange_model(self):
        run = permute_ccc(CCC(3, routes_per_interchange=2),
                          list(range(8)))
        assert run.unit_routes == 2 * (2 * 3 - 1)  # 4 log N - 2

    def test_data_follows_tags(self, rng):
        order = 4
        spec = BPCSpec.random(order, rng)
        perm = spec.to_permutation()
        data = [f"item{i}" for i in range(16)]
        run = permute_ccc(CCC(order), perm, data=data)
        assert run.success
        for i in range(16):
            assert run.data[perm[i]] == data[i]

    def test_require_success(self):
        with pytest.raises(RoutingError):
            permute_ccc(CCC(2), [1, 3, 2, 0], require_success=True)

    def test_fig6_trace(self):
        perm = bit_reversal(3).to_permutation()
        run = permute_ccc(CCC(3), perm, trace=True)
        assert len(run.tag_history) == 6  # initial + 5 iterations
        assert run.tag_history[0] == perm.as_tuple()
        assert run.tag_history[-1] == tuple(range(8))
        # Fig. 6 spot-checks: first iteration exchanges PEs 6 and 7
        # (D(6) = 011 has bit 0 set) but not PEs 0 and 1.
        after1 = run.tag_history[1]
        assert after1[6] == perm[7] and after1[7] == perm[6]
        assert after1[0] == perm[0] and after1[1] == perm[1]

    def test_size_mismatch(self):
        with pytest.raises(MachineError):
            permute_ccc(CCC(3), [0, 1, 2, 3])


class TestCCCSkipRules:
    def test_omega_skip(self):
        order = 4
        perm = cyclic_shift(order, 3)
        assert is_omega(perm)
        run = permute_ccc(CCC(order), perm, omega=True)
        assert run.success
        assert run.unit_routes == order  # last n iterations only
        assert run.skipped_dimensions == tuple(range(order - 1))

    def test_inverse_omega_skip(self):
        order = 4
        perm = cyclic_shift(order, 5)
        assert is_inverse_omega(perm)
        run = permute_ccc(CCC(order), perm, inverse_omega=True)
        assert run.success
        assert run.unit_routes == order

    def test_bpc_skip(self, rng):
        order = 5
        spec = BPCSpec.random(order, rng)
        run = permute_ccc(CCC(order), spec.to_permutation(),
                          bpc_spec=spec)
        assert run.success
        fixed = spec.fixed_dimensions()
        expected_skips = sum(
            2 if b != order - 1 else 1 for b in fixed
        )
        assert run.unit_routes == 2 * order - 1 - expected_skips

    def test_identity_with_bpc_spec_routes_zero(self):
        order = 4
        spec = BPCSpec.identity(order)
        run = permute_ccc(CCC(order), spec.to_permutation(),
                          bpc_spec=spec)
        assert run.success and run.unit_routes == 0

    def test_conflicting_skip_flags(self):
        with pytest.raises(MachineError):
            permute_ccc(CCC(2), [0, 1, 2, 3], omega=True,
                        inverse_omega=True)

    def test_mismatched_bpc_spec(self):
        with pytest.raises(MachineError):
            permute_ccc(CCC(3), list(range(8)),
                        bpc_spec=BPCSpec.identity(2))


class TestPSCAlgorithm:
    def test_agrees_with_class_f_exhaustive_n2(self):
        for p in permutations(range(4)):
            assert permute_psc(PSC(2), p).success == in_class_f(p)

    def test_agrees_with_ccc_sampled(self, rng):
        for _ in range(80):
            p = random_permutation(8, rng)
            assert (permute_psc(PSC(3), p).success ==
                    permute_ccc(CCC(3), p).success)

    def test_route_count_4n_minus_3(self):
        for order in (1, 2, 3, 4, 5):
            run = permute_psc(PSC(order), list(range(1 << order)))
            assert run.unit_routes == 4 * order - 3

    def test_omega_replacement_shuffle(self):
        order = 4
        perm = cyclic_shift(order, 3)
        run = permute_psc(PSC(order), perm, omega=True)
        assert run.success
        # 1 shuffle + 1 exchange + (n-1)*(shuffle+exchange)
        assert run.unit_routes == 2 * order

    def test_inverse_omega_replacement_unshuffle(self):
        order = 4
        perm = cyclic_shift(order, 5)
        run = permute_psc(PSC(order), perm, inverse_omega=True)
        assert run.success
        assert run.unit_routes == 2 * order

    def test_data_follows_tags(self, rng):
        spec = BPCSpec.random(4, rng)
        perm = spec.to_permutation()
        data = list(range(100, 116))
        run = permute_psc(PSC(4), perm, data=data)
        for i in range(16):
            assert run.data[perm[i]] == data[i]

    def test_conflicting_flags(self):
        with pytest.raises(MachineError):
            permute_psc(PSC(2), [0, 1, 2, 3], omega=True,
                        inverse_omega=True)


class TestMCCAlgorithm:
    def test_agrees_with_class_f_exhaustive_n2(self):
        for p in permutations(range(4)):
            assert permute_mcc(MCC(1), p).success == in_class_f(p)

    def test_route_count_7_sqrt_n_minus_8(self):
        for q in (1, 2, 3):
            run = permute_mcc(MCC(q), list(range(1 << (2 * q))))
            assert run.unit_routes == 7 * (1 << q) - 8

    def test_agrees_with_ccc_sampled(self, rng):
        for _ in range(60):
            p = random_permutation(16, rng)
            assert (permute_mcc(MCC(2), p).success ==
                    permute_ccc(CCC(4), p).success)

    def test_data_follows_tags(self, rng):
        spec = BPCSpec.random(4, rng)
        perm = spec.to_permutation()
        run = permute_mcc(MCC(2), perm)
        assert run.success
        for i in range(16):
            assert run.data[perm[i]] == i

    def test_bpc_skip_reduces_routes(self, rng):
        q = 2
        spec = BPCSpec((0, 1, 3, 2), (False,) * 4)  # dims 0,1 fixed
        full = permute_mcc(MCC(q), spec.to_permutation())
        skipped = permute_mcc(MCC(q), spec.to_permutation(),
                              bpc_spec=spec)
        assert skipped.success
        assert skipped.unit_routes < full.unit_routes

    def test_require_success(self):
        with pytest.raises(RoutingError):
            permute_mcc(MCC(1), [1, 3, 2, 0], require_success=True)
