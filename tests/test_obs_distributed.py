"""Distributed-observability tests: cross-process metric aggregation
through the shard executor, span tracing (single reconstructable tree
across workers), trace-file write atomicity, and the OpenMetrics /
JSON exporters.

The parity tests are the acceptance gate for obs v2: a sharded batch
run with metrics enabled must report **exactly** the same counter
totals (calls, items, successes, failures, fallbacks, stage crossings)
as the same batch run inline, for both the process-pool path and the
thread-fallback path.
"""

import importlib.util
import json
import os
import pathlib
import random
import subprocess
import sys
import textwrap
import threading
import urllib.error
import urllib.request

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.obs as obs
from repro.accel import batch_self_route, have_numpy
from repro.accel import _np as accel_np
from repro.accel import executor as _executor
from repro.core import BenesNetwork
from repro.obs import export as obs_export
from repro.obs.registry import DELTA_SCHEMA_VERSION, MetricsRegistry
from repro.errors import InvalidParameterError

REPO = pathlib.Path(__file__).resolve().parents[1]
SRC = REPO / "src"
TOOLS = REPO / "tools"


def _load_tool(name):
    """Import a ``tools/*.py`` script as a module (tools/ is not a
    package)."""
    spec = importlib.util.spec_from_file_location(
        f"_tools_{name}", TOOLS / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(autouse=True)
def _clean_obs():
    """Every test starts and ends with collection off, instruments
    zeroed, and no executor pool held across tests (several tests
    monkeypatch the shard threshold)."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()
    _executor.shutdown()


def _perms(order, count, seed=7):
    rng = random.Random(seed)
    size = 1 << order
    return [tuple(rng.sample(range(size), size)) for _ in range(count)]


def _parity_counters(snap):
    """The counters that must agree between inline and sharded runs.

    ``executor.*`` exists only on the sharded path by design, and
    ``obs.*`` counts meta-traffic (span emission), so both are
    excluded from the equality."""
    return {
        name: value
        for name, value in snap["counters"].items()
        if not name.startswith(("executor.", "obs."))
    }


# ----------------------------------------------------------------------
# Delta / merge wire form
# ----------------------------------------------------------------------

class TestDeltaMerge:
    def test_counter_delta_is_incremental(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        assert reg.snapshot_delta()["counters"] == {"c": 3}
        assert reg.snapshot_delta()["counters"] == {}
        reg.counter("c").inc(2)
        assert reg.snapshot_delta()["counters"] == {"c": 2}

    def test_merge_semantics(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.counter("c").inc(1)
        parent.gauge("g").set(10.0)
        parent.histogram("h", bounds=(1.0, 10.0)).observe(0.5)
        worker.counter("c").inc(4)
        worker.gauge("g").set(99.0)
        worker.histogram("h", bounds=(1.0, 10.0)).observe(50.0)
        parent.merge(worker.snapshot_delta())
        snap = parent.snapshot()
        assert snap["counters"]["c"] == 5            # sum
        assert snap["gauges"]["g"] == 99.0           # last write wins
        hist = snap["histograms"]["h"]
        assert hist["count"] == 2                    # bucket add
        assert hist["min"] == 0.5 and hist["max"] == 50.0
        assert hist["buckets"] == {"le_1": 1, "overflow": 1}

    def test_merge_creates_missing_instruments(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        worker.counter("only.in.worker").inc(2)
        worker.histogram("h", bounds=(2.0,)).observe(1.0)
        parent.merge(worker.snapshot_delta())
        snap = parent.snapshot()
        assert snap["counters"]["only.in.worker"] == 2
        assert snap["histograms"]["h"]["count"] == 1

    def test_merge_rejects_unknown_schema_version(self):
        with pytest.raises(InvalidParameterError):
            MetricsRegistry().merge({"v": DELTA_SCHEMA_VERSION + 1})

    def test_merge_rejects_mismatched_histogram_bounds(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.histogram("h", bounds=(1.0,)).observe(0.5)
        worker.histogram("h", bounds=(2.0,)).observe(0.5)
        with pytest.raises(InvalidParameterError):
            parent.merge(worker.snapshot_delta())

    def test_delta_is_json_picklable(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(0.01)
        delta = reg.snapshot_delta()
        assert delta == json.loads(json.dumps(delta))

    # an op is (kind, instrument index, integer value); integer-valued
    # observations keep the float sums exact, so the split/merge run
    # and the sequential run must produce *identical* snapshots
    _OPS = st.lists(
        st.tuples(st.sampled_from(["counter", "gauge", "hist"]),
                  st.integers(0, 2), st.integers(0, 100)),
        max_size=60,
    )

    @settings(max_examples=60, deadline=None)
    @given(ops=_OPS, split=st.integers(0, 60))
    def test_split_merge_equals_sequential(self, ops, split):
        split = min(split, len(ops))
        bounds = (1.0, 10.0, 100.0)

        def apply(reg, op):
            kind, idx, value = op
            name = f"{kind}.{idx}"
            if kind == "counter":
                reg.counter(name).inc(value)
            elif kind == "gauge":
                reg.gauge(name).set(float(value))
            else:
                reg.histogram(name, bounds=bounds).observe(float(value))

        sequential = MetricsRegistry()
        for op in ops:
            apply(sequential, op)

        parent, worker = MetricsRegistry(), MetricsRegistry()
        for op in ops[:split]:
            apply(parent, op)
        for op in ops[split:]:
            apply(worker, op)
        # round-trip through JSON, exactly as a spawn worker ships it
        parent.merge(json.loads(json.dumps(worker.snapshot_delta())))

        merged, expected = parent.snapshot(), sequential.snapshot()
        # a counter only ever inc(0)'d by the worker is invisible on
        # the wire (idle instruments are omitted from deltas), so the
        # comparison is modulo zero-valued counters
        def nonzero(counters):
            return {k: v for k, v in counters.items() if v}

        assert nonzero(merged["counters"]) == \
            nonzero(expected["counters"])
        assert merged["histograms"] == expected["histograms"]
        # a gauge written only by the parent after the split point
        # does not exist: gauges compare on the keys the worker shipped
        # plus the parent's own — which is exactly the full key set
        assert merged["gauges"] == expected["gauges"]


# ----------------------------------------------------------------------
# Sharded-vs-inline counter parity (the tentpole acceptance test)
# ----------------------------------------------------------------------

class TestShardedParity:
    ORDER = 3
    COUNT = 32

    def _inline_snapshot(self, perms):
        obs.enable()
        inline = batch_self_route(perms)
        snap = obs.snapshot()
        obs.disable()
        obs.reset()
        return inline, snap

    @pytest.mark.skipif(not have_numpy(),
                        reason="process-pool path requires NumPy")
    def test_process_pool_parity(self, monkeypatch):
        perms = _perms(self.ORDER, self.COUNT)
        inline, inline_snap = self._inline_snapshot(perms)

        monkeypatch.setattr(_executor, "SHARD_THRESHOLD", 8)
        obs.enable()
        sharded = batch_self_route(perms, parallel=2)
        sharded_snap = obs.snapshot()
        obs.disable()

        counters = sharded_snap["counters"]
        assert counters["executor.mode.process"] == 1
        assert counters["executor.items"] == self.COUNT
        assert counters["executor.worker.deltas"] == 2

        assert list(sharded.success_mask) == list(inline.success_mask)
        assert _parity_counters(sharded_snap) == \
            _parity_counters(inline_snap)

    def test_thread_fallback_parity(self, monkeypatch):
        monkeypatch.setattr(accel_np, "FORCE_FALLBACK", True)
        perms = _perms(self.ORDER, self.COUNT)
        inline, inline_snap = self._inline_snapshot(perms)
        assert inline_snap["counters"]["accel.fallback.calls"] == 1

        monkeypatch.setattr(_executor, "SHARD_THRESHOLD", 8)
        obs.enable()
        sharded = batch_self_route(perms, parallel=2)
        sharded_snap = obs.snapshot()
        obs.disable()

        counters = sharded_snap["counters"]
        assert counters["executor.mode.thread"] == 1
        assert counters["executor.items"] == self.COUNT

        assert list(sharded.success_mask) == list(inline.success_mask)
        assert _parity_counters(sharded_snap) == \
            _parity_counters(inline_snap)

    @pytest.mark.skipif(not have_numpy(),
                        reason="process-pool path requires NumPy")
    def test_shutdown_flushes_straggler_deltas(self, monkeypatch):
        """Work the pool, then shut it down: the teardown flush must
        not lose or double-count anything (snapshot totals still equal
        the inline run afterwards)."""
        perms = _perms(self.ORDER, self.COUNT)
        _, inline_snap = self._inline_snapshot(perms)

        monkeypatch.setattr(_executor, "SHARD_THRESHOLD", 8)
        obs.enable()
        batch_self_route(perms, parallel=2)
        _executor.shutdown()
        snap = obs.snapshot()
        obs.disable()
        assert _parity_counters(snap) == _parity_counters(inline_snap)


# ----------------------------------------------------------------------
# Span tracing
# ----------------------------------------------------------------------

class TestSpans:
    def test_tracing_preserves_routing_results(self, tmp_path):
        net = BenesNetwork(3)
        perms = _perms(3, 6)
        baseline = [net.route(p) for p in perms]

        trace = tmp_path / "route.jsonl"
        obs.trace_to(str(trace))
        traced = [net.route(p) for p in perms]
        obs.trace_off()

        for off, on in zip(baseline, traced):
            assert on.success == off.success
            assert on.realized == off.realized

        spans = [json.loads(line)
                 for line in trace.read_text().splitlines()
                 if json.loads(line).get("ev") == "span"]
        assert len(spans) == len(perms)
        assert all(s["name"] == "route" for s in spans)
        assert all(s["parent_id"] is None for s in spans)
        # every route is its own trace — distinct trace_ids
        assert len({s["trace_id"] for s in spans}) == len(perms)

    def test_disabled_tracing_emits_nothing(self, tmp_path):
        assert obs.trace_path() is None
        BenesNetwork(2).route((3, 2, 1, 0))
        batch_self_route([(3, 2, 1, 0)])
        assert list(tmp_path.iterdir()) == []

    def test_events_are_stamped_with_current_span(self, tmp_path):
        trace = tmp_path / "stamped.jsonl"
        obs.trace_to(str(trace))
        BenesNetwork(2).route((3, 2, 1, 0))
        obs.trace_off()
        events = [json.loads(line)
                  for line in trace.read_text().splitlines()]
        span = next(e for e in events if e["ev"] == "span")
        stages = [e for e in events if e["ev"] == "stage"]
        assert stages and all(
            e["span_id"] == span["span_id"]
            and e["trace_id"] == span["trace_id"] for e in stages
        )


_SHARDED_TRACE_SCRIPT = """\
import json
import random
import sys

sys.path.insert(0, {src!r})

if __name__ == "__main__":
    mode, trace_path = sys.argv[1], sys.argv[2]
    if mode == "thread":
        from repro.accel import _np
        _np.FORCE_FALLBACK = True
    import repro.obs as obs
    from repro.accel import batch_self_route
    from repro.accel import executor as ex
    ex.SHARD_THRESHOLD = 8
    rng = random.Random(7)
    perms = [tuple(rng.sample(range(8), 8)) for _ in range(32)]
    obs.enable(trace=trace_path)
    batch_self_route(perms, parallel=2)
    ex.shutdown()
    obs.disable()
    counters = obs.snapshot()["counters"]
    print(json.dumps({{
        "mode_process": counters.get("executor.mode.process", 0),
        "mode_thread": counters.get("executor.mode.thread", 0),
    }}))
"""


class TestShardedSpanTree:
    """A sharded batch forms ONE span tree: the batch root, the
    executor dispatch under it, the per-shard spans under the
    dispatch, and each worker's batch span under its shard — even when
    the shards ran in other processes."""

    def _run(self, tmp_path, mode):
        script = tmp_path / "sharded_trace.py"
        script.write_text(_SHARDED_TRACE_SCRIPT.format(src=str(SRC)))
        trace = tmp_path / f"{mode}.jsonl"
        proc = subprocess.run(
            [sys.executable, str(script), mode, str(trace)],
            capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        return trace, json.loads(proc.stdout.strip().splitlines()[-1])

    @pytest.mark.parametrize("mode", ["process", "thread"])
    def test_single_tree_across_workers(self, tmp_path, mode):
        if mode == "process" and not have_numpy():
            pytest.skip("process-pool path requires NumPy")
        trace, counters = self._run(tmp_path, mode)
        if mode == "process":
            assert counters["mode_process"] == 1
        else:
            assert counters["mode_thread"] == 1

        # the CI smoke contract: trace_tree validates and exits 0
        tree = subprocess.run(
            [sys.executable, str(TOOLS / "trace_tree.py"), str(trace),
             "--min-spans", "6"],
            capture_output=True, text=True, timeout=60,
        )
        assert tree.returncode == 0, tree.stdout + tree.stderr

        spans = [json.loads(line)
                 for line in trace.read_text().splitlines()
                 if json.loads(line).get("ev") == "span"]
        assert len({s["trace_id"] for s in spans}) == 1
        by_id = {s["span_id"]: s for s in spans}

        roots = [s for s in spans if s["parent_id"] is None]
        assert len(roots) == 1 and roots[0]["name"] == "batch.self_route"

        dispatch = [s for s in spans if s["name"] == "executor.dispatch"]
        assert len(dispatch) == 1
        assert dispatch[0]["parent_id"] == roots[0]["span_id"]

        shards = [s for s in spans if s["name"] == "executor.shard"]
        assert len(shards) == 2
        assert all(s["parent_id"] == dispatch[0]["span_id"]
                   for s in shards)
        assert sorted(s["shard"] for s in shards) == [0, 1]

        worker_batches = [
            s for s in spans
            if s["name"] == "batch.self_route" and s["parent_id"]
        ]
        assert len(worker_batches) == 2
        assert all(by_id[s["parent_id"]]["name"] == "executor.shard"
                   for s in worker_batches)


# ----------------------------------------------------------------------
# Trace file write atomicity
# ----------------------------------------------------------------------

_WRITER_SCRIPT = """\
import os
import sys

sys.path.insert(0, {src!r})

if __name__ == "__main__":
    import repro.obs as obs
    path, count = sys.argv[1], int(sys.argv[2])
    obs.trace_to(path)
    pad = "x" * 256
    for i in range(count):
        obs.trace_event("ping", i=i, pid=os.getpid(), pad=pad)
"""


class TestTraceAtomicity:
    def test_concurrent_writers_never_tear_lines(self, tmp_path):
        """N processes appending to one trace file concurrently: every
        line must still parse as JSON (O_APPEND + single write per
        event)."""
        script = tmp_path / "writer.py"
        script.write_text(_WRITER_SCRIPT.format(src=str(SRC)))
        trace = tmp_path / "shared.jsonl"
        writers, per_writer = 4, 250

        procs = [
            subprocess.Popen(
                [sys.executable, str(script), str(trace),
                 str(per_writer)],
                stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            )
            for _ in range(writers)
        ]
        for proc in procs:
            _, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err

        lines = trace.read_text().splitlines()
        assert len(lines) == writers * per_writer
        events = [json.loads(line) for line in lines]  # raises on tear
        assert all(e["ev"] == "ping" for e in events)
        assert len({e["pid"] for e in events}) == writers
        # per-writer event streams arrive intact and in order
        for pid in {e["pid"] for e in events}:
            own = [e["i"] for e in events if e["pid"] == pid]
            assert own == sorted(own) and len(own) == per_writer


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------

def _populated_snapshot():
    obs.enable()
    BenesNetwork(2).route((3, 2, 1, 0))
    BenesNetwork(2).route((1, 3, 2, 0))
    batch_self_route(_perms(2, 4))
    snap = obs.snapshot()
    obs.disable()
    return snap


class TestExporters:
    def test_openmetrics_lints_clean(self):
        snap = _populated_snapshot()
        text = obs_export.render_openmetrics(snap)
        assert text.endswith("# EOF\n")
        lint = _load_tool("check_openmetrics").lint
        assert lint(text) == []

    def test_openmetrics_shapes(self):
        snap = _populated_snapshot()
        text = obs_export.render_openmetrics(snap)
        assert "# TYPE benes_route_calls counter" in text
        assert "benes_route_calls_total 2" in text
        # histogram: cumulative buckets with a closing +Inf
        assert 'accel_batch_seconds_bucket{le="+Inf"}' in text
        assert "accel_batch_seconds_count" in text
        # providers flatten to gauges
        assert "accel_cache_topology_hits" in text

    def test_json_render_roundtrips(self):
        snap = _populated_snapshot()
        parsed = json.loads(obs_export.render_json(snap))
        assert parsed["counters"]["benes.route.calls"] == 2

    def test_scrape_endpoint(self):
        obs.enable()
        BenesNetwork(2).route((3, 2, 1, 0))
        server = obs_export.build_server(0)   # ephemeral port
        port = server.server_address[1]
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        try:
            with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/metrics",
                    timeout=10) as response:
                assert response.status == 200
                assert response.headers["Content-Type"] == \
                    obs_export.OPENMETRICS_CONTENT_TYPE
                body = response.read().decode("utf-8")
            lint = _load_tool("check_openmetrics").lint
            assert lint(body) == []
            assert "benes_route_calls_total" in body
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/other", timeout=10)
            assert excinfo.value.code == 404
        finally:
            server.shutdown()
            thread.join(timeout=10)
            server.server_close()


class TestMetricsCLI:
    def test_dump_demo_openmetrics(self, capsys):
        from repro.cli import main
        assert main(["metrics", "dump", "--demo"]) == 0
        out = capsys.readouterr().out
        lint = _load_tool("check_openmetrics").lint
        assert lint(out) == []
        assert "cli_command_metrics_total" in out

    def test_dump_demo_json(self, capsys):
        from repro.cli import main
        assert main(["metrics", "dump", "--demo",
                     "--format", "json"]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["counters"]["cli.command.metrics"] == 1

    def test_dump_reads_bench_report(self, tmp_path, capsys):
        """`--input` accepts both a raw snapshot and a bench report
        with an embedded ``metrics`` key."""
        from repro.cli import main
        snap = _populated_snapshot()
        report = tmp_path / "bench.json"
        report.write_text(json.dumps({"benchmark": "x",
                                      "metrics": snap}))
        assert main(["metrics", "dump", "--input", str(report)]) == 0
        out = capsys.readouterr().out
        assert _load_tool("check_openmetrics").lint(out) == []
        assert "benes_route_calls_total 2" in out
