"""Packet mode: partial permutations, queues, contention, the wire op.

Four layers, four strategies:

- **PartialMapping / completion kernels** — normalization and
  validation of the call model, and NumPy-vs-fallback parity of the
  canonical completion (the reduction every engine shares);
- **masked routing** — active-lane verdicts checked against the
  structural :class:`~repro.core.BenesNetwork` oracle, plus
  byte-identical cross-engine parity through the ``partial`` verify
  family (k = 0 and k = 1 edges included by construction);
- **time-stepped simulator** — delivery/conservation invariants,
  the pipeline-depth latency floor (pinned against
  :class:`~repro.core.PipelinedBenes`), seeded determinism, drop and
  backoff behavior, and the ``packet.*`` metric counters;
- **serve wire op** — ``op = "packet"`` answers byte-identical to
  :func:`repro.serve.protocol.from_partial_result` over a direct
  engine call.
"""

from __future__ import annotations

import random

import pytest

import repro.obs as obs
from repro.accel import (
    batch_complete_partial,
    batch_route_partial,
    batch_self_route,
    complete_partial_row,
    have_numpy,
)
from repro.accel import _np as _np_seam
from repro.accel.partial import IDLE
from repro.core import BenesNetwork, PipelinedBenes, random_permutation
from repro.errors import InvalidParameterError
from repro.packet import (
    PacketSimConfig,
    PartialMapping,
    route_partial,
    saturation_sweep,
    simulate,
)
from repro.verify import PARTIAL_ENGINES, check_partial
from repro.verify.workloads import partial_rows


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


@pytest.fixture
def rng():
    return random.Random(1980)


# ----------------------------------------------------------------------
# PartialMapping and the completion kernels
# ----------------------------------------------------------------------

class TestPartialMapping:
    def test_pairs_normalized_sorted(self):
        mapping = PartialMapping.from_pairs(3, [(5, 1), (0, 7), (2, 3)])
        assert mapping.pairs == ((0, 7), (2, 3), (5, 1))
        assert mapping.n == 8 and mapping.k == 3

    def test_dense_round_trip(self):
        dense = (IDLE, 3, IDLE, 0, IDLE, IDLE, 5, IDLE)
        mapping = PartialMapping.from_dense(dense)
        assert mapping.order == 3
        assert mapping.to_dense() == dense
        assert PartialMapping.from_dense(mapping.to_dense()) == mapping

    def test_empty_mapping_is_legal(self):
        mapping = PartialMapping.from_dense((IDLE,) * 4)
        assert mapping.k == 0
        assert sorted(mapping.complete()) == [0, 1, 2, 3]

    @pytest.mark.parametrize("pairs", [
        [(0, 1), (0, 2)],       # duplicate source
        [(0, 1), (3, 1)],       # duplicate destination
        [(0, 9)],               # destination out of range
        [(-1, 0)],              # source out of range
    ])
    def test_invalid_pairs_rejected(self, pairs):
        with pytest.raises(InvalidParameterError):
            PartialMapping.from_pairs(3, pairs)

    def test_complete_agrees_on_active_lanes(self, rng):
        for _ in range(20):
            n = 8
            k = rng.randrange(n + 1)
            row = [IDLE] * n
            for src, dst in zip(rng.sample(range(n), k),
                                rng.sample(range(n), k)):
                row[src] = dst
            full = complete_partial_row(row)
            assert sorted(full) == list(range(n))
            for src in range(n):
                if row[src] != IDLE:
                    assert full[src] == row[src]

    def test_completion_is_canonical(self):
        # idle inputs take the unused outputs in increasing order
        assert complete_partial_row((IDLE, 5, IDLE, 0, IDLE, IDLE,
                                     IDLE, IDLE)) == \
            (1, 5, 2, 0, 3, 4, 6, 7)


class TestCompletionKernels:
    def _rows(self, rng, batch=16, order=3):
        return partial_rows(order, batch, rng)

    def test_numpy_and_fallback_agree(self, rng, monkeypatch):
        if not have_numpy():
            pytest.skip("needs NumPy to compare against the fallback")
        rows = self._rows(rng)
        got_np, active_np = batch_complete_partial(rows)
        monkeypatch.setattr(_np_seam, "FORCE_FALLBACK", True)
        got_py, active_py = batch_complete_partial(rows)
        assert [tuple(int(v) for v in r) for r in got_np] == \
            [tuple(r) for r in got_py]
        assert [tuple(bool(v) for v in r) for r in active_np] == \
            [tuple(r) for r in active_py]

    @pytest.mark.parametrize("fallback", [False, True])
    def test_duplicate_destination_rejected(self, fallback,
                                            monkeypatch):
        if fallback:
            monkeypatch.setattr(_np_seam, "FORCE_FALLBACK", True)
        with pytest.raises(InvalidParameterError):
            batch_complete_partial([(0, 0, IDLE, IDLE)])

    def test_empty_batch_rejected(self):
        with pytest.raises(InvalidParameterError):
            batch_complete_partial([])


# ----------------------------------------------------------------------
# Masked routing
# ----------------------------------------------------------------------

class TestPartialRouting:
    def test_active_lanes_match_structural_oracle(self, rng):
        net = BenesNetwork(3)
        rows = partial_rows(3, 24, rng)
        result = batch_route_partial(rows)
        for b, row in enumerate(rows):
            completed = complete_partial_row(row)
            oracle = net.route(list(completed))
            assert result.completed[b] == completed
            assert result.delivered[b] == tuple(oracle.delivered)
            for (src, out), ok in zip(result.arrivals[b],
                                      result.lane_ok[b]):
                assert ok == (out == row[src])
            assert result.success_mask[b] == all(result.lane_ok[b])

    def test_idle_batch_vacuously_succeeds(self):
        result = route_partial([(IDLE,) * 8, (IDLE,) * 8])
        assert result.success_mask == (True, True)
        assert result.lane_ok == ((), ())
        assert result.arrivals == ((), ())

    def test_full_permutation_matches_batch_self_route(self, rng):
        rows = [random_permutation(8, rng).as_tuple()
                for _ in range(6)]
        partial = batch_route_partial(rows)
        full = batch_self_route(rows)
        assert partial.success_mask == \
            tuple(bool(ok) for ok in full.success_mask)
        assert partial.delivered == tuple(
            tuple(int(v) for v in row) for row in full.mappings)

    def test_mapping_objects_and_dense_rows_mix(self):
        mapping = PartialMapping.from_pairs(2, [(0, 3), (2, 1)])
        result = route_partial([mapping, mapping.to_dense()])
        assert result.success_mask[0] == result.success_mask[1]
        assert result.delivered[0] == result.delivered[1]

    @pytest.mark.parametrize("omega_mode", [False, True])
    def test_cross_engine_byte_parity(self, omega_mode):
        # partial_rows always leads with the k=0 and k=1 edges
        for order in (2, 3, 4):
            rows = partial_rows(order, 24, random.Random(order))
            assert check_partial(rows, order,
                                 omega_mode=omega_mode) == []

    def test_partial_metrics_counted(self, rng):
        obs.enable()
        batch_route_partial(partial_rows(3, 8, rng))
        counters = obs.snapshot()["counters"]
        assert counters["partial.calls"] == 1
        assert counters["partial.instances"] == 8


# ----------------------------------------------------------------------
# Time-stepped simulator
# ----------------------------------------------------------------------

class TestPacketSim:
    def test_lone_packet_latency_is_pipeline_depth(self):
        order = 3
        depth = PipelinedBenes(order).latency
        for src in range(1 << order):
            for dst in range(1 << order):
                report = simulate(
                    PacketSimConfig(order=order, ticks=1),
                    arrivals=[(0, src, dst)])
                assert report.delivered == 1
                assert report.misrouted == 0
                assert report.latencies == [depth]

    def test_conservation_and_no_misroutes(self):
        for load in (0.2, 0.6, 1.0):
            for policy in ("dest", "random"):
                report = simulate(PacketSimConfig(
                    order=4, ticks=64, offered_load=load,
                    policy=policy, seed=11))
                assert report.misrouted == 0
                assert report.delivered + report.dropped + \
                    report.stranded == report.offered
                assert all(lat >= 2 * 4 - 1
                           for lat in report.latencies)

    def test_seeded_determinism(self):
        config = PacketSimConfig(order=3, ticks=48, offered_load=0.7,
                                 seed=5)
        assert simulate(config).to_dict() == simulate(config).to_dict()
        other = PacketSimConfig(order=3, ticks=48, offered_load=0.7,
                                seed=6)
        assert simulate(other).to_dict() != simulate(config).to_dict()

    def test_full_wave_delivers_with_generous_buffers(self, rng):
        # a full permutation injected as one wave: per-packet
        # forwarding conflicts are resolved by queueing, never by loss,
        # when the buffers are deep enough
        order, n = 3, 8
        perm = random_permutation(n, rng).as_tuple()
        report = simulate(
            PacketSimConfig(order=order, ticks=1, queue_capacity=n,
                            max_retries=4 * n),
            arrivals=[(0, src, perm[src]) for src in range(n)])
        assert report.delivered == n
        assert report.dropped == 0
        assert report.misrouted == 0

    def test_tiny_queues_drop_under_saturation(self):
        report = simulate(PacketSimConfig(
            order=4, ticks=64, offered_load=1.0, queue_capacity=1,
            max_retries=0, seed=3))
        assert report.dropped > 0
        assert report.dropped == report.dropped_inject + \
            report.dropped_retry
        assert sum(s.dropped for s in report.per_stage) == \
            report.dropped
        assert report.misrouted == 0

    def test_backoff_changes_schedule_not_correctness(self):
        base = PacketSimConfig(order=3, ticks=48, offered_load=0.9,
                               seed=9)
        backed = PacketSimConfig(order=3, ticks=48, offered_load=0.9,
                                 seed=9, backoff_base=2,
                                 backoff_exp=True)
        r_base, r_backed = simulate(base), simulate(backed)
        for report in (r_base, r_backed):
            assert report.misrouted == 0
            assert report.delivered + report.dropped + \
                report.stranded == report.offered
        assert r_base.to_dict() != r_backed.to_dict()

    def test_zero_load_is_silent(self):
        report = simulate(PacketSimConfig(order=3, ticks=16,
                                          offered_load=0.0))
        assert report.offered == 0
        assert report.latencies == []
        assert report.latency_mean is None
        assert report.to_dict()["latency_p99"] is None

    def test_stage_stats_cover_all_columns(self):
        report = simulate(PacketSimConfig(order=3, ticks=32,
                                          offered_load=0.8, seed=2))
        assert len(report.per_stage) == 2 * 3 - 1
        assert sum(s.contention for s in report.per_stage) == \
            report.contention
        assert sum(s.blocked for s in report.per_stage) == \
            report.blocked

    @pytest.mark.parametrize("kwargs", [
        {"order": 0}, {"ticks": 0}, {"offered_load": 1.5},
        {"offered_load": -0.1}, {"queue_capacity": 0},
        {"max_retries": -1}, {"backoff_base": -1},
        {"policy": "nope"},
    ])
    def test_invalid_config_rejected(self, kwargs):
        base = dict(order=3)
        base.update(kwargs)
        with pytest.raises(InvalidParameterError):
            PacketSimConfig(**base)

    @pytest.mark.parametrize("arrival", [
        (0, 9, 0), (0, 0, 9), (-1, 0, 0),
    ])
    def test_invalid_arrivals_rejected(self, arrival):
        with pytest.raises(InvalidParameterError):
            simulate(PacketSimConfig(order=3, ticks=1),
                     arrivals=[arrival])

    def test_metrics_counted(self):
        obs.enable()
        report = simulate(PacketSimConfig(order=3, ticks=32,
                                          offered_load=0.6, seed=4))
        counters = obs.snapshot()["counters"]
        assert counters["packet.offered"] == report.offered
        assert counters["packet.injected"] == report.injected
        assert counters["packet.delivered"] == report.delivered
        assert counters.get("packet.misrouted", 0) == 0

    def test_saturation_sweep_one_report_per_load(self):
        reports = saturation_sweep((0.1, 0.5), order=3, ticks=16)
        assert [r.config.offered_load for r in reports] == [0.1, 0.5]


# ----------------------------------------------------------------------
# The serve wire op
# ----------------------------------------------------------------------

class TestPacketWireOp:
    def test_packet_op_byte_identical_to_direct(self, rng):
        import socket

        from repro.serve import ServeConfig, protocol
        from repro.serve.daemon import start_in_thread

        rows = partial_rows(3, 6, rng)
        requests = [
            protocol.RouteRequest(op="packet", tags=row, id=i + 1)
            for i, row in enumerate(rows)
        ]
        with start_in_thread(ServeConfig(
                port=0, max_batch=len(rows), max_wait_us=2000.0,
                warm_orders=(2, 3))) as handle:
            host, port = handle.address
            with socket.create_connection((host, port),
                                          timeout=30.0) as sock:
                payload = "".join(
                    protocol.encode_request(request) + "\n"
                    for request in requests)
                sock.sendall(payload.encode("utf-8"))
                reader = sock.makefile("rb")
                wire_lines = [reader.readline() for _ in requests]
        from repro.accel._np import resolve_engine

        engine = resolve_engine(None, order=3, batch_size=len(rows),
                                kind="route")
        direct = batch_route_partial(rows, engine=engine)
        by_id = {}
        for line in wire_lines:
            by_id[protocol.decode_response(line).id] = line
        for index, request in enumerate(requests):
            expected = (protocol.encode_response(
                protocol.from_partial_result(request, direct, index,
                                             engine)) + "\n") \
                .encode("utf-8")
            assert by_id[request.id] == expected

    def test_client_packet_many_masks_to_calls(self, rng):
        from repro.serve import ServeClient, ServeConfig
        from repro.serve.daemon import start_in_thread

        mapping = PartialMapping.from_pairs(3, [(1, 6), (4, 0)])
        with start_in_thread(ServeConfig(
                port=0, max_batch=8, max_wait_us=2000.0,
                warm_orders=(2, 3))) as handle:
            with ServeClient(*handle.address) as client:
                response = client.packet_many(
                    [mapping.to_dense()])[0]
        assert response.status == "ok"
        direct = route_partial([mapping])
        assert response.success == direct.success_mask[0]
        assert response.mapping == direct.delivered[0]

    def test_partial_engine_registry_lists_adapters(self):
        names = list(PARTIAL_ENGINES)
        assert names[0] == "partial-scalar"  # the fuzzer's oracle
        assert "partial-batch" in names
        assert "partial-bitslice" in names
