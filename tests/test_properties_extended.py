"""Property-based tests for the extension modules (sampler, GCN,
planner, dual machine, parallel setup)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BenesNetwork,
    Permutation,
    in_class_f,
    random_class_f,
)
from repro.networks import GeneralizedConnectionNetwork
from repro.planner import plan
from repro.simd import (
    CCC,
    DualNetworkComputer,
    parallel_setup_states,
    permute_ccc,
    sort_permute_ccc,
)

seeds = st.integers(min_value=0, max_value=2**32 - 1)
perms8 = st.permutations(list(range(8))).map(Permutation)


class TestSamplerProperties:
    @given(seeds, st.integers(min_value=1, max_value=6))
    @settings(max_examples=60)
    def test_every_sample_is_in_f(self, seed, order):
        perm = random_class_f(order, random.Random(seed))
        assert in_class_f(perm)

    @given(seeds)
    @settings(max_examples=30)
    def test_samples_route_structurally(self, seed):
        perm = random_class_f(5, random.Random(seed))
        assert BenesNetwork(5).route(perm).success


class TestGCNProperties:
    @given(st.lists(st.integers(min_value=0, max_value=7),
                    min_size=8, max_size=8))
    @settings(max_examples=80)
    def test_any_map_is_realized(self, sources):
        gcn = GeneralizedConnectionNetwork(3)
        data = [f"v{i}" for i in range(8)]
        result = gcn.connect(sources, payloads=data)
        assert result.outputs == tuple(data[s] for s in sources)


class TestPlannerProperties:
    @given(perms8)
    @settings(max_examples=80)
    def test_plan_is_internally_consistent(self, perm):
        report = plan(perm)
        if report.in_f:
            assert report.network_strategy == "self-routing"
            assert report.simd_strategy == "simulate"
            assert report.failure_witness is None
        else:
            assert report.simd_strategy == "sort"
            assert report.failure_witness is not None
        if report.network_strategy == "omega-mode":
            assert report.in_omega and not report.in_f

    @given(perms8)
    @settings(max_examples=50)
    def test_predicted_cost_achievable(self, perm):
        report = plan(perm)
        if report.simd_strategy == "sort":
            run = sort_permute_ccc(CCC(3), perm)
            assert run.route_instructions == report.ccc_unit_routes
            return
        kwargs = {}
        if report.skip_rule == "bpc":
            kwargs["bpc_spec"] = report.bpc
        elif report.skip_rule == "omega":
            kwargs["omega"] = True
        elif report.skip_rule == "inverse-omega":
            kwargs["inverse_omega"] = True
        run = permute_ccc(CCC(3), perm, **kwargs)
        assert run.success
        assert run.unit_routes == report.ccc_unit_routes


class TestDualProperties:
    @given(perms8, st.integers(min_value=1, max_value=30))
    @settings(max_examples=50)
    def test_dual_always_routes_correctly(self, perm, overhead):
        machine = DualNetworkComputer(3, step_gate_cost=overhead)
        data = [f"d{i}" for i in range(8)]
        report = machine.permute(perm, data)
        assert list(report.data) == perm.apply(data)

    @given(perms8)
    @settings(max_examples=40)
    def test_dual_choice_minimizes_cost(self, perm):
        machine = DualNetworkComputer(3)
        report = machine.permute(perm)
        if report.benes_gate_delays is not None:
            assert report.gate_delays == min(
                report.benes_gate_delays,
                report.e_network_gate_delays,
            )


class TestStatePackingProperties:
    @given(perms8)
    @settings(max_examples=60)
    def test_pack_roundtrip(self, perm):
        from repro.core import pack_states, setup_states, unpack_states
        states = setup_states(perm)
        assert unpack_states(pack_states(states), 3) == states

    @given(perms8)
    @settings(max_examples=40)
    def test_packed_states_still_route(self, perm):
        from repro.core import pack_states, setup_states, unpack_states
        net = BenesNetwork(3)
        reloaded = unpack_states(pack_states(setup_states(perm)), 3)
        assert net.route_with_states(reloaded).realized == perm


class TestTwoPassProperties:
    @given(perms8)
    @settings(max_examples=60)
    def test_decomposition_classes(self, perm):
        from repro.core.twopass import two_pass_decomposition
        from repro.permclasses import is_inverse_omega, is_omega
        first, second = two_pass_decomposition(perm)
        assert first.then(second) == perm
        assert is_inverse_omega(first)
        assert is_omega(second)

    @given(perms8)
    @settings(max_examples=30)
    def test_two_pass_routing_moves_data(self, perm):
        from repro.core.twopass import route_two_pass
        data = [f"v{i}" for i in range(8)]
        assert route_two_pass(perm, data) == perm.apply(data)


class TestFastPathProperties:
    @given(perms8)
    @settings(max_examples=80)
    def test_fast_path_equivalent(self, perm):
        from repro.core import fast_self_route
        success, delivered = fast_self_route(perm)
        result = BenesNetwork(3).route(perm)
        assert success == result.success
        assert delivered == result.delivered


class TestParallelSetupProperties:
    @given(perms8)
    @settings(max_examples=60)
    def test_parallel_setup_realizes_everything(self, perm):
        net = BenesNetwork(3)
        run = parallel_setup_states(perm)
        assert net.route_with_states(run.states).realized == perm
