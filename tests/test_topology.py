"""Unit tests for the flat Benes topology (Fig. 1 structure)."""

import pytest

from repro.core import bits
from repro.core.topology import (
    BenesTopology,
    control_bit,
    shuffle_link,
    stage_count,
    switch_count,
    unshuffle_link,
)


class TestCounts:
    def test_stage_count_formula(self):
        # 2 log N - 1 stages
        for order in range(1, 10):
            assert stage_count(order) == 2 * order - 1

    def test_switch_count_formula(self):
        # N log N - N/2 switches
        for order in range(1, 10):
            n = 1 << order
            assert switch_count(order) == n * order - n // 2

    def test_rejects_order_zero(self):
        with pytest.raises(ValueError):
            stage_count(0)


class TestControlBit:
    def test_schedule_is_palindrome(self):
        # Fig. 3: stages b and 2n-2-b share control bit b
        for order in range(1, 8):
            topo = BenesTopology.build(order)
            sched = topo.control_bits()
            assert sched == tuple(reversed(sched))
            assert sched == tuple(
                min(s, 2 * order - 2 - s) for s in range(2 * order - 1)
            )

    def test_middle_stage_uses_top_bit(self):
        for order in range(1, 8):
            assert control_bit(order - 1, order) == order - 1

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            control_bit(5, 2)
        with pytest.raises(ValueError):
            control_bit(-1, 2)


class TestLinks:
    def test_unshuffle_sends_switch_outputs_to_subnetworks(self):
        # Fig. 1: upper output of switch i (row 2i) -> input i of the
        # upper B(n-1) (row i); lower output (row 2i+1) -> row N/2 + i.
        for order in (2, 3, 4):
            link = unshuffle_link(order)
            half = 1 << (order - 1)
            for i in range(half):
                assert link[2 * i] == i
                assert link[2 * i + 1] == half + i

    def test_shuffle_collects_subnetwork_outputs(self):
        # output j of upper subnet (row j) -> upper input of last-stage
        # switch j (row 2j); lower subnet output -> row 2j+1.
        for order in (2, 3, 4):
            link = shuffle_link(order)
            half = 1 << (order - 1)
            for j in range(half):
                assert link[j] == 2 * j
                assert link[half + j] == 2 * j + 1

    def test_links_are_rotations(self):
        order = 4
        assert unshuffle_link(order) == tuple(
            bits.rotate_right(r, order) for r in range(1 << order)
        )
        assert shuffle_link(order) == tuple(
            bits.rotate_left(r, order) for r in range(1 << order)
        )


class TestBuild:
    def test_b1_has_single_column(self):
        topo = BenesTopology.build(1)
        assert topo.n_stages == 1
        assert topo.links == ()
        topo.validate()

    def test_validate_accepts_all_small_orders(self):
        for order in range(1, 8):
            BenesTopology.build(order).validate()

    def test_inner_links_nested_in_halves(self):
        # every interior link keeps signals within their half
        for order in (3, 4, 5):
            topo = BenesTopology.build(order)
            half = topo.n_terminals // 2
            for link in topo.links[1:-1]:
                for r, target in enumerate(link):
                    assert (r < half) == (target < half)

    def test_apply_link_moves_values(self):
        topo = BenesTopology.build(2)
        moved = topo.apply_link(0, ["r0", "r1", "r2", "r3"])
        # unshuffle: row0->0, row1->2, row2->1, row3->3
        assert moved == ["r0", "r2", "r1", "r3"]

    def test_build_rejects_order_zero(self):
        with pytest.raises(ValueError):
            BenesTopology.build(0)

    def test_n_switches_consistent(self):
        for order in range(1, 7):
            topo = BenesTopology.build(order)
            assert topo.n_switches == (
                topo.n_stages * topo.switches_per_stage
            )

    def test_recursive_structure_matches_two_subnetworks(self):
        # interior links of B(n) restricted to the top half equal the
        # links of B(n-1)
        for order in (3, 4, 5):
            big = BenesTopology.build(order)
            small = BenesTopology.build(order - 1)
            half = big.n_terminals // 2
            inner = big.links[1:-1]
            assert len(inner) == len(small.links)
            for big_link, small_link in zip(inner, small.links):
                assert big_link[:half] == small_link
