"""The composed-block engine (``repro.accel.composed``).

The engine decomposes B(n) into 2^levels independent B(r)
sub-networks across the middle stages, routes each block with the
best inner engine, and streams switch-state chunks instead of
materializing the full (B, 2n-1, N/2) tensor.  These tests pin:

- **byte parity**: composed setup/self-route/states agree bit for bit
  with the serial Waksman oracle and the batch engines, across
  sub-orders, chunk sizes, and both the NumPy and scalar paths;
- **streaming**: ``iter_composed_states`` chunks reassemble to the
  oracle's full state matrix, and chunk payloads stay bounded;
- **integration**: the ``engine="composed"`` seam, the registry spec,
  the auto-threshold (``BENES_COMPOSED_ORDER``), cache/obs surfaces,
  the ``benes route --order`` CLI mode, and the scaling benchmark
  cells.
"""

import json
import random

import pytest

from repro import engines as registry
from repro.accel import (
    batch_in_class_f,
    batch_self_route,
    batch_setup_states,
    cache_stats,
    composed_in_class_f,
    composed_order_threshold,
    composed_plan,
    composed_route_with_states,
    composed_self_route,
    composed_setup_states,
    composed_stats,
    composed_stats_clear,
    have_numpy,
    iter_composed_states,
    resolve_engine,
)
from repro.accel import _np as _np_mod
from repro.core import random_class_f, random_permutation, setup_states
from repro.errors import InvalidParameterError


def _rows(order, count, rng, in_f=False):
    if in_f:
        return [random_class_f(order, rng).as_tuple()
                for _ in range(count)]
    return [random_permutation(1 << order, rng).as_tuple()
            for _ in range(count)]


def _as_nested(states_row):
    """NumPy-path engines return arrays; compare as nested int lists
    (the byte-parity convention of the setup suite)."""
    return [[int(v) for v in column] for column in states_row]


class TestComposedPlan:
    def test_plan_shape(self):
        plan = composed_plan(7, sub_order=3)
        assert plan.levels == 4
        assert plan.n_blocks == 16
        assert plan.block_size == 8
        assert plan.n_stages == 13
        assert plan.mid_stages == 5

    def test_sub_order_clamped(self):
        assert composed_plan(4, sub_order=99).sub_order == 3
        assert composed_plan(4, sub_order=0).sub_order == 1

    def test_order_below_two_rejected(self):
        with pytest.raises(InvalidParameterError):
            composed_plan(1)

    def test_plan_cached(self):
        before = cache_stats()["composed"]
        composed_plan(6, sub_order=3)
        composed_plan(6, sub_order=3)
        after = cache_stats()["composed"]
        assert after["hits"] > before["hits"]

    def test_cache_stats_exposes_composed(self):
        assert "composed" in cache_stats()


class TestSetupParity:
    @pytest.mark.parametrize("order", [2, 3, 4, 5, 6])
    def test_matches_serial_waksman(self, order, rng):
        rows = _rows(order, 4, rng)
        got = composed_setup_states(order, rows)
        for row, states in zip(rows, got):
            assert _as_nested(states) == setup_states(row)

    @pytest.mark.parametrize("sub_order", [1, 2, 3, 4, 5])
    def test_every_sub_order_byte_identical(self, sub_order, rng):
        rows = _rows(6, 3, rng)
        got = composed_setup_states(6, rows, sub_order=sub_order)
        for row, states in zip(rows, got):
            assert _as_nested(states) == setup_states(row)

    @pytest.mark.parametrize("chunk_blocks", [1, 2, 7, 64])
    def test_chunking_invisible_in_output(self, chunk_blocks, rng):
        rows = _rows(6, 3, rng)
        baseline = [_as_nested(s) for s in composed_setup_states(6, rows)]
        chunked = composed_setup_states(6, rows,
                                        chunk_blocks=chunk_blocks)
        assert [_as_nested(s) for s in chunked] == baseline

    def test_scalar_fallback_parity(self, rng, monkeypatch):
        rows = _rows(5, 3, rng)
        baseline = [setup_states(row) for row in rows]
        monkeypatch.setattr(_np_mod, "FORCE_FALLBACK", True)
        got = composed_setup_states(5, rows)
        assert [_as_nested(s) for s in got] == baseline


class TestSelfRouteParity:
    @pytest.mark.parametrize("order", [2, 3, 4, 5, 6])
    def test_matches_scalar_engine(self, order, rng):
        rows = _rows(order, 4, rng, in_f=True) + _rows(order, 4, rng)
        got = composed_self_route(rows, stage_states=True)
        want = batch_self_route(rows, engine="scalar",
                                stage_states=True)
        assert list(got.success_mask) == list(want.success_mask)
        for g, w, ok in zip(got.mappings, want.mappings,
                            got.success_mask):
            if ok:
                assert tuple(g) == tuple(w)

    def test_omega_mode_parity(self, rng):
        rows = _rows(5, 6, rng)
        got = composed_self_route(rows, omega_mode=True)
        want = batch_self_route(rows, engine="scalar", omega_mode=True)
        assert list(got.success_mask) == list(want.success_mask)

    def test_stuck_switch_parity(self, rng):
        rows = _rows(4, 6, rng, in_f=True)
        stuck = {(0, 1): True, (4, 3): False}
        got = composed_self_route(rows, stuck_switches=stuck)
        want = batch_self_route(rows, engine="scalar",
                                stuck_switches=stuck)
        assert list(got.success_mask) == list(want.success_mask)

    def test_membership_parity(self, rng):
        rows = _rows(5, 4, rng, in_f=True) + _rows(5, 4, rng)
        assert list(composed_in_class_f(rows)) == \
            list(batch_in_class_f(rows, engine="scalar"))

    def test_route_with_states_parity(self, rng):
        from repro.accel import batch_route_with_states
        rows = _rows(5, 3, rng)
        states = [setup_states(row) for row in rows]
        got = composed_route_with_states(states, 5)
        want = batch_route_with_states(states, 5, engine="scalar")
        assert [tuple(int(v) for v in m) for m in got.mappings] == \
            [tuple(int(v) for v in m) for m in want.mappings]
        # Waksman states realize exactly the source permutation
        assert [tuple(int(v) for v in m) for m in got.mappings] == \
            [tuple(row) for row in rows]


class TestStreaming:
    def test_chunks_reassemble_to_oracle(self, rng):
        order = 6
        row = random_permutation(1 << order, rng).as_tuple()
        oracle = setup_states(row)
        plan = composed_plan(order)
        n_stages = 2 * order - 1
        half = (1 << order) // 2
        rebuilt = [[None] * half for _ in range(n_stages)]
        for chunk in iter_composed_states(order, row, chunk_blocks=2):
            if chunk.kind == "column":
                rebuilt[chunk.stage] = list(chunk.states)
            else:
                width = plan.block_half
                for b, block_states in enumerate(chunk.states,
                                                 chunk.block_start):
                    for s, column in enumerate(block_states):
                        lo = b * width
                        rebuilt[plan.levels + s][lo:lo + width] = \
                            list(column)
        assert [[int(v) for v in col] for col in rebuilt] == \
            [[int(v) for v in col] for col in oracle]

    def test_block_chunks_carry_sub_perms(self, rng):
        order = 5
        row = random_permutation(1 << order, rng).as_tuple()
        plan = composed_plan(order)
        seen = 0
        for chunk in iter_composed_states(order, row):
            if chunk.kind == "blocks":
                assert chunk.perms is not None
                for sub in chunk.perms:
                    assert sorted(sub) == list(range(plan.block_size))
                seen += len(chunk.states)
        assert seen == plan.n_blocks

    def test_stats_count_blocks_and_chunks(self, rng):
        composed_stats_clear()
        rows = _rows(6, 2, rng)
        composed_setup_states(6, rows, chunk_blocks=2)
        stats = composed_stats()
        assert stats["blocks"] > 0
        assert stats["chunks"] > 0
        assert stats["peak_chunk_bytes"] > 0


class TestEngineIntegration:
    def test_batch_seam_accepts_composed(self, rng):
        rows = _rows(4, 4, rng, in_f=True)
        got = batch_self_route(rows, engine="composed")
        want = batch_self_route(rows, engine="scalar")
        assert list(got.success_mask) == list(want.success_mask)

    def test_setup_seam_accepts_composed(self, rng):
        rows = _rows(4, 2, rng)
        got = batch_setup_states(4, rows, engine="composed")
        assert [_as_nested(s) for s in got] == \
            [setup_states(row) for row in rows]

    def test_registry_spec_is_exec_seam(self):
        spec = registry.require_exec("composed")
        assert spec.name == "composed"
        assert "composed" in registry.SELF_ROUTE_ENGINES

    def test_registry_run_matches_scalar(self, rng):
        rows = _rows(3, 5, rng)
        run = registry.run_engine("composed", rows, 3)
        oracle = registry.run_engine("scalar", rows, 3)
        assert run.success == oracle.success
        assert run.mappings == oracle.mappings
        assert run.states == oracle.states

    def test_auto_picks_composed_at_threshold(self):
        threshold = composed_order_threshold()
        assert resolve_engine("auto", order=threshold,
                              batch_size=1) == "composed"
        below = resolve_engine("auto", order=threshold - 1,
                               batch_size=64)
        assert below != "composed"

    def test_threshold_env_override(self, monkeypatch):
        monkeypatch.setenv("BENES_COMPOSED_ORDER", "6")
        assert composed_order_threshold() == 6
        assert resolve_engine("auto", order=6,
                              batch_size=1) == "composed"

    def test_threshold_env_garbage_ignored(self, monkeypatch):
        monkeypatch.setenv("BENES_COMPOSED_ORDER", "soon")
        assert composed_order_threshold() == \
            _np_mod.DEFAULT_COMPOSED_ORDER

    def test_obs_provider_registered(self):
        from repro import obs
        snapshot = obs.registry().snapshot()
        providers = snapshot.get("providers", {})
        assert "accel.composed_stats" in providers
        assert set(providers["accel.composed_stats"]) >= {
            "blocks", "chunks", "peak_chunk_bytes"}


class TestCliOrderMode:
    def test_route_order_streams_and_checks(self, capsys):
        from repro.cli import main
        assert main(["route", "--order", "8",
                     "--engine", "composed"]) == 0
        out = capsys.readouterr().out
        assert "composed" in out
        assert "oracle parity" in out
        assert "-> OK" in out

    def test_route_order_rejects_omega(self):
        from repro.cli import main
        with pytest.raises(SystemExit):
            main(["route", "--order", "8", "--omega"])

    def test_route_rejects_both_forms(self):
        from repro.cli import main
        with pytest.raises(SystemExit):
            main(["route", "3,2,1,0", "--order", "8"])

    def test_bench_scaling_suite(self, capsys):
        from repro.cli import main
        assert main(["bench", "--suite", "scaling",
                     "--orders", "6,8", "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "scaling sweep" in out
        assert "composed" in out


class TestScalingBenchmark:
    def test_cells_carry_engine_and_rss(self):
        from repro.accel.benchmark import measure_scaling_cell
        cell = measure_scaling_cell(6, "composed", repeats=1)
        assert cell["engine"] == "composed"
        assert cell["peak_rss_kb"] > 0
        assert cell["peak_chunk_bytes"] > 0
        assert cell["seconds"] >= 0.0

    def test_unknown_mode_rejected(self):
        from repro.accel.benchmark import measure_scaling_cell
        with pytest.raises(InvalidParameterError):
            measure_scaling_cell(6, "quantum")

    def test_report_annotates_speedups(self):
        from repro.accel.benchmark import (
            format_scaling_table,
            run_scaling_benchmark,
            scaling_speedup,
        )
        report = run_scaling_benchmark(orders=(6,), repeats=1)
        assert report["rss_isolated"] is False
        composed = [cell for cell in report["cells"]
                    if cell["mode"] == "composed"]
        assert composed and "speedup_vs_serial" in composed[0]
        assert scaling_speedup(report) is not None
        assert "composed" in format_scaling_table(report)

    def test_producer_report_schema(self, tmp_path):
        # the committed BENCH_scaling.json must satisfy the guard's
        # schema expectations: every cell carries an engine column
        import pathlib
        path = pathlib.Path(__file__).resolve().parent.parent / \
            "BENCH_scaling.json"
        if not path.exists():
            pytest.skip("no committed BENCH_scaling.json")
        report = json.loads(path.read_text())
        assert report["rss_isolated"] is True
        assert all("engine" in cell for cell in report["cells"])


class TestVerifyAdapter:
    def test_check_composed_clean_on_random_rows(self, rng):
        from repro.verify.fuzzer import check_composed
        rows = _rows(5, 4, rng)
        assert check_composed(rows, 5) == []

    def test_verify_families_include_composed(self):
        from repro.verify import VerifyConfig
        assert "composed" in VerifyConfig().families


class TestAutotunePersistence:
    def test_probe_results_persist_and_reload(self, tmp_path,
                                              monkeypatch):
        from repro.accel import autotune
        cache = tmp_path / "autotune.json"
        monkeypatch.setenv("BENES_AUTOTUNE_CACHE", str(cache))
        autotune.autotune_clear(persistent=True)
        monkeypatch.setattr(_np_mod, "FORCE_FALLBACK", True)
        autotune.choose_engine(4, 64)
        assert cache.exists()
        payload = json.loads(cache.read_text())
        assert "4" in payload["orders"]
        # a fresh process-local table reloads from disk, no re-probe
        autotune.autotune_clear()
        monkeypatch.setattr(autotune, "_measure",
                            lambda order: pytest.fail("re-probed"))
        autotune.choose_engine(4, 64)
        assert 4 in autotune.crossover_table()
        autotune.autotune_clear(persistent=True)

    def test_inf_crossover_round_trips(self, tmp_path, monkeypatch):
        from repro.accel import autotune
        cache = tmp_path / "autotune.json"
        monkeypatch.setenv("BENES_AUTOTUNE_CACHE", str(cache))
        autotune.autotune_clear(persistent=True)
        with autotune._LOCK:
            autotune._TABLE[9] = {"scalar_per_item": 1.0,
                                  "bitslice_overhead": 1.0,
                                  "bitslice_per_item": 2.0,
                                  "crossover": float("inf")}
            autotune._persist_locked()
        autotune.autotune_clear()
        with autotune._LOCK:
            autotune._load_disk_locked()
        assert autotune._TABLE[9]["crossover"] == float("inf")
        autotune.autotune_clear(persistent=True)

    def test_off_disables_persistence(self, monkeypatch):
        from repro.accel import autotune
        monkeypatch.setenv("BENES_AUTOTUNE_CACHE", "off")
        assert autotune.autotune_cache_path() is None

    def test_corrupt_cache_ignored(self, tmp_path, monkeypatch):
        from repro.accel import autotune
        cache = tmp_path / "autotune.json"
        cache.write_text("{not json")
        monkeypatch.setenv("BENES_AUTOTUNE_CACHE", str(cache))
        monkeypatch.setattr(_np_mod, "FORCE_FALLBACK", True)
        autotune.autotune_clear()
        assert autotune.choose_engine(4, 64) in ("scalar",
                                                 "bitslice")
        autotune.autotune_clear()


class TestScalingGuard:
    def _guard(self):
        import importlib.util
        import pathlib
        path = pathlib.Path(__file__).resolve().parent.parent / \
            "tools" / "check_bench_regression.py"
        spec = importlib.util.spec_from_file_location("benchguard",
                                                      path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_missing_engine_column_fails_clearly(self, tmp_path,
                                                 capsys):
        guard = self._guard()
        path = tmp_path / "BENCH_scaling.json"
        path.write_text(json.dumps({
            "rss_isolated": True,
            "cells": [{"order": 14, "mode": "composed",
                       "seconds": 1.0}],
        }))
        assert guard._check_scaling_baseline(path) is False
        out = capsys.readouterr().out
        assert "no 'engine' column" in out
        assert "KeyError" not in out

    def test_absent_report_skips(self, tmp_path, capsys):
        guard = self._guard()
        assert guard._check_scaling_baseline(
            tmp_path / "nope.json") is True
        assert "skip" in capsys.readouterr().out

    def test_rss_growth_guarded(self, tmp_path):
        guard = self._guard()
        path = tmp_path / "BENCH_scaling.json"
        cells = [
            {"order": 14, "mode": "composed", "engine": "composed",
             "seconds": 0.01, "speedup_vs_serial": 9.0,
             "peak_rss_kb": 1000},
            {"order": 18, "mode": "composed", "engine": "composed",
             "seconds": 0.1, "peak_rss_kb": 1900},
        ]
        path.write_text(json.dumps({"rss_isolated": True,
                                    "cells": cells}))
        assert guard._check_scaling_baseline(path) is True
        cells[1]["peak_rss_kb"] = 40000  # 40x blowup
        path.write_text(json.dumps({"rss_isolated": True,
                                    "cells": cells}))
        assert guard._check_scaling_baseline(path) is False
