"""Unit tests for the bit-field notation helpers."""

import pytest

from repro.core import bits
from repro.errors import NotAPowerOfTwoError


class TestBit:
    def test_extracts_each_position(self):
        value = 0b10110
        assert [bits.bit(value, j) for j in range(5)] == [0, 1, 1, 0, 1]

    def test_positions_beyond_width_are_zero(self):
        assert bits.bit(0b101, 10) == 0

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            bits.bit(5, -1)


class TestBitsOfFromBits:
    def test_roundtrip(self):
        for value in range(64):
            assert bits.from_bits(bits.bits_of(value, 6)) == value

    def test_msb_first_order(self):
        assert bits.bits_of(0b110, 3) == (1, 1, 0)

    def test_from_bits_rejects_non_binary(self):
        with pytest.raises(ValueError):
            bits.from_bits((1, 2, 0))

    def test_width_zero(self):
        assert bits.bits_of(0, 0) == ()
        assert bits.from_bits(()) == 0

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            bits.bits_of(3, -1)


class TestBitSegment:
    def test_paper_example(self):
        # paper: i = 101101 -> (i)_{5..3} = 101
        assert bits.bit_segment(0b101101, 5, 3) == 0b101

    def test_single_bit_equals_bit(self):
        for value in (0, 5, 0b101101):
            for j in range(6):
                assert bits.bit_segment(value, j, j) == bits.bit(value, j)

    def test_full_width_identity(self):
        assert bits.bit_segment(0b1011, 3, 0) == 0b1011

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            bits.bit_segment(5, 1, 2)
        with pytest.raises(ValueError):
            bits.bit_segment(5, 2, -1)


class TestSetFlipComplement:
    def test_set_bit(self):
        assert bits.set_bit(0b000, 1, 1) == 0b010
        assert bits.set_bit(0b111, 1, 0) == 0b101

    def test_set_bit_idempotent(self):
        assert bits.set_bit(0b010, 1, 1) == 0b010

    def test_set_bit_rejects_bad_value(self):
        with pytest.raises(ValueError):
            bits.set_bit(0, 0, 2)

    def test_flip_bit_is_cube_neighbor(self):
        # PE(i) <-> PE(i^{(b)}): involution, differs only in bit b
        for i in range(16):
            for b in range(4):
                j = bits.flip_bit(i, b)
                assert bits.flip_bit(j, b) == i
                assert i ^ j == 1 << b

    def test_complement(self):
        assert bits.complement(0b0110, 4) == 0b1001
        for i in range(16):
            assert bits.complement(bits.complement(i, 4), 4) == i


class TestReverseRotate:
    def test_reverse_examples(self):
        assert bits.reverse_bits(0b110, 3) == 0b011
        assert bits.reverse_bits(0b001, 3) == 0b100

    def test_reverse_involution(self):
        for n in (1, 3, 5):
            for i in range(1 << n):
                assert bits.reverse_bits(bits.reverse_bits(i, n), n) == i

    def test_rotate_left_is_perfect_shuffle(self):
        # shuffle sends i to 2i mod (N-1)-ish: check against definition
        n = 4
        for i in range((1 << n) - 1):
            assert bits.rotate_left(i, n) == (2 * i) % ((1 << n) - 1) or \
                i == 0
        assert bits.rotate_left((1 << n) - 1, n) == (1 << n) - 1

    def test_rotate_inverse_pair(self):
        for n in (1, 2, 5):
            for i in range(1 << n):
                assert bits.rotate_right(bits.rotate_left(i, n), n) == i

    def test_rotate_by_width_is_identity(self):
        for i in range(32):
            assert bits.rotate_left(i, 5, 5) == i
            assert bits.rotate_right(i, 5, 5) == i

    def test_rotate_zero_width_rejected(self):
        with pytest.raises(ValueError):
            bits.rotate_left(1, 0)


class TestInterleave:
    def test_example(self):
        # r = 11, c = 00 -> r1 c1 r0 c0 = 1010
        assert bits.interleave_bits(0b11, 0b00, 2) == 0b1010

    def test_roundtrip(self):
        for q in (1, 2, 3):
            for r in range(1 << q):
                for c in range(1 << q):
                    i = bits.interleave_bits(r, c, q)
                    assert bits.deinterleave_bits(i, q) == (r, c)

    def test_interleave_is_bijection(self):
        q = 3
        seen = {
            bits.interleave_bits(r, c, q)
            for r in range(1 << q) for c in range(1 << q)
        }
        assert seen == set(range(1 << (2 * q)))


class TestPowersOfTwo:
    def test_is_power_of_two(self):
        assert all(bits.is_power_of_two(1 << k) for k in range(10))
        assert not any(bits.is_power_of_two(x) for x in (0, -2, 3, 6, 12))

    def test_log2_exact(self):
        for k in range(12):
            assert bits.log2_exact(1 << k) == k

    def test_log2_exact_rejects(self):
        for bad in (0, 3, -4, 6):
            with pytest.raises(NotAPowerOfTwoError):
                bits.log2_exact(bad)


class TestPopcount:
    def test_values(self):
        assert bits.popcount(0) == 0
        assert bits.popcount(0b1011) == 3

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            bits.popcount(-1)
