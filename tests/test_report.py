"""Unit tests for the consolidated reproduction report."""

import pytest

from repro.analysis import REPORT_SECTIONS, generate_report


class TestSections:
    def test_all_sections_render(self):
        report = generate_report()
        for name in REPORT_SECTIONS:
            assert name in report

    def test_single_section(self):
        report = generate_report(["FIG5"])
        assert "FIG5" in report
        assert "FIG4" not in report
        assert "success: False" in report

    def test_unknown_section_rejected(self):
        with pytest.raises(KeyError):
            generate_report(["FIG99"])

    def test_deterministic_given_seed(self):
        assert generate_report(["CLM-SIMD"], seed=7) == (
            generate_report(["CLM-SIMD"], seed=7)
        )


class TestContent:
    def test_fig1_counts(self):
        body = generate_report(["FIG1"])
        assert "switches=  9728" in body  # n=10

    def test_fig4_succeeds_and_fig5_fails(self):
        body = generate_report(["FIG4", "FIG5"])
        assert "success: True" in body
        assert "success: False" in body

    def test_fig6_spotcheck(self):
        body = generate_report(["FIG6"])
        assert "iteration bits b: 0, 1, 2, 1, 0" in body

    def test_table1_rows(self):
        body = generate_report(["TAB1"])
        for name in ("matrix transpose", "bit reversal",
                     "shuffled row major"):
            assert name in body

    def test_simd_route_counts(self):
        body = generate_report(["CLM-SIMD"])
        # the n=8 row: CCC 15, PSC 29, MCC 104
        assert "15" in body and "29" in body and "104" in body

    def test_rich_includes_f4(self):
        assert "133488540928" in generate_report(["CLM-RICH"])

    def test_setup_shows_zero_for_self_routing(self):
        body = generate_report(["CLM-SETUP"])
        assert "self-routing steps" in body
