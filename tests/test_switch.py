"""Unit tests for the binary switch (Figs. 2 and 3)."""

import pytest

from repro.core.switch import (
    CROSS,
    STRAIGHT,
    BinarySwitch,
    Signal,
    SwitchState,
)
from repro.errors import SwitchStateError


class TestSwitchState:
    def test_values_match_paper(self):
        assert int(STRAIGHT) == 0
        assert int(CROSS) == 1

    def test_invert(self):
        assert ~STRAIGHT == CROSS
        assert ~CROSS == STRAIGHT


class TestExternalControl:
    def test_straight_passes_through(self):
        sw = BinarySwitch(STRAIGHT)
        assert sw.transfer("a", "b") == ("a", "b")

    def test_cross_exchanges(self):
        sw = BinarySwitch(CROSS)
        assert sw.transfer("a", "b") == ("b", "a")

    def test_set_state_accepts_ints(self):
        sw = BinarySwitch()
        sw.set_state(1)
        assert sw.state is CROSS
        sw.set_state(0)
        assert sw.state is STRAIGHT

    def test_set_state_rejects_other(self):
        with pytest.raises(SwitchStateError):
            BinarySwitch().set_state(2)


class TestSelfRouting:
    def test_state_from_upper_tag_bit(self):
        # Fig. 3: bit b of the UPPER input's tag decides the state.
        for b in range(3):
            for tag in range(8):
                sw = BinarySwitch()
                up = Signal(tag=tag)
                low = Signal(tag=7 - tag if 7 - tag != tag else (tag + 1) % 8)
                sw.self_route(up, low, b)
                assert int(sw.state) == (tag >> b) & 1

    def test_lower_tag_ignored(self):
        sw1, sw2 = BinarySwitch(), BinarySwitch()
        up = Signal(tag=0b010)
        sw1.self_route(up, Signal(tag=0), 1)
        sw2.self_route(up, Signal(tag=7), 1)
        assert sw1.state == sw2.state == CROSS

    def test_routing_moves_signals(self):
        sw = BinarySwitch()
        up, low = Signal(tag=1, payload="u"), Signal(tag=0, payload="l")
        out_up, out_low = sw.self_route(up, low, 0)  # bit0 of 1 -> cross
        assert out_up.payload == "l" and out_low.payload == "u"

    def test_omega_bit_forces_straight(self):
        sw = BinarySwitch()
        up = Signal(tag=0b111, omega=True)
        low = Signal(tag=0b000, omega=True)
        out = sw.self_route(up, low, 0, force_straight_on_omega=True)
        assert sw.state is STRAIGHT
        assert out == (up, low)

    def test_omega_bit_ignored_without_flag(self):
        sw = BinarySwitch()
        up = Signal(tag=0b111, omega=True)
        sw.self_route(up, Signal(tag=0), 0)
        assert sw.state is CROSS


class TestSignal:
    def test_defaults(self):
        sig = Signal(tag=3)
        assert sig.payload is None and not sig.omega and sig.source is None

    def test_frozen(self):
        sig = Signal(tag=3)
        with pytest.raises(AttributeError):
            sig.tag = 4

    def test_repr_compact(self):
        assert repr(Signal(tag=3)) == "Signal(tag=3)"
        assert "payload" in repr(Signal(tag=3, payload="x"))
