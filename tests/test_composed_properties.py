"""Property tests: block composites route through the composed engine.

Theorems 4-6 build members of ``F(n)`` from smaller class members; the
composed engine (PR: composed-block scaling) decomposes exactly the
other way, peeling B(n) into independent sub-networks.  These
hypothesis tests close the loop at sizes the exhaustive suites never
reach (orders 12-16, N up to 65536): every generated
``blocks_and_within`` / ``hierarchical`` composite must self-route
successfully through ``engine="composed"``, and sampled delivered
terminals must land exactly where the construction says.

The checks deliberately sample: no full switch-state tensor is ever
materialized in the test (``stage_states`` stays off) — the point is
that membership and delivery can be asserted at scale within the
streaming engine's memory envelope.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.accel import batch_self_route
from repro.core import Permutation, random_class_f
from repro.permclasses import JPartition, blocks_and_within, hierarchical

#: Each example costs an O(N) pure-Python construction plus one
#: composed route at N up to 65536, so the budget is a handful of
#: examples per property rather than hypothesis's default hundred.
SETTINGS = settings(max_examples=4, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])

SPOT_CHECKS = 32


def _route_and_spot_check(perm: Permutation, order: int,
                          rng: random.Random) -> None:
    """Route one composite through the composed engine and compare a
    random sample of delivered terminals against the construction."""
    row = perm.as_tuple()
    result = batch_self_route([row], engine="composed")
    assert result.success_mask[0], \
        f"composite of order {order} failed to self-route"
    delivered = result.mappings[0]  # delivered[output] = source input
    for _ in range(SPOT_CHECKS):
        src = rng.randrange(1 << order)
        assert delivered[row[src]] == src


@given(
    order=st.sampled_from([12, 14, 16]),
    j_width=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@SETTINGS
def test_blocks_and_within_routes_composed(order, j_width, seed):
    """Theorem 5 composites (outer in F(j), every G_i in F(order-j))
    at orders 12-16 self-route through the composed engine."""
    rng = random.Random(seed)
    j_bits = tuple(sorted(rng.sample(range(order), j_width)))
    partition = JPartition(order, j_bits)
    sub_order = order - j_width
    outer = random_class_f(j_width, rng)
    # one F(r) member per block, drawn lazily so blocks that a spot
    # check never touches still shape the composite
    block_perms = [random_class_f(sub_order, rng)
                   for _ in range(partition.n_blocks)]
    perm = blocks_and_within(partition, outer, block_perms)
    _route_and_spot_check(perm, order, rng)


@given(
    order=st.sampled_from([12, 14, 16]),
    n_levels=st.integers(min_value=2, max_value=3),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@SETTINGS
def test_hierarchical_routes_composed(order, n_levels, seed):
    """Theorem 6 composites over a random disjoint level cover at
    orders 12-16 self-route through the composed engine."""
    rng = random.Random(seed)
    positions = list(range(order))
    rng.shuffle(positions)
    cuts = sorted(rng.sample(range(1, order), n_levels - 1))
    level_bits = []
    start = 0
    for cut in cuts + [order]:
        level_bits.append(tuple(sorted(positions[start:cut])))
        start = cut
    phi = [random_class_f(len(bits), rng) for bits in level_bits]
    perm = hierarchical(order, level_bits, phi)
    _route_and_spot_check(perm, order, rng)
