"""Unit tests for the array re-alignment permutations."""

import pytest

from repro.core import Permutation, in_class_f
from repro.core.bits import reverse_bits
from repro.errors import SpecificationError
from repro.permclasses.arraymaps import (
    bit_reverse_rows,
    per_column_row_map,
    per_row_column_map,
    row_major_index,
    skew_columns,
    skew_rows,
    three_d_example,
    xor_columns,
    xor_rows,
)


class TestRowMajor:
    def test_index(self):
        assert row_major_index(2, 3, 2) == 11
        assert row_major_index(0, 0, 3) == 0


class TestSkews:
    def test_skew_rows_definition(self):
        q = 2
        perm = skew_rows(q)
        side = 1 << q
        for i in range(side):
            for j in range(side):
                assert perm[row_major_index(i, j, q)] == (
                    row_major_index(i, (i + j) % side, q)
                )

    def test_skew_columns_definition(self):
        q = 2
        perm = skew_columns(q)
        side = 1 << q
        for i in range(side):
            for j in range(side):
                assert perm[row_major_index(i, j, q)] == (
                    row_major_index((i + j) % side, j, q)
                )

    def test_skews_in_f(self):
        for q in (1, 2, 3):
            assert in_class_f(skew_rows(q))
            assert in_class_f(skew_columns(q))

    def test_cannon_alignment_composition_valid(self):
        # skew then un-skew returns the identity (per-row shifts cancel)
        q = 2
        forward = skew_rows(q)
        back = Permutation([
            row_major_index(i, (j - i) % (1 << q), q)
            for i in range(1 << q) for j in range(1 << q)
        ])
        assert forward.then(back).is_identity()


class TestPerLineMaps:
    def test_per_row_column_map(self):
        q = 1
        phi = Permutation((1, 0))
        perm = per_row_column_map(q, phi)
        assert perm.as_tuple() == (1, 0, 3, 2)

    def test_per_column_row_map(self):
        q = 1
        phi = Permutation((1, 0))
        perm = per_column_row_map(q, phi)
        assert perm.as_tuple() == (2, 3, 0, 1)

    def test_size_checked(self):
        with pytest.raises(SpecificationError):
            per_row_column_map(2, Permutation((1, 0)))
        with pytest.raises(SpecificationError):
            per_column_row_map(2, Permutation((1, 0)))

    def test_in_f_when_phi_in_f(self, f_classes, rng):
        for q in (1, 2):
            for _ in range(10):
                phi = rng.choice(f_classes[q])
                assert in_class_f(per_row_column_map(q, phi))
                assert in_class_f(per_column_row_map(q, phi))


class TestXorMaps:
    def test_xor_rows_definition(self):
        q = 2
        perm = xor_rows(q)
        for i in range(4):
            for j in range(4):
                assert perm[row_major_index(i, j, q)] == (
                    row_major_index(i ^ j, j, q)
                )

    def test_xor_maps_are_involutions(self):
        for q in (1, 2, 3):
            assert xor_rows(q).is_involution()
            assert xor_columns(q).is_involution()

    def test_in_f(self):
        for q in (1, 2, 3):
            assert in_class_f(xor_rows(q))
            assert in_class_f(xor_columns(q))


class TestBitReverseRows:
    def test_definition(self):
        q = 2
        perm = bit_reverse_rows(q)
        for i in range(4):
            for j in range(4):
                assert perm[row_major_index(i, j, q)] == (
                    row_major_index(reverse_bits(i, q), j, q)
                )

    def test_in_f(self):
        for q in (1, 2, 3):
            assert in_class_f(bit_reverse_rows(q))


class TestThreeDExample:
    def test_is_permutation_and_in_f(self):
        for dims in ((1, 1, 1), (2, 1, 1), (1, 2, 1), (2, 2, 2)):
            for p in (1, 3):
                perm = three_d_example(*dims, p=p, shift=1)
                assert in_class_f(perm), (dims, p)

    def test_field_mapping(self):
        r, s, t = 2, 2, 2
        p, shift = 3, 1
        perm = three_d_example(r, s, t, p, shift)
        for i in range(1 << r):
            for j in range(1 << s):
                for k in range(1 << t):
                    src = (i << (s + t)) | (j << t) | k
                    dest = perm[src]
                    assert dest >> (s + t) == (i + j + k) % (1 << r)
                    assert (dest >> t) & ((1 << s) - 1) == (
                        (p * j + shift) % (1 << s)
                    )
                    assert dest & ((1 << t) - 1) == (j ^ k) & ((1 << t) - 1)

    def test_rejects_even_p(self):
        with pytest.raises(SpecificationError):
            three_d_example(1, 1, 1, p=2)
