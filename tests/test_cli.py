"""Unit tests for the `benes` command-line interface."""

import pytest

from repro.cli import main


class TestInfo:
    def test_info_prints_structure(self, capsys):
        assert main(["info", "8"]) == 0
        out = capsys.readouterr().out
        assert "N = 8" in out

    def test_info_rejects_non_power_of_two(self):
        from repro.errors import NotAPowerOfTwoError
        with pytest.raises(NotAPowerOfTwoError):
            main(["info", "10"])


class TestCheck:
    def test_classifies_fig5(self, capsys):
        assert main(["check", "1,3,2,0"]) == 0
        out = capsys.readouterr().out
        assert "in F(n)            : False" in out
        assert "in Omega(n)        : True" in out

    def test_reports_bpc_vector(self, capsys):
        main(["check", "3,2,1,0"])
        out = capsys.readouterr().out
        assert "in BPC(n)          : True" in out
        assert "A = (" in out

    def test_parse_error(self):
        with pytest.raises(SystemExit):
            main(["check", "not-a-perm"])


class TestRoute:
    def test_successful_route_exit_zero(self, capsys):
        assert main(["route", "3,2,1,0"]) == 0
        assert "success: True" in capsys.readouterr().out

    def test_failed_route_exit_one_with_hint(self, capsys):
        assert main(["route", "1,3,2,0"]) == 1
        out = capsys.readouterr().out
        assert "Waksman setup realizes: (1, 3, 2, 0)" in out

    def test_omega_flag(self, capsys):
        assert main(["route", "1,3,2,0", "--omega"]) == 0
        assert "success: True" in capsys.readouterr().out


class TestFigures:
    def test_fig4(self, capsys):
        assert main(["fig4"]) == 0
        assert "bit reversal" in capsys.readouterr().out

    def test_fig5(self, capsys):
        assert main(["fig5"]) == 0
        assert "cannot be self-routed" in capsys.readouterr().out

    def test_fig6(self, capsys):
        assert main(["fig6"]) == 0
        out = capsys.readouterr().out
        assert "CCC algorithm" in out
        assert "success: True" in out

    def test_table1(self, capsys):
        assert main(["table1", "16"]) == 0
        out = capsys.readouterr().out
        assert "matrix transpose" in out
        assert "in F: True" in out


class TestPlan:
    def test_plan_fig5(self, capsys):
        assert main(["plan", "1,3,2,0"]) == 0
        out = capsys.readouterr().out
        assert "omega-mode" in out
        assert "Theorem 1 conflict" in out

    def test_plan_shows_two_pass_alternative(self, capsys):
        main(["plan", "1,3,2,0"])
        out = capsys.readouterr().out
        assert "alternatives: two-pass" in out

    def test_plan_bpc(self, capsys):
        assert main(["plan", "0,4,2,6,1,5,3,7"]) == 0
        out = capsys.readouterr().out
        assert "self-routing" in out
        assert "A = (0, 1, 2)" in out


class TestSampleAndCensus:
    def test_sample_outputs_permutations(self, capsys):
        assert main(["sample", "8", "--count", "3", "--seed", "7"]) == 0
        from repro.core import Permutation, in_class_f
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3
        for line in lines:
            perm = Permutation(int(x) for x in line.split(","))
            assert in_class_f(perm)

    def test_census(self, capsys):
        assert main(["census", "4"]) == 0
        out = capsys.readouterr().out
        assert "|F|            : 20" in out
        assert "Omega \\ F      : 4" in out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
