"""Tests for the bit-sliced big-int routing engine
(``repro.accel.bitslice``).

Parity strategy (mirrors ``tests/test_accel.py``):

- exhaustive against the scalar fast path (itself pinned to the
  structural network) for order <= 3, including omega mode, stuck
  switches, stage states, and non-permutation tag vectors;
- hypothesis-randomized for orders 4-6;
- boundary checks: >64-lane batches (multi-word packing), empty
  batches, ragged batches, out-of-range and negative tags, and the
  field-width cap.
"""

from __future__ import annotations

import random
from itertools import islice, permutations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel.bitslice import (
    BitslicePlan,
    bitslice_in_class_f,
    bitslice_plan,
    bitslice_route_with_states,
    bitslice_self_route,
    bitslice_setup_states,
    bitslice_two_pass,
)
from repro.accel.plans import bitslice_plan_cache, cache_stats
from repro.core import random_permutation
from repro.core.fastpath import (
    fast_route_with_states,
    fast_self_route,
    fast_self_route_states,
)
from repro.core.membership import in_class_f
from repro.core.twopass import two_pass_decomposition
from repro.core.waksman import setup_states
from repro.errors import InvalidParameterError, SizeMismatchError


def _assert_full_parity(rows, *, omega_mode=False, stuck_switches=None):
    """Success, mappings, AND states byte-identical to the scalar
    oracle for one batch."""
    result = bitslice_self_route(list(rows), omega_mode=omega_mode,
                                 stuck_switches=stuck_switches,
                                 stage_states=True, stage_data=True)
    for i, row in enumerate(rows):
        ok, delivered, states = fast_self_route_states(
            row, omega_mode=omega_mode, stuck_switches=stuck_switches
        )
        assert result.success_mask[i] is ok or \
            result.success_mask[i] == ok
        assert isinstance(result.success_mask[i], bool)
        assert result.mappings[i] == delivered
        assert result.stage_states[i] == states
        # per-stage cross counts match the recorded states
        for stage, column in enumerate(states):
            assert result.per_stage[stage][i] == sum(column)


class TestSelfRouteParity:
    @pytest.mark.parametrize("order", [1, 2])
    def test_exhaustive(self, order):
        perms = list(permutations(range(1 << order)))
        _assert_full_parity(perms)
        _assert_full_parity(perms, omega_mode=True)

    @pytest.mark.parametrize("order", [1, 2])
    def test_exhaustive_stuck(self, order):
        perms = list(permutations(range(1 << order)))
        half = (1 << order) // 2
        for stage in range(2 * order - 1):
            for index in range(half):
                for state in (0, 1):
                    _assert_full_parity(
                        perms,
                        stuck_switches={(stage, index): state})

    def test_order3_sampled_full(self, rng):
        perms = [random_permutation(8, rng).as_tuple()
                 for _ in range(64)]
        _assert_full_parity(perms)
        _assert_full_parity(perms, omega_mode=True)
        _assert_full_parity(perms, stuck_switches={(2, 1): 1, (4, 0): 0})

    def test_order3_exhaustive_membership(self):
        perms = list(permutations(range(8)))
        mask = bitslice_in_class_f(perms)
        assert all(isinstance(v, bool) for v in mask)
        assert sum(mask) == 11632  # |F(3)|
        result = bitslice_self_route(perms)
        assert mask == result.success_mask

    def test_duplicate_tags(self, rng):
        # non-permutation vectors: the control rule never assumes
        # distinctness
        rows = [[rng.randint(0, 7) for _ in range(8)]
                for _ in range(40)]
        result = bitslice_self_route(rows)
        for i, row in enumerate(rows):
            ok, delivered = fast_self_route(row)
            assert result.success_mask[i] == ok
            assert result.mappings[i] == delivered

    def test_fig5_counterexample(self):
        result = bitslice_self_route([[1, 3, 2, 0]])
        assert result.success_mask == [False]
        assert sorted(result.mappings[0]) == [0, 1, 2, 3]

    @settings(max_examples=25, deadline=None)
    @given(order=st.integers(min_value=4, max_value=6), data=st.data())
    def test_hypothesis_permutations(self, order, data):
        n = 1 << order
        rows = data.draw(st.lists(st.permutations(range(n)),
                                  min_size=1, max_size=5))
        _assert_full_parity(rows)

    @settings(max_examples=25, deadline=None)
    @given(order=st.integers(min_value=4, max_value=6), data=st.data())
    def test_hypothesis_arbitrary_tags(self, order, data):
        n = 1 << order
        rows = data.draw(st.lists(
            st.lists(st.integers(min_value=0, max_value=n - 1),
                     min_size=n, max_size=n),
            min_size=1, max_size=4))
        result = bitslice_self_route(rows)
        for i, row in enumerate(rows):
            ok, delivered = fast_self_route(row)
            assert result.success_mask[i] == ok
            assert result.mappings[i] == delivered

    def test_wide_batch_multiword(self, rng):
        # >64 lanes: packed rows span many machine words
        perms = [random_permutation(16, rng).as_tuple()
                 for _ in range(150)]
        result = bitslice_self_route(perms)
        for i, row in enumerate(perms):
            ok, delivered = fast_self_route(row)
            assert result.success_mask[i] == ok
            assert result.mappings[i] == delivered

    def test_metrics_tap(self):
        perms = list(islice(permutations(range(8)), 48))
        totals = []
        result = bitslice_self_route(perms, stage_data=True,
                                     _stage_totals=totals)
        assert len(totals) == 5
        assert totals == [sum(lane) for lane in result.per_stage]


class TestBoundaries:
    def test_empty_batch(self):
        result = bitslice_self_route([])
        assert result.success_mask == [] and result.mappings == []
        assert bitslice_in_class_f([]) == []
        assert bitslice_route_with_states([], 3).mappings == []
        assert bitslice_two_pass(3, []) == ([], [])

    def test_ragged_batch(self):
        with pytest.raises(SizeMismatchError):
            bitslice_self_route([[0, 1, 2, 3], [0, 1]])

    def test_out_of_range_tag(self):
        with pytest.raises(InvalidParameterError):
            bitslice_self_route([[0, 1, 2, 4]])

    def test_negative_tag(self):
        with pytest.raises(InvalidParameterError):
            bitslice_self_route([[0, 1, 2, -1]])

    def test_non_power_of_two(self):
        from repro.errors import NotAPowerOfTwoError

        with pytest.raises(NotAPowerOfTwoError):
            bitslice_self_route([[0, 1, 2]])

    def test_bad_stuck_switch(self):
        from repro.errors import SwitchStateError

        with pytest.raises(SwitchStateError):
            bitslice_self_route([[0, 1, 2, 3]],
                                stuck_switches={(99, 0): 1})

    def test_field_width_cap(self):
        with pytest.raises(InvalidParameterError):
            BitslicePlan(order=40, lanes=1, value_bits=80)

    def test_plan_widths(self):
        assert bitslice_plan(3, 4, 6).width == 8
        assert bitslice_plan(8, 4, 16).width == 16
        assert bitslice_plan(3, 4, 6) is bitslice_plan(3, 4, 6)

    def test_plan_cache_stats_section(self):
        bitslice_plan_cache().clear()
        bitslice_plan(2, 8, 4)
        stats = cache_stats()["bitslice"]
        assert stats["size"] == 1 and stats["misses"] >= 1


class TestRouteWithStates:
    @pytest.mark.parametrize("order", [1, 2, 3])
    def test_parity(self, order, rng):
        n = 1 << order
        stages = 2 * order - 1
        batch = [
            [[rng.randint(0, 1) for _ in range(n // 2)]
             for _ in range(stages)]
            for _ in range(23)
        ]
        result = bitslice_route_with_states(batch, order,
                                            stage_data=True)
        assert result.success_mask == [True] * len(batch)
        for i, states in enumerate(batch):
            expected = fast_route_with_states(states, order)
            assert result.mappings[i] == expected
            for stage, column in enumerate(states):
                assert result.per_stage[stage][i] == sum(column)

    def test_bad_shape(self):
        with pytest.raises(SizeMismatchError):
            bitslice_route_with_states([[[0, 0]]], 2)


class TestSetupAndTwoPass:
    @pytest.mark.parametrize("order", [1, 2])
    def test_setup_states_exhaustive(self, order):
        perms = list(permutations(range(1 << order)))
        batch = bitslice_setup_states(order, perms)
        for states, p in zip(batch, perms):
            assert states == setup_states(list(p))

    @pytest.mark.parametrize("order", [2, 3, 4])
    def test_two_pass_parity(self, order, rng):
        n = 1 << order
        perms = [random_permutation(n, rng).as_tuple()
                 for _ in range(17)]
        firsts, seconds = bitslice_two_pass(order, perms)
        for first, second, p in zip(firsts, seconds, perms):
            ref_first, ref_second = two_pass_decomposition(list(p))
            assert first == ref_first.as_tuple()
            assert second == ref_second.as_tuple()

    def test_two_pass_wrong_width(self):
        with pytest.raises(SizeMismatchError):
            bitslice_two_pass(3, [[0, 1, 2, 3]])
