"""The ``_np.py`` engine seam: every accel entry point must dispatch
to the engine the caller (or the environment) picked, and every engine
must return value-identical ``BatchRouteResult``s.

Covers the resolution precedence (explicit ``engine=`` keyword >
``FORCE_ENGINE`` monkeypatch seam > ``BENES_ENGINE`` environment
variable > auto), cross-engine value parity for all six public entry
points (exhaustive orders <= 3, hypothesis 4-6), the
``accel.engine_selected`` counter, the measured-crossover auto policy,
and the error contract (unknown names, ``engine="numpy"`` without
NumPy).
"""

from __future__ import annotations

import random
from itertools import permutations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.accel._np as _np_mod
from repro import obs
from repro.accel import (
    ENGINES,
    autotune_clear,
    batch_in_class_f,
    batch_route_two_pass,
    batch_route_with_states,
    batch_self_route,
    batch_setup_states,
    batch_two_pass,
    crossover_table,
    have_numpy,
    resolve_engine,
)
from repro.core import random_permutation
from repro.errors import InvalidParameterError, MissingDependencyError
from repro.planner import plan_batch

needs_numpy = pytest.mark.skipif(not have_numpy(),
                                 reason="NumPy not installed")

PURE_ENGINES = ("scalar", "bitslice")
ALL_ENGINES = tuple(e for e in ENGINES if e != "numpy" or have_numpy())


@pytest.fixture(autouse=True)
def _clean_seams(monkeypatch):
    """No ambient engine steering: tests set FORCE_ENGINE/BENES_ENGINE
    explicitly."""
    monkeypatch.setattr(_np_mod, "FORCE_ENGINE", None)
    monkeypatch.delenv("BENES_ENGINE", raising=False)
    yield


def _norm(result):
    """A BatchRouteResult (any engine) to comparable plain values."""
    out = {
        "success": [bool(v) for v in result.success_mask],
        "mappings": [tuple(int(v) for v in row)
                     for row in result.mappings],
    }
    if result.stage_states is not None:
        out["states"] = [
            tuple(tuple(int(s) for s in col) for col in per_instance)
            for per_instance in result.stage_states
        ]
    if result.per_stage is not None:
        out["per_stage"] = [[int(v) for v in stage]
                            for stage in result.per_stage]
    return out


def _random_states(order, rng, batch):
    n = 1 << order
    return [
        [[rng.randint(0, 1) for _ in range(n // 2)]
         for _ in range(2 * order - 1)]
        for _ in range(batch)
    ]


class TestResolutionPrecedence:
    def test_explicit_keyword_wins(self, monkeypatch):
        monkeypatch.setattr(_np_mod, "FORCE_ENGINE", "scalar")
        monkeypatch.setenv("BENES_ENGINE", "scalar")
        assert resolve_engine("bitslice") == "bitslice"

    def test_force_engine_beats_env(self, monkeypatch):
        monkeypatch.setenv("BENES_ENGINE", "scalar")
        monkeypatch.setattr(_np_mod, "FORCE_ENGINE", "bitslice")
        assert resolve_engine(None) == "bitslice"

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv("BENES_ENGINE", "bitslice")
        assert resolve_engine(None) == "bitslice"
        assert resolve_engine(None, order=8, batch_size=1) == "bitslice"

    def test_auto_prefers_numpy_when_available(self):
        resolved = resolve_engine(None, order=4, batch_size=64)
        if have_numpy():
            assert resolved == "numpy"
        else:
            assert resolved in PURE_ENGINES

    def test_auto_without_numpy_uses_crossover(self, monkeypatch):
        monkeypatch.setattr(_np_mod, "FORCE_FALLBACK", True)
        autotune_clear()
        # tiny batches stay scalar; the probe table drives the rest
        assert resolve_engine(None, order=4, batch_size=1) == "scalar"
        resolved = resolve_engine(None, order=4, batch_size=4096)
        assert resolved in PURE_ENGINES
        table = crossover_table()
        assert 4 in table and "crossover" in table[4]

    def test_setup_kind_never_auto_bitslice(self, monkeypatch):
        monkeypatch.setattr(_np_mod, "FORCE_FALLBACK", True)
        assert resolve_engine(None, order=8, batch_size=4096,
                              kind="setup") == "scalar"

    def test_unknown_engine_raises(self):
        with pytest.raises(InvalidParameterError):
            resolve_engine("fortran")
        with pytest.raises(InvalidParameterError):
            batch_self_route([[0, 1]], engine="fortran")

    def test_unknown_env_engine_raises(self, monkeypatch):
        monkeypatch.setenv("BENES_ENGINE", "fortran")
        with pytest.raises(InvalidParameterError):
            batch_self_route([[0, 1]])

    def test_numpy_engine_without_numpy_raises(self, monkeypatch):
        monkeypatch.setattr(_np_mod, "FORCE_FALLBACK", True)
        with pytest.raises(MissingDependencyError):
            resolve_engine("numpy")
        with pytest.raises(MissingDependencyError):
            batch_self_route([[0, 1]], engine="numpy")


class TestEntryPointParity:
    """Every public accel entry point, every engine, identical values."""

    @pytest.mark.parametrize("order", [1, 2])
    def test_self_route_exhaustive(self, order):
        perms = list(permutations(range(1 << order)))
        results = {
            engine: _norm(batch_self_route(perms, stage_states=True,
                                           engine=engine))
            for engine in ALL_ENGINES
        }
        reference = results["scalar"]
        for engine, result in results.items():
            assert result == reference, engine

    @needs_numpy
    @pytest.mark.parametrize("order", [2, 3])
    def test_stage_data_numpy_vs_bitslice(self, order, rng):
        # the scalar loop doesn't produce per-stage cross counts; the
        # two engines that do must agree
        n = 1 << order
        perms = [random_permutation(n, rng).as_tuple()
                 for _ in range(13)]
        numpy_result = batch_self_route(perms, stage_data=True,
                                        engine="numpy")
        bits_result = batch_self_route(perms, stage_data=True,
                                       engine="bitslice")
        assert [[int(v) for v in stage]
                for stage in numpy_result.per_stage] == \
            [[int(v) for v in stage]
             for stage in bits_result.per_stage]

    @pytest.mark.parametrize("order", [1, 2, 3])
    def test_all_entry_points(self, order, rng):
        n = 1 << order
        perms = [random_permutation(n, rng).as_tuple()
                 for _ in range(19)]
        states = _random_states(order, rng, 11)
        reference = None
        for engine in ALL_ENGINES:
            bundle = {
                "route": _norm(batch_self_route(
                    perms, stage_states=True, engine=engine)),
                "omega": _norm(batch_self_route(
                    perms, omega_mode=True, engine=engine)),
                "stuck": _norm(batch_self_route(
                    perms, stuck_switches={(order - 1, 0): 1},
                    engine=engine)),
                "membership": [bool(v) for v in
                               batch_in_class_f(perms, engine=engine)],
                "with_states": _norm(batch_route_with_states(
                    states, order, engine=engine)),
                "setup": [
                    [[int(s) for s in col] for col in instance]
                    for instance in batch_setup_states(order, perms,
                                                       engine=engine)
                ],
                "two_pass": [
                    [tuple(int(v) for v in row) for row in half]
                    for half in batch_two_pass(order, perms,
                                               engine=engine)
                ],
                "route_two_pass": _norm(batch_route_two_pass(
                    order, perms, engine=engine)),
            }
            if reference is None:
                reference = bundle
            else:
                for key, value in bundle.items():
                    assert value == reference[key], (engine, key)

    @settings(max_examples=15, deadline=None)
    @given(order=st.integers(min_value=4, max_value=6), data=st.data())
    def test_self_route_hypothesis(self, order, data):
        n = 1 << order
        rows = data.draw(st.lists(st.permutations(range(n)),
                                  min_size=1, max_size=4))
        results = {
            engine: _norm(batch_self_route(rows, stage_states=True,
                                           engine=engine))
            for engine in ALL_ENGINES
        }
        reference = results["scalar"]
        for engine, result in results.items():
            assert result == reference, engine

    def test_result_types_follow_engine(self):
        perms = [(0, 1, 2, 3), (1, 3, 2, 0)]
        for engine in PURE_ENGINES:
            result = batch_self_route(perms, engine=engine)
            assert isinstance(result.success_mask, list)
            assert isinstance(result.mappings, list)
        if have_numpy():
            import numpy as np

            result = batch_self_route(perms, engine="numpy")
            assert isinstance(result.success_mask, np.ndarray)

    def test_env_var_steers_entry_points(self, monkeypatch):
        perms = [(1, 3, 2, 0)]
        monkeypatch.setenv("BENES_ENGINE", "bitslice")
        result = batch_self_route(perms)
        assert isinstance(result.success_mask, list)
        assert result.success_mask == [False]

    def test_plan_batch_engine_kwarg(self, rng):
        perms = [random_permutation(8, rng).as_tuple()
                 for _ in range(9)]
        plans = {
            engine: plan_batch(perms, engine=engine)
            for engine in ALL_ENGINES
        }
        reference = plans["scalar"]
        for engine, batch in plans.items():
            assert [p.in_f for p in batch] == \
                [p.in_f for p in reference], engine
            assert [p.network_strategy for p in batch] == \
                [p.network_strategy for p in reference], engine


class TestEngineSelectedCounter:
    @pytest.fixture(autouse=True)
    def _clean_obs(self):
        obs.disable()
        obs.reset()
        yield
        obs.disable()
        obs.reset()

    def test_counter_labels(self):
        obs.enable()
        perms = [(0, 1, 2, 3), (1, 3, 2, 0)]
        batch_self_route(perms, engine="scalar")
        batch_self_route(perms, engine="bitslice")
        batch_in_class_f(perms, engine="bitslice")
        counters = obs.snapshot()["counters"]
        assert counters["accel.engine_selected.scalar"] == 1
        assert counters["accel.engine_selected.bitslice"] == 2
        if have_numpy():
            batch_self_route(perms, engine="numpy")
            counters = obs.snapshot()["counters"]
            assert counters["accel.engine_selected.numpy"] == 1
