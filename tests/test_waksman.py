"""Unit tests for the external (looping/Waksman) Benes setup."""

from itertools import permutations

import pytest

from repro.core import BenesNetwork, Permutation, random_permutation
from repro.core.waksman import looping_assignment, setup_states
from repro.errors import InvalidPermutationError


class TestLoopingAssignment:
    def test_input_pairs_split(self):
        for p in permutations(range(8)):
            sub = looping_assignment(p)
            for i in range(4):
                assert sub[2 * i] != sub[2 * i + 1]
            break  # structure identical; one exhaustive case below

    def test_output_pairs_split_exhaustive_n2(self):
        for p in permutations(range(4)):
            sub = looping_assignment(p)
            inverse = [0] * 4
            for t, d in enumerate(p):
                inverse[d] = t
            for j in range(2):
                assert sub[inverse[2 * j]] != sub[inverse[2 * j + 1]]
                assert sub[2 * j] != sub[2 * j + 1]

    def test_assignment_is_binary(self, rng):
        p = random_permutation(32, rng)
        assert set(looping_assignment(list(p))) <= {0, 1}


class TestSetupStates:
    def test_realizes_all_permutations_exhaustively_n2(self):
        net = BenesNetwork(2)
        for p in permutations(range(4)):
            states = setup_states(p)
            realized = net.route_with_states(states).realized
            assert realized == Permutation(p), p

    @pytest.mark.parametrize("order", [1, 2, 3, 4, 5, 6, 7])
    def test_realizes_random_permutations(self, order, rng):
        net = BenesNetwork(order)
        for _ in range(10):
            p = random_permutation(1 << order, rng)
            states = setup_states(p)
            assert net.route_with_states(states).realized == p

    def test_realizes_fig5_counterexample(self):
        # the whole point: permutations outside F still work externally
        net = BenesNetwork(2)
        states = setup_states([1, 3, 2, 0])
        assert net.route_with_states(states).realized == (1, 3, 2, 0)

    def test_state_shape_matches_network(self):
        net = BenesNetwork(4)
        states = setup_states(list(range(16)))
        assert len(states) == net.n_stages
        assert all(len(col) == net.n_terminals // 2 for col in states)

    def test_identity_setup_uses_straight_last_column(self):
        states = setup_states(list(range(8)))
        assert all(s == 0 for s in states[-1])

    def test_rejects_non_permutation(self):
        with pytest.raises(InvalidPermutationError):
            setup_states([0, 0, 1, 2])

    def test_b1(self):
        assert setup_states([0, 1]) == [[0]]
        assert setup_states([1, 0]) == [[1]]

    def test_payloads_travel_with_setup(self, rng):
        net = BenesNetwork(3)
        p = random_permutation(8, rng)
        result = net.route_with_states(setup_states(p),
                                       payloads=list("abcdefgh"))
        routed = result.payloads
        for i in range(8):
            assert routed[p[i]] == "abcdefgh"[i]
