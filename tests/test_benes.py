"""Unit tests for the self-routing Benes network."""

import random

import pytest

from repro.core import BenesNetwork, Permutation, random_permutation
from repro.core.bits import reverse_bits
from repro.errors import (
    RoutingError,
    SizeMismatchError,
    SwitchStateError,
)


class TestStructure:
    def test_counts(self):
        net = BenesNetwork(3)
        assert net.n_terminals == 8
        assert net.n_stages == 5
        assert net.n_switches == 20
        assert net.delay == 5

    def test_repr(self):
        assert repr(BenesNetwork(2)) == "BenesNetwork(order=2)"


class TestSelfRouting:
    def test_identity_all_straight(self):
        net = BenesNetwork(3)
        result = net.route(list(range(8)), trace=True)
        assert result.success
        for st in result.stages:
            assert all(int(s) == 0 for s in st.states)

    def test_fig4_bit_reversal_succeeds(self):
        net = BenesNetwork(3)
        perm = [reverse_bits(i, 3) for i in range(8)]
        result = net.route(perm)
        assert result.success
        assert result.realized == Permutation(perm)

    def test_fig5_counterexample_fails(self):
        net = BenesNetwork(2)
        result = net.route([1, 3, 2, 0])
        assert not result.success
        assert set(result.misrouted) == {0, 2}

    def test_payloads_follow_tags(self):
        net = BenesNetwork(3)
        perm = [reverse_bits(i, 3) for i in range(8)]
        result = net.route(perm, payloads=list("abcdefgh"))
        for i in range(8):
            assert result.payloads[perm[i]] == "abcdefgh"[i]

    def test_permute_raises_on_non_f(self):
        net = BenesNetwork(2)
        with pytest.raises(RoutingError):
            net.permute([1, 3, 2, 0], "abcd")

    def test_permute_returns_routed_data(self):
        net = BenesNetwork(2)
        assert net.permute([3, 2, 1, 0], "abcd") == ["d", "c", "b", "a"]

    def test_require_success_flag(self):
        net = BenesNetwork(2)
        with pytest.raises(RoutingError):
            net.route([1, 3, 2, 0], require_success=True)

    def test_size_mismatch_rejected(self):
        net = BenesNetwork(2)
        with pytest.raises(SizeMismatchError):
            net.route([0, 1])
        with pytest.raises(SizeMismatchError):
            net.route([0, 1, 2, 3], payloads=[1, 2])

    def test_result_realized_is_permutation_even_on_failure(self):
        net = BenesNetwork(2)
        result = net.route([1, 3, 2, 0])
        assert sorted(result.realized) == list(range(4))

    def test_trace_has_all_stages(self):
        net = BenesNetwork(3)
        result = net.route(list(range(8)), trace=True)
        assert [st.stage for st in result.stages] == [0, 1, 2, 3, 4]
        assert [st.control_bit for st in result.stages] == [0, 1, 2, 1, 0]

    def test_b1_routes_both_permutations(self):
        net = BenesNetwork(1)
        assert net.route([0, 1]).success
        assert net.route([1, 0]).success


class TestOmegaMode:
    def test_omega_permutation_succeeds_in_omega_mode(self):
        net = BenesNetwork(2)
        assert not net.route([1, 3, 2, 0]).success
        assert net.route([1, 3, 2, 0], omega_mode=True).success

    def test_omega_mode_forces_first_stages_straight(self):
        net = BenesNetwork(3)
        result = net.route([reverse_bits(i, 3) for i in range(8)],
                           omega_mode=True, trace=True)
        for st in result.stages[: net.order - 1]:
            assert all(int(s) == 0 for s in st.states)

    def test_omega_mode_can_fail_non_omega(self):
        # bit reversal on B(3) is not an omega permutation
        from repro.permclasses import is_omega
        perm = [reverse_bits(i, 3) for i in range(8)]
        assert not is_omega(perm)
        net = BenesNetwork(3)
        assert not net.route(perm, omega_mode=True).success


class TestExternalControl:
    def test_straight_states_realize_identity(self):
        net = BenesNetwork(3)
        result = net.route_with_states(net.straight_states())
        assert result.realized.is_identity()

    def test_all_cross_is_a_permutation(self):
        net = BenesNetwork(3)
        states = [[1] * 4 for _ in range(5)]
        result = net.route_with_states(states)
        assert sorted(result.realized) == list(range(8))

    def test_each_single_switch_toggles_two_outputs(self):
        net = BenesNetwork(2)
        base = net.route_with_states(net.straight_states()).realized
        states = net.straight_states()
        states[0][0] = 1
        toggled = net.route_with_states(states).realized
        differing = [i for i in range(4) if base[i] != toggled[i]]
        assert len(differing) == 2

    def test_malformed_states_rejected(self):
        net = BenesNetwork(2)
        with pytest.raises(SwitchStateError):
            net.route_with_states([[0, 0]])  # wrong stage count
        with pytest.raises(SwitchStateError):
            net.route_with_states([[0], [0], [0]])  # wrong width
        bad = net.straight_states()
        bad[1][1] = 7
        with pytest.raises(SwitchStateError):
            net.route_with_states(bad)

    def test_distinct_settings_cover_many_permutations(self, rng):
        # external control reaches permutations outside F
        net = BenesNetwork(2)
        seen = set()
        for _ in range(200):
            states = [[rng.randrange(2) for _ in range(2)]
                      for _ in range(3)]
            seen.add(net.route_with_states(states).realized.as_tuple())
        assert len(seen) == 24  # all of S_4


class TestSharedInstance:
    def test_network_is_stateless_between_routes(self, rng):
        net = BenesNetwork(4)
        p = random_permutation(16, rng)
        first = net.route(p)
        for _ in range(3):
            net.route(random_permutation(16, rng))
        again = net.route(p)
        assert first.success == again.success
        assert first.delivered == again.delivered
