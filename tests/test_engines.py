"""The first-class engine registry (``repro.engines``).

One registration must make an engine visible everywhere at once: the
accel execution seam (``resolve_engine``), the verifier's capability
views, the CLI's ``--engine`` choices, and explicit-name lookups.
These tests pin that contract, the default/opt-in split (the
socket-backed ``serve`` engine must never join a default sweep), and
backward compatibility of the ``repro.verify.engines`` shim.
"""

from __future__ import annotations

import random

import pytest

from repro import engines as registry
from repro.accel._np import resolve_engine
from repro.core import random_permutation
from repro.errors import InvalidParameterError, MissingDependencyError
from repro.verify import engines as verify_shim


@pytest.fixture
def rows(rng):
    return [random_permutation(8, rng).as_tuple() for _ in range(6)]


class TestRegistry:
    def test_builtin_engines_registered(self):
        names = registry.names()
        for expected in ("scalar", "numpy", "fastpath", "batch",
                         "batch-fallback", "bitslice", "sharded",
                         "composed", "serve"):
            assert expected in names

    def test_exec_seam_names_in_registration_order(self):
        assert registry.exec_engine_names() == ("scalar", "numpy",
                                                "bitslice", "composed")

    def test_get_unknown_engine_raises(self):
        with pytest.raises(InvalidParameterError):
            registry.get("warp-drive")

    def test_require_exec_accepts_seam_engines(self):
        assert registry.require_exec("scalar").name == "scalar"
        assert registry.require_exec("bitslice").name == "bitslice"

    def test_require_exec_rejects_non_seam_engines(self):
        # fastpath routes, but it is not a batch execution engine.
        with pytest.raises(InvalidParameterError):
            registry.require_exec("fastpath")
        with pytest.raises(InvalidParameterError):
            registry.require_exec("nope")

    def test_duplicate_registration_requires_replace(self):
        spec = registry.get("scalar")
        with pytest.raises(InvalidParameterError):
            registry.register(registry.EngineSpec(name="scalar"))
        # replace=True restores the original untouched
        assert registry.register(spec, replace=True) is spec
        assert registry.get("scalar") is spec

    def test_scalar_is_first_selfroute_engine(self):
        # The verify fuzzer treats the first view entry as the oracle.
        assert next(iter(registry.SELF_ROUTE_ENGINES)) == "scalar"
        assert next(iter(registry.MEMBERSHIP_ENGINES)) == "theorem1"


class TestDefaultOptInSplit:
    def test_serve_hidden_from_default_views(self):
        assert "serve" not in registry.SELF_ROUTE_ENGINES
        assert "serve" in registry.ALL_SELF_ROUTE_ENGINES
        assert "membership-serve" not in registry.MEMBERSHIP_ENGINES
        assert "membership-serve" in registry.ALL_MEMBERSHIP_ENGINES

    def test_default_selfroute_names_exclude_serve(self):
        names = registry.default_selfroute_names()
        assert "serve" not in names
        assert "scalar" in names

    def test_default_views_subset_of_full_views(self):
        assert set(registry.SELF_ROUTE_ENGINES) <= set(
            registry.ALL_SELF_ROUTE_ENGINES)
        assert set(registry.STATES_ENGINES) <= set(
            registry.ALL_STATES_ENGINES)


class TestLiveRegistration:
    """Registering an engine extends every consumer without any other
    call site changing."""

    def _echo_spec(self, name, **kwargs):
        def adapter(batch, order, *, omega_mode=False,
                    stuck_switches=None):
            return registry.run_engine("scalar", batch, order,
                                       omega_mode=omega_mode,
                                       stuck_switches=stuck_switches)

        return registry.EngineSpec(name=name, selfroute=adapter,
                                   **kwargs)

    def test_new_engine_appears_in_views_and_run_engine(self, rows):
        name = "test-echo"
        registry.register(self._echo_spec(name))
        try:
            assert name in registry.SELF_ROUTE_ENGINES
            assert name in registry.ALL_SELF_ROUTE_ENGINES
            run = registry.run_engine(name, rows, 3)
            oracle = registry.run_engine("scalar", rows, 3)
            assert run.success == oracle.success
            assert run.mappings == oracle.mappings
        finally:
            registry._REGISTRY.pop(name, None)
        assert name not in registry.ALL_SELF_ROUTE_ENGINES

    def test_new_exec_engine_extends_resolve_engine(self, rows):
        name = "test-exec"
        registry.register(self._echo_spec(name, exec_seam=True))
        try:
            assert name in registry.exec_engine_names()
            assert resolve_engine(name) == name
        finally:
            registry._REGISTRY.pop(name, None)
        with pytest.raises(InvalidParameterError):
            resolve_engine(name)

    def test_unavailable_exec_engine_raises_missing_dependency(self):
        name = "test-gated"
        registry.register(registry.EngineSpec(
            name=name, exec_seam=True, available=lambda: False))
        try:
            with pytest.raises(MissingDependencyError):
                registry.require_exec(name)
            assert name not in registry.exec_engine_names(
                available_only=True)
            assert name in registry.exec_engine_names()
        finally:
            registry._REGISTRY.pop(name, None)

    def test_opt_out_engine_stays_out_of_default_sweeps(self, rows):
        name = "test-optout"
        registry.register(self._echo_spec(name, default=False))
        try:
            assert name not in registry.SELF_ROUTE_ENGINES
            assert name not in registry.default_selfroute_names()
            # ...but remains reachable by explicit name
            run = registry.run_engine(name, rows, 3)
            assert run.engine == "scalar"
        finally:
            registry._REGISTRY.pop(name, None)


class TestVerifyShimBackCompat:
    """``repro.verify.engines`` stays a working alias of the registry
    (generated regression tests import from it by module path)."""

    def test_views_are_the_same_objects(self):
        assert (verify_shim.SELF_ROUTE_ENGINES
                is registry.SELF_ROUTE_ENGINES)
        assert (verify_shim.MEMBERSHIP_ENGINES
                is registry.MEMBERSHIP_ENGINES)
        assert verify_shim.STATES_ENGINES is registry.STATES_ENGINES

    def test_run_engine_reexported(self, rows):
        run = verify_shim.run_engine("fastpath", rows, 3)
        oracle = registry.run_engine("scalar", rows, 3)
        assert run.success == oracle.success
        assert run.mappings == oracle.mappings

    def test_toggles_reexported(self, rows):
        with verify_shim.force_engine("bitslice"):
            run = registry.run_engine("batch", rows, 3)
        assert run.success == registry.run_engine("scalar",
                                                  rows, 3).success

    def test_mutant_engine_still_local_to_shim(self, rows):
        mutant = verify_shim.mutant_self_route_engine(2)
        oracle = registry.run_engine("scalar", rows, 3)
        mutated = mutant(list(rows), 3)
        assert mutated.mappings != oracle.mappings


class TestResolveEngineDelegation:
    def test_explicit_engine_validated_by_registry(self):
        with pytest.raises(InvalidParameterError):
            resolve_engine("fastpath")  # real engine, not a seam

    def test_auto_resolves_to_seam_engine(self):
        name = resolve_engine("auto", order=4, batch_size=64)
        assert name in registry.exec_engine_names()


class TestServeEngineAdapter:
    """The opt-in ``serve`` adapter routes through a live daemon and
    must agree with the scalar oracle bit for bit."""

    def test_serve_matches_scalar(self, rng):
        rows = [random_permutation(8, rng).as_tuple()
                for _ in range(5)]
        run = registry.run_engine("serve", rows, 3)
        oracle = registry.run_engine("scalar", rows, 3)
        assert run.engine == "serve"
        assert run.success == oracle.success
        assert run.mappings == oracle.mappings
        assert run.states == oracle.states

    def test_serve_fault_injection_matches_scalar(self, rng):
        rows = [random_permutation(8, rng).as_tuple()
                for _ in range(4)]
        stuck = {(1, 0): True, (3, 2): False}
        run = registry.run_engine("serve", rows, 3,
                                  stuck_switches=stuck)
        oracle = registry.run_engine("scalar", rows, 3,
                                     stuck_switches=stuck)
        assert run.success == oracle.success
        assert run.mappings == oracle.mappings

    def test_membership_serve_matches_theorem1(self, rng):
        rows = [random_permutation(8, rng).as_tuple()
                for _ in range(6)]
        verdicts = registry.run_membership_engine(
            "membership-serve", rows, 3)
        oracle = registry.run_membership_engine("theorem1", rows, 3)
        assert verdicts == oracle
