"""Unit tests for the SIMD machine framework and the four models."""

import pytest

from repro.errors import MachineError, MaskError
from repro.simd import CCC, CIC, MCC, PSC
from repro.simd.machine import SIMDMachine


class TestRegisters:
    def test_set_and_read(self):
        m = SIMDMachine(4)
        m.set_register("R", [10, 20, 30, 40])
        assert m.read("R") == (10, 20, 30, 40)

    def test_wrong_length_rejected(self):
        m = SIMDMachine(4)
        with pytest.raises(MachineError):
            m.set_register("R", [1, 2])

    def test_unknown_register_rejected(self):
        with pytest.raises(MachineError):
            SIMDMachine(4).register("nope")

    def test_has_register(self):
        m = SIMDMachine(2)
        assert not m.has_register("R")
        m.set_register("R", [0, 1])
        assert m.has_register("R")

    def test_zero_pes_rejected(self):
        with pytest.raises(MachineError):
            SIMDMachine(0)


class TestComputeAndMasks:
    def test_elementwise(self):
        m = SIMDMachine(4)
        m.set_register("A", [1, 2, 3, 4])
        m.set_register("B", [10, 20, 30, 40])
        m.elementwise("C", lambda a, b: a + b, "A", "B")
        assert m.read("C") == (11, 22, 33, 44)
        assert m.stats.compute_steps == 1

    def test_elementwise_masked(self):
        m = SIMDMachine(4)
        m.set_register("A", [1, 2, 3, 4])
        m.elementwise("A", lambda a: a * 10, "A",
                      mask=[True, False, True, False])
        assert m.read("A") == (10, 2, 30, 4)

    def test_elementwise_indexed(self):
        m = SIMDMachine(4)
        m.elementwise_indexed("I", lambda i: i * i)
        assert m.read("I") == (0, 1, 4, 9)

    def test_bad_mask_length(self):
        m = SIMDMachine(4)
        m.set_register("A", [0] * 4)
        with pytest.raises(MaskError):
            m.elementwise("A", lambda a: a, "A", mask=[True])

    def test_mask_from_predicate(self):
        m = SIMDMachine(4)
        assert m.mask_from(lambda i, _m: i % 2 == 0) == (
            [True, False, True, False]
        )


class TestCIC:
    def test_permute_one_route(self):
        m = CIC(4)
        m.set_register("R", list("abcd"))
        m.permute(("R",), [2, 3, 0, 1])
        assert m.read("R") == ("c", "d", "a", "b")
        assert m.stats.unit_routes == 1

    def test_permute_size_checked(self):
        m = CIC(4)
        m.set_register("R", list("abcd"))
        with pytest.raises(MachineError):
            m.permute(("R",), [0, 1])


class TestCCC:
    def test_neighbor(self):
        m = CCC(3)
        assert m.neighbor(0b010, 0) == 0b011
        assert m.neighbor(0b010, 2) == 0b110

    def test_dim_bounds(self):
        with pytest.raises(MachineError):
            CCC(3).neighbor(0, 3)

    def test_interchange_swaps_pairs(self):
        m = CCC(2)
        m.set_register("R", list("abcd"))
        m.interchange(("R",), 1, [True, False, False, False])
        assert m.read("R") == ("c", "b", "a", "d")
        assert m.stats.unit_routes == 1

    def test_interchange_cost_model(self):
        m = CCC(2, routes_per_interchange=2)
        m.set_register("R", list("abcd"))
        m.interchange(("R",), 0)
        assert m.stats.unit_routes == 2

    def test_bad_cost_model_rejected(self):
        with pytest.raises(MachineError):
            CCC(2, routes_per_interchange=3)

    def test_route_across_copies(self):
        m = CCC(1)
        m.set_register("R", ["x", "y"])
        m.route_across(("R",), 0, mask=[True, False])
        assert m.read("R") == ("x", "x")


class TestPSC:
    def test_shuffle_unshuffle_inverse(self):
        m = PSC(3)
        m.set_register("R", list(range(8)))
        m.shuffle(("R",))
        m.unshuffle(("R",))
        assert m.read("R") == tuple(range(8))
        assert m.stats.unit_routes == 2

    def test_shuffle_moves_by_rotation(self):
        m = PSC(2)
        m.set_register("R", list("abcd"))
        m.shuffle(("R",))
        # value at PE i moves to rotate_left(i,2): 0->0,1->2,2->1,3->3
        assert m.read("R") == ("a", "c", "b", "d")

    def test_exchange_masked(self):
        m = PSC(2)
        m.set_register("R", list("abcd"))
        m.exchange(("R",), [True, False, False, False])
        assert m.read("R") == ("b", "a", "c", "d")

    def test_n_shuffles_identity(self):
        m = PSC(4)
        m.set_register("R", list(range(16)))
        for _ in range(4):
            m.shuffle(("R",))
        assert m.read("R") == tuple(range(16))


class TestMCC:
    def test_coordinates_roundtrip(self):
        m = MCC(2)
        for pe in range(16):
            r, c = m.coordinates(pe)
            assert m.pe_at(r, c) == pe

    def test_dimension_geometry(self):
        m = MCC(2)  # 4x4, n=4 bits, q=2
        assert m.dimension_geometry(0) == ("horizontal", 1)
        assert m.dimension_geometry(1) == ("horizontal", 2)
        assert m.dimension_geometry(2) == ("vertical", 1)
        assert m.dimension_geometry(3) == ("vertical", 2)
        with pytest.raises(MachineError):
            m.dimension_geometry(4)

    def test_interchange_cost_is_twice_distance(self):
        m = MCC(2)
        m.set_register("R", list(range(16)))
        m.interchange(("R",), 1)  # horizontal distance 2
        assert m.stats.unit_routes == 4

    def test_interchange_swaps_correct_pairs(self):
        m = MCC(1)  # 2x2
        m.set_register("R", list("abcd"))
        m.interchange(("R",), 1, [True, False, False, False])
        # bit 1 is vertical distance 1: swaps (0,2)
        assert m.read("R") == ("c", "b", "a", "d")

    def test_shift_drops_at_edges(self):
        m = MCC(1)
        m.set_register("R", list("abcd"))
        m.shift(("R",), "horizontal", 1)
        # row (a,b) -> (a, a); values pushed off the edge vanish
        assert m.read("R") == ("a", "a", "c", "c")
        assert m.stats.unit_routes == 1

    def test_shift_cost_is_distance(self):
        m = MCC(2)
        m.set_register("R", list(range(16)))
        m.shift(("R",), "vertical", 2)
        assert m.stats.unit_routes == 2

    def test_shift_zero_free(self):
        m = MCC(1)
        m.set_register("R", list("abcd"))
        m.shift(("R",), "vertical", 0)
        assert m.stats.unit_routes == 0

    def test_bad_axis(self):
        m = MCC(1)
        m.set_register("R", list("abcd"))
        with pytest.raises(MachineError):
            m.shift(("R",), "diagonal", 1)


class TestStats:
    def test_reset(self):
        m = CCC(2)
        m.set_register("R", list(range(4)))
        m.interchange(("R",), 0)
        m.stats.reset()
        assert m.stats.unit_routes == 0
        assert m.stats.total_steps == 0

    def test_total_steps(self):
        m = CCC(2)
        m.set_register("R", list(range(4)))
        m.interchange(("R",), 0)
        m.elementwise("R", lambda r: r, "R")
        assert m.stats.total_steps == 2
