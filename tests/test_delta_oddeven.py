"""Unit tests for the delta-network variants and the odd-even merge
sorter."""

from itertools import permutations

import pytest

from repro.core import Permutation, random_permutation
from repro.core.bits import reverse_bits
from repro.errors import SizeMismatchError
from repro.networks import (
    BaselineNetwork,
    BitonicNetwork,
    ButterflyNetwork,
    OddEvenMergeNetwork,
    OmegaNetwork,
)


class TestButterfly:
    def test_cost_model(self):
        net = ButterflyNetwork(4)
        assert net.n_switches == 32
        assert net.delay == 4

    def test_identity_routes(self):
        assert ButterflyNetwork(3).realizes(list(range(8)))

    @pytest.mark.parametrize("order", [1, 2, 3])
    def test_class_size_exhaustive(self, order):
        net = ButterflyNetwork(order)
        hits = sum(
            1 for p in permutations(range(1 << order))
            if net.route(p).success
        )
        assert hits == 1 << (order * (1 << order) // 2)

    def test_class_equals_omega_class(self):
        # the in-place butterfly realizes exactly the omega set
        bf, om = ButterflyNetwork(3), OmegaNetwork(3)
        for p in permutations(range(8)):
            assert bf.route(p).success == om.route(p).success

    def test_payloads_follow(self, rng):
        net = ButterflyNetwork(3)
        # find a realizable permutation and check data movement
        p = Permutation(range(8))
        result = net.route(p, payloads=list("abcdefgh"))
        assert result.payloads == tuple("abcdefgh")


class TestBaseline:
    def test_cost_model(self):
        net = BaselineNetwork(4)
        assert net.n_switches == 32
        assert net.delay == 4

    def test_identity_blocked(self):
        # adjacent inputs to adjacent outputs collide at stage 0
        assert not BaselineNetwork(3).realizes(list(range(8)))

    def test_all_straight_realizes_bit_reversal(self):
        net = BaselineNetwork(3)
        perm = [reverse_bits(i, 3) for i in range(8)]
        result = net.route(perm, trace=True)
        assert result.success
        for st in result.stages:
            assert all(int(s) == 0 for s in st.states)

    @pytest.mark.parametrize("order", [1, 2, 3])
    def test_class_size_matches_omega_but_set_differs(self, order):
        bl, om = BaselineNetwork(order), OmegaNetwork(order)
        bl_set = {
            p for p in permutations(range(1 << order))
            if bl.route(p).success
        }
        om_set = {
            p for p in permutations(range(1 << order))
            if om.route(p).success
        }
        assert len(bl_set) == len(om_set)
        if order >= 2:
            assert bl_set != om_set

    def test_size_mismatch(self):
        with pytest.raises(SizeMismatchError):
            BaselineNetwork(3).route([0, 1])


class TestOddEvenMerge:
    def test_sorts_everything_exhaustive(self):
        for order in (1, 2, 3):
            net = OddEvenMergeNetwork(order)
            for p in permutations(range(1 << order)):
                result = net.route(p)
                assert result.success
                assert result.realized == Permutation(p)

    @pytest.mark.parametrize("order", [4, 5, 6])
    def test_sorts_random(self, order, rng):
        net = OddEvenMergeNetwork(order)
        for _ in range(10):
            assert net.route(
                random_permutation(1 << order, rng)
            ).success

    def test_fewer_comparators_than_bitonic(self):
        for order in (2, 3, 4, 5, 6):
            assert (OddEvenMergeNetwork(order).n_switches
                    < BitonicNetwork(order).n_switches)

    def test_same_delay_as_bitonic(self):
        for order in (1, 3, 5):
            assert (OddEvenMergeNetwork(order).delay
                    == BitonicNetwork(order).delay
                    == order * (order + 1) // 2)

    def test_known_counts(self):
        # classic values: 1, 5, 19, 63, 191, 543
        assert [OddEvenMergeNetwork(o).n_switches
                for o in range(1, 7)] == [1, 5, 19, 63, 191, 543]

    def test_sort_arbitrary_keys(self, rng):
        net = OddEvenMergeNetwork(4)
        keys = [rng.randrange(50) for _ in range(16)]
        assert net.sort(keys) == sorted(keys)

    def test_sort_size_checked(self):
        with pytest.raises(SizeMismatchError):
            OddEvenMergeNetwork(3).sort([1, 2])

    def test_trace_shape(self):
        result = OddEvenMergeNetwork(2).route([3, 2, 1, 0], trace=True)
        assert len(result.stages) == 3
