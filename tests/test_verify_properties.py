"""Hypothesis metamorphic property tests across every engine
generation (orders 2-7).

These are the laws the differential verifier (``repro.verify``) leans
on, pinned as properties so hypothesis explores the input space instead
of a fixed seed:

- cross-engine agreement on arbitrary permutations and tag vectors;
- routing success delivers exactly ``p^-1`` at the outputs;
- omega-mode success coincides with :func:`is_omega`, and
  ``is_inverse_omega(p) == is_omega(p.inverse())`` (the valid inverse
  law — note ``F(n)`` itself is *not* closed under inversion, so no
  test here may assert that);
- Theorem-4 block composites of ``F(r)`` members are in ``F(order)``
  under every membership engine, and within-block composition commutes
  with :func:`within_blocks`;
- the two-pass decomposition's factors compose back to ``p`` and the
  batch decomposition matches the scalar one;
- the Waksman universal setup realizes ``p`` under every
  external-state engine.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Permutation, in_class_f
from repro.core.fastpath import fast_self_route
from repro.core.sampling import random_class_f
from repro.permclasses import is_inverse_omega, is_omega
from repro.permclasses.blocks import JPartition, within_blocks
from repro.verify import (
    check_membership,
    check_selfroute,
    check_twopass,
    check_universal,
)
from repro.verify.engines import MEMBERSHIP_ENGINES, SELF_ROUTE_ENGINES

#: Spawn-pool-free engine subset — property tests run hundreds of
#: examples; worker-pool startup per example would dominate.
ENGINES = {
    name: engine for name, engine in SELF_ROUTE_ENGINES.items()
    if name != "sharded"
}

FEW = settings(max_examples=20, deadline=None)
SOME = settings(max_examples=40, deadline=None)


def perms(order):
    """Strategy: a random permutation of 2^order elements."""
    return st.permutations(list(range(1 << order))).map(Permutation)


@st.composite
def order_and_perm(draw, min_order=2, max_order=7):
    """Strategy: ``(order, Permutation)`` across the order range —
    order 7 is B(7) with 128 terminals and 13 columns."""
    order = draw(st.integers(min_value=min_order, max_value=max_order))
    return order, draw(perms(order))


@st.composite
def order_and_tags(draw, min_order=2, max_order=6):
    """Strategy: ``(order, tag vector)`` — arbitrary destination tags,
    duplicates allowed (legal self-routing input that is not a
    permutation)."""
    order = draw(st.integers(min_value=min_order, max_value=max_order))
    n = 1 << order
    tags = draw(st.lists(st.integers(min_value=0, max_value=n - 1),
                         min_size=n, max_size=n))
    return order, tuple(tags)


@st.composite
def order_and_class_f(draw, min_order=2, max_order=7):
    """Strategy: ``(order, member of F(order))`` via the seeded
    sampler."""
    order = draw(st.integers(min_value=min_order, max_value=max_order))
    seed = draw(st.integers(min_value=0, max_value=2 ** 32 - 1))
    return order, random_class_f(order, random.Random(seed))


@st.composite
def block_scenario(draw, min_order=2, max_order=6):
    """Strategy: a Theorem-4 scenario — a J-partition of ``order`` and
    two independent per-block F(r) assignments."""
    order = draw(st.integers(min_value=min_order, max_value=max_order))
    j_size = draw(st.integers(min_value=1, max_value=order - 1))
    j_bits = draw(st.permutations(list(range(order)))
                  .map(lambda bits: tuple(sorted(bits[:j_size]))))
    partition = JPartition(order, j_bits)
    r = partition.block_order
    seeds = draw(st.tuples(st.integers(min_value=0, max_value=2 ** 32),
                           st.integers(min_value=0, max_value=2 ** 32)))
    blocks_g = [random_class_f(r, random.Random(seeds[0] + b))
                for b in range(partition.n_blocks)]
    blocks_h = [random_class_f(r, random.Random(seeds[1] + b))
                for b in range(partition.n_blocks)]
    return partition, blocks_g, blocks_h


class TestEngineAgreement:
    @FEW
    @given(order_and_perm())
    def test_engines_agree_on_permutations(self, scenario):
        order, p = scenario
        assert check_selfroute([p.as_tuple()], order,
                               engines=ENGINES) == []

    @FEW
    @given(order_and_tags())
    def test_engines_agree_on_raw_tags(self, scenario):
        order, tags = scenario
        engines = {k: v for k, v in ENGINES.items() if k != "scalar"}
        assert check_selfroute([tags], order, engines=engines) == []

    @FEW
    @given(order_and_perm(max_order=5))
    def test_engines_agree_under_single_fault(self, scenario):
        order, p = scenario
        stuck = {(order - 1, 0): 1}  # first destination column
        assert check_selfroute([p.as_tuple()], order,
                               stuck_switches=stuck,
                               engines=ENGINES) == []

    @FEW
    @given(order_and_perm())
    def test_membership_engines_agree(self, scenario):
        order, p = scenario
        assert check_membership([p.as_tuple()], order) == []

    @FEW
    @given(order_and_perm())
    def test_membership_engines_agree_on_inverse(self, scenario):
        # F(n) is NOT closed under inversion, so the inverse's verdict
        # is genuinely independent input — engines must still agree.
        order, p = scenario
        assert check_membership([p.inverse().as_tuple()], order) == []


class TestRoutingLaws:
    @SOME
    @given(order_and_perm())
    def test_success_delivers_inverse(self, scenario):
        order, p = scenario
        ok, delivered = fast_self_route(p.as_tuple())
        assert ok == in_class_f(p)
        if ok:
            assert delivered == p.inverse().as_tuple()

    @SOME
    @given(order_and_class_f())
    def test_class_f_members_route_everywhere(self, scenario):
        order, p = scenario
        row = p.as_tuple()
        for name, engine in ENGINES.items():
            run = engine([row], order)
            assert run.success == (True,), name
            assert run.mappings[0] == p.inverse().as_tuple(), name

    @SOME
    @given(order_and_perm())
    def test_omega_mode_iff_is_omega(self, scenario):
        order, p = scenario
        ok, _ = fast_self_route(p.as_tuple(), omega_mode=True)
        assert ok == is_omega(p)

    @SOME
    @given(order_and_perm())
    def test_inverse_omega_law(self, scenario):
        _, p = scenario
        assert is_inverse_omega(p) == is_omega(p.inverse())


class TestTheorem4Metamorphic:
    @FEW
    @given(block_scenario())
    def test_block_composite_in_class_f(self, scenario):
        partition, blocks_g, _ = scenario
        composite = within_blocks(partition,
                                  lambda b: blocks_g[b])
        row = composite.as_tuple()
        for name, engine in MEMBERSHIP_ENGINES.items():
            assert engine([row], partition.order) == (True,), name

    @FEW
    @given(block_scenario())
    def test_block_composition_commutes(self, scenario):
        # (within_blocks G) then (within_blocks H)
        #   == within_blocks(local G then H).  F(r) is NOT closed
        # under composition, so Theorem 4 only promises membership
        # when every composed block map stays in F(r); either way the
        # membership engines must agree on the verdict.
        partition, blocks_g, blocks_h = scenario
        composed_blocks = [blocks_g[b].then(blocks_h[b])
                           for b in range(partition.n_blocks)]
        g = within_blocks(partition, lambda b: blocks_g[b])
        h = within_blocks(partition, lambda b: blocks_h[b])
        combined = within_blocks(partition,
                                 lambda b: composed_blocks[b])
        assert g.then(h) == combined
        if all(in_class_f(block) for block in composed_blocks):
            assert in_class_f(combined)
        assert check_membership([combined.as_tuple()],
                                partition.order) == []

    @FEW
    @given(block_scenario(max_order=5))
    def test_block_composite_routes_on_all_engines(self, scenario):
        partition, blocks_g, _ = scenario
        composite = within_blocks(partition, lambda b: blocks_g[b])
        row = composite.as_tuple()
        for name, engine in ENGINES.items():
            run = engine([row], partition.order)
            assert run.success == (True,), name


class TestUniversalLaws:
    @FEW
    @given(order_and_perm(max_order=6))
    def test_universal_setup_realizes_p(self, scenario):
        order, p = scenario
        assert check_universal([p.as_tuple()], order) == []

    @FEW
    @given(order_and_perm(max_order=6))
    def test_two_pass_factors_compose(self, scenario):
        order, p = scenario
        assert check_twopass([p.as_tuple()], order) == []

    @FEW
    @given(order_and_perm(max_order=5))
    def test_universal_of_inverse(self, scenario):
        # the valid inverse law on the universal side: setting up p^-1
        # must realize p^-1, independent of p's own F(n) verdict
        order, p = scenario
        inv = p.inverse().as_tuple()
        assert check_universal([inv], order) == []
        assert check_twopass([inv], order) == []
