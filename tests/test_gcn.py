"""Unit tests for the generalized connection network."""

import random
from itertools import product

import pytest

from repro.errors import SizeMismatchError, SpecificationError
from repro.networks import GeneralizedConnectionNetwork


class TestStructure:
    def test_cost_model(self):
        gcn = GeneralizedConnectionNetwork(3)
        # sorter (6 stages x 4) + copy (8*3) + benes (20)
        assert gcn.n_switches == 24 + 24 + 20
        assert gcn.delay == 6 + 3 + 5

    def test_rejects_order_zero(self):
        with pytest.raises(ValueError):
            GeneralizedConnectionNetwork(0)


class TestConnections:
    def test_permutation_request(self):
        gcn = GeneralizedConnectionNetwork(2)
        result = gcn.connect([3, 2, 1, 0], payloads=list("abcd"))
        assert result.outputs == ("d", "c", "b", "a")

    def test_broadcast_one_to_all(self):
        gcn = GeneralizedConnectionNetwork(2)
        result = gcn.connect([2, 2, 2, 2], payloads=list("abcd"))
        assert result.outputs == ("c", "c", "c", "c")

    def test_partial_fanout(self):
        gcn = GeneralizedConnectionNetwork(2)
        result = gcn.connect([0, 0, 3, 3], payloads=list("abcd"))
        assert result.outputs == ("a", "a", "d", "d")

    def test_all_maps_exhaustive_n2(self):
        # every function from 4 outputs to 4 inputs: 4^4 = 256 maps
        gcn = GeneralizedConnectionNetwork(2)
        data = list("abcd")
        for sources in product(range(4), repeat=4):
            result = gcn.connect(list(sources), payloads=data)
            assert result.outputs == tuple(data[s] for s in sources)

    def test_random_maps_larger(self, rng):
        for order in (3, 4, 5):
            gcn = GeneralizedConnectionNetwork(order)
            n = 1 << order
            data = [f"x{i}" for i in range(n)]
            for _ in range(20):
                sources = [rng.randrange(n) for _ in range(n)]
                result = gcn.connect(sources, payloads=data)
                assert result.outputs == tuple(
                    data[s] for s in sources
                )

    def test_identity_uses_self_routing(self):
        gcn = GeneralizedConnectionNetwork(3)
        result = gcn.connect(list(range(8)))
        assert result.permute_self_routed

    def test_some_maps_need_external_setup(self, rng):
        gcn = GeneralizedConnectionNetwork(4)
        needed_external = False
        for _ in range(50):
            sources = [rng.randrange(16) for _ in range(16)]
            if not gcn.connect(sources).permute_self_routed:
                needed_external = True
                break
        assert needed_external

    def test_default_payloads_are_indices(self):
        gcn = GeneralizedConnectionNetwork(2)
        assert gcn.connect([1, 1, 2, 0]).outputs == (1, 1, 2, 0)


class TestValidation:
    def test_wrong_request_count(self):
        with pytest.raises(SizeMismatchError):
            GeneralizedConnectionNetwork(2).connect([0, 1])

    def test_out_of_range_source(self):
        with pytest.raises(SpecificationError):
            GeneralizedConnectionNetwork(2).connect([0, 1, 2, 4])

    def test_wrong_payload_count(self):
        with pytest.raises(SizeMismatchError):
            GeneralizedConnectionNetwork(2).connect(
                [0, 1, 2, 3], payloads=[1, 2]
            )
