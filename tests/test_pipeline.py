"""Unit tests for pipelined operation (Section IV)."""

import pytest

from repro.core import PipelinedBenes, random_permutation
from repro.core.bits import reverse_bits
from repro.errors import SizeMismatchError


def _vectors(order, count, rng):
    """Random class-F tag vectors (drawn from BPC, always in F)."""
    from repro.permclasses import BPCSpec
    return [
        list(BPCSpec.random(order, rng).to_permutation())
        for _ in range(count)
    ]


class TestLatencyThroughput:
    def test_latency_is_2n_minus_1(self, rng):
        for order in (1, 2, 3, 4):
            pipe = PipelinedBenes(order)
            outs = pipe.run(_vectors(order, 3, rng))
            assert all(o.latency == 2 * order - 1 for o in outs)

    def test_one_vector_per_clock_after_fill(self, rng):
        pipe = PipelinedBenes(3)
        outs = pipe.run(_vectors(3, 6, rng))
        emerged = [o.emerged_at for o in outs]
        assert emerged == list(range(emerged[0], emerged[0] + 6))

    def test_vectors_emerge_in_injection_order(self, rng):
        pipe = PipelinedBenes(3)
        outs = pipe.run(_vectors(3, 5, rng))
        entered = [o.entered_at for o in outs]
        assert entered == sorted(entered)


class TestMixedTraffic:
    def test_different_permutations_in_flight(self, rng):
        # Section IV: vectors need not use the same permutation
        pipe = PipelinedBenes(3)
        id8 = list(range(8))
        rev = [7 - i for i in range(8)]
        bitrev = [reverse_bits(i, 3) for i in range(8)]
        outs = pipe.run([id8, rev, bitrev])
        assert [o.result.success for o in outs] == [True] * 3
        assert [tuple(o.result.requested) for o in outs] == [
            tuple(id8), tuple(rev), tuple(bitrev)
        ]

    def test_bubbles_preserve_correctness(self, rng):
        pipe = PipelinedBenes(2)
        first = pipe.clock([0, 1, 2, 3])
        assert first is None
        for _ in range(2):
            pipe.clock()  # bubbles
        out = pipe.clock([3, 2, 1, 0])
        outs = [out] if out else []
        outs += pipe.drain()
        assert len(outs) == 2
        assert all(o.result.success for o in outs)

    def test_payloads_routed_per_vector(self, rng):
        pipe = PipelinedBenes(2)
        outs = pipe.run(
            [[3, 2, 1, 0], [1, 0, 3, 2]],
            payloads=[list("abcd"), list("wxyz")],
        )
        assert list(outs[0].result.payloads) == ["d", "c", "b", "a"]
        assert list(outs[1].result.payloads) == ["x", "w", "z", "y"]

    def test_non_f_vector_reports_failure_not_crash(self):
        pipe = PipelinedBenes(2)
        outs = pipe.run([[1, 3, 2, 0]])
        assert len(outs) == 1 and not outs[0].result.success


class TestBookkeeping:
    def test_occupancy_tracks_in_flight(self, rng):
        pipe = PipelinedBenes(3)
        assert pipe.occupancy == 0
        pipe.clock(list(range(8)))
        pipe.clock(list(range(8)))
        assert pipe.occupancy == 2
        pipe.drain()
        assert pipe.occupancy == 0

    def test_clock_count_advances(self):
        pipe = PipelinedBenes(2)
        pipe.clock()
        pipe.clock(list(range(4)))
        assert pipe.clock_count == 2

    def test_run_payload_length_mismatch(self):
        pipe = PipelinedBenes(2)
        with pytest.raises(SizeMismatchError):
            pipe.run([[0, 1, 2, 3]], payloads=[])

    def test_properties(self):
        pipe = PipelinedBenes(3)
        assert pipe.order == 3
        assert pipe.n_terminals == 8
        assert pipe.latency == 5
