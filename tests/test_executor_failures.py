"""Failure-path tests for the shard executor and the LRU cache.

Pins the two bugfix satellites of the verification PR:

- a shard that raises mid-batch must fail the *whole* dispatch with the
  original exception — never a partial merge, never a silent re-run on
  the thread pool (thread retry is reserved for environment failures:
  pool creation errors and ``BrokenProcessPool``);
- a ``clear()`` landing while a factory build is in flight must win:
  the finished build is handed to its caller but never resurrected into
  the cleared cache, and ``stats()`` snapshots stay internally
  consistent (including the in-flight ``building`` count).
"""

import random
import threading

import pytest

import repro.obs as obs
from repro.accel import _np as _np_seam
from repro.accel import executor as _executor
from repro.accel import have_numpy
from repro.accel.batch import batch_in_class_f, batch_self_route
from repro.accel.lru import LRUCache
from repro.core import in_class_f
from repro.core.permutation import random_permutation

requires_numpy = pytest.mark.skipif(
    not have_numpy(), reason="needs NumPy (process-pool executor path)")


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


@pytest.fixture
def thread_sharding(monkeypatch):
    """Force the executor onto the in-process thread path with a
    threshold low enough that tiny test batches shard."""
    monkeypatch.setattr(_np_seam, "FORCE_FALLBACK", True)
    monkeypatch.setattr(_executor, "SHARD_THRESHOLD", 2)


def _rows(order, batch, seed=0):
    rng = random.Random(seed)
    return [random_permutation(1 << order, rng).as_tuple()
            for _ in range(batch)]


class TestThreadShardFailures:
    def test_shard_exception_propagates(self, thread_sharding,
                                        monkeypatch):
        def boom(payload):
            raise ValueError("shard exploded")

        monkeypatch.setitem(_executor._TASKS, "self_route", boom)
        with pytest.raises(ValueError, match="shard exploded"):
            batch_self_route(_rows(2, 8), parallel=2)

    def test_one_bad_shard_fails_whole_call(self, thread_sharding,
                                            monkeypatch):
        rows = _rows(2, 8, seed=1)
        marker = rows[6]
        original = _executor._TASKS["in_class_f"]

        def poisoned(payload):
            if any(tuple(row) == marker for row in payload[0]):
                raise RuntimeError("poisoned shard")
            return original(payload)

        monkeypatch.setitem(_executor._TASKS, "in_class_f", poisoned)
        # the first shard is healthy — its partial result must not
        # escape as a truncated mask
        with pytest.raises(RuntimeError, match="poisoned shard"):
            batch_in_class_f(rows, parallel=2)

    def test_no_thread_retry_for_shard_failures(self, thread_sharding,
                                                monkeypatch):
        calls = []

        def boom(payload):
            calls.append(len(payload[0]))
            raise ValueError("deterministic failure")

        monkeypatch.setitem(_executor._TASKS, "in_class_f", boom)
        obs.enable()
        with pytest.raises(ValueError):
            batch_in_class_f(_rows(2, 8), parallel=2)
        counters = obs.snapshot()["counters"]
        assert "executor.fallback.calls" not in counters
        # each shard ran at most once — a retry would re-invoke the task
        assert sum(calls) <= 8

    def test_executor_usable_after_failure(self, thread_sharding,
                                           monkeypatch):
        def boom(payload):
            raise ValueError("transient")

        rows = _rows(2, 8, seed=2)
        with monkeypatch.context() as patch:
            patch.setitem(_executor._TASKS, "in_class_f", boom)
            with pytest.raises(ValueError):
                batch_in_class_f(rows, parallel=2)
        mask = batch_in_class_f(rows, parallel=2)
        assert [bool(ok) for ok in mask] == \
            [in_class_f(row) for row in rows]


class TestProcessShardFailures:
    @requires_numpy
    def test_worker_exception_propagates_with_type(self, monkeypatch):
        from repro.errors import NotAPowerOfTwoError

        monkeypatch.setattr(_executor, "SHARD_THRESHOLD", 2)
        obs.enable()
        # width 3 passes the dispatcher untouched and explodes inside
        # the worker's own validation — a genuine remote task failure
        with pytest.raises(NotAPowerOfTwoError):
            _executor.dispatch("in_class_f", [[0, 1, 2]] * 8,
                               parallel=2)
        counters = obs.snapshot()["counters"]
        # a task failure is not an environment failure: no thread retry
        assert "executor.fallback.calls" not in counters

    @requires_numpy
    def test_pool_survives_task_failure(self, monkeypatch):
        from repro.errors import NotAPowerOfTwoError

        monkeypatch.setattr(_executor, "SHARD_THRESHOLD", 2)
        with pytest.raises(NotAPowerOfTwoError):
            _executor.dispatch("in_class_f", [[0, 1, 2]] * 8,
                               parallel=2)
        rows = _rows(2, 8, seed=3)
        mask = batch_in_class_f(rows, parallel=2)
        assert [bool(ok) for ok in mask] == \
            [in_class_f(row) for row in rows]

    @requires_numpy
    def test_pool_creation_failure_degrades_to_threads(self,
                                                       monkeypatch):
        monkeypatch.setattr(_executor, "SHARD_THRESHOLD", 2)

        def no_pool(workers, orders):
            raise OSError("no /dev/shm in this sandbox")

        monkeypatch.setattr(_executor, "_get_process_pool", no_pool)
        obs.enable()
        rows = _rows(2, 8, seed=4)
        mask = batch_in_class_f(rows, parallel=2)
        assert [bool(ok) for ok in mask] == \
            [in_class_f(row) for row in rows]
        counters = obs.snapshot()["counters"]
        assert counters["executor.fallback.calls"] == 1
        assert counters["executor.mode.thread"] == 1


class TestLRUClearRace:
    def test_clear_mid_build_is_not_resurrected(self):
        cache = LRUCache(maxsize=4)
        release = threading.Event()
        built = threading.Event()
        result = {}

        def factory():
            built.set()
            assert release.wait(timeout=5.0)
            return "stale-value"

        def build():
            result["value"] = cache.get_or_build("k", factory)

        worker = threading.Thread(target=build)
        worker.start()
        assert built.wait(timeout=5.0)
        # the factory is in flight: visible as `building`, not as a
        # phantom entry
        stats = cache.stats()
        assert stats == {"hits": 0, "misses": 1, "size": 0,
                         "maxsize": 4, "building": 1}
        cache.clear()
        release.set()
        worker.join(timeout=5.0)
        # the builder still got its value...
        assert result["value"] == "stale-value"
        # ...but the cleared cache stays empty
        assert len(cache) == 0 and "k" not in cache
        assert cache.stats() == {"hits": 0, "misses": 0, "size": 0,
                                 "maxsize": 4, "building": 0}
        # and the next lookup rebuilds from scratch
        assert cache.get_or_build("k", lambda: "fresh") == "fresh"
        assert cache.stats()["size"] == 1

    def test_concurrent_builds_single_winner(self):
        cache = LRUCache(maxsize=4)
        barrier = threading.Barrier(2, timeout=5.0)
        results = [None, None]

        def build(slot):
            def factory():
                barrier.wait()  # both threads are inside their factory
                return f"value-from-{slot}"

            results[slot] = cache.get_or_build("k", factory)

        threads = [threading.Thread(target=build, args=(slot,))
                   for slot in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5.0)
        # both callers observe the same winning value
        assert results[0] == results[1]
        assert len(cache) == 1
        assert cache.get_or_build("k", lambda: "loser") == results[0]

    def test_stats_consistent_under_contention(self):
        cache = LRUCache(maxsize=4)
        lookups_per_thread = 200
        n_threads = 8

        def hammer(seed):
            rng = random.Random(seed)
            for _ in range(lookups_per_thread):
                key = rng.randrange(8)  # 8 keys > maxsize: evictions
                value = cache.get_or_build(key, lambda k=key: k * k)
                assert value == key * key
            if seed % 2:
                cache.clear()

        threads = [threading.Thread(target=hammer, args=(seed,))
                   for seed in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        stats = cache.stats()
        assert stats["building"] == 0
        assert stats["size"] <= stats["maxsize"]
        # counters were cleared at arbitrary points, but the surviving
        # window is still internally consistent
        assert stats["hits"] >= 0 and stats["misses"] >= 0
        assert stats["hits"] + stats["misses"] <= \
            n_threads * lookups_per_thread


class TestShutdownDeltaFlush:
    def test_failed_delta_flush_is_counted(self, monkeypatch):
        # regression: a broken pool raising during the best-effort
        # metrics flush at shutdown was swallowed silently; the lost
        # delta must bump executor.delta_flush_failed
        class _BrokenPool:
            def __init__(self):
                self.shutdowns = []

            def submit(self, fn, *args):
                raise RuntimeError("pool is broken")

            def shutdown(self, wait=True):
                self.shutdowns.append(wait)

        pool = _BrokenPool()
        monkeypatch.setattr(_executor, "_POOL", pool)
        monkeypatch.setattr(_executor, "_POOL_WORKERS", 2)
        obs.enable()
        _executor.shutdown(wait=True)
        counters = obs.snapshot()["counters"]
        assert counters["executor.delta_flush_failed"] == 1
        # shutdown itself still proceeded
        assert pool.shutdowns == [True]
        assert _executor._POOL is None

    def test_healthy_flush_not_counted(self, monkeypatch):
        class _QuietFuture:
            def result(self, timeout=None):
                return None

        class _QuietPool:
            def submit(self, fn, *args):
                return _QuietFuture()

            def shutdown(self, wait=True):
                pass

        monkeypatch.setattr(_executor, "_POOL", _QuietPool())
        monkeypatch.setattr(_executor, "_POOL_WORKERS", 1)
        obs.enable()
        _executor.shutdown(wait=True)
        # obs.reset() zeroes counters without unregistering them, so a
        # prior test may have left the name behind — assert the value
        counters = obs.snapshot()["counters"]
        assert counters.get("executor.delta_flush_failed", 0) == 0


class TestAutotuneCacheIO:
    """The persisted probe cache is best-effort, but a failed write or
    a failed persistent clear must land on
    ``accel.autotune.cache_io_failed`` instead of vanishing."""

    @pytest.fixture(autouse=True)
    def _isolated_table(self, monkeypatch):
        from repro.accel import autotune as _autotune

        monkeypatch.setattr(_autotune, "_TABLE", {
            3: {"scalar_per_item": 1.0, "bitslice_overhead": 1.0,
                "bitslice_per_item": 0.5, "crossover": 4},
        })
        monkeypatch.setattr(_autotune, "_DISK_LOADED", True)

    def _count(self):
        return obs.snapshot()["counters"].get(
            "accel.autotune.cache_io_failed", 0)

    def test_unwritable_cache_persist_is_counted(self, monkeypatch,
                                                 tmp_path):
        from repro.accel import autotune as _autotune

        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory\n", encoding="utf-8")
        monkeypatch.setenv("BENES_AUTOTUNE_CACHE",
                           str(blocker / "cache.json"))
        obs.enable()
        with _autotune._LOCK:
            _autotune._persist_locked()
        assert self._count() == 1

    def test_persistent_clear_unlink_failure_is_counted(
            self, monkeypatch, tmp_path):
        from repro.accel import autotune as _autotune

        cache_dir = tmp_path / "cache-as-dir"
        cache_dir.mkdir()
        (cache_dir / "occupant").write_text("x\n", encoding="utf-8")
        monkeypatch.setenv("BENES_AUTOTUNE_CACHE", str(cache_dir))
        obs.enable()
        _autotune.autotune_clear(persistent=True)
        assert self._count() == 1

    def test_missing_cache_file_is_not_a_fault(self, monkeypatch,
                                               tmp_path):
        from repro.accel import autotune as _autotune

        monkeypatch.setenv("BENES_AUTOTUNE_CACHE",
                           str(tmp_path / "never-written.json"))
        obs.enable()
        _autotune.autotune_clear(persistent=True)
        assert self._count() == 0

    def test_healthy_persist_round_trips(self, monkeypatch, tmp_path):
        from repro.accel import autotune as _autotune

        target = tmp_path / "cache.json"
        monkeypatch.setenv("BENES_AUTOTUNE_CACHE", str(target))
        obs.enable()
        with _autotune._LOCK:
            _autotune._persist_locked()
        assert self._count() == 0
        import json as _json

        raw = _json.loads(target.read_text(encoding="utf-8"))
        assert raw["orders"]["3"]["crossover"] == 4
