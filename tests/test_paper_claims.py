"""Every checkable numbered claim from the paper, as one test each.

This file is the reproduction scorecard: each test cites the paper
passage it verifies.  EXPERIMENTS.md summarizes the same claims with
measured values.
"""

from itertools import permutations

import pytest

from repro.core import (
    BenesNetwork,
    Permutation,
    PipelinedBenes,
    in_class_f,
    random_permutation,
    setup_states,
)
from repro.core.bits import reverse_bits
from repro.networks import BitonicNetwork, Crossbar, OmegaNetwork
from repro.permclasses import (
    BPCSpec,
    bit_reversal,
    conditional_exchange,
    cyclic_shift,
    is_bpc,
    is_inverse_omega,
    is_omega,
    p_ordering,
    p_ordering_with_shift,
    segment_cyclic_shift,
    table_i_specs,
)
from repro.simd import (
    CCC,
    MCC,
    PSC,
    permute_ccc,
    permute_mcc,
    permute_psc,
    sort_permute_ccc,
)


class TestSectionI:
    def test_stage_count(self):
        """'The number of stages in B(n) is therefore 2 log N - 1.'"""
        for order in range(1, 9):
            assert BenesNetwork(order).n_stages == 2 * order - 1

    def test_switch_count(self):
        """'The total number of binary switches in the network is
        N log N - N/2.'"""
        for order in range(1, 9):
            n = 1 << order
            assert BenesNetwork(order).n_switches == n * order - n // 2

    def test_benes_realizes_all_with_external_setup(self):
        """'...the network can realize all N! permutations' (with the
        self-setting logic disabled)."""
        net = BenesNetwork(2)
        realized = {
            net.route_with_states(setup_states(p)).realized.as_tuple()
            for p in permutations(range(4))
        }
        assert len(realized) == 24

    def test_omega_cannot_realize_all(self):
        """'The same is not true of an omega network.'"""
        net = OmegaNetwork(2)
        realized = sum(
            1 for p in permutations(range(4)) if net.route(p).success
        )
        assert realized < 24

    def test_benes_double_of_omega(self):
        """'The number of switches and the delay in our self-routing
        network are both about twice the corresponding figures in a
        self-routing omega network.'"""
        for order in (4, 6, 8):
            benes = BenesNetwork(order)
            omega = OmegaNetwork(order)
            assert benes.delay == 2 * omega.delay - 1
            assert omega.n_switches < benes.n_switches <= (
                2 * omega.n_switches
            )

    def test_f_larger_than_omega(self):
        """'the number of permutations realizable on our network ... is
        much larger than that of an omega network.'"""
        f2 = sum(1 for p in permutations(range(4)) if in_class_f(p))
        omega2 = sum(1 for p in permutations(range(4)) if is_omega(p))
        assert f2 > omega2

    def test_batcher_is_self_routing_but_costlier(self):
        """'Batcher's sorting network is self-routing, but has
        O(log^2 N) delay and O(N log^2 N) switches.'"""
        order = 6
        batcher = BitonicNetwork(order)
        benes = BenesNetwork(order)
        assert batcher.delay == order * (order + 1) // 2
        assert batcher.delay > benes.delay
        assert batcher.n_switches > benes.n_switches

    def test_crossbar_trivial_but_quadratic(self):
        """'a full crossbar is trivial to set up, but uses O(N^2)
        switches.'"""
        assert Crossbar(5).n_switches == 32 * 32

    def test_switch_rule_fig3(self):
        """'The state of a switch in stage b or stage 2n-2-b ... is
        determined by bit b of the destination tag of its upper
        input.'"""
        net = BenesNetwork(3)
        result = net.route([reverse_bits(i, 3) for i in range(8)],
                           trace=True)
        for st in result.stages:
            for i, state in enumerate(st.states):
                upper_tag = st.input_tags[2 * i]
                assert int(state) == (upper_tag >> st.control_bit) & 1


class TestSectionII:
    def test_fig4_bit_reversal_in_f(self):
        """Fig. 4: bit reversal routes on B(3)."""
        perm = [reverse_bits(i, 3) for i in range(8)]
        assert BenesNetwork(3).route(perm).success

    def test_fig5_counterexample(self):
        """Fig. 5: D = (1,3,2,0) cannot be performed on B(2); yet it is
        an Omega(2) permutation."""
        assert not in_class_f([1, 3, 2, 0])
        assert is_omega([1, 3, 2, 0])

    def test_theorem1_iff(self):
        """Theorem 1: D in F(n) iff U and L are permutations in
        F(n-1)."""
        from repro.core.membership import derive_upper_lower
        for p in permutations(range(8)):
            upper, lower = derive_upper_lower(p)
            upper_hi = tuple(u >> 1 for u in upper)
            lower_hi = tuple(l >> 1 for l in lower)
            halves_ok = (
                sorted(upper_hi) == [0, 1, 2, 3]
                and sorted(lower_hi) == [0, 1, 2, 3]
                and in_class_f(upper_hi)
                and in_class_f(lower_hi)
            )
            assert halves_ok == BenesNetwork(3).route(p).success

    def test_bpc_class_size(self):
        """'The class BPC(n) ... only contains 2^n * n! of the possible
        N! permutations.'"""
        hits = sum(
            1 for p in permutations(range(4)) if is_bpc(p) is not None
        )
        assert hits == (1 << 2) * 2

    def test_paper_bpc_example(self):
        """'For example, consider A = (0, -1, -2) ... D_0 = 6, D_1 = 2,
        D_2 = 4, D_3 = 0, D_4 = 7, D_5 = 3, D_6 = 5, D_7 = 1.'"""
        spec = BPCSpec.from_signed(["0", "-1", "-2"])
        assert spec.to_permutation() == (6, 2, 4, 0, 7, 3, 5, 1)

    def test_theorem2(self, rng):
        """Theorem 2: BPC(n) is a subset of F(n)."""
        for order in range(1, 8):
            for _ in range(20):
                assert in_class_f(
                    BPCSpec.random(order, rng).to_permutation()
                )

    def test_theorem3(self):
        """Theorem 3: InverseOmega(n) is a subset of F(n)."""
        for p in permutations(range(8)):
            if is_inverse_omega(p):
                assert in_class_f(p)

    def test_omega_not_contained(self):
        """'Unfortunately, not all Omega(n) permutations are in
        F(n).'"""
        assert any(
            is_omega(p) and not in_class_f(p)
            for p in permutations(range(4))
        )

    def test_named_inverse_omega_families(self):
        """Items 1-6: cyclic shift, p-ordering, inverse p-ordering,
        p-ordering+shift, segment shifts, conditional exchange are all
        in InverseOmega(n)."""
        order = 4
        family_members = (
            [cyclic_shift(order, k) for k in range(16)]
            + [p_ordering(order, p) for p in (3, 5, 7)]
            + [p_ordering_with_shift(order, 3, 5)]
            + [segment_cyclic_shift(order, 2, 1)]
            + [conditional_exchange(order, 2)]
        )
        for perm in family_members:
            assert is_inverse_omega(perm)
            assert in_class_f(perm)

    def test_named_families_also_in_omega(self):
        """'It is interesting to note that all of the above Omega^-1
        permutations are also members of Omega(n).'"""
        order = 4
        for perm in (cyclic_shift(order, 3), p_ordering(order, 5),
                     p_ordering_with_shift(order, 3, 5),
                     segment_cyclic_shift(order, 2, 1),
                     conditional_exchange(order, 2)):
            assert is_omega(perm)

    def test_cyclic_shift_not_bpc(self):
        """'cyclic shift is not in BPC(n) unless k mod N = 0.'

        Measured refinement: the shift by N/2 is also (trivially) BPC —
        it only complements the top index bit.  All other non-zero
        shifts are outside BPC, as the paper asserts.
        """
        for order in (2, 3, 4):
            n = 1 << order
            for k in range(n):
                member = is_bpc(cyclic_shift(order, k)) is not None
                assert member == (k in (0, n // 2)), (order, k)

    def test_bpc_not_all_omega(self):
        """'every BPC permutation specified by A with |A_j| != j for at
        least one j is in neither Omega(n) nor InverseOmega(n)' —
        witnessed by bit reversal."""
        perm = bit_reversal(3).to_permutation()
        assert not is_omega(perm)
        assert not is_inverse_omega(perm)

    def test_omega_bit_extension(self):
        """'an Omega(n) permutation can be realized on our network if
        the switches in stages 0 through n-2 are all placed in state
        0.'"""
        for order in (2, 3):
            net = BenesNetwork(order)
            for p in permutations(range(1 << order)):
                if is_omega(p):
                    assert net.route(p, omega_mode=True).success

    def test_product_counterexample(self):
        """'F is not closed under product ... A = (3,0,1,2),
        B = (0,1,3,2); A then B = (2,0,1,3); A, B in F(2),
        A then B not in F(2).'"""
        a = Permutation((3, 0, 1, 2))
        b = Permutation((0, 1, 3, 2))
        assert in_class_f(a) and in_class_f(b)
        product = a.then(b)
        assert product == (2, 0, 1, 3)
        assert not in_class_f(product)


class TestSectionIII:
    def test_ccc_route_count(self):
        """'the number of unit-routes needed is 2n - 1 = 2 log N - 1.'"""
        for order in (3, 5, 7):
            run = permute_ccc(CCC(order), list(range(1 << order)))
            assert run.unit_routes == 2 * order - 1

    def test_ccc_two_word_route_count(self):
        """'If the interchange needs two unit-routes, then 4 log N - 2
        unit-routes are needed.'"""
        order = 5
        run = permute_ccc(CCC(order, routes_per_interchange=2),
                          list(range(32)))
        assert run.unit_routes == 4 * order - 2

    def test_psc_route_count(self):
        """'The number of unit-routes needed is 4 log N - 3.'"""
        for order in (3, 5, 7):
            run = permute_psc(PSC(order), list(range(1 << order)))
            assert run.unit_routes == 4 * order - 3

    def test_mcc_route_count(self):
        """'all permutations in F(n) can be performed with
        7 N^{1/2} - 8 unit-routes.'"""
        for q in (1, 2, 3):
            run = permute_mcc(MCC(q), list(range(1 << (2 * q))))
            assert run.unit_routes == 7 * (1 << q) - 8

    def test_omega_skip_rule(self):
        """'Omega permutations can be performed by skipping the first
        n-1 iterations of the above loop.'"""
        order = 4
        perm = cyclic_shift(order, 7)
        run = permute_ccc(CCC(order), perm, omega=True)
        assert run.success and run.unit_routes == order

    def test_inverse_omega_skip_rule(self):
        """'For Omega^-1(n) we may skip the last n-1 iterations.'"""
        order = 4
        perm = cyclic_shift(order, 7)
        run = permute_ccc(CCC(order), perm, inverse_omega=True)
        assert run.success and run.unit_routes == order

    def test_bpc_skip_rule(self):
        """'For a BPC permutation given by A, if A_j = j then the
        iteration(s) b = j may be skipped.'"""
        order = 4
        spec = BPCSpec((0, 1, 3, 2), (False,) * 4)
        run = permute_ccc(CCC(order), spec.to_permutation(),
                          bpc_spec=spec)
        assert run.success
        assert run.unit_routes == 2 * order - 1 - 4  # dims 0,1 skipped twice

    def test_bpc_within_factor_two_of_optimal_on_ccc(self):
        """'For a BPC permutation the number of routing steps used by
        the algorithm is within a factor of two from the optimal.'"""
        from repro.analysis import ccc_lower_bound
        order = 5
        for _ in range(30):
            spec = BPCSpec.random(order)
            run = permute_ccc(CCC(order), spec.to_permutation(),
                              bpc_spec=spec)
            bound = ccc_lower_bound(spec)
            assert run.unit_routes <= max(2 * bound, 0)

    def test_bpc_within_factor_four_on_mcc(self):
        """'For permutations in BPC(n) the resulting algorithm is
        optimal to within a factor of four' — verified against the
        per-dimension cost structure of the optimal algorithm [6]
        (we measure a factor of at most two)."""
        from repro.analysis import mcc_interchange_floor
        side_order = 2
        for _ in range(30):
            spec = BPCSpec.random(2 * side_order)
            run = permute_mcc(MCC(side_order), spec.to_permutation(),
                              bpc_spec=spec)
            floor = mcc_interchange_floor(spec, side_order)
            assert run.unit_routes <= max(2 * floor, 0)
            assert run.unit_routes <= max(4 * floor, 0)

    def test_sorting_baseline_quadratic(self):
        """'Batcher's bitonic sort algorithm yields a permutation
        algorithm with time complexity O(log^2 N) for a CCC or PSC' —
        and the class-F algorithm beats it."""
        order = 6
        perm = random_permutation(64)
        sort_run = sort_permute_ccc(CCC(order), perm)
        assert sort_run.success
        assert sort_run.route_instructions == order * (order + 1) // 2
        f_routes = 2 * order - 1
        assert sort_run.unit_routes > f_routes

    def test_bpc_tags_computed_locally(self):
        """'each PE can compute its own destination tag in O(log N)
        steps ... the total number of steps needed to perform a BPC
        permutation from its A-vector representation is still
        O(log N).'"""
        from repro.simd import load_bpc_tags
        order = 5
        spec = BPCSpec.random(order)
        machine = CCC(order)
        steps = load_bpc_tags(machine, spec)
        assert steps == order
        assert machine.stats.unit_routes == 0
        run = permute_ccc(machine, list(machine.read("D")),
                          bpc_spec=spec)
        assert run.success


class TestSectionIV:
    def test_pipeline_latency_and_throughput(self):
        """'the network will output the first permuted vector after
        O(log N) delay, while each subsequent permuted vector will
        emerge after unit delay.'"""
        order = 3
        pipe = PipelinedBenes(order)
        vectors = [list(range(8)), [7 - i for i in range(8)],
                   [reverse_bits(i, 3) for i in range(8)]]
        outs = pipe.run(vectors)
        assert outs[0].latency == 2 * order - 1
        emerged = [o.emerged_at for o in outs]
        assert all(b - a == 1 for a, b in zip(emerged, emerged[1:]))

    def test_mixed_permutations_in_flight(self):
        """'a sequence of vectors (not necessarily according to the
        same permutation).'"""
        pipe = PipelinedBenes(2)
        outs = pipe.run([[0, 1, 2, 3], [3, 2, 1, 0], [1, 0, 3, 2]])
        assert [o.result.success for o in outs] == [True] * 3
