"""Unit tests for the baseline networks (omega, Batcher, crossbar)."""

from itertools import permutations

import pytest

from repro.core import Permutation, random_permutation
from repro.errors import RoutingError, SizeMismatchError
from repro.networks import (
    BitonicNetwork,
    Crossbar,
    InverseOmegaNetwork,
    OmegaNetwork,
    bitonic_schedule,
)


class TestOmegaNetwork:
    def test_cost_model(self):
        net = OmegaNetwork(4)
        assert net.n_terminals == 16
        assert net.n_switches == 32       # (N/2) log N
        assert net.delay == 4             # log N

    def test_identity_and_shuffle_routes(self):
        net = OmegaNetwork(3)
        assert net.route(list(range(8))).success

    def test_fig5_permutation_routes(self):
        assert OmegaNetwork(2).route([1, 3, 2, 0]).success

    def test_blocked_permutation_fails_but_delivers(self):
        # (0,2,1,3) conflicts at the first stage: inputs 0 and 2 both
        # need the upper half after the shuffle.
        net = OmegaNetwork(2)
        result = net.route([0, 2, 1, 3])
        assert not result.success
        assert sorted(result.delivered) == list(range(4))

    def test_trace_stage_count(self):
        result = OmegaNetwork(3).route(list(range(8)), trace=True)
        assert len(result.stages) == 3
        assert [st.control_bit for st in result.stages] == [2, 1, 0]

    def test_payloads(self):
        net = OmegaNetwork(2)
        result = net.route([1, 3, 2, 0], payloads=list("abcd"))
        assert result.payloads[1] == "a"

    def test_size_mismatch(self):
        with pytest.raises(SizeMismatchError):
            OmegaNetwork(3).route([0, 1])
        with pytest.raises(SizeMismatchError):
            OmegaNetwork(2).route([0, 1, 2, 3], payloads=[1])

    def test_realizable_count_matches_formula(self):
        net = OmegaNetwork(2)
        hits = sum(
            1 for p in permutations(range(4)) if net.route(p).success
        )
        assert hits == 1 << (2 * 2)  # 2^{n N/2}


class TestInverseOmegaNetwork:
    def test_cost_model_matches_omega(self):
        assert InverseOmegaNetwork(4).n_switches == OmegaNetwork(4).n_switches
        assert InverseOmegaNetwork(4).delay == OmegaNetwork(4).delay

    def test_inverse_duality_exhaustive(self):
        om, iom = OmegaNetwork(2), InverseOmegaNetwork(2)
        for p in permutations(range(4)):
            perm = Permutation(p)
            assert iom.route(perm).success == om.route(
                perm.inverse()
            ).success

    def test_cyclic_shift_routes(self):
        from repro.permclasses import cyclic_shift
        net = InverseOmegaNetwork(4)
        for k in range(16):
            assert net.route(cyclic_shift(4, k)).success

    def test_control_bits_lsb_first(self):
        result = InverseOmegaNetwork(3).route(list(range(8)), trace=True)
        assert [st.control_bit for st in result.stages] == [0, 1, 2]


class TestBitonicNetwork:
    def test_cost_model(self):
        net = BitonicNetwork(4)
        assert net.n_stages == 10               # n(n+1)/2
        assert net.n_switches == 8 * 10         # (N/2) * stages
        assert net.delay == 10

    def test_schedule_length(self):
        for order in range(1, 7):
            assert len(list(bitonic_schedule(order))) == (
                order * (order + 1) // 2
            )

    def test_realizes_everything_exhaustive_n2(self):
        net = BitonicNetwork(2)
        for p in permutations(range(4)):
            result = net.route(p)
            assert result.success
            assert result.realized == Permutation(p)

    def test_realizes_random_large(self, rng):
        net = BitonicNetwork(6)
        for _ in range(20):
            p = random_permutation(64, rng)
            assert net.route(p).success

    def test_sort_matches_sorted(self, rng):
        net = BitonicNetwork(4)
        for _ in range(20):
            keys = [rng.randrange(100) for _ in range(16)]
            assert net.sort(keys) == sorted(keys)

    def test_sort_size_checked(self):
        with pytest.raises(SizeMismatchError):
            BitonicNetwork(3).sort([1, 2, 3])

    def test_payload_routing(self, rng):
        net = BitonicNetwork(3)
        p = random_permutation(8, rng)
        result = net.route(p, payloads=list("abcdefgh"))
        for i in range(8):
            assert result.payloads[p[i]] == "abcdefgh"[i]

    def test_trace_records_compare_bits(self):
        result = BitonicNetwork(2).route([3, 2, 1, 0], trace=True)
        assert [st.control_bit for st in result.stages] == [0, 1, 0]


class TestCrossbar:
    def test_cost_model(self):
        net = Crossbar(3)
        assert net.n_switches == 64  # N^2
        assert net.delay == 1

    def test_realizes_everything_exhaustive_n2(self):
        net = Crossbar(2)
        for p in permutations(range(4)):
            assert net.route(p).success

    def test_payloads(self, rng):
        net = Crossbar(3)
        p = random_permutation(8, rng)
        assert net.permute(p, list("abcdefgh")) == (
            Permutation(p).apply(list("abcdefgh"))
        )

    def test_trace_single_stage(self):
        result = Crossbar(2).route([1, 0, 2, 3], trace=True)
        assert len(result.stages) == 1

    def test_size_mismatch(self):
        with pytest.raises(SizeMismatchError):
            Crossbar(2).route([0, 1])


class TestCommonInterface:
    def test_permute_raises_on_blocked(self):
        with pytest.raises(RoutingError):
            OmegaNetwork(2).permute([0, 2, 1, 3], "abcd")

    def test_realizes_shortcut(self):
        assert Crossbar(2).realizes([0, 2, 1, 3])
        assert not OmegaNetwork(2).realizes([0, 2, 1, 3])

    def test_cost_ordering_matches_paper(self):
        # Section I: omega < benes < batcher < crossbar in switches for
        # moderate N; delays omega < benes < batcher
        from repro.core import BenesNetwork
        order = 6  # N = 64
        omega, benes = OmegaNetwork(order), BenesNetwork(order)
        batcher, xbar = BitonicNetwork(order), Crossbar(order)
        assert omega.n_switches < benes.n_switches
        assert benes.n_switches < batcher.n_switches
        assert batcher.n_switches < xbar.n_switches
        assert omega.delay < benes.delay < batcher.delay
