"""Tests for the vectorized batch-routing engine (``repro.accel``).

Parity strategy (mirrors ``tests/test_fastpath.py``):

- exhaustive against both the scalar fast path and the structural
  network for order <= 3;
- hypothesis-randomized against the scalar fast path for orders 4-7
  (the scalar path is itself pinned to the structural network);
- every public primitive re-tested on the pure-Python fallback path
  with NumPy "absent" (forced via the ``_np`` helper and via a
  monkeypatched import).
"""

from __future__ import annotations

import random
import threading
from itertools import islice, permutations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.accel._np as _np_mod
from repro.accel import (
    LRUCache,
    batch_in_class_f,
    batch_route_with_states,
    batch_self_route,
    cached_topology,
    have_numpy,
    numpy_or_none,
    plan_cache,
    require_numpy,
    stage_plan,
)
from repro.core import BenesNetwork, random_permutation
from repro.core.fastpath import fast_route_with_states, fast_self_route
from repro.core.membership import in_class_f
from repro.core.topology import BenesTopology
from repro.errors import MissingDependencyError


@pytest.fixture
def no_numpy(monkeypatch):
    """Force every accel primitive onto the pure-Python fallback."""
    monkeypatch.setattr(_np_mod, "FORCE_FALLBACK", True)
    return None


def _random_states(order, rng, batch):
    n = 1 << order
    stages = 2 * order - 1
    return [
        [[rng.randint(0, 1) for _ in range(n // 2)]
         for _ in range(stages)]
        for _ in range(batch)
    ]


def _assert_self_route_parity(tag_rows):
    result = batch_self_route(tag_rows)
    success, delivered = result.success_mask, result.mappings
    for i, row in enumerate(tag_rows):
        expect_ok, expect_dst = fast_self_route(row)
        assert bool(success[i]) == expect_ok, row
        assert tuple(int(v) for v in delivered[i]) == expect_dst, row


class TestLRUCache:
    def test_bounded_eviction_order(self):
        cache = LRUCache(maxsize=2)
        cache.get_or_build("a", lambda: 1)
        cache.get_or_build("b", lambda: 2)
        cache.get_or_build("a", lambda: 1)   # refresh a
        cache.get_or_build("c", lambda: 3)   # evicts b (LRU)
        assert cache.keys() == ["a", "c"]
        assert "b" not in cache and len(cache) == 2

    def test_build_once_then_hit(self):
        cache = LRUCache(maxsize=4)
        builds = []
        for _ in range(3):
            value = cache.get_or_build("k", lambda: builds.append(1) or 42)
            assert value == 42
        assert len(builds) == 1
        assert cache.hits == 2 and cache.misses == 1

    def test_rejects_silly_maxsize(self):
        with pytest.raises(ValueError):
            LRUCache(maxsize=0)

    def test_thread_hammer(self):
        cache = LRUCache(maxsize=8)
        errors = []

        def worker(seed):
            rng = random.Random(seed)
            try:
                for _ in range(300):
                    key = rng.randrange(12)
                    value = cache.get_or_build(key, lambda k=key: k * k)
                    assert value == key * key
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,))
                   for s in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) <= 8

    def test_clear(self):
        cache = LRUCache(maxsize=2)
        cache.get_or_build("a", lambda: 1)
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0


class TestPlans:
    def test_topology_cache_returns_same_object(self):
        assert cached_topology(4) is cached_topology(4)
        assert cached_topology(4).links == BenesTopology.build(4).links

    def test_plan_cached_and_consistent_with_topology(self):
        plan = stage_plan(3)
        assert stage_plan(3) is plan
        assert 3 in plan_cache()
        topo = cached_topology(3)
        assert plan.ctrl_bits == topo.control_bits()
        assert plan.links == topo.links
        assert plan.n_stages == topo.n_stages == 5

    def test_inverse_links_are_inverses(self):
        plan = stage_plan(4)
        for link, inv in zip(plan.links, plan.inv_links):
            n = len(link)
            assert sorted(inv) == list(range(n))
            assert all(inv[link[r]] == r for r in range(n))

    def test_np_inv_links_shape(self):
        if not have_numpy():
            pytest.skip("NumPy absent")
        np = numpy_or_none()
        arr = stage_plan(3).np_inv_links()
        assert arr.shape == (4, 8) and arr.dtype == np.intp
        assert stage_plan(1).np_inv_links().shape == (0, 2)


class TestBatchSelfRouteParity:
    @pytest.mark.parametrize("order", [1, 2])
    def test_exhaustive_vs_network_and_fastpath(self, order):
        net = BenesNetwork(order)
        perms = list(permutations(range(1 << order)))
        result = batch_self_route(perms)
        success, delivered = result.success_mask, result.mappings
        mask = batch_in_class_f(perms)
        for i, p in enumerate(perms):
            result = net.route(p)
            assert bool(success[i]) == result.success
            assert tuple(int(v) for v in delivered[i]) == result.delivered
            assert bool(mask[i]) == result.success

    def test_exhaustive_order3_vs_fastpath(self):
        perms = list(permutations(range(8)))
        _assert_self_route_parity(perms)
        mask = batch_in_class_f(perms)
        assert sum(map(bool, mask)) == 11632  # |F(3)|

    def test_fig5_counterexample(self):
        result = batch_self_route([[1, 3, 2, 0]])
        assert not bool(result.success_mask[0])
        assert sorted(int(v) for v in result.mappings[0]) == [0, 1, 2, 3]
        assert result.n_success == 0 and not result.all_success

    @settings(max_examples=40, deadline=None)
    @given(order=st.integers(min_value=4, max_value=7),
           data=st.data())
    def test_hypothesis_permutations(self, order, data):
        n = 1 << order
        rows = data.draw(st.lists(st.permutations(range(n)),
                                  min_size=1, max_size=4))
        _assert_self_route_parity(rows)

    @settings(max_examples=40, deadline=None)
    @given(order=st.integers(min_value=4, max_value=7),
           data=st.data())
    def test_hypothesis_arbitrary_tags(self, order, data):
        """Non-permutation tag vectors (duplicates) route identically
        too — the self-routing rule never assumes distinctness."""
        n = 1 << order
        rows = data.draw(st.lists(
            st.lists(st.integers(min_value=0, max_value=n - 1),
                     min_size=n, max_size=n),
            min_size=1, max_size=3))
        _assert_self_route_parity(rows)

    def test_rejects_bad_shapes_and_tags(self):
        if not have_numpy():
            pytest.skip("shape/range validation is the NumPy path's")
        with pytest.raises(ValueError):
            batch_self_route([1, 2, 3, 0])       # 1-D, not a batch
        with pytest.raises(ValueError):
            batch_self_route([[0, 1, 2, 4]])     # tag out of range


class TestBatchRouteWithStatesParity:
    @pytest.mark.parametrize("order", [1, 2, 3, 5])
    def test_random_states(self, order, rng):
        batch = _random_states(order, rng, batch=16)
        out = batch_route_with_states(batch, order).mappings
        for i, states in enumerate(batch):
            assert tuple(int(v) for v in out[i]) == \
                fast_route_with_states(states, order)

    def test_straight_states_identity(self):
        net = BenesNetwork(3)
        out = batch_route_with_states([net.straight_states()] * 4, 3)
        assert out.all_success
        for row in out.mappings:
            assert tuple(int(v) for v in row) == tuple(range(8))

    def test_rejects_bad_shape(self):
        if not have_numpy():
            pytest.skip("shape validation is the NumPy path's")
        with pytest.raises(ValueError):
            batch_route_with_states([[[0, 0]]], 2)  # wrong stage count


class TestFallbackWithoutNumpy:
    def test_numpy_or_none_honours_force_fallback(self, no_numpy):
        assert numpy_or_none() is None
        assert not have_numpy()

    def test_numpy_or_none_survives_missing_import(self, monkeypatch):
        """Simulate NumPy genuinely uninstalled: the memoized import
        re-runs and fails cleanly."""
        import builtins

        real_import = builtins.__import__

        def fake_import(name, *args, **kwargs):
            if name == "numpy":
                raise ImportError("No module named 'numpy'")
            return real_import(name, *args, **kwargs)

        monkeypatch.setattr(_np_mod, "_numpy", _np_mod._UNRESOLVED)
        monkeypatch.setattr(builtins, "__import__", fake_import)
        assert numpy_or_none() is None
        with pytest.raises(MissingDependencyError):
            require_numpy("testing")

    def test_require_numpy_names_the_extra(self, no_numpy):
        with pytest.raises(MissingDependencyError,
                           match=r"repro\[accel\]"):
            require_numpy("the batch engine")

    def test_self_route_fallback_parity(self, no_numpy):
        perms = list(permutations(range(8)))[:200]
        result = batch_self_route(perms)
        success, delivered = result.success_mask, result.mappings
        assert isinstance(success, list)
        for i, p in enumerate(perms):
            ok, dst = fast_self_route(p)
            assert success[i] == ok and delivered[i] == dst

    def test_membership_fallback_parity(self, no_numpy):
        perms = list(islice(permutations(range(8)), 300))
        mask = batch_in_class_f(perms)
        assert isinstance(mask, list)
        assert mask == [in_class_f(p) for p in perms]

    def test_route_with_states_fallback_parity(self, no_numpy, rng):
        batch = _random_states(3, rng, batch=8)
        out = batch_route_with_states(batch, 3)
        assert isinstance(out.mappings, list)
        assert out.mappings == [fast_route_with_states(s, 3)
                                for s in batch]

    def test_density_estimator_identical_without_numpy(self, no_numpy):
        from repro.analysis import estimate_class_f_density

        density = estimate_class_f_density(3, 300,
                                           random.Random(0xF00D))
        assert density == pytest.approx(11632 / 40320, abs=0.1)

    def test_class_f_count_fast_raises_cleanly(self, no_numpy):
        from repro.analysis import class_f_count_fast

        with pytest.raises(MissingDependencyError, match="accel"):
            class_f_count_fast(3)

    def test_setting_multiplicity_fallback(self, no_numpy):
        from repro.analysis.redundancy import setting_multiplicity

        counts = setting_multiplicity(2)
        assert len(counts) == 24 and sum(counts.values()) == 64

    def test_uniform_sampler_fallback(self, no_numpy):
        from repro.core import random_class_f_uniform

        perm = random_class_f_uniform(3, random.Random(1))
        assert in_class_f(perm)


class TestConsumerSeams:
    """The wired consumers give the same answers in both modes."""

    def test_density_estimator_mode_independent(self, monkeypatch):
        if not have_numpy():
            pytest.skip("only one mode available")
        from repro.analysis import estimate_class_f_density

        fast = estimate_class_f_density(3, 400, random.Random(99))
        monkeypatch.setattr(_np_mod, "FORCE_FALLBACK", True)
        slow = estimate_class_f_density(3, 400, random.Random(99))
        assert fast == slow

    def test_setting_multiplicity_mode_independent(self, monkeypatch):
        if not have_numpy():
            pytest.skip("only one mode available")
        from repro.analysis.redundancy import setting_multiplicity

        fast = setting_multiplicity(2)
        monkeypatch.setattr(_np_mod, "FORCE_FALLBACK", True)
        assert setting_multiplicity(2) == fast

    def test_benchmark_engine_runs_in_both_modes(self, monkeypatch):
        from repro.accel.benchmark import best_speedup, run_benchmark

        report = run_benchmark(orders=(2,), batch_sizes=(8,), repeats=1)
        assert report["cells"][0]["batch_size"] == 8
        assert best_speedup(report) is not None
        monkeypatch.setattr(_np_mod, "FORCE_FALLBACK", True)
        fallback = run_benchmark(orders=(2,), batch_sizes=(8,),
                                 repeats=1)
        assert fallback["numpy"] is False

    def test_cli_bench_json(self, tmp_path, capsys):
        import json

        from repro.cli import main

        out = tmp_path / "bench.json"
        assert main(["bench", "--orders", "2", "--batches", "8",
                     "--repeats", "1", "--json", str(out)]) == 0
        captured = capsys.readouterr().out
        assert "speedup" in captured
        report = json.loads(out.read_text())
        assert report["cells"][0]["order"] == 2
