"""Unit tests for the gate-level cost model."""

import pytest

from repro.core.gates import (
    SWITCH_LEVELS,
    network_gates,
    switch_gates,
)


class TestSwitchGates:
    def test_single_bit(self):
        cost = switch_gates(1)
        assert cost.and_gates == 4
        assert cost.or_gates == 2
        assert cost.not_gates == 1
        assert cost.levels == SWITCH_LEVELS
        assert cost.total_gates == 7

    def test_scales_linearly_with_width(self):
        narrow = switch_gates(4)
        wide = switch_gates(8)
        assert wide.and_gates == 2 * narrow.and_gates
        assert wide.or_gates == 2 * narrow.or_gates
        assert wide.not_gates == narrow.not_gates  # shared inverter

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            switch_gates(0)


class TestNetworkGates:
    def test_counts_scale_with_switch_count(self):
        from repro.core import switch_count
        cost = network_gates(3, word_width=8)
        per = switch_gates(8)
        assert cost.and_gates == per.and_gates * switch_count(3)
        assert cost.not_gates == switch_count(3)

    def test_critical_path_two_levels_per_stage(self):
        for order in (1, 3, 6):
            cost = network_gates(order, word_width=4)
            assert cost.levels == SWITCH_LEVELS * (2 * order - 1)

    def test_combinational_has_no_registers(self):
        assert network_gates(4, 8).register_bits == 0

    def test_pipelined_register_bits(self):
        order, width = 3, 8
        cost = network_gates(order, width, pipelined=True)
        boundaries = 2 * order - 2
        assert cost.register_bits == boundaries * (1 << order) * width

    def test_delay_vs_routing_step_argument(self):
        # the Section IV argument: a full B(n) transit is a handful of
        # gate levels, far fewer than even a few instruction broadcasts
        order = 6
        transit_levels = network_gates(order, 16).levels
        assert transit_levels == 22
        # one E-network routing step plausibly costs >= 10 gate levels
        # of instruction decode + gating; 4 log N - 3 = 21 steps do not
        one_step_levels = 10
        assert transit_levels < (4 * order - 3) * one_step_levels
