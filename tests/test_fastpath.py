"""Unit tests for the integer fast path and the redundancy analysis."""

from itertools import permutations

import pytest

from repro.analysis.redundancy import setting_multiplicity, total_settings
from repro.core import BenesNetwork, random_permutation, setup_states
from repro.core.fastpath import fast_route_with_states, fast_self_route


class TestFastSelfRoute:
    @pytest.mark.parametrize("order", [1, 2])
    def test_equivalence_exhaustive(self, order):
        net = BenesNetwork(order)
        for p in permutations(range(1 << order)):
            success, delivered = fast_self_route(p)
            result = net.route(p)
            assert success == result.success
            assert delivered == result.delivered

    def test_equivalence_exhaustive_n3(self):
        net = BenesNetwork(3)
        for p in permutations(range(8)):
            success, delivered = fast_self_route(p)
            result = net.route(p)
            assert success == result.success
            assert delivered == result.delivered

    @pytest.mark.parametrize("order", [4, 6, 8, 10])
    def test_equivalence_random(self, order, rng):
        net = BenesNetwork(order)
        for _ in range(8):
            p = random_permutation(1 << order, rng)
            success, delivered = fast_self_route(p)
            result = net.route(p)
            assert success == result.success
            assert delivered == result.delivered

    def test_fig5(self):
        success, delivered = fast_self_route([1, 3, 2, 0])
        assert not success
        assert sorted(delivered) == [0, 1, 2, 3]


class TestFastRouteWithStates:
    def test_straight_is_identity(self):
        net = BenesNetwork(3)
        straight = net.straight_states()
        assert fast_route_with_states(straight, 3) == tuple(range(8))

    @pytest.mark.parametrize("order", [2, 3, 5, 7])
    def test_equivalence_with_waksman(self, order, rng):
        net = BenesNetwork(order)
        for _ in range(8):
            p = random_permutation(1 << order, rng)
            states = setup_states(p)
            assert fast_route_with_states(states, order) == (
                net.route_with_states(states).realized.as_tuple()
            )


class TestRedundancy:
    def test_total_settings_formula(self):
        assert total_settings(2) == 64
        assert total_settings(3) == 1 << 20

    def test_rearrangeability_counted(self):
        counts = setting_multiplicity(2)
        # every one of the 24 permutations realized at least once
        assert len(counts) == 24
        assert sum(counts.values()) == 64
        assert min(counts.values()) >= 1

    def test_multiplicity_distribution_n2(self):
        counts = setting_multiplicity(2)
        # B(2) has 6 switches for 24 permutations: 64/24 is not integer,
        # so multiplicities must vary — measured: between 2 and 4
        assert min(counts.values()) == 2
        assert max(counts.values()) == 4

    def test_identity_has_multiple_settings(self):
        counts = setting_multiplicity(2)
        assert counts[(0, 1, 2, 3)] >= 2

    def test_guard(self):
        with pytest.raises(ValueError):
            setting_multiplicity(3)
