"""Unit tests for per-PE destination-tag generation."""

import pytest

from repro.errors import MachineError
from repro.permclasses import BPCSpec
from repro.simd import CCC, PSC, load_affine_tags, load_bpc_tags
from repro.simd.tags import load_explicit_tags


class TestBPCTags:
    def test_matches_spec_expansion(self, rng):
        for order in (2, 3, 4, 5):
            spec = BPCSpec.random(order, rng)
            machine = CCC(order)
            load_bpc_tags(machine, spec)
            assert machine.read("D") == spec.to_permutation().as_tuple()

    def test_step_count_is_order(self, rng):
        for order in (2, 4, 6):
            machine = CCC(order)
            steps = load_bpc_tags(machine, BPCSpec.random(order, rng))
            assert steps == order  # O(log N), no routes

    def test_no_routes_charged(self, rng):
        machine = PSC(4)
        load_bpc_tags(machine, BPCSpec.random(4, rng))
        assert machine.stats.unit_routes == 0

    def test_size_mismatch(self):
        with pytest.raises(MachineError):
            load_bpc_tags(CCC(3), BPCSpec.identity(2))

    def test_tags_usable_for_routing(self, rng):
        from repro.simd import permute_ccc
        order = 4
        spec = BPCSpec.random(order, rng)
        machine = CCC(order)
        load_bpc_tags(machine, spec)
        run = permute_ccc(machine, list(machine.read("D")),
                          bpc_spec=spec)
        assert run.success


class TestAffineTags:
    def test_matches_formula(self):
        machine = CCC(4)
        load_affine_tags(machine, 5, 3)
        assert machine.read("D") == tuple(
            (5 * i + 3) % 16 for i in range(16)
        )

    def test_single_step(self):
        machine = CCC(3)
        assert load_affine_tags(machine, 3, 0) == 1

    def test_rejects_even_p(self):
        with pytest.raises(MachineError):
            load_affine_tags(CCC(3), 2, 0)

    def test_produces_valid_permutation(self):
        from repro.core import Permutation
        machine = CCC(5)
        load_affine_tags(machine, 7, 11)
        Permutation(machine.read("D"))  # validates


class TestExplicitTags:
    def test_loads_verbatim(self):
        machine = CCC(2)
        load_explicit_tags(machine, [3, 2, 1, 0])
        assert machine.read("D") == (3, 2, 1, 0)
