"""Unit tests for the Permutation value type."""

import random

import pytest

from repro.core.permutation import Permutation, identity, random_permutation
from repro.errors import InvalidPermutationError, SizeMismatchError


class TestValidation:
    def test_accepts_valid(self):
        Permutation((2, 0, 1))

    def test_rejects_duplicate(self):
        with pytest.raises(InvalidPermutationError):
            Permutation((0, 0, 1))

    def test_rejects_out_of_range(self):
        with pytest.raises(InvalidPermutationError):
            Permutation((0, 3))

    def test_rejects_negative(self):
        with pytest.raises(InvalidPermutationError):
            Permutation((0, -1))

    def test_rejects_non_int(self):
        with pytest.raises(InvalidPermutationError):
            Permutation((0.0, 1))
        with pytest.raises(InvalidPermutationError):
            Permutation((True, False))

    def test_empty_permutation_allowed(self):
        assert len(Permutation(())) == 0


class TestConstructors:
    def test_identity(self):
        assert Permutation.identity(4).as_tuple() == (0, 1, 2, 3)
        assert identity(4) == Permutation.identity(4)

    def test_from_mapping(self):
        p = Permutation.from_mapping(lambda i: (i + 1) % 4, 4)
        assert p.as_tuple() == (1, 2, 3, 0)

    def test_from_cycles(self):
        p = Permutation.from_cycles([(0, 1, 2)], 4)
        assert p.as_tuple() == (1, 2, 0, 3)

    def test_from_cycles_rejects_overlap(self):
        with pytest.raises(InvalidPermutationError):
            Permutation.from_cycles([(0, 1), (1, 2)], 4)

    def test_random_is_valid_and_seeded(self):
        a = random_permutation(16, random.Random(1))
        b = random_permutation(16, random.Random(1))
        assert a == b
        assert sorted(a) == list(range(16))


class TestProtocol:
    def test_len_getitem_iter(self):
        p = Permutation((2, 0, 1))
        assert len(p) == 3
        assert p[0] == 2
        assert list(p) == [2, 0, 1]

    def test_equality_with_tuple(self):
        assert Permutation((1, 0)) == (1, 0)
        assert Permutation((1, 0)) != (0, 1)

    def test_hashable(self):
        assert len({Permutation((0, 1)), Permutation((0, 1)),
                    Permutation((1, 0))}) == 2

    def test_order(self):
        assert Permutation(range(8)).order == 3

    def test_order_rejects_non_power_of_two(self):
        from repro.errors import NotAPowerOfTwoError
        with pytest.raises(NotAPowerOfTwoError):
            _ = Permutation((0, 1, 2)).order


class TestAlgebra:
    def test_inverse(self):
        p = Permutation((2, 0, 3, 1))
        inv = p.inverse()
        for i in range(4):
            assert inv[p[i]] == i

    def test_then_order(self):
        p = Permutation((1, 2, 0))
        q = Permutation((0, 2, 1))
        assert p.then(q)[0] == q[p[0]]

    def test_compose_is_reverse_of_then(self):
        p = Permutation((1, 2, 0))
        q = Permutation((0, 2, 1))
        assert p.compose(q) == q.then(p)

    def test_then_size_mismatch(self):
        with pytest.raises(SizeMismatchError):
            Permutation((0, 1)).then(Permutation((0, 1, 2)))

    def test_power(self):
        p = Permutation((1, 2, 3, 0))
        assert p.power(4).is_identity()
        assert p.power(-1) == p.inverse()
        assert p.power(0).is_identity()

    def test_paper_product_example(self):
        # Section II closing remark: A=(3,0,1,2), B=(0,1,3,2),
        # applying A then B gives (2,0,1,3).
        a = Permutation((3, 0, 1, 2))
        b = Permutation((0, 1, 3, 2))
        assert a.then(b).as_tuple() == (2, 0, 1, 3)

    def test_conjugate_by(self):
        p = Permutation((1, 0, 2, 3))
        relabel = Permutation((3, 2, 1, 0))
        conj = p.conjugate_by(relabel)
        # conj = relabel ∘ p ∘ relabel^{-1}
        for i in range(4):
            assert conj[relabel[i]] == relabel[p[i]]


class TestApplication:
    def test_apply_moves_input_i_to_output_di(self):
        p = Permutation((1, 2, 3, 0))
        assert p.apply("abcd") == ["d", "a", "b", "c"]

    def test_apply_size_mismatch(self):
        with pytest.raises(SizeMismatchError):
            Permutation((0, 1)).apply("abc")

    def test_apply_then_matches_sequential_apply(self):
        rng = random.Random(3)
        p = random_permutation(8, rng)
        q = random_permutation(8, rng)
        data = list("abcdefgh")
        assert p.then(q).apply(data) == q.apply(p.apply(data))


class TestStructure:
    def test_cycles_partition_all_elements(self):
        p = Permutation((1, 0, 3, 4, 2, 5))
        cycles = p.cycles()
        flat = sorted(x for c in cycles for x in c)
        assert flat == list(range(6))
        assert (5,) in cycles

    def test_fixed_points(self):
        assert Permutation((0, 2, 1, 3)).fixed_points() == [0, 3]

    def test_is_involution(self):
        assert Permutation((1, 0, 3, 2)).is_involution()
        assert not Permutation((1, 2, 0)).is_involution()

    def test_parity(self):
        assert Permutation((0, 1, 2)).parity() == 0
        assert Permutation((1, 0, 2)).parity() == 1
        assert Permutation((1, 2, 0)).parity() == 0

    def test_parity_multiplicative(self):
        rng = random.Random(9)
        for _ in range(20):
            p = random_permutation(8, rng)
            q = random_permutation(8, rng)
            assert p.then(q).parity() == (p.parity() + q.parity()) % 2
