"""Unit tests for the Lenfant FUB families exposed by the paper."""

import pytest

from repro.core import in_class_f
from repro.errors import SpecificationError
from repro.permclasses.bpc import (
    bit_reversal,
    matrix_transpose,
    vector_reversal,
)
from repro.permclasses.fub import alpha, beta, delta, eta, gamma, lam
from repro.permclasses.omega import is_inverse_omega


class TestAlpha:
    def test_full_field_is_matrix_transpose(self):
        assert alpha(4, 2) == matrix_transpose(4)

    def test_partial_field_swaps_ends(self):
        spec = alpha(4, 1)
        # bit 0 <-> bit 3, bits 1,2 fixed
        assert spec.positions == (3, 1, 2, 0)
        assert not any(spec.complemented)

    def test_is_involution(self):
        for order, field in ((4, 1), (4, 2), (6, 2)):
            spec = alpha(order, field)
            assert spec.then(spec).to_permutation().is_identity()

    def test_bounds(self):
        with pytest.raises(SpecificationError):
            alpha(3, 2)
        with pytest.raises(SpecificationError):
            alpha(4, 0)

    def test_in_bpc_hence_f(self):
        for order, field in ((2, 1), (4, 2), (5, 2), (6, 3)):
            assert in_class_f(alpha(order, field).to_permutation())


class TestBeta:
    def test_full_width_is_bit_reversal(self):
        assert beta(4, 4) == bit_reversal(4)

    def test_partial_reversal(self):
        spec = beta(4, 2)
        assert spec.positions == (1, 0, 2, 3)

    def test_bounds(self):
        with pytest.raises(SpecificationError):
            beta(4, 0)
        with pytest.raises(SpecificationError):
            beta(4, 5)

    def test_in_f(self):
        for order in (3, 4, 5):
            for width in range(1, order + 1):
                assert in_class_f(beta(order, width).to_permutation())


class TestGamma:
    def test_full_width_is_vector_reversal(self):
        assert gamma(3, 3) == vector_reversal(3)

    def test_partial_is_segment_reversal(self):
        perm = gamma(3, 2).to_permutation()
        # within each aligned block of 4, index i -> 3 - i
        for i in range(8):
            base = i & ~0b11
            assert perm[i] == base + (3 - (i & 0b11))

    def test_bounds(self):
        with pytest.raises(SpecificationError):
            gamma(3, 0)

    def test_in_f(self):
        for order in (2, 3, 4):
            for width in range(1, order + 1):
                assert in_class_f(gamma(order, width).to_permutation())


class TestReExports:
    def test_lambda_delta_eta_are_family_constructors(self):
        # λ, δ, η are the Omega^-1 families; spot-check one of each
        assert is_inverse_omega(lam(3, 3, 1))
        assert is_inverse_omega(delta(3, 2, 1))
        assert is_inverse_omega(eta(3, 2))

    def test_all_five_families_in_f(self):
        # the paper's headline: all of Lenfant's FUBs need only one
        # control scheme
        samples = [
            alpha(4, 2).to_permutation(),
            beta(4, 3).to_permutation(),
            gamma(4, 2).to_permutation(),
            lam(4, 5, 3),
            delta(4, 2, 1),
            eta(4, 3),
        ]
        assert all(in_class_f(p) for p in samples)
