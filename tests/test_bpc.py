"""Unit tests for the BPC permutation class (Section II, Theorem 2)."""

import math
from itertools import permutations

import pytest

from repro.core import Permutation, in_class_f
from repro.core.bits import interleave_bits, reverse_bits, rotate_left
from repro.core.membership import derive_upper_lower
from repro.errors import SpecificationError
from repro.permclasses.bpc import (
    BPCSpec,
    TABLE_I,
    bit_reversal,
    bit_shuffle,
    is_bpc,
    matrix_transpose,
    perfect_shuffle,
    shuffled_row_major,
    table_i_specs,
    unshuffle,
    vector_reversal,
)


class TestParsing:
    def test_paper_example(self):
        # A = (0, -1, -2): D_i for i=0..7 is 6,2,4,0,7,3,5,1
        spec = BPCSpec.from_signed(["0", "-1", "-2"])
        assert spec.to_permutation().as_tuple() == (6, 2, 4, 0, 7, 3, 5, 1)

    def test_signed_zero(self):
        spec = BPCSpec.from_signed(["1", "-0"])
        assert spec.complemented == (True, False)
        assert spec.positions == (0, 1)

    def test_tuple_entries(self):
        spec = BPCSpec.from_signed([(0, True), (1, False)])
        assert spec.complemented == (False, True)

    def test_int_entries(self):
        spec = BPCSpec.from_signed([0, -1])
        assert spec.positions == (1, 0)
        assert spec.complemented == (True, False)

    def test_unicode_minus(self):
        spec = BPCSpec.from_signed(["−1", "0"])
        assert spec.complemented == (False, True)

    def test_rejects_garbage(self):
        for bad in (["x"], [""], [None], [1.5], [True]):
            with pytest.raises(SpecificationError):
                BPCSpec.from_signed(bad)

    def test_rejects_non_permutation_positions(self):
        with pytest.raises(SpecificationError):
            BPCSpec((0, 0), (False, False))

    def test_signed_tokens_roundtrip(self):
        spec = BPCSpec.from_signed(["-2", "0", "-1"])
        assert BPCSpec.from_signed(spec.signed_tokens()) == spec
        assert spec.signed_tokens() == ("-2", "0", "-1")

    def test_str_shows_paper_notation(self):
        assert str(vector_reversal(2)) == "A = (-1, -0)"


class TestDestination:
    def test_identity(self):
        spec = BPCSpec.identity(3)
        assert spec.to_permutation().is_identity()

    def test_every_spec_yields_permutation(self, rng):
        for order in range(1, 8):
            for _ in range(10):
                spec = BPCSpec.random(order, rng)
                spec.to_permutation()  # Permutation validates

    def test_class_size(self):
        # |BPC(2)| = 2^2 * 2! = 8 distinct permutations
        seen = set()
        for positions in permutations(range(2)):
            for comp in range(4):
                spec = BPCSpec(tuple(positions),
                               (bool(comp & 1), bool(comp & 2)))
                seen.add(spec.to_permutation().as_tuple())
        assert len(seen) == 8


class TestAlgebra:
    def test_inverse(self, rng):
        for _ in range(20):
            spec = BPCSpec.random(4, rng)
            p = spec.to_permutation()
            assert spec.inverse().to_permutation() == p.inverse()

    def test_then_matches_permutation_then(self, rng):
        for _ in range(20):
            a, b = BPCSpec.random(4, rng), BPCSpec.random(4, rng)
            assert a.then(b).to_permutation() == (
                a.to_permutation().then(b.to_permutation())
            )

    def test_then_order_mismatch(self):
        with pytest.raises(SpecificationError):
            BPCSpec.identity(2).then(BPCSpec.identity(3))

    def test_group_closure(self, rng):
        spec = BPCSpec.random(5, rng)
        assert spec.then(spec.inverse()).to_permutation().is_identity()


class TestTableI:
    def test_matrix_transpose(self):
        q = 2
        spec = matrix_transpose(2 * q)
        perm = spec.to_permutation()
        side = 1 << q
        for r in range(side):
            for c in range(side):
                assert perm[r * side + c] == c * side + r

    def test_bit_reversal(self):
        spec = bit_reversal(3)
        assert spec.to_permutation() == tuple(
            reverse_bits(i, 3) for i in range(8)
        )

    def test_vector_reversal(self):
        assert vector_reversal(3).to_permutation() == tuple(
            7 - i for i in range(8)
        )

    def test_perfect_shuffle(self):
        assert perfect_shuffle(3).to_permutation() == tuple(
            rotate_left(i, 3) for i in range(8)
        )

    def test_unshuffle_inverts_shuffle(self):
        assert unshuffle(4) == perfect_shuffle(4).inverse()

    def test_shuffled_row_major_interleaves(self):
        q = 2
        spec = shuffled_row_major(2 * q)
        perm = spec.to_permutation()
        for r in range(1 << q):
            for c in range(1 << q):
                assert perm[(r << q) | c] == interleave_bits(r, c, q)

    def test_bit_shuffle_inverts_shuffled_row_major(self):
        for order in (2, 4, 6):
            assert bit_shuffle(order) == shuffled_row_major(order).inverse()

    def test_even_order_required(self):
        for make in (matrix_transpose, shuffled_row_major, bit_shuffle):
            with pytest.raises(SpecificationError):
                make(3)

    def test_all_rows_in_f(self):
        # Theorem 2 instantiated on the paper's own examples
        for order in (2, 4, 6):
            for name, spec in table_i_specs(order):
                assert in_class_f(spec.to_permutation()), (order, name)

    def test_table_skips_odd_only_rows(self):
        names = [name for name, _ in table_i_specs(3)]
        assert "matrix transpose" not in names
        assert "bit reversal" in names

    def test_table_complete_for_even(self):
        assert len(table_i_specs(4)) == len(TABLE_I)


class TestTheorem2:
    @pytest.mark.parametrize("order", range(1, 9))
    def test_bpc_subset_of_f(self, order, rng):
        for _ in range(15):
            spec = BPCSpec.random(order, rng)
            assert in_class_f(spec.to_permutation())

    def test_bpc_subset_of_f_exhaustive_n3(self):
        for positions in permutations(range(3)):
            for comp_bits in range(8):
                comp = tuple(bool(comp_bits >> j & 1) for j in range(3))
                spec = BPCSpec(tuple(positions), comp)
                assert in_class_f(spec.to_permutation())


class TestLemma1:
    def test_reduce_trailing_case(self):
        # |A_0| = 0: both halves perform A' with A'_j = LMAG(A_{j+1})
        spec = BPCSpec((0, 2, 1), (True, False, True))
        reduced = spec.reduce_trailing()
        upper, lower = derive_upper_lower(spec.to_permutation())
        upper_hi = tuple(u >> 1 for u in upper)
        lower_hi = tuple(l >> 1 for l in lower)
        assert upper_hi == reduced.to_permutation().as_tuple()
        assert lower_hi == reduced.to_permutation().as_tuple()

    def test_reduce_trailing_guard(self):
        with pytest.raises(SpecificationError):
            BPCSpec((1, 0), (False, False)).reduce_trailing()

    def test_lemma1_guard(self):
        with pytest.raises(SpecificationError):
            BPCSpec.identity(2).lemma1_decompose()

    def test_decomposition_matches_network(self, rng):
        # the constructive proof of Theorem 2, case 2
        for _ in range(50):
            spec = BPCSpec.random(4, rng)
            if spec.positions[0] == 0:
                continue
            f1, f2 = spec.lemma1_decompose()
            upper, lower = derive_upper_lower(spec.to_permutation())
            upper_hi = tuple(u >> 1 for u in upper)
            lower_hi = tuple(l >> 1 for l in lower)
            k = spec.source_of_bit0()
            if spec.complemented[k]:  # A_k = -0: roles swap
                assert upper_hi == f2.to_permutation().as_tuple()
                assert lower_hi == f1.to_permutation().as_tuple()
            else:
                assert upper_hi == f1.to_permutation().as_tuple()
                assert lower_hi == f2.to_permutation().as_tuple()

    def test_f1_f2_differ_only_in_complement(self, rng):
        for _ in range(20):
            spec = BPCSpec.random(5, rng)
            if spec.positions[0] == 0:
                continue
            f1, f2 = spec.lemma1_decompose()
            assert f1.positions == f2.positions
            diff = [a != b for a, b in
                    zip(f1.complemented, f2.complemented)]
            assert sum(diff) == 1
            assert diff[spec.source_of_bit0() - 1]

    def test_lmag(self):
        spec = BPCSpec((2, 0, 1), (True, False, False))
        assert spec.lmag(0) == (1, True)
        with pytest.raises(SpecificationError):
            spec.lmag(1)  # position 0 has no LMAG


class TestRecognition:
    def test_roundtrip(self, rng):
        for order in range(1, 6):
            for _ in range(10):
                spec = BPCSpec.random(order, rng)
                recovered = is_bpc(spec.to_permutation())
                assert recovered == spec

    def test_rejects_cyclic_shift(self):
        assert is_bpc([1, 2, 3, 0]) is None

    def test_rejects_fig5(self):
        assert is_bpc([1, 3, 2, 0]) is None

    def test_exact_count_n2(self):
        hits = sum(
            1 for p in permutations(range(4)) if is_bpc(p) is not None
        )
        assert hits == 8  # 2^2 * 2!


class TestFixedDimensions:
    def test_identity_fixes_everything(self):
        assert BPCSpec.identity(4).fixed_dimensions() == (0, 1, 2, 3)

    def test_complement_not_fixed(self):
        spec = BPCSpec((0, 1), (True, False))
        assert spec.fixed_dimensions() == (1,)

    def test_moved_bit_not_fixed(self):
        assert matrix_transpose(4).fixed_dimensions() == ()
