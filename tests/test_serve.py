"""Routing-as-a-service: protocol, coalescer, daemon, client.

Three layers, three test strategies:

- **protocol** — pure-function roundtrips and validation (the frozen
  schema is the contract every other layer builds on);
- **coalescer** — the synchronous state machine driven with a fake
  clock (``now`` is just a float argument);
- **daemon** — end-to-end over real sockets: concurrent clients,
  byte-identical parity against direct in-process engine calls,
  backpressure rejection, counters, and the single-trace-tree
  invariant checked by ``tools/trace_tree.py``.
"""

from __future__ import annotations

import json
import pathlib
import socket
import subprocess
import sys
import threading

import pytest

import repro.obs as obs
from repro.accel import batch_self_route
from repro.accel._np import resolve_engine
from repro.accel.setup import batch_setup_states
from repro.core import BenesNetwork, Permutation, random_permutation
from repro.core.fastpath import fast_self_route
from repro.core.membership import in_class_f
from repro.errors import ProtocolError, ServerBusyError
from repro.serve import (
    CoalescingQueue,
    ServeClient,
    ServeConfig,
    start_in_thread,
)
from repro.serve import protocol
from repro.serve.coalescer import FLUSH, QUEUED, REJECT

TOOLS = pathlib.Path(__file__).resolve().parent.parent / "tools"


@pytest.fixture(autouse=True)
def _obs_clean():
    yield
    obs.disable()
    obs.reset()


def _daemon(**overrides):
    defaults = dict(port=0, max_batch=8, max_wait_us=2000.0,
                    warm_orders=(2, 3))
    defaults.update(overrides)
    return start_in_thread(ServeConfig(**defaults))


# ----------------------------------------------------------------------
# Protocol
# ----------------------------------------------------------------------

class TestProtocol:
    def test_request_roundtrip(self):
        request = protocol.RouteRequest(
            op="route", tags=(3, 1, 2, 0), id=7, omega_mode=True,
            stuck=((2, 1, 1), (0, 0, 0)), stage_states=True)
        line = protocol.encode_request(request)
        assert protocol.decode_request(line) == request

    def test_stuck_normalized_sorted(self):
        request = protocol.RouteRequest(
            op="route", tags=(0, 1), stuck=[(3, 0, 1), (1, 2, 0)])
        assert request.stuck == ((1, 2, 0), (3, 0, 1))
        as_map = request.stuck_switches
        assert as_map == {(3, 0): True, (1, 2): False}
        assert protocol.stuck_to_wire(as_map) == request.stuck

    def test_encoding_is_canonical(self):
        # Same message, one byte form: key order cannot vary.
        a = protocol.encode_request(
            protocol.RouteRequest(op="route", tags=(1, 0), id=3))
        b = protocol.encode_request(
            protocol.RouteRequest(id=3, tags=(1, 0), op="route"))
        assert a == b
        assert " " not in a

    def test_unknown_request_field_rejected(self):
        line = json.dumps({"op": "route", "tags": [0, 1], "zap": 1})
        with pytest.raises(ProtocolError):
            protocol.decode_request(line)

    @pytest.mark.parametrize("line", [
        "not json",
        "[1,2,3]",
        json.dumps({"op": "route"}),                    # no tags
        json.dumps({"op": "warp", "tags": [0, 1]}),     # bad op
        json.dumps({"op": "route", "tags": []}),        # empty tags
        json.dumps({"op": "route", "tags": [0, "x"]}),  # non-int tag
        json.dumps({"op": "route", "tags": [0, 1], "v": 99}),
        json.dumps({"op": "route", "tags": [0, 1],
                    "stuck": [[1, 2]]}),                # not a triple
    ])
    def test_malformed_requests_raise(self, line):
        with pytest.raises(ProtocolError):
            protocol.decode_request(line)

    def test_response_roundtrip_omits_none_fields(self):
        response = protocol.RouteResponse(
            op="route", id=2, success=True, mapping=(1, 0),
            engine="numpy")
        line = protocol.encode_response(response)
        assert "per_stage" not in line and "error" not in line
        assert protocol.decode_response(line) == response

    def test_rejected_response_shape(self):
        request = protocol.RouteRequest(op="route", tags=(0, 1), id=9)
        rejected = protocol.rejected_response(request)
        assert rejected.status == "rejected"
        assert rejected.id == 9
        assert "busy" in rejected.error

    def test_coalesce_key_separates_incompatible_requests(self):
        base = protocol.RouteRequest(op="route", tags=(0, 1, 2, 3))
        assert base.coalesce_key() == protocol.RouteRequest(
            op="route", tags=(3, 2, 1, 0)).coalesce_key()
        for other in (
            protocol.RouteRequest(op="membership", tags=(0, 1, 2, 3)),
            protocol.RouteRequest(op="route", tags=(0, 1)),
            protocol.RouteRequest(op="route", tags=(0, 1, 2, 3),
                                  omega_mode=True),
            protocol.RouteRequest(op="route", tags=(0, 1, 2, 3),
                                  stuck=((0, 0, 1),)),
            protocol.RouteRequest(op="route", tags=(0, 1, 2, 3),
                                  stage_states=True),
        ):
            assert base.coalesce_key() != other.coalesce_key()

    def test_from_batch_result_slices_one_lane(self):
        rows = [(3, 1, 2, 0), (0, 1, 2, 3), (1, 0, 3, 2)]
        result = batch_self_route(rows, stage_states=True)
        for index, row in enumerate(rows):
            request = protocol.RouteRequest(op="route", tags=row,
                                            id=index,
                                            stage_states=True)
            response = protocol.from_batch_result(request, result,
                                                  index, "numpy")
            ok, dst = fast_self_route(row)
            assert response.success == ok
            assert response.mapping == dst
            assert response.stage_states is not None
            assert response.engine == "numpy"


# ----------------------------------------------------------------------
# Coalescer (fake clock)
# ----------------------------------------------------------------------

class TestCoalescer:
    def test_size_cutoff_flushes_immediately(self):
        queue = CoalescingQueue(max_batch=3, max_wait=1.0)
        assert queue.offer("k", "a", now=0.0) == (QUEUED, None)
        assert queue.offer("k", "b", now=0.0) == (QUEUED, None)
        verdict, batch = queue.offer("k", "c", now=0.0)
        assert verdict == FLUSH
        assert batch == ["a", "b", "c"]
        assert queue.pending == 0

    def test_latency_cutoff_uses_first_arrival(self):
        queue = CoalescingQueue(max_batch=100, max_wait=0.5)
        queue.offer("k", "a", now=10.0)
        queue.offer("k", "b", now=10.4)  # straggler does not extend
        assert queue.next_deadline() == pytest.approx(10.5)
        assert queue.due(now=10.49) == []
        due = queue.due(now=10.5)
        assert due == [("k", ["a", "b"])]
        assert queue.pending == 0
        assert queue.next_deadline() is None

    def test_keys_batch_independently(self):
        queue = CoalescingQueue(max_batch=2, max_wait=1.0)
        queue.offer("route", "r1", now=0.0)
        queue.offer("setup", "s1", now=0.2)
        verdict, batch = queue.offer("route", "r2", now=0.3)
        assert verdict == FLUSH and batch == ["r1", "r2"]
        # the setup bucket still waits on its own deadline
        assert queue.pending == 1
        assert queue.next_deadline() == pytest.approx(1.2)

    def test_backpressure_rejects_and_preserves_queue(self):
        queue = CoalescingQueue(max_batch=10, max_wait=1.0,
                                queue_limit=2)
        assert queue.offer("k", "a", now=0.0)[0] == QUEUED
        assert queue.offer("k", "b", now=0.0)[0] == QUEUED
        assert queue.offer("k", "c", now=0.0) == (REJECT, None)
        assert queue.pending == 2  # rejected item was not queued
        assert queue.due(now=2.0) == [("k", ["a", "b"])]

    def test_full_bucket_accepted_and_flushed_at_limit(self):
        # regression: an offer landing at queue_limit used to be shed
        # even when it completed a full bucket that flushes in the same
        # call — the capacity it occupies frees immediately
        queue = CoalescingQueue(max_batch=3, max_wait=1.0,
                                queue_limit=3)
        assert queue.offer("k", "a", now=0.0)[0] == QUEUED
        assert queue.offer("k", "b", now=0.0)[0] == QUEUED
        assert queue.offer("other", "x", now=0.0)[0] == QUEUED
        assert queue.pending == 3  # at the limit
        verdict, batch = queue.offer("k", "c", now=0.0)
        assert verdict == FLUSH
        assert batch == ["a", "b", "c"]
        assert queue.pending == 1  # only the other bucket remains
        # back at the limit, an offer that would NOT complete a
        # bucket is still shed
        assert queue.offer("two", "y", now=0.0)[0] == QUEUED
        assert queue.offer("three", "z", now=0.0)[0] == QUEUED
        assert queue.pending == 3
        assert queue.offer("fresh", "f", now=0.0) == (REJECT, None)
        assert queue.offer("two", "w", now=0.0) == (REJECT, None)
        assert queue.pending == 3

    def test_zero_wait_flushes_on_next_tick(self):
        # max_wait=0 pins the immediate-flush semantics: offer still
        # answers QUEUED (size is the only flush reason inside offer),
        # but the bucket is due the moment the driver ticks
        queue = CoalescingQueue(max_batch=10, max_wait=0.0)
        assert queue.offer("k", "a", now=5.0) == (QUEUED, None)
        assert queue.next_deadline() == pytest.approx(5.0)
        assert queue.due(now=5.0) == [("k", ["a"])]
        assert queue.pending == 0

    def test_drain_pops_everything(self):
        queue = CoalescingQueue(max_batch=10, max_wait=60.0)
        queue.offer("a", 1, now=0.0)
        queue.offer("b", 2, now=0.0)
        drained = dict(queue.drain())
        assert drained == {"a": [1], "b": [2]}
        assert queue.pending == 0

    @pytest.mark.parametrize("kwargs", [
        {"max_batch": 0}, {"max_wait": -1.0}, {"queue_limit": 0},
    ])
    def test_invalid_parameters_rejected(self, kwargs):
        from repro.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            CoalescingQueue(**kwargs)


# ----------------------------------------------------------------------
# Daemon end-to-end
# ----------------------------------------------------------------------

class TestDaemon:
    def test_concurrent_clients_coalesce_correctly(self, rng):
        rows = [random_permutation(8, rng).as_tuple()
                for _ in range(8)]
        expected = [fast_self_route(row) for row in rows]
        outcomes: dict = {}
        with _daemon(max_batch=16) as handle:
            host, port = handle.address

            def worker(index):
                with ServeClient(host, port) as client:
                    outcomes[index] = client.route_many(rows)

            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(3)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60.0)
        assert sorted(outcomes) == [0, 1, 2]
        for responses in outcomes.values():
            for response, (ok, dst) in zip(responses, expected):
                assert response.status == "ok"
                assert response.success == ok
                assert response.mapping == dst

    def test_coalesced_responses_byte_identical_to_direct(self, rng):
        """The tentpole parity claim: what the daemon sends over the
        wire for a coalesced batch is byte-for-byte what
        ``from_batch_result`` yields on a direct engine call."""
        order, batch = 3, 6
        rows = [random_permutation(8, rng).as_tuple()
                for _ in range(batch)]
        requests = [
            protocol.RouteRequest(op="route", tags=row, id=index + 1,
                                  stage_states=True)
            for index, row in enumerate(rows)
        ]
        with _daemon(max_batch=batch) as handle:
            host, port = handle.address
            with socket.create_connection((host, port),
                                          timeout=30.0) as sock:
                payload = "".join(
                    protocol.encode_request(request) + "\n"
                    for request in requests)
                sock.sendall(payload.encode("utf-8"))
                reader = sock.makefile("rb")
                wire_lines = [reader.readline() for _ in requests]
        engine = resolve_engine(None, order=order, batch_size=batch,
                                kind="route")
        direct = batch_self_route(rows, stage_states=True,
                                  engine=engine)
        by_id = {}
        for line in wire_lines:
            by_id[protocol.decode_response(line).id] = line
        for index, request in enumerate(requests):
            expected = (protocol.encode_response(
                protocol.from_batch_result(request, direct, index,
                                           engine)) + "\n") \
                .encode("utf-8")
            assert by_id[request.id] == expected

    def test_membership_and_setup_ops(self, rng):
        perms = [random_permutation(8, rng).as_tuple()
                 for _ in range(5)]
        with _daemon() as handle:
            host, port = handle.address
            with ServeClient(host, port) as client:
                membership = client.membership_many(perms)
                setups = client.setup_many(perms)
        for response, perm in zip(membership, perms):
            assert response.status == "ok"
            assert response.success == in_class_f(perm)
        direct = batch_setup_states(3, perms)
        for index, response in enumerate(setups):
            assert response.status == "ok"
            assert response.success is True
            assert response.stage_states == tuple(
                tuple(int(s) for s in column)
                for column in direct[index]
            )

    def test_setup_states_realize_permutation(self, rng):
        perm = random_permutation(8, rng)
        with _daemon() as handle:
            host, port = handle.address
            with ServeClient(host, port) as client:
                response = client.setup_many([perm.as_tuple()])[0]
        net = BenesNetwork(3)
        realized = net.route_with_states(
            [list(column) for column in response.stage_states]
        ).realized
        assert realized == perm

    def test_fault_injection_over_the_wire(self, rng):
        rows = [random_permutation(8, rng).as_tuple()
                for _ in range(4)]
        stuck = {(1, 0): True, (4, 3): False}
        with _daemon() as handle:
            host, port = handle.address
            with ServeClient(host, port) as client:
                responses = client.route_many(rows,
                                              stuck_switches=stuck)
        direct = batch_self_route(rows, stuck_switches=stuck)
        for index, response in enumerate(responses):
            assert response.success == bool(
                direct.success_mask[index])
            assert response.mapping == tuple(
                int(v) for v in direct.mappings[index])

    def test_backpressure_rejection_over_the_wire(self):
        # queue_limit=1: in one pipelined burst the first request
        # queues, the rest are shed with status="rejected"; the long
        # latency window guarantees they arrive before the flush.
        with _daemon(max_batch=64, max_wait_us=200_000.0,
                     queue_limit=1) as handle:
            host, port = handle.address
            with ServeClient(host, port) as client:
                responses = client.route_many(
                    [(3, 1, 2, 0), (0, 1, 2, 3), (1, 0, 3, 2)])
        statuses = [response.status for response in responses]
        assert statuses[0] == "ok"
        assert statuses[1] == statuses[2] == "rejected"

    def test_client_route_raises_server_busy(self):
        import time

        with _daemon(max_batch=64, max_wait_us=500_000.0,
                     queue_limit=1) as handle:
            host, port = handle.address
            with ServeClient(host, port) as first, \
                    ServeClient(host, port) as second:
                # The blocker's request arrives first (the sleep
                # guarantees it) and occupies the one queue slot for
                # the full latency window; route_many reports its
                # response without raising.
                blocker = threading.Thread(
                    target=first.route_many, args=([(3, 1, 2, 0)],))
                blocker.start()
                try:
                    time.sleep(0.1)
                    with pytest.raises(ServerBusyError):
                        second.route((0, 1, 2, 3))
                finally:
                    blocker.join(timeout=30.0)

    def test_error_response_for_bad_vector_width(self):
        with _daemon() as handle:
            host, port = handle.address
            with ServeClient(host, port) as client:
                response = client.request(protocol.RouteRequest(
                    op="route", tags=(0, 1, 2)))  # not a power of two
        assert response.status == "error"
        assert response.error

    def test_protocol_error_answered_not_fatal(self):
        with _daemon() as handle:
            host, port = handle.address
            with socket.create_connection((host, port),
                                          timeout=30.0) as sock:
                sock.sendall(b"this is not json\n")
                reader = sock.makefile("rb")
                response = protocol.decode_response(reader.readline())
                assert response.status == "error"
                assert response.id == -1
                # the connection survives a bad line
                request = protocol.RouteRequest(op="route",
                                                tags=(1, 0), id=5)
                sock.sendall((protocol.encode_request(request)
                              + "\n").encode("utf-8"))
                ok_response = protocol.decode_response(
                    reader.readline())
        assert ok_response.status == "ok"
        assert ok_response.id == 5

    def test_serve_counters(self, rng):
        obs.enable()
        rows = [random_permutation(8, rng).as_tuple()
                for _ in range(6)]
        with _daemon(max_batch=6) as handle:
            host, port = handle.address
            with ServeClient(host, port) as client:
                client.route_many(rows)
                client.membership_many(rows[:2])
        snap = obs.snapshot()["counters"]
        assert snap["serve.requests.route"] == 6
        assert snap["serve.requests.membership"] == 2
        assert snap["serve.batches"] >= 2
        assert snap["serve.connections.opened"] == 1
        assert snap["serve.connections.closed"] == 1

    def test_single_trace_tree(self, tmp_path, rng):
        """One serving session - one valid trace tree: every
        connection, request and batch span adopts the daemon root."""
        trace_path = tmp_path / "serve_trace.jsonl"
        obs.enable(trace=str(trace_path))
        rows = [random_permutation(8, rng).as_tuple()
                for _ in range(4)]
        with _daemon(max_batch=4) as handle:
            host, port = handle.address
            with ServeClient(host, port) as client:
                client.route_many(rows)
        obs.trace_off()
        result = subprocess.run(
            [sys.executable, str(TOOLS / "trace_tree.py"),
             str(trace_path), "--quiet", "--max-trees", "1",
             "--min-spans", "4"],
            capture_output=True, text=True)
        assert result.returncode == 0, result.stderr


class TestDaemonLifecycle:
    def test_stop_counts_unclosable_writers(self):
        # regression: a transport raising from close() during shutdown
        # was swallowed silently; it must bump serve.errors instead
        import asyncio

        from repro.serve.daemon import RoutingDaemon

        class _StubbornWriter:
            def close(self):
                raise RuntimeError("transport refuses to close")

        obs.enable()

        async def scenario():
            daemon = RoutingDaemon(ServeConfig(port=0,
                                               warm_orders=(2,)))
            await daemon.start()
            daemon._writers.add(_StubbornWriter())
            await daemon.stop()

        asyncio.run(scenario())
        assert obs.snapshot()["counters"]["serve.errors"] == 1

    def test_start_raises_on_bad_engine(self):
        with pytest.raises(Exception):
            start_in_thread(ServeConfig(port=0, engine="warp-drive"))

    def test_stop_is_idempotent(self):
        handle = _daemon()
        handle.stop()
        handle.stop()

    def test_ephemeral_ports_do_not_collide(self):
        with _daemon() as first, _daemon() as second:
            assert first.address[1] != second.address[1]
