"""Shared fixtures: seeded RNGs and pre-computed small F classes."""

from __future__ import annotations

import random
from itertools import permutations

import pytest

from repro.core import BenesNetwork, Permutation
from repro.core.membership import in_class_f


@pytest.fixture
def rng():
    """A deterministic RNG; reseed per-test for reproducibility."""
    return random.Random(0xBE5E5)


@pytest.fixture(scope="session")
def f_classes():
    """``{order: [Permutation, ...]}`` — every member of F(order) for
    order 1 and 2, computed once per session."""
    out = {}
    for order in (1, 2):
        members = [
            Permutation(p)
            for p in permutations(range(1 << order))
            if in_class_f(p)
        ]
        out[order] = members
    return out


@pytest.fixture(scope="session")
def f3_members():
    """Every member of F(3) (11632 permutations), session-cached."""
    return [
        Permutation(p)
        for p in permutations(range(8))
        if in_class_f(p)
    ]


@pytest.fixture(scope="session")
def networks():
    """Shared BenesNetwork instances for orders 1..6."""
    return {order: BenesNetwork(order) for order in range(1, 7)}
