"""Fault-injection tests: stuck switch control logic.

These tests document a structural property of the self-routing scheme:
the first ``n-1`` stages only *distribute* signals between the two
sub-networks, and the downstream switches re-derive their states from
the tags that actually arrive — so a stuck fault there is often
**masked** (the network self-heals through the other sub-network).  The
last ``n`` stages write destination bits directly, so any flipped state
there always misroutes.
"""

import pytest

from repro.core import BenesNetwork, random_class_f
from repro.errors import SwitchStateError


class TestStuckSwitches:
    def test_stuck_at_correct_state_is_harmless(self):
        net = BenesNetwork(3)
        result = net.route(list(range(8)),
                           stuck_switches={(0, 0): 0, (2, 3): 0})
        assert result.success

    def test_first_half_fault_masked_on_identity(self):
        # a stuck-cross in the distribution stages detours two signals
        # into the other sub-network, where self-routing still delivers
        net = BenesNetwork(3)
        for stage in range(net.order - 1):
            result = net.route(list(range(8)),
                               stuck_switches={(stage, 0): 1})
            assert result.success, stage

    def test_last_n_stage_fault_always_fatal(self):
        # stages n-1 .. 2n-2 write destination bits: a flipped state
        # there misroutes exactly the two signals through the switch
        net = BenesNetwork(3)
        for stage in range(net.order - 1, net.n_stages):
            result = net.route(list(range(8)),
                               stuck_switches={(stage, 0): 1})
            assert not result.success, stage
            assert len(result.misrouted) == 2

    def test_first_half_fault_sometimes_fatal(self, rng):
        # masking is not guaranteed for general F permutations: the
        # detoured sub-problem can leave class F
        net = BenesNetwork(3)
        masked = fatal = 0
        for _ in range(100):
            perm = random_class_f(3, rng)
            healthy = net.route(perm, trace=True)
            flipped = 1 - int(healthy.stages[0].states[0])
            result = net.route(perm, stuck_switches={(0, 0): flipped})
            if result.success:
                masked += 1
            else:
                fatal += 1
        assert masked > 0 and fatal > 0

    def test_result_still_a_permutation_under_faults(self, rng):
        net = BenesNetwork(4)
        perm = random_class_f(4, rng)
        result = net.route(
            perm, stuck_switches={(1, 2): 1, (5, 0): 0}
        )
        assert sorted(result.realized) == list(range(16))

    def test_faulty_state_recorded_in_trace(self):
        net = BenesNetwork(2)
        result = net.route(list(range(4)), trace=True,
                           stuck_switches={(1, 1): 1})
        assert int(result.stages[1].states[1]) == 1

    def test_validation(self):
        net = BenesNetwork(2)
        with pytest.raises(SwitchStateError):
            net.route(list(range(4)), stuck_switches={(9, 0): 0})
        with pytest.raises(SwitchStateError):
            net.route(list(range(4)), stuck_switches={(0, 9): 0})
        with pytest.raises(SwitchStateError):
            net.route(list(range(4)), stuck_switches={(0, 0): 5})

    def test_faults_do_not_leak_between_routes(self):
        net = BenesNetwork(3)
        fatal_stage = net.order  # in the forced half
        assert not net.route(
            list(range(8)), stuck_switches={(fatal_stage, 0): 1}
        ).success
        assert net.route(list(range(8))).success

    def test_misroute_set_grows_with_fault_count(self):
        net = BenesNetwork(4)
        last = net.n_stages - 1
        one = net.route(list(range(16)),
                        stuck_switches={(last, 0): 1})
        two = net.route(list(range(16)),
                        stuck_switches={(last, 0): 1, (last, 3): 1})
        assert len(one.misrouted) == 2
        assert len(two.misrouted) == 4
