"""Unit tests for the named permutation families (Section II items 1-6)."""

import pytest

from repro.core import in_class_f
from repro.core.bits import bit
from repro.errors import SpecificationError
from repro.permclasses.families import (
    conditional_exchange,
    cyclic_shift,
    inverse_p_ordering,
    modular_inverse_odd,
    p_ordering,
    p_ordering_with_shift,
    segment_cyclic_shift,
)
from repro.permclasses.omega import is_inverse_omega, is_omega


class TestCyclicShift:
    def test_definition(self):
        assert cyclic_shift(2, 1).as_tuple() == (1, 2, 3, 0)

    def test_wraps_modulo_n(self):
        assert cyclic_shift(2, 5) == cyclic_shift(2, 1)
        assert cyclic_shift(2, -1) == cyclic_shift(2, 3)

    def test_zero_shift_is_identity(self):
        assert cyclic_shift(3, 0).is_identity()

    @pytest.mark.parametrize("order", [2, 3, 4])
    def test_in_inverse_omega_and_f(self, order):
        for k in range(1 << order):
            p = cyclic_shift(order, k)
            assert is_inverse_omega(p)
            assert in_class_f(p)

    def test_also_in_omega(self):
        # the paper notes these Omega^-1 families are also in Omega
        for k in range(8):
            assert is_omega(cyclic_shift(3, k))


class TestPOrdering:
    def test_definition(self):
        assert p_ordering(3, 3).as_tuple() == tuple(
            (3 * i) % 8 for i in range(8)
        )

    def test_rejects_even_p(self):
        with pytest.raises(SpecificationError):
            p_ordering(3, 2)

    def test_inverse_unscrambles(self):
        for order in (3, 4):
            for p in (3, 5, 7):
                fwd = p_ordering(order, p)
                back = inverse_p_ordering(order, p)
                assert fwd.then(back).is_identity()

    def test_modular_inverse(self):
        for order in (3, 4, 5):
            for p in (1, 3, 5, 7, 9):
                q = modular_inverse_odd(p, order)
                assert (p * q) % (1 << order) == 1
                assert q % 2 == 1

    def test_modular_inverse_rejects_even(self):
        with pytest.raises(SpecificationError):
            modular_inverse_odd(4, 3)

    @pytest.mark.parametrize("order", [3, 4, 5])
    def test_in_inverse_omega_and_f(self, order):
        for p in (1, 3, 5, 7):
            perm = p_ordering(order, p)
            assert is_inverse_omega(perm)
            assert in_class_f(perm)


class TestPOrderingWithShift:
    def test_definition(self):
        perm = p_ordering_with_shift(3, 3, 2)
        assert perm.as_tuple() == tuple((3 * i + 2) % 8 for i in range(8))

    def test_degenerates(self):
        assert p_ordering_with_shift(3, 1, 0).is_identity()
        assert p_ordering_with_shift(3, 1, 5) == cyclic_shift(3, 5)
        assert p_ordering_with_shift(3, 5, 0) == p_ordering(3, 5)

    def test_rejects_even_p(self):
        with pytest.raises(SpecificationError):
            p_ordering_with_shift(3, 4, 1)

    def test_lenfant_lambda_in_f(self):
        for p in (3, 5):
            for k in range(8):
                perm = p_ordering_with_shift(3, p, k)
                assert is_inverse_omega(perm)
                assert in_class_f(perm)


class TestSegmentCyclicShift:
    def test_high_bits_preserved(self):
        perm = segment_cyclic_shift(4, 2, 1)
        for i in range(16):
            assert perm[i] >> 2 == i >> 2

    def test_shift_within_segment(self):
        perm = segment_cyclic_shift(3, 2, 1)
        assert perm.as_tuple() == (1, 2, 3, 0, 5, 6, 7, 4)

    def test_full_segment_is_plain_shift(self):
        assert segment_cyclic_shift(3, 3, 5) == cyclic_shift(3, 5)

    def test_bounds(self):
        with pytest.raises(SpecificationError):
            segment_cyclic_shift(3, 0, 1)
        with pytest.raises(SpecificationError):
            segment_cyclic_shift(3, 4, 1)

    def test_lenfant_delta_in_f(self):
        for v in (1, 2, 3):
            for k in range(1 << v):
                perm = segment_cyclic_shift(3, v, k)
                assert is_inverse_omega(perm)
                assert in_class_f(perm)


class TestConditionalExchange:
    def test_definition(self):
        # exchange pair (2i, 2i+1) iff bit k of 2i is 1
        perm = conditional_exchange(3, 2)
        assert perm.as_tuple() == (0, 1, 2, 3, 5, 4, 7, 6)

    def test_bit_formula(self):
        for order in (2, 3, 4):
            for k in range(1, order):
                perm = conditional_exchange(order, k)
                for i in range(1 << order):
                    assert bit(perm[i], 0) == bit(i, 0) ^ bit(i, k)
                    assert perm[i] >> 1 == i >> 1

    def test_is_involution(self):
        assert conditional_exchange(4, 2).is_involution()

    def test_bounds(self):
        with pytest.raises(SpecificationError):
            conditional_exchange(3, 0)
        with pytest.raises(SpecificationError):
            conditional_exchange(3, 3)

    def test_lenfant_eta_in_f(self):
        for order in (2, 3, 4):
            for k in range(1, order):
                perm = conditional_exchange(order, k)
                assert is_inverse_omega(perm)
                assert in_class_f(perm)
