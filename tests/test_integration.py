"""Cross-model integration tests.

The repository contains five independent realizations of "perform a
class-F permutation": the structural Benes network, the Theorem 1
recursion, and the CCC / PSC / MCC simulations.  These tests pin them
together — every model must agree on success *and* move data
identically — and exercise end-to-end flows combining permutation
classes, networks and machines.
"""

from itertools import permutations

import pytest

from repro.core import (
    BenesNetwork,
    Permutation,
    PipelinedBenes,
    in_class_f,
    random_permutation,
    setup_states,
)
from repro.networks import BitonicNetwork, Crossbar, OmegaNetwork
from repro.permclasses import (
    BPCSpec,
    cyclic_shift,
    is_omega,
    matrix_transpose,
    table_i_specs,
)
from repro.simd import (
    CCC,
    MCC,
    PSC,
    permute_ccc,
    permute_mcc,
    permute_psc,
    sort_permute_ccc,
)


class TestFiveWayAgreement:
    def test_success_agreement_exhaustive_n2(self):
        net = BenesNetwork(2)
        for p in permutations(range(4)):
            votes = {
                "theorem1": in_class_f(p),
                "structural": net.route(p).success,
                "ccc": permute_ccc(CCC(2), p).success,
                "psc": permute_psc(PSC(2), p).success,
                "mcc": permute_mcc(MCC(1), p).success,
            }
            assert len(set(votes.values())) == 1, (p, votes)

    def test_data_agreement_sampled_n4(self, rng):
        net = BenesNetwork(4)
        data = [f"payload-{i}" for i in range(16)]
        checked = 0
        while checked < 25:
            p = random_permutation(16, rng)
            if not in_class_f(p):
                continue
            checked += 1
            expected = Permutation(p).apply(data)
            assert net.permute(p, data) == expected
            assert list(permute_ccc(CCC(4), p, data=data).data) == expected
            assert list(permute_psc(PSC(4), p, data=data).data) == expected
            assert list(permute_mcc(MCC(2), p, data=data).data) == expected

    def test_mcc_matches_ccc_on_all_f3(self, f3_members, rng):
        sample = rng.sample(f3_members, 40)
        for p in sample:
            assert permute_mcc(MCC(1) if p.size == 4 else MCC(2), p
                               ).success if p.size in (4, 16) else True
        # order 3 is not square; verify CCC/PSC pair instead
        for p in sample:
            assert permute_ccc(CCC(3), p).success
            assert permute_psc(PSC(3), p).success


class TestClassPipelines:
    def test_table_i_on_every_backend(self):
        order = 4
        net = BenesNetwork(order)
        for name, spec in table_i_specs(order):
            perm = spec.to_permutation()
            assert net.route(perm).success, name
            assert permute_ccc(CCC(order), perm, bpc_spec=spec).success
            assert permute_psc(PSC(order), perm).success
            assert permute_mcc(MCC(order // 2), perm,
                               bpc_spec=spec).success

    def test_non_f_fallbacks(self):
        # a permutation outside F: self-routing fails, but Waksman
        # setup, bitonic network, crossbar and CCC sort all realize it
        perm = Permutation((1, 3, 2, 0))
        assert not in_class_f(perm)
        net = BenesNetwork(2)
        assert net.route_with_states(setup_states(perm)).realized == perm
        assert BitonicNetwork(2).route(perm).success
        assert Crossbar(2).route(perm).success
        assert sort_permute_ccc(CCC(2), perm).success
        # and the omega network handles it too (it is in Omega(2))
        assert OmegaNetwork(2).route(perm).success

    def test_omega_permutation_three_ways(self):
        order = 3
        perm = cyclic_shift(order, 3)
        assert is_omega(perm)
        assert BenesNetwork(order).route(perm, omega_mode=True).success
        assert OmegaNetwork(order).route(perm).success
        assert permute_ccc(CCC(order), perm, omega=True).success

    def test_matrix_transpose_end_to_end(self):
        # transpose a 4x4 matrix of strings through every machine
        q = 2
        spec = matrix_transpose(2 * q)
        perm = spec.to_permutation()
        flat = [f"a[{r}][{c}]" for r in range(4) for c in range(4)]
        transposed = [f"a[{c}][{r}]" for r in range(4) for c in range(4)]
        assert BenesNetwork(4).permute(perm, flat) == transposed
        assert list(permute_mcc(MCC(q), perm, data=flat).data) == transposed


class TestPipelineIntegration:
    def test_streaming_table_i(self, rng):
        order = 4
        pipe = PipelinedBenes(order)
        vectors = [list(spec.to_permutation())
                   for _, spec in table_i_specs(order)]
        outs = pipe.run(vectors)
        assert len(outs) == len(vectors)
        assert all(o.result.success for o in outs)
        assert all(o.latency == 2 * order - 1 for o in outs)

    def test_pipeline_matches_unpipelined(self, rng):
        order = 3
        net = BenesNetwork(order)
        pipe = PipelinedBenes(order)
        specs = [BPCSpec.random(order, rng) for _ in range(4)]
        vectors = [list(s.to_permutation()) for s in specs]
        outs = pipe.run(vectors)
        for tags, out in zip(vectors, outs):
            assert out.result.delivered == net.route(tags).delivered


class TestScaling:
    @pytest.mark.parametrize("order", [5, 6, 7, 8])
    def test_larger_networks(self, order, rng):
        net = BenesNetwork(order)
        spec = BPCSpec.random(order, rng)
        perm = spec.to_permutation()
        result = net.route(perm)
        assert result.success
        run = permute_ccc(CCC(order), perm)
        assert run.success and run.unit_routes == 2 * order - 1

    def test_waksman_scales(self, rng):
        order = 8
        net = BenesNetwork(order)
        p = random_permutation(1 << order, rng)
        assert net.route_with_states(setup_states(p)).realized == p
