"""Tests for the vectorized universal setup (``repro.accel.setup``)
and the shard executor (``repro.accel.executor``).

Parity strategy (mirrors ``tests/test_accel.py``):

- **state-level** parity against the serial Waksman looping for
  order <= 3 (exhaustive) — the batched leader-election walk must be
  byte-identical to ``setup_states``, not merely realize the same
  permutations;
- hypothesis-randomized state parity for orders 4-7;
- the two-pass factorization against the scalar decomposition, and the
  fully-routed composition against the input permutation;
- every entry point re-tested on the pure-Python fallback path;
- executor determinism: sharded results (process pool *and* thread
  fallback, any worker count) are identical to the inline call.
"""

from __future__ import annotations

import random
from itertools import permutations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.accel._np as _np_mod
from repro.accel import (
    batch_route_two_pass,
    batch_route_with_states,
    batch_self_route,
    batch_setup_states,
    batch_two_pass,
    cache_clear,
    cache_stats,
    executor_shutdown,
    have_numpy,
    setup_plan,
    setup_plan_cache,
)
from repro.accel import executor as _executor
from repro.core import BenesNetwork, random_permutation
from repro.core.fastpath import fast_self_route
from repro.core.twopass import straight_map, two_pass_decomposition
from repro.core.waksman import setup_states
from repro.errors import InvalidParameterError, InvalidPermutationError
from repro.simd import batch_parallel_setup, parallel_setup_states


@pytest.fixture
def no_numpy(monkeypatch):
    """Force every accel primitive onto the pure-Python fallback."""
    monkeypatch.setattr(_np_mod, "FORCE_FALLBACK", True)
    return None


@pytest.fixture
def low_threshold(monkeypatch):
    """Let tiny batches reach the shard executor."""
    monkeypatch.setattr(_executor, "SHARD_THRESHOLD", 4)
    return None


@pytest.fixture
def rng():
    return random.Random(1968)


def _as_nested(states_row):
    return [[int(v) for v in column] for column in states_row]


def _random_perms(order, rng, batch):
    n = 1 << order
    return [random_permutation(n, rng).as_tuple() for _ in range(batch)]


def _assert_setup_parity(order, perms):
    states = batch_setup_states(order, perms)
    for i, perm in enumerate(perms):
        assert _as_nested(states[i]) == setup_states(perm)


class TestBatchSetupStates:
    @pytest.mark.parametrize("order", [1, 2, 3])
    def test_exhaustive_state_parity(self, order):
        perms = list(permutations(range(1 << order)))
        _assert_setup_parity(order, perms)

    @settings(max_examples=30, deadline=None)
    @given(order=st.integers(min_value=4, max_value=7), data=st.data())
    def test_hypothesis_state_parity(self, order, data):
        n = 1 << order
        perms = data.draw(st.lists(st.permutations(range(n)),
                                   min_size=1, max_size=3))
        _assert_setup_parity(order, perms)

    def test_states_realize_the_permutations(self, rng):
        order = 6
        perms = _random_perms(order, rng, 16)
        states = batch_setup_states(order, perms)
        # route_with_states mappings are the realized input -> output
        realized = batch_route_with_states(states, order).mappings
        for i, perm in enumerate(perms):
            assert tuple(int(v) for v in realized[i]) == perm

    def test_matches_cic_parallel_model(self, rng):
        """The leader-election rule is the CIC algorithm's — one batch
        call agrees with the scalar data-parallel model too."""
        order = 5
        perms = _random_perms(order, rng, 8)
        states = batch_setup_states(order, perms)
        for i, perm in enumerate(perms):
            assert _as_nested(states[i]) == \
                parallel_setup_states(perm).states

    def test_rejects_non_permutations(self):
        if not have_numpy():
            pytest.skip("validation is the NumPy path's")
        with pytest.raises(InvalidPermutationError):
            batch_setup_states(2, [[0, 1, 1, 3]])

    def test_fallback_parity(self, no_numpy, rng):
        order = 4
        perms = _random_perms(order, rng, 12)
        states = batch_setup_states(order, perms)
        assert isinstance(states, list)
        for i, perm in enumerate(perms):
            assert states[i] == setup_states(perm)


class TestBatchTwoPass:
    @pytest.mark.parametrize("order", [1, 2, 3])
    def test_exhaustive_factor_parity(self, order):
        perms = list(permutations(range(1 << order)))
        if order == 3:
            perms = perms[::97]  # thinned: scalar side is slow
        first, second = batch_two_pass(order, perms)
        for i, perm in enumerate(perms):
            want_first, want_second = two_pass_decomposition(perm)
            assert tuple(int(v) for v in first[i]) == \
                want_first.as_tuple()
            assert tuple(int(v) for v in second[i]) == \
                want_second.as_tuple()

    @pytest.mark.parametrize("order", [4, 6])
    def test_random_factor_parity(self, order, rng):
        perms = _random_perms(order, rng, 8)
        first, second = batch_two_pass(order, perms)
        for i, perm in enumerate(perms):
            want_first, want_second = two_pass_decomposition(perm)
            assert tuple(int(v) for v in first[i]) == \
                want_first.as_tuple()
            assert tuple(int(v) for v in second[i]) == \
                want_second.as_tuple()

    def test_route_two_pass_delivers_everything(self, rng):
        order = 5
        perms = _random_perms(order, rng, 16)
        result = batch_route_two_pass(order, perms)
        assert all(bool(ok) for ok in result.success_mask)
        for i, perm in enumerate(perms):
            delivered = [0] * len(perm)
            for output, source in enumerate(result.mappings[i]):
                delivered[int(source)] = output
            assert tuple(delivered) == perm

    def test_omega_pass_matches_structural_network(self, rng):
        """Pass 2 runs the engine in omega mode; pin it to the
        structural network's omega-mode routing."""
        order = 3
        net = BenesNetwork(order)
        perms = _random_perms(order, rng, 8)
        _, second = batch_two_pass(order, perms)
        rows = [tuple(int(v) for v in row) for row in second]
        batch = batch_self_route(rows, omega_mode=True)
        for i, row in enumerate(rows):
            result = net.route(row, omega_mode=True)
            assert bool(batch.success_mask[i]) == result.success
            assert tuple(int(v) for v in batch.mappings[i]) == \
                result.delivered
        # and against the scalar fast path
        for i, row in enumerate(rows):
            ok, delivered = fast_self_route(row, omega_mode=True)
            assert bool(batch.success_mask[i]) == ok
            assert tuple(int(v) for v in batch.mappings[i]) == delivered

    def test_fallback_parity(self, no_numpy, rng):
        order = 4
        perms = _random_perms(order, rng, 8)
        first, second = batch_two_pass(order, perms)
        for i, perm in enumerate(perms):
            want_first, want_second = two_pass_decomposition(perm)
            assert first[i] == want_first.as_tuple()
            assert second[i] == want_second.as_tuple()
        result = batch_route_two_pass(order, perms)
        assert all(result.success_mask)
        for i, perm in enumerate(perms):
            delivered = [0] * len(perm)
            for output, source in enumerate(result.mappings[i]):
                delivered[source] = output
            assert tuple(delivered) == perm


class TestShardExecutor:
    def test_resolve_workers(self):
        assert _executor.resolve_workers(False) == 1
        assert _executor.resolve_workers(None) == 1
        assert _executor.resolve_workers(3) == 3
        assert _executor.resolve_workers(True) >= 1
        with pytest.raises(InvalidParameterError):
            _executor.resolve_workers(0)

    def test_wants_shards_threshold(self, low_threshold):
        assert not _executor.wants_shards(False, 10 ** 6)
        assert not _executor.wants_shards(2, 3)   # below threshold
        assert _executor.wants_shards(2, 4)
        assert not _executor.wants_shards(1, 4)   # one worker: inline

    def test_shard_bounds_cover_contiguously(self):
        for n_items, n_shards in ((10, 3), (4, 4), (7, 2), (5, 1)):
            bounds = _executor._shard_bounds(n_items, n_shards)
            assert bounds[0][0] == 0 and bounds[-1][1] == n_items
            for (_, stop), (start, _) in zip(bounds, bounds[1:]):
                assert stop == start

    @pytest.mark.parametrize("workers", [2, 3])
    def test_process_determinism(self, low_threshold, workers, rng):
        """Sharded results are identical to inline for every entry
        point and any worker count (explicit ints exercise the process
        pool even on single-core machines)."""
        if not have_numpy():
            pytest.skip("process path needs NumPy")
        np = _np_mod.numpy_or_none()
        order = 4
        perms = _random_perms(order, rng, 16)
        try:
            inline = batch_setup_states(order, perms)
            sharded = batch_setup_states(order, perms, parallel=workers)
            assert np.array_equal(inline, sharded)
            f_inline, s_inline = batch_two_pass(order, perms)
            f_shard, s_shard = batch_two_pass(order, perms,
                                              parallel=workers)
            assert np.array_equal(f_inline, f_shard)
            assert np.array_equal(s_inline, s_shard)
            r_inline = batch_route_two_pass(order, perms)
            r_shard = batch_route_two_pass(order, perms,
                                           parallel=workers)
            assert np.array_equal(r_inline.mappings, r_shard.mappings)
            assert np.array_equal(np.asarray(r_inline.success_mask),
                                  np.asarray(r_shard.success_mask))
            b_inline = batch_self_route(perms, stage_data=True)
            b_shard = batch_self_route(perms, stage_data=True,
                                       parallel=workers)
            assert np.array_equal(b_inline.mappings, b_shard.mappings)
            assert np.array_equal(b_inline.per_stage, b_shard.per_stage)
        finally:
            executor_shutdown()

    def test_thread_fallback_determinism(self, no_numpy, low_threshold,
                                         rng):
        """Without NumPy shards run on threads — same values."""
        order = 4
        perms = _random_perms(order, rng, 12)
        assert batch_setup_states(order, perms) == \
            batch_setup_states(order, perms, parallel=2)
        assert batch_two_pass(order, perms) == \
            batch_two_pass(order, perms, parallel=2)
        inline = batch_route_two_pass(order, perms)
        sharded = batch_route_two_pass(order, perms, parallel=3)
        assert list(inline.success_mask) == list(sharded.success_mask)
        assert [tuple(m) for m in inline.mappings] == \
            [tuple(m) for m in sharded.mappings]

    def test_parallel_false_never_dispatches(self, low_threshold,
                                             monkeypatch, rng):
        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("dispatch called with parallel=False")

        monkeypatch.setattr(_executor, "dispatch", boom)
        perms = _random_perms(3, rng, 8)
        batch_setup_states(3, perms)
        batch_two_pass(3, perms)
        batch_self_route(perms)


class TestSetupPlanCache:
    def test_cache_stats_exposes_setup_plans(self):
        cache_clear()
        stats = cache_stats()
        assert set(stats) == {"plan", "topology", "setup", "bitslice",
                              "composed"}
        assert stats["setup"]["size"] == 0
        setup_plan(3)
        setup_plan(3)
        stats = cache_stats()
        assert stats["setup"]["size"] == 1
        assert stats["setup"]["hits"] >= 1
        assert setup_plan_cache().stats() == stats["setup"]

    def test_plan_matches_straight_map(self):
        plan = setup_plan(3)
        assert plan.straight == straight_map(3).as_tuple()
        inverse = [0] * len(plan.straight)
        for i, v in enumerate(plan.straight):
            inverse[v] = i
        assert list(plan.straight_inverse) == inverse


class TestBatchParallelSetup:
    def test_matches_scalar_runs(self, rng):
        perms = _random_perms(4, rng, 6)
        runs = batch_parallel_setup(perms)
        for perm, run in zip(perms, runs):
            reference = parallel_setup_states(perm)
            assert run.states == reference.states
            assert run.route_steps == reference.route_steps
            assert run.compute_steps == reference.compute_steps

    def test_fallback_matches_too(self, no_numpy, rng):
        perms = _random_perms(3, rng, 4)
        runs = batch_parallel_setup(perms)
        for perm, run in zip(perms, runs):
            assert run.states == parallel_setup_states(perm).states

    def test_empty_batch(self):
        assert batch_parallel_setup([]) == []
