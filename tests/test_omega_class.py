"""Unit tests for the Omega / InverseOmega class predicates."""

from itertools import permutations

import pytest

from repro.core import BenesNetwork, Permutation, in_class_f
from repro.networks import InverseOmegaNetwork, OmegaNetwork
from repro.permclasses.omega import (
    is_inverse_omega,
    is_omega,
    omega_count,
    omega_window,
)


class TestOmegaWindow:
    def test_stage_zero_is_source(self):
        assert omega_window(0b101, 0b010, 0, 3) == 0b101

    def test_stage_n_is_destination(self):
        assert omega_window(0b101, 0b010, 3, 3) == 0b010

    def test_mixes_low_source_high_dest(self):
        # stage 1 of order 3: low 2 bits of i, then high 1 bit of d
        assert omega_window(0b110, 0b101, 1, 3) == 0b101

    def test_range_check(self):
        with pytest.raises(ValueError):
            omega_window(0, 0, 4, 3)


class TestPredicates:
    def test_fig5_is_omega_not_f(self):
        assert is_omega([1, 3, 2, 0])
        assert not in_class_f([1, 3, 2, 0])

    def test_identity_in_both(self):
        assert is_omega(list(range(8)))
        assert is_inverse_omega(list(range(8)))

    def test_inverse_relationship(self, rng):
        from repro.core import random_permutation
        for _ in range(100):
            p = random_permutation(8, rng)
            assert is_inverse_omega(p) == is_omega(p.inverse())

    def test_exact_counts(self):
        # |Omega(n)| = 2^{n N/2}
        for order in (1, 2):
            hits = sum(
                1 for p in permutations(range(1 << order)) if is_omega(p)
            )
            assert hits == omega_count(order)

    def test_inverse_class_same_size(self):
        hits = sum(
            1 for p in permutations(range(4)) if is_inverse_omega(p)
        )
        assert hits == omega_count(2)


class TestAgreementWithNetworks:
    @pytest.mark.parametrize("order", [1, 2])
    def test_omega_predicate_matches_network_exhaustively(self, order):
        net = OmegaNetwork(order)
        for p in permutations(range(1 << order)):
            assert net.route(p).success == is_omega(p)

    @pytest.mark.parametrize("order", [1, 2])
    def test_inverse_predicate_matches_network_exhaustively(self, order):
        net = InverseOmegaNetwork(order)
        for p in permutations(range(1 << order)):
            assert net.route(p).success == is_inverse_omega(p)

    def test_sampled_agreement_order3(self, rng):
        from repro.core import random_permutation
        om, iom = OmegaNetwork(3), InverseOmegaNetwork(3)
        for _ in range(150):
            p = random_permutation(8, rng)
            assert om.route(p).success == is_omega(p)
            assert iom.route(p).success == is_inverse_omega(p)


class TestTheorem3:
    def test_inverse_omega_subset_of_f_exhaustive(self):
        for order in (1, 2):
            for p in permutations(range(1 << order)):
                if is_inverse_omega(p):
                    assert in_class_f(p)

    def test_inverse_omega_subset_of_f_sampled(self, f3_members):
        f3 = {p.as_tuple() for p in f3_members}
        for p in permutations(range(8)):
            if is_inverse_omega(p):
                assert p in f3

    def test_omega_not_subset_of_f(self):
        # the containment fails in the other direction (Fig. 5)
        assert any(
            is_omega(p) and not in_class_f(p)
            for p in permutations(range(4))
        )


class TestOmegaBitExtension:
    def test_all_omega_realizable_in_omega_mode(self):
        for order in (2, 3):
            net = BenesNetwork(order)
            for p in permutations(range(1 << order)):
                if is_omega(p):
                    assert net.route(p, omega_mode=True).success
