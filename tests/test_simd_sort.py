"""Unit tests for the sort-based permutation baseline."""

from itertools import permutations

import pytest

from repro.core import random_permutation
from repro.errors import MachineError
from repro.simd import (
    CCC,
    PSC,
    bitonic_compare_count,
    sort_permute_ccc,
    sort_permute_psc,
)


class TestCompareCount:
    def test_formula(self):
        assert bitonic_compare_count(1) == 1
        assert bitonic_compare_count(4) == 10
        assert bitonic_compare_count(10) == 55


class TestCCCSort:
    def test_realizes_everything_exhaustive_n2(self):
        for p in permutations(range(4)):
            assert sort_permute_ccc(CCC(2), p).success

    def test_realizes_everything_exhaustive_n3(self):
        for p in permutations(range(8)):
            assert sort_permute_ccc(CCC(3), p).success

    def test_realizes_random_large(self, rng):
        for order in (4, 5, 6):
            for _ in range(10):
                p = random_permutation(1 << order, rng)
                assert sort_permute_ccc(CCC(order), p).success

    def test_interchange_count(self):
        for order in (2, 3, 4, 5):
            run = sort_permute_ccc(CCC(order), list(range(1 << order)))
            assert run.route_instructions == bitonic_compare_count(order)

    def test_cost_exceeds_class_f_algorithm(self):
        # Theta(log^2 N) vs 2 log N - 1 — the paper's comparison
        from repro.simd import permute_ccc
        order = 6
        sort_run = sort_permute_ccc(CCC(order), list(range(64)))
        f_run = permute_ccc(CCC(order), list(range(64)))
        assert sort_run.unit_routes > f_run.unit_routes

    def test_data_follows_tags(self, rng):
        order = 4
        p = random_permutation(16, rng)
        data = [f"d{i}" for i in range(16)]
        run = sort_permute_ccc(CCC(order), p, data=data)
        for i in range(16):
            assert run.data[p[i]] == data[i]

    def test_size_mismatch(self):
        with pytest.raises(MachineError):
            sort_permute_ccc(CCC(3), [0, 1])


class TestPSCSort:
    def test_realizes_everything_exhaustive_n2(self):
        for p in permutations(range(4)):
            assert sort_permute_psc(PSC(2), p).success

    def test_realizes_random_large(self, rng):
        for order in (3, 4, 5):
            for _ in range(10):
                p = random_permutation(1 << order, rng)
                assert sort_permute_psc(PSC(order), p).success

    def test_shuffle_count_is_n_squared(self):
        # Stone's schedule: n passes of n shuffles each
        order = 4
        run = sort_permute_psc(PSC(order), list(range(16)))
        # at least n^2 shuffles; exchanges add at most n(n+1)/2
        assert run.unit_routes >= order * order
        assert run.unit_routes <= order * order + bitonic_compare_count(order)

    def test_data_follows_tags(self, rng):
        p = random_permutation(16, rng)
        run = sort_permute_psc(PSC(4), p)
        for i in range(16):
            assert run.data[p[i]] == i

    def test_cost_order_log_squared(self):
        # both machines pay Theta(log^2 N); PSC constant is larger
        order = 5
        ccc_run = sort_permute_ccc(CCC(order), list(range(32)))
        psc_run = sort_permute_psc(PSC(order), list(range(32)))
        assert psc_run.unit_routes > ccc_run.unit_routes
