"""Unit tests for switch-state bit packing and the lower-control
ablation variant."""

from itertools import permutations

import pytest

from repro.core import (
    BenesNetwork,
    pack_states,
    random_permutation,
    setup_states,
    state_bit_count,
    unpack_states,
)
from repro.core.membership import in_class_f
from repro.errors import SwitchStateError


class TestStatePacking:
    def test_bit_count_formula(self):
        # the paper: "It returns N log N - N/2 bits"
        for order in range(1, 10):
            n = 1 << order
            assert state_bit_count(order) == n * order - n // 2

    def test_roundtrip(self, rng):
        for order in (1, 2, 3, 5, 7):
            perm = random_permutation(1 << order, rng)
            states = setup_states(perm)
            packed = pack_states(states)
            assert unpack_states(packed, order) == states

    def test_packed_length(self):
        for order in (1, 3, 6):
            states = setup_states(list(range(1 << order)))
            packed = pack_states(states)
            assert len(packed) == (state_bit_count(order) + 7) // 8

    def test_packed_states_route(self, rng):
        order = 4
        net = BenesNetwork(order)
        perm = random_permutation(16, rng)
        wire_format = pack_states(setup_states(perm))   # "the machine
        # returns N log N - N/2 bits" — reload them and route
        states = unpack_states(wire_format, order)
        assert net.route_with_states(states).realized == perm

    def test_pack_rejects_bad_state(self):
        with pytest.raises(SwitchStateError):
            pack_states([[0, 2]])

    def test_unpack_rejects_wrong_length(self):
        with pytest.raises(SwitchStateError):
            unpack_states(b"\x00", 3)

    def test_unpack_rejects_dirty_padding(self):
        # B(1): 1 state bit; the remaining 7 bits must be zero
        with pytest.raises(SwitchStateError):
            unpack_states(bytes([0x81]), 1)

    def test_identity_packs_to_zeros(self):
        net = BenesNetwork(3)
        packed = pack_states(net.straight_states())
        assert packed == bytes(len(packed))


class TestLowerControlVariant:
    def test_mirror_class_exhaustive(self):
        # D is lower-routable iff i -> ~D(~i) is upper-routable
        for order in (2, 3):
            n = 1 << order
            lower_net = BenesNetwork(order, control="lower")
            count = 0
            for p in permutations(range(n)):
                conjugated = tuple(
                    (n - 1) ^ p[(n - 1) ^ i] for i in range(n)
                )
                assert lower_net.route(p).success == in_class_f(
                    conjugated
                )
                count += lower_net.route(p).success
            # |F_lower| = |F| by symmetry
            assert count == (20 if order == 2 else 11632)
            if order == 3:
                break  # n=3 loop above is already the expensive one

    def test_identity_routable_under_both_rules(self):
        for control in ("upper", "lower"):
            net = BenesNetwork(3, control=control)
            assert net.route(list(range(8))).success

    def test_fig5_fails_under_both_rules(self):
        for control in ("upper", "lower"):
            net = BenesNetwork(2, control=control)
            assert not net.route([1, 3, 2, 0]).success

    def test_classes_coincide_at_order2(self):
        # a small-size coincidence: F(2) is invariant under the
        # complement conjugation, so both rules route the same set
        upper = BenesNetwork(2)
        lower = BenesNetwork(2, control="lower")
        for p in permutations(range(4)):
            assert upper.route(p).success == lower.route(p).success

    def test_classes_differ_at_order3(self):
        # ... but from n = 3 the two rules route different (equal-size)
        # classes: 6528 of the 40320 permutations flip membership
        upper = BenesNetwork(3)
        lower = BenesNetwork(3, control="lower")
        differ = sum(
            upper.route(p).success != lower.route(p).success
            for p in permutations(range(8))
        )
        assert differ == 6528

    def test_invalid_control_rejected(self):
        with pytest.raises(SwitchStateError):
            BenesNetwork(2, control="sideways")

    def test_repr_shows_variant(self):
        assert "lower" in repr(BenesNetwork(2, control="lower"))
        assert "lower" not in repr(BenesNetwork(2))
