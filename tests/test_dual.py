"""Unit tests for the dual-network SIMD computer (Section IV)."""

import pytest

from repro.core import Permutation, random_class_f, random_permutation
from repro.errors import MachineError
from repro.permclasses import BPCSpec
from repro.simd import DualNetworkComputer


class TestConstruction:
    def test_defaults(self):
        machine = DualNetworkComputer(4)
        assert machine.n_pes == 16
        assert machine.step_gate_cost == 10
        assert machine.benes.order == 4

    def test_validation(self):
        with pytest.raises(MachineError):
            DualNetworkComputer(0)
        with pytest.raises(MachineError):
            DualNetworkComputer(3, e_network="mesh")
        with pytest.raises(MachineError):
            DualNetworkComputer(3, step_gate_cost=0)


class TestDispatch:
    def test_f_permutation_prefers_benes(self, rng):
        machine = DualNetworkComputer(4, step_gate_cost=10)
        perm = BPCSpec.random(4, rng).to_permutation()
        report = machine.permute(perm)
        assert report.in_f
        assert report.chosen == "benes"
        # B(n) transit: 2 log N - 1 gate delays
        assert report.gate_delays == 7
        assert report.benes_gate_delays == 7
        # the E-network would have paid unit-routes x overhead
        assert report.e_network_gate_delays > report.gate_delays

    def test_non_f_permutation_uses_e_network(self, rng):
        machine = DualNetworkComputer(2)
        perm = Permutation((1, 3, 2, 0))
        report = machine.permute(perm)
        assert not report.in_f
        assert report.chosen == "e-network"
        assert report.benes_gate_delays is None
        assert report.unit_routes > 0

    def test_cheap_overhead_flips_choice(self, rng):
        # with unit instruction overhead the PSC's 4 log N - 3 routes
        # cost less than the Benes 2 log N - 1 gate delays... they
        # don't: 4n-3 > 2n-1 for n > 1, so benes still wins; force via
        # step cost by checking both orders of magnitude
        perm = BPCSpec.random(4, rng).to_permutation()
        expensive = DualNetworkComputer(4, step_gate_cost=50)
        cheap = DualNetworkComputer(4, step_gate_cost=1)
        assert expensive.permute(perm).chosen == "benes"
        report = cheap.permute(perm)
        # 4*4-3 = 13 routes * 1 > 7 gate delays: benes still preferred
        assert report.chosen == "benes"

    def test_data_routed_correctly_both_paths(self, rng):
        machine = DualNetworkComputer(3)
        data = list("abcdefgh")
        f_perm = random_class_f(3, rng)
        non_f = random_permutation(8, rng)
        from repro.core import in_class_f
        while in_class_f(non_f):
            non_f = random_permutation(8, rng)
        for perm in (f_perm, non_f):
            report = machine.permute(perm, data)
            assert list(report.data) == Permutation(perm).apply(data)


class TestForce:
    def test_force_e_network(self, rng):
        machine = DualNetworkComputer(3)
        perm = random_class_f(3, rng)
        report = machine.permute(perm, force="e-network")
        assert report.chosen == "e-network"
        assert report.unit_routes > 0

    def test_force_benes_on_non_f_raises(self):
        machine = DualNetworkComputer(2)
        with pytest.raises(MachineError):
            machine.permute([1, 3, 2, 0], force="benes")

    def test_force_unknown_raises(self):
        machine = DualNetworkComputer(2)
        with pytest.raises(MachineError):
            machine.permute([0, 1, 2, 3], force="telepathy")


class TestEstimates:
    def test_estimate_matches_permute(self, rng):
        machine = DualNetworkComputer(4)
        perm = BPCSpec.random(4, rng).to_permutation()
        benes_cost, e_cost, member = machine.estimate_costs(perm)
        report = machine.permute(perm)
        assert member == report.in_f
        assert benes_cost == report.benes_gate_delays
        assert e_cost == report.e_network_gate_delays

    def test_ccc_backend(self, rng):
        machine = DualNetworkComputer(3, e_network="ccc")
        perm = random_class_f(3, rng)
        report = machine.permute(perm, force="e-network")
        # CCC F-routing: 2 log N - 1 interchanges
        assert report.unit_routes == 5

    def test_size_mismatch(self):
        with pytest.raises(MachineError):
            DualNetworkComputer(3).permute([0, 1])
