"""Smoke tests: every example script runs end to end."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=lambda p: p.stem
)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"


def test_examples_present():
    # deliverable (b): quickstart plus at least two domain scenarios
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 3


def test_quickstart_shows_success_and_failure(capsys):
    runpy.run_path(
        str(Path(__file__).parent.parent / "examples" / "quickstart.py"),
        run_name="__main__",
    )
    out = capsys.readouterr().out
    assert "success: False" in out      # the Fig. 5 demonstration
    assert "omega-bit mode success  : True" in out


def test_fft_example_matches_dft(capsys):
    runpy.run_path(
        str(Path(__file__).parent.parent / "examples"
            / "fft_bit_reversal.py"),
        run_name="__main__",
    )
    out = capsys.readouterr().out
    assert "(OK)" in out
    assert "latency (first frame) : 7 clocks" in out


def test_transpose_example_all_backends_agree(capsys):
    runpy.run_path(
        str(Path(__file__).parent.parent / "examples"
            / "simd_matrix_transpose.py"),
        run_name="__main__",
    )
    out = capsys.readouterr().out
    assert "CCC:  success=True" in out
    assert "PSC:  success=True" in out
    assert "MCC:  success=True" in out
