"""Tests for the differential verification subsystem (``repro.verify``)
and the engine-divergence bugfixes that ride along with it.

Covers the normalized engine adapters, the four fuzzer families, the
exhaustive fault-parity campaign, the shrinker (including the planted
control-bit mutant it must catch and minimize), the seeded harness and
its JSON report, the ``benes verify`` CLI, and the batch entry points'
rejection of unsupported scalar-path options.
"""

import json
import random

import pytest

import repro.obs as obs
from repro.accel import (
    batch_in_class_f,
    batch_route_with_states,
    batch_self_route,
    batch_setup_states,
)
from repro.cli import main
from repro.errors import InvalidParameterError, SwitchStateError
from repro.verify import (
    VerifyConfig,
    check_membership,
    check_selfroute,
    check_twopass,
    check_universal,
    mutant_self_route_engine,
    run_campaign,
    run_engine,
    run_self_test,
    run_verify,
    shrink,
)
from repro.verify.engines import (
    SELF_ROUTE_ENGINES,
    force_fallback,
)
from repro.verify.shrink import regression_test_source
from repro.verify.workloads import perm_rows, structured_rows, tag_rows

#: Engine subset without the spawn-pool ``sharded`` entry — most tests
#: don't need worker processes; the sharded leg gets its own test.
FAST_ENGINES = {
    name: engine for name, engine in SELF_ROUTE_ENGINES.items()
    if name != "sharded"
}


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestEngineAdapters:
    def test_run_engine_normalizes(self):
        run = run_engine("fastpath", [(3, 2, 1, 0), (0, 1, 2, 3)], 2)
        assert run.success == (True, True)
        assert run.mappings == ((3, 2, 1, 0), (0, 1, 2, 3))
        assert len(run.states) == 2
        assert all(len(per) == 3 for per in run.states)  # B(2) stages

    def test_unknown_engine_rejected(self):
        with pytest.raises(InvalidParameterError):
            run_engine("warp-drive", [(0, 1)], 1)

    def test_all_engines_equal_on_structured_rows(self):
        for order in (2, 3):
            rows = structured_rows(order)
            runs = {name: engine(rows, order)
                    for name, engine in FAST_ENGINES.items()}
            baseline = runs["scalar"]
            for name, run in runs.items():
                assert run.success == baseline.success, name
                assert run.mappings == baseline.mappings, name
                assert run.states == baseline.states, name

    def test_mutant_engine_diverges_from_oracle(self):
        mutant = mutant_self_route_engine(2)  # first destination stage
        rows = perm_rows(3, 12, random.Random(0))
        healthy = SELF_ROUTE_ENGINES["fastpath"](rows, 3)
        broken = mutant(rows, 3)
        assert healthy.states != broken.states

    def test_duplicate_tags_agree_without_scalar(self):
        rng = random.Random(1)
        rows = [tuple(rng.randrange(8) for _ in range(8))
                for _ in range(6)]
        nonscalar = {k: v for k, v in FAST_ENGINES.items()
                     if k != "scalar"}
        assert check_selfroute(rows, 3, engines=nonscalar) == []


class TestFuzzerFamilies:
    def test_selfroute_clean_all_options(self):
        rng = random.Random(2)
        for order in (2, 3):
            rows = perm_rows(order, 10, rng)
            assert check_selfroute(rows, order,
                                   engines=FAST_ENGINES) == []
            assert check_selfroute(rows, order, omega_mode=True,
                                   engines=FAST_ENGINES) == []
            assert check_selfroute(
                rows, order, stuck_switches={(order, 0): 1},
                engines=FAST_ENGINES,
            ) == []

    def test_sharded_engine_agrees(self):
        rows = perm_rows(3, 12, random.Random(3))
        engines = {"fastpath": SELF_ROUTE_ENGINES["fastpath"],
                   "sharded": SELF_ROUTE_ENGINES["sharded"]}
        assert check_selfroute(rows, 3, engines=engines) == []

    def test_membership_universal_twopass_clean(self):
        rng = random.Random(4)
        for order in (2, 3):
            rows = perm_rows(order, 10, rng)
            assert check_membership(rows, order) == []
            assert check_universal(rows, order) == []
            assert check_twopass(rows, order) == []

    def test_catches_planted_mutant(self):
        engines = {
            "scalar": SELF_ROUTE_ENGINES["scalar"],
            "mutant": mutant_self_route_engine(2),
        }
        rows = perm_rows(3, 16, random.Random(5))
        found = check_selfroute(rows, 3, engines=engines)
        assert found
        assert found[0].engine_b == "mutant(stage=2)"
        assert found[0].family == "selfroute"

    def test_disagreement_json_safe(self):
        engines = {
            "scalar": SELF_ROUTE_ENGINES["scalar"],
            "mutant": mutant_self_route_engine(2),
        }
        rows = perm_rows(3, 8, random.Random(6))
        found = check_selfroute(rows, 3, stuck_switches={(0, 0): 1},
                                engines=engines)
        assert found
        payload = json.dumps(found[0].to_dict())
        assert "stuck_switches" in payload


class TestShrink:
    def _mutant_check(self):
        engines = {
            "scalar": SELF_ROUTE_ENGINES["scalar"],
            "mutant": mutant_self_route_engine(2),
        }

        def check(order, rows, options):
            found = check_selfroute(
                rows, order,
                omega_mode=bool(options.get("omega_mode")),
                stuck_switches=options.get("stuck_switches"),
                engines=engines,
            )
            return found[0].field if found else None

        return check

    def test_shrinks_to_single_row(self):
        check = self._mutant_check()
        rows = perm_rows(3, 16, random.Random(7))
        result = shrink(3, rows, {"omega_mode": False,
                                  "stuck_switches": None}, check)
        assert result is not None
        assert result.batch_minimal and len(result.rows) == 1
        assert check(3, list(result.rows), result.options)

    def test_row_moves_toward_identity(self):
        check = self._mutant_check()
        rows = perm_rows(3, 16, random.Random(8))
        result = shrink(3, rows, {"omega_mode": False,
                                  "stuck_switches": None}, check)
        # greedy identity pass: every remaining off-identity position
        # is load-bearing, so re-fixing any of them must pass
        row = result.rows[0]
        fixed = sum(1 for i, v in enumerate(row) if v == i)
        assert fixed >= len(row) - 4

    def test_passing_scenario_returns_none(self):
        check = self._mutant_check()
        assert shrink(3, [tuple(range(8))],
                      {"omega_mode": False, "stuck_switches": None},
                      check) is None

    def test_regression_test_source_compiles(self):
        check = self._mutant_check()
        rows = perm_rows(3, 8, random.Random(9))
        result = shrink(3, rows, {"omega_mode": False,
                                  "stuck_switches": None}, check)
        source = regression_test_source(result, "scalar", "fastpath",
                                        slug="compiles")
        compile(source, "<generated>", "exec")
        namespace = {}
        exec(source, namespace)
        # scalar and fastpath genuinely agree, so the generated test
        # body must pass when aimed at two healthy engines
        namespace["test_verify_regression_compiles"]()


class TestFaultCampaign:
    def test_exhaustive_parity_small_orders(self):
        for order in (2, 3):
            campaign = run_campaign(order, rng=random.Random(10),
                                    n_perms=6)
            assert campaign.ok, campaign.to_dict()
            assert campaign.n_faults == \
                (2 * order - 1) * (1 << order) // 2 * 2

    def test_dichotomy_structure(self):
        campaign = run_campaign(3, rng=random.Random(11), n_perms=10)
        kinds = {s.stage: s.kind for s in campaign.stages}
        assert kinds == {0: "distribution", 1: "distribution",
                         2: "destination", 3: "destination",
                         4: "destination"}
        # distribution stages must show actual masking, destination
        # stages must never mask (the paper's dichotomy)
        assert any(s.masked > 0 for s in campaign.stages
                   if s.kind == "distribution")
        assert all(s.masked == 0 and s.fatal > 0
                   for s in campaign.stages
                   if s.kind == "destination")

    def test_campaign_on_fallback(self):
        with force_fallback():
            campaign = run_campaign(2, rng=random.Random(12), n_perms=4)
        assert campaign.ok

    def test_report_roundtrips_json(self):
        campaign = run_campaign(2, rng=random.Random(13), n_perms=4)
        payload = json.loads(json.dumps(campaign.to_dict()))
        assert payload["ok"] and payload["dichotomy_holds"]
        assert len(payload["stages"]) == 3


class TestHarness:
    CONFIG = VerifyConfig(
        seed=0, budget_seconds=0.0, orders=(2, 3), batch=8,
        fault_orders=(2,), fault_perms=4,
        engines=("scalar", "fastpath", "batch"),
    )

    def test_report_ok_and_schema(self):
        report = run_verify(self.CONFIG)
        assert report.ok and report.rounds == 1
        payload = json.loads(report.to_json())
        assert payload["schema_version"] == 1
        assert payload["ok"] is True
        assert payload["cases"] == {"selfroute": 2, "membership": 2,
                                    "universal": 2, "twopass": 2,
                                    "composed": 2, "partial": 2}
        assert payload["self_test"]["caught"] is True

    def test_self_test_shrinks_to_minimal(self):
        result = run_self_test(0)
        assert result["caught"] and result["minimal"]
        assert len(result["shrunk"]["rows"]) == 1
        assert "def test_verify_regression_self_test"  \
            in result["regression_test"]

    def test_deterministic_for_seed(self):
        a = run_verify(self.CONFIG).to_dict()
        b = run_verify(self.CONFIG).to_dict()
        a.pop("elapsed_seconds"), b.pop("elapsed_seconds")
        assert a == b

    def test_emits_verify_metrics(self):
        obs.enable()
        run_verify(self.CONFIG)
        counters = obs.snapshot()["counters"]
        obs.disable()
        assert counters["verify.rounds"] == 1
        assert counters["verify.cases.selfroute"] == 2
        assert counters["verify.faults.configs"] == 12
        assert "verify.disagreements" not in counters

    def test_fallback_harness_run(self):
        with force_fallback():
            report = run_verify(self.CONFIG)
        assert report.ok and report.numpy is False


class TestCLIVerify:
    ARGS = ["verify", "--seed", "0", "--budget", "0s",
            "--orders", "2,3", "--batch", "8",
            "--fault-orders", "2", "--fault-perms", "4",
            "--engines", "scalar,fastpath,batch"]

    def test_exit_zero_and_summary(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "verdict: OK" in out
        assert "self-test : mutant at stage" in out
        assert "dichotomy holds" in out

    def test_json_report_written(self, capsys, tmp_path):
        path = tmp_path / "VERIFY.json"
        assert main(self.ARGS + ["--json", str(path),
                                 "--profile"]) == 0
        payload = json.loads(path.read_text())
        assert payload["ok"] is True
        assert payload["schema_version"] == 1
        counters = payload["metrics"]["counters"]
        assert counters["verify.rounds"] >= 1

    def test_budget_suffixes(self, capsys):
        assert main(self.ARGS[:3] + ["--budget", "500ms",
                                     "--orders", "2", "--batch", "4",
                                     "--fault-orders", "2",
                                     "--engines",
                                     "scalar,fastpath"]) == 0

    def test_bad_budget_rejected(self):
        with pytest.raises(SystemExit):
            main(self.ARGS[:3] + ["--budget", "soon"])

    def test_unknown_engine_rejected(self):
        with pytest.raises(SystemExit):
            main(["verify", "--engines", "scalar,warp-drive"])

    def test_unknown_family_rejected(self):
        with pytest.raises(SystemExit):
            main(["verify", "--families", "selfroute,astrology"])


class TestScalarOptionRejection:
    """Satellite: accel batch entry points must refuse scalar-path
    options instead of silently ignoring them (the engines would
    diverge unnoticed)."""

    def test_batch_self_route_rejects_trace(self):
        with pytest.raises(InvalidParameterError) as exc:
            batch_self_route([(0, 1, 2, 3)], trace=True)
        assert "trace" in str(exc.value)

    def test_batch_self_route_rejects_payloads(self):
        with pytest.raises(InvalidParameterError):
            batch_self_route([(0, 1, 2, 3)], payloads=["a"] * 4)

    def test_batch_in_class_f_rejects_stuck(self):
        with pytest.raises(InvalidParameterError):
            batch_in_class_f([(0, 1, 2, 3)],
                             stuck_switches={(0, 0): 1})

    def test_batch_route_with_states_rejects_options(self):
        states = batch_setup_states(2, [(0, 1, 2, 3)])
        with pytest.raises(InvalidParameterError):
            batch_route_with_states(states, 2, omega_mode=True)

    def test_stuck_validation_is_eager(self):
        # bad fault coordinates fail loudly before any routing
        with pytest.raises(SwitchStateError):
            batch_self_route([(0, 1, 2, 3)],
                             stuck_switches={(99, 0): 1})
        with pytest.raises(SwitchStateError):
            batch_self_route([(0, 1, 2, 3)],
                             stuck_switches={(0, 0): 7})
