"""Unit tests for the ASCII figure renderings."""

import pytest

from repro.core import BenesNetwork, Permutation
from repro.permclasses.bpc import bit_reversal
from repro.simd import CCC, permute_ccc
from repro.viz import (
    format_binary,
    render_ccc_trace,
    render_network_diagram,
    render_route,
    render_switch,
    render_topology,
)


class TestFormatBinary:
    def test_padding(self):
        assert format_binary(5, 4) == "0101"
        assert format_binary(0, 3) == "000"


class TestRenderSwitch:
    def test_mentions_both_states(self):
        art = render_switch()
        assert "state 0" in art and "state 1" in art


class TestRenderTopology:
    def test_counts_in_header(self):
        art = render_topology(3)
        assert "N = 8" in art
        assert "20 binary switches" in art
        assert "5 stages" in art

    def test_link_annotations(self):
        art = render_topology(3)
        assert "unshuffle (into sub-networks)" in art
        assert "shuffle (out of sub-networks)" in art

    def test_control_bit_column(self):
        lines = render_topology(2).splitlines()
        bits = [line.split()[1] for line in lines[3:]]
        assert bits == ["0", "1", "0"]


class TestRenderRoute:
    def test_fig4_succeeds(self):
        net = BenesNetwork(3)
        perm = bit_reversal(3).to_permutation()
        art = render_route(net.route(perm, trace=True), 3)
        assert "success: True" in art
        assert "000" in art  # binary tags

    def test_fig5_reports_misrouted(self):
        net = BenesNetwork(2)
        art = render_route(net.route([1, 3, 2, 0], trace=True), 2)
        assert "success: False" in art
        assert "misrouted outputs: [0, 2]" in art

    def test_decimal_mode(self):
        net = BenesNetwork(2)
        art = render_route(net.route([3, 2, 1, 0], trace=True), 2,
                           binary=False)
        assert "success: True" in art

    def test_requires_trace(self):
        net = BenesNetwork(2)
        with pytest.raises(ValueError):
            render_route(net.route([0, 1, 2, 3]), 2)

    def test_row_count(self):
        net = BenesNetwork(3)
        art = render_route(net.route(list(range(8)), trace=True), 3)
        # header + 8 rows + blank + success line
        assert len(art.splitlines()) == 11


class TestRenderNetworkDiagram:
    def test_row_count(self):
        art = render_network_diagram(3)
        # header + blank + 8 wire rows + blank + control line
        assert len(art.splitlines()) == 12

    def test_links_shown(self):
        art = render_network_diagram(2)
        assert "> 2" in art  # the unshuffle crossing

    def test_control_bits_line(self):
        assert "0, 1, 2, 1, 0" in render_network_diagram(3)

    def test_legibility_guard(self):
        with pytest.raises(ValueError):
            render_network_diagram(7)


class TestRenderCCCTrace:
    def test_fig6_shape(self):
        perm = bit_reversal(3).to_permutation()
        run = permute_ccc(CCC(3), perm, trace=True)
        art = render_ccc_trace(run, 3)
        assert "iteration bits b: 0, 1, 2, 1, 0" in art
        assert "success: True" in art
        assert "D(i)^5" in art
        assert len(art.splitlines()) == 2 + 8 + 2  # headers + PEs + footer

    def test_requires_trace(self):
        run = permute_ccc(CCC(2), [0, 1, 2, 3])
        with pytest.raises(ValueError):
            render_ccc_trace(run, 2)
