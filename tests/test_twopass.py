"""Unit tests for two-pass universality."""

from itertools import permutations

import pytest

from repro.core import BenesNetwork, Permutation, random_permutation
from repro.core.twopass import route_two_pass, two_pass_decomposition
from repro.permclasses import is_inverse_omega, is_omega


class TestDecomposition:
    @pytest.mark.parametrize("order", [1, 2])
    def test_exhaustive_small(self, order):
        for p in permutations(range(1 << order)):
            first, second = two_pass_decomposition(p)
            assert first.then(second) == Permutation(p)
            assert is_inverse_omega(first)
            assert is_omega(second)

    def test_exhaustive_n3(self):
        for p in permutations(range(8)):
            first, second = two_pass_decomposition(p)
            assert first.then(second) == Permutation(p)
            assert is_inverse_omega(first)
            assert is_omega(second)

    @pytest.mark.parametrize("order", [4, 5, 6, 7])
    def test_random_large(self, order, rng):
        for _ in range(10):
            p = random_permutation(1 << order, rng)
            first, second = two_pass_decomposition(p)
            assert first.then(second) == p
            assert is_inverse_omega(first)
            assert is_omega(second)

    def test_fig5_counterexample_decomposes(self):
        first, second = two_pass_decomposition([1, 3, 2, 0])
        assert first.then(second) == (1, 3, 2, 0)
        assert is_inverse_omega(first)
        assert is_omega(second)

    def test_identity_decomposes_trivially(self):
        first, second = two_pass_decomposition(list(range(8)))
        assert first.then(second).is_identity()


class TestRouting:
    def test_routes_arbitrary_permutations(self, rng):
        net = BenesNetwork(4)
        for _ in range(20):
            p = random_permutation(16, rng)
            data = [f"d{i}" for i in range(16)]
            assert route_two_pass(p, data, net) == p.apply(data)

    def test_both_passes_self_routed(self, rng):
        # the whole point: no external setup anywhere; route() with
        # require_success would raise if either pass weren't routable
        net = BenesNetwork(3)
        p = Permutation((1, 3, 2, 0, 5, 7, 6, 4))
        route_two_pass(p, list(range(8)), net)  # must not raise

    def test_network_created_when_missing(self):
        out = route_two_pass([1, 3, 2, 0], list("abcd"))
        assert out == ["d", "a", "c", "b"]

    def test_works_for_f_members_too(self, rng):
        from repro.core import random_class_f
        net = BenesNetwork(4)
        p = random_class_f(4, rng)
        data = list(range(100, 116))
        assert route_two_pass(p, data, net) == p.apply(data)
