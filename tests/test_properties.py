"""Property-based tests (hypothesis) on the core invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BenesNetwork,
    Permutation,
    in_class_f,
    setup_states,
)
from repro.core import bits as bitmod
from repro.core.membership import derive_upper_lower
from repro.permclasses import BPCSpec, is_bpc, is_inverse_omega, is_omega
from repro.simd import CCC, PSC, permute_ccc, permute_psc


def perms(order):
    """Strategy: a random permutation of 2^order elements."""
    n = 1 << order
    return st.permutations(list(range(n))).map(Permutation)


def bpc_specs(order):
    """Strategy: a random BPC(order) spec."""
    return st.tuples(
        st.permutations(list(range(order))),
        st.lists(st.booleans(), min_size=order, max_size=order),
    ).map(lambda t: BPCSpec(tuple(t[0]), tuple(t[1])))


ints = st.integers(min_value=0, max_value=(1 << 12) - 1)


class TestBitProperties:
    @given(ints, st.integers(min_value=1, max_value=12))
    def test_reverse_is_involution(self, value, width):
        value &= (1 << width) - 1
        assert bitmod.reverse_bits(
            bitmod.reverse_bits(value, width), width
        ) == value

    @given(ints, st.integers(min_value=1, max_value=12),
           st.integers(min_value=0, max_value=24))
    def test_rotate_roundtrip(self, value, width, k):
        value &= (1 << width) - 1
        left = bitmod.rotate_left(value, width, k)
        assert bitmod.rotate_right(left, width, k) == value

    @given(ints, st.integers(min_value=1, max_value=12))
    def test_bits_of_from_bits_roundtrip(self, value, width):
        value &= (1 << width) - 1
        assert bitmod.from_bits(bitmod.bits_of(value, width)) == value

    @given(ints, st.integers(min_value=0, max_value=11))
    def test_flip_changes_exactly_one_bit(self, value, position):
        flipped = bitmod.flip_bit(value, position)
        assert bitmod.popcount(value ^ flipped) == 1


class TestPermutationProperties:
    @given(perms(3))
    def test_inverse_roundtrip(self, p):
        assert p.inverse().inverse() == p
        assert p.then(p.inverse()).is_identity()

    @given(perms(3), perms(3))
    def test_then_associativity_with_apply(self, p, q):
        data = list(range(8))
        assert p.then(q).apply(data) == q.apply(p.apply(data))

    @given(perms(2), perms(2), perms(2))
    def test_composition_associative(self, p, q, r):
        assert p.then(q).then(r) == p.then(q.then(r))

    @given(perms(3))
    def test_cycles_reconstruct(self, p):
        assert Permutation.from_cycles(p.cycles(), 8) == p


class TestClassFProperties:
    @given(perms(3))
    @settings(max_examples=150)
    def test_recursion_matches_structural_simulation(self, p):
        assert in_class_f(p) == BenesNetwork(3).route(p).success

    @given(perms(3))
    @settings(max_examples=100)
    def test_derived_halves_partition(self, p):
        upper, lower = derive_upper_lower(p)
        assert sorted(upper + lower) == list(range(8))

    @given(perms(3))
    @settings(max_examples=100)
    def test_waksman_realizes_everything(self, p):
        net = BenesNetwork(3)
        assert net.route_with_states(setup_states(p)).realized == p

    @given(perms(3))
    @settings(max_examples=80)
    def test_simd_simulations_agree(self, p):
        expected = in_class_f(p)
        assert permute_ccc(CCC(3), p).success == expected
        assert permute_psc(PSC(3), p).success == expected

    @given(perms(2))
    def test_inverse_omega_implies_f(self, p):
        if is_inverse_omega(p):
            assert in_class_f(p)


class TestBPCProperties:
    @given(bpc_specs(4))
    @settings(max_examples=100)
    def test_theorem2(self, spec):
        assert in_class_f(spec.to_permutation())

    @given(bpc_specs(4))
    def test_recognition_roundtrip(self, spec):
        assert is_bpc(spec.to_permutation()) == spec

    @given(bpc_specs(4), bpc_specs(4))
    def test_composition_homomorphism(self, a, b):
        assert a.then(b).to_permutation() == (
            a.to_permutation().then(b.to_permutation())
        )

    @given(bpc_specs(5))
    def test_inverse_homomorphism(self, spec):
        assert spec.inverse().to_permutation() == (
            spec.to_permutation().inverse()
        )

    @given(bpc_specs(4))
    def test_signed_token_roundtrip(self, spec):
        assert BPCSpec.from_signed(spec.signed_tokens()) == spec


class TestOmegaProperties:
    @given(perms(3))
    def test_omega_inverse_duality(self, p):
        assert is_inverse_omega(p) == is_omega(p.inverse())

    @given(perms(3))
    @settings(max_examples=80)
    def test_omega_mode_realizes_omega(self, p):
        if is_omega(p):
            assert BenesNetwork(3).route(p, omega_mode=True).success
