"""Run every module's doctests as part of the suite."""

import doctest

import pytest

import repro.core.benes
import repro.core.bits
import repro.core.membership
import repro.core.permutation
import repro.core.pipeline
import repro.core.waksman
import repro.core.sampling
import repro.core.states
import repro.core.twopass
import repro.networks.batcher
import repro.networks.crossbar
import repro.networks.delta
import repro.networks.gcn
import repro.networks.oddeven
import repro.networks.omega_net
import repro.permclasses.bpc
import repro.permclasses.families
import repro.permclasses.blocks
import repro.permclasses.omega
import repro.planner
import repro.simd.parallel_setup

MODULES = [
    repro.core.bits,
    repro.core.permutation,
    repro.core.benes,
    repro.core.membership,
    repro.core.pipeline,
    repro.core.sampling,
    repro.core.states,
    repro.core.twopass,
    repro.core.waksman,
    repro.networks.batcher,
    repro.networks.crossbar,
    repro.networks.delta,
    repro.networks.gcn,
    repro.networks.oddeven,
    repro.networks.omega_net,
    repro.permclasses.bpc,
    repro.permclasses.blocks,
    repro.permclasses.families,
    repro.permclasses.omega,
    repro.planner,
    repro.simd.parallel_setup,
]


@pytest.mark.parametrize(
    "module", MODULES, ids=lambda m: m.__name__
)
def test_doctests(module):
    result = doctest.testmod(module)
    assert result.failed == 0, (
        f"{result.failed} doctest failure(s) in {module.__name__}"
    )
