"""Unit tests for class-F sampling and the transfer-matrix count."""

import random
from itertools import permutations

import pytest

from repro.core import (
    BenesNetwork,
    Permutation,
    class_f_count_recursive,
    in_class_f,
    pair_weight,
    random_class_f,
    random_class_f_uniform,
)
from repro.core.membership import derive_upper_lower, enumerate_class_f
from repro.core.sampling import TRANSFER_MATRIX, _mat_pow


class TestTransferMatrix:
    def test_matrix_values(self):
        # (beta_i, beta_sigma(i)): (0,0)->2 arrangements, (0,1)->1,
        # (1,0)->1, (1,1)->forbidden
        assert TRANSFER_MATRIX == ((2, 1), (1, 0))

    def test_mat_pow(self):
        m = TRANSFER_MATRIX
        assert _mat_pow(m, 0) == ((1, 0), (0, 1))
        assert _mat_pow(m, 1) == m
        assert _mat_pow(m, 2) == ((5, 2), (2, 1))


class TestPairWeight:
    def test_identity_pair(self):
        # u = l = identity: sigma = identity, N/2 fixed points, each a
        # 1-cycle with trace(M) = 2
        ident = Permutation.identity(4)
        assert pair_weight(ident, ident) == 2 ** 4

    def test_weights_sum_to_class_size_n2(self):
        members = list(enumerate_class_f(1))
        total = sum(
            pair_weight(u, l) for u in members for l in members
        )
        assert total == 20  # |F(2)|

    def test_weight_counts_actual_members(self):
        # for a fixed (u, l) pair at order 2, count the F(2) members
        # whose Theorem 1 decomposition matches, and compare
        u = Permutation((1, 0))
        l = Permutation((0, 1))
        expected = pair_weight(u, l)
        actual = 0
        for p in permutations(range(4)):
            if not in_class_f(p):
                continue
            upper, lower = derive_upper_lower(p)
            if (tuple(x >> 1 for x in upper) == u.as_tuple()
                    and tuple(x >> 1 for x in lower) == l.as_tuple()):
                actual += 1
        assert actual == expected


class TestRecursiveCount:
    def test_known_values(self):
        assert class_f_count_recursive(1) == 2
        assert class_f_count_recursive(2) == 20
        assert class_f_count_recursive(3) == 11632

    def test_guard(self):
        with pytest.raises(ValueError):
            class_f_count_recursive(4)
        with pytest.raises(ValueError):
            class_f_count_recursive(0)


class TestRandomClassF:
    @pytest.mark.parametrize("order", [1, 2, 3, 4, 6, 8])
    def test_samples_are_members(self, order, rng):
        for _ in range(15):
            assert in_class_f(random_class_f(order, rng))

    def test_full_support_at_n2(self, rng):
        seen = {random_class_f(2, rng).as_tuple() for _ in range(3000)}
        assert len(seen) == 20

    def test_samples_route_on_network(self, rng):
        net = BenesNetwork(7)
        for _ in range(5):
            assert net.route(random_class_f(7, rng)).success

    def test_order_one(self, rng):
        seen = {random_class_f(1, rng).as_tuple() for _ in range(50)}
        assert seen == {(0, 1), (1, 0)}

    def test_rejects_order_zero(self, rng):
        with pytest.raises(ValueError):
            random_class_f(0, rng)

    def test_deterministic_with_seed(self):
        a = random_class_f(5, random.Random(42))
        b = random_class_f(5, random.Random(42))
        assert a == b


class TestRandomClassFUniform:
    def test_members_only(self, rng):
        for order in (2, 3, 4):
            for _ in range(5):
                assert in_class_f(random_class_f_uniform(order, rng))

    def test_roughly_uniform_at_n2(self, rng):
        from collections import Counter
        counts = Counter(
            random_class_f_uniform(2, rng).as_tuple()
            for _ in range(2000)
        )
        assert len(counts) == 20
        # with 2000 draws over 20 members, each expects 100; allow wide
        # tolerance
        assert all(40 < c < 220 for c in counts.values())

    def test_max_tries_exhaustion(self, rng):
        with pytest.raises(RuntimeError):
            random_class_f_uniform(6, rng, max_tries=1)
