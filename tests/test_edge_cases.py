"""Edge-case sweep across subsystems: minimum sizes, degenerate
parameters, and boundary interactions not covered by the per-module
suites."""

import pytest

from repro.core import (
    BenesNetwork,
    Permutation,
    PipelinedBenes,
    in_class_f,
    random_class_f,
)
from repro.core.twopass import route_two_pass
from repro.errors import MachineError
from repro.networks import (
    BitonicNetwork,
    GeneralizedConnectionNetwork,
    OddEvenMergeNetwork,
    OmegaNetwork,
)
from repro.permclasses import BPCSpec, JPartition, within_blocks
from repro.simd import CCC, DualNetworkComputer, PSC, permute_ccc, permute_psc


class TestMinimumSizes:
    def test_b1_everything(self):
        net = BenesNetwork(1)
        assert net.n_switches == 1
        assert net.route([1, 0]).success
        assert net.route([1, 0], omega_mode=True).success

    def test_order1_pipeline(self):
        pipe = PipelinedBenes(1)
        outs = pipe.run([[0, 1], [1, 0], [0, 1]])
        assert [o.latency for o in outs] == [1, 1, 1]
        assert all(o.result.success for o in outs)

    def test_order1_simd(self):
        assert permute_ccc(CCC(1), [1, 0]).unit_routes == 1
        assert permute_psc(PSC(1), [1, 0]).unit_routes == 1

    def test_order1_networks(self):
        for cls in (OmegaNetwork, BitonicNetwork, OddEvenMergeNetwork):
            assert cls(1).route([1, 0]).success

    def test_order1_gcn_broadcast(self):
        gcn = GeneralizedConnectionNetwork(1)
        assert gcn.connect([1, 1], payloads=["a", "b"]).outputs == (
            "b", "b"
        )

    def test_order1_two_pass(self):
        assert route_two_pass([1, 0], ["x", "y"]) == ["y", "x"]

    def test_order1_bpc(self):
        spec = BPCSpec.from_signed(["-0"])
        assert spec.to_permutation() == (1, 0)


class TestDegenerateParameters:
    def test_empty_j_partition_is_single_f_permutation(self, rng):
        jp = JPartition(3, ())
        member = random_class_f(3, rng)
        assert within_blocks(jp, member) == member

    def test_full_j_partition_is_identity(self):
        jp = JPartition(3, (0, 1, 2))
        ident = Permutation.identity(1)
        assert within_blocks(jp, ident).is_identity()

    def test_dual_machine_order1(self):
        machine = DualNetworkComputer(1)
        report = machine.permute([1, 0])
        assert list(report.data) == [1, 0]

    def test_pipeline_interleaved_bubbles(self):
        pipe = PipelinedBenes(2)
        outs = []
        for k in range(8):
            tags = [0, 1, 2, 3] if k % 2 == 0 else None
            out = pipe.clock(tags)
            if out:
                outs.append(out)
        outs += pipe.drain()
        assert len(outs) == 4
        assert all(o.result.success for o in outs)


class TestBoundaryInteractions:
    def test_omega_mode_with_stuck_switch(self):
        # omega mode forces stages 0..n-2 straight; a stuck-cross fault
        # there overrides the forcing and breaks an omega permutation
        net = BenesNetwork(2)
        assert net.route([1, 3, 2, 0], omega_mode=True).success
        faulty = net.route([1, 3, 2, 0], omega_mode=True,
                           stuck_switches={(0, 0): 1})
        assert not faulty.success

    def test_lower_control_with_external_states(self, rng):
        # external states ignore the control rule entirely
        from repro.core import setup_states, random_permutation
        perm = random_permutation(8, rng)
        states = setup_states(perm)
        for control in ("upper", "lower"):
            net = BenesNetwork(3, control=control)
            assert net.route_with_states(states).realized == perm

    def test_gcn_of_non_f_unsort_still_delivers(self, rng):
        # force many duplicate requests so the unsort permutation is
        # far from the identity
        gcn = GeneralizedConnectionNetwork(3)
        sources = [7, 0, 7, 0, 7, 0, 7, 0]
        result = gcn.connect(sources)
        assert result.outputs == tuple(sources)

    def test_planner_on_every_f2_member(self, f_classes):
        from repro.planner import plan
        for member in f_classes[2]:
            report = plan(member)
            assert report.in_f
            assert report.network_strategy == "self-routing"

    def test_ccc_interchange_composes_with_elementwise(self):
        machine = CCC(2)
        machine.set_register("R", [1, 2, 3, 4])
        machine.elementwise("R", lambda r: r * 10, "R")
        machine.interchange(("R",), 0)
        assert machine.read("R") == (20, 10, 40, 30)
        assert machine.stats.total_steps == 2

    def test_dual_estimate_does_not_mutate(self, rng):
        machine = DualNetworkComputer(3)
        perm = random_class_f(3, rng)
        machine.estimate_costs(perm)
        report = machine.permute(perm, list("abcdefgh"))
        assert list(report.data) == perm.apply(list("abcdefgh"))

    def test_in_class_f_on_tuple_and_permutation_agree(self, rng):
        p = random_class_f(4, rng)
        assert in_class_f(p) == in_class_f(tuple(p)) == in_class_f(list(p))

    def test_dual_rejects_bad_size_before_routing(self):
        with pytest.raises(MachineError):
            DualNetworkComputer(3).permute([0, 1, 2, 3])
