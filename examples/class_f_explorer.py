#!/usr/bin/env python3
"""Exploring the class F(n) — how rich is the self-routable set?

Reproduces the Section II story quantitatively:

- exact census of all N! permutations at n = 2, 3 against
  F / BPC / Omega / InverseOmega;
- the containments of Theorems 2 and 3, and the Fig. 5 gap
  (Omega not contained in F);
- a Monte-Carlo density estimate of |F(n)| / N! for larger n;
- the Theorem 4 block composition in action;
- the non-closure-under-product counterexample.

Run:  python examples/class_f_explorer.py
"""

import random

from repro import JPartition, Permutation, in_class_f, within_blocks
from repro.analysis import (
    bpc_count,
    class_census,
    estimate_class_f_density,
)
from repro.core import enumerate_class_f
from repro.permclasses import omega_count


def main() -> None:
    rng = random.Random(1980)

    # ------------------------------------------------------------------
    # Exact census for n = 2 and 3.
    # ------------------------------------------------------------------
    print("exact census (every one of the N! permutations classified):")
    header = ("n", "N!", "|F|", "|BPC|", "|Omega|", "|InvOmega|",
              "Omega-F", "BPC-F", "InvOmega-F")
    print(f"{header[0]:>2} {header[1]:>8} {header[2]:>7} "
          f"{header[3]:>6} {header[4]:>8} {header[5]:>10} "
          f"{header[6]:>8} {header[7]:>6} {header[8]:>10}")
    for order in (2, 3):
        c = class_census(order)
        print(f"{order:>2} {c.total:>8} {c.in_f:>7} {c.in_bpc:>6} "
              f"{c.in_omega:>8} {c.in_inverse_omega:>10} "
              f"{c.omega_not_f:>8} {c.bpc_not_f:>6} "
              f"{c.inverse_omega_not_f:>10}")
    print("  -> Theorems 2 & 3: BPC\\F and InvOmega\\F are empty;")
    print("  -> Fig. 5: Omega\\F is NOT empty "
          "(omega permutations needing the omega bit).\n")

    # ------------------------------------------------------------------
    # Density of F for larger n (sampling).
    # ------------------------------------------------------------------
    print("density of F(n) among all permutations (sampled):")
    for order in (3, 4, 5, 6):
        density = estimate_class_f_density(order, 400, rng)
        print(f"  n={order}: ~{density:8.5f}   "
              f"(|BPC| = {bpc_count(order)}, "
              f"|Omega| = 2^{order * (1 << order) // 2})")
    print("  -> F shrinks relative to N! as n grows, yet contains\n"
          "     every structured family the parallel-processing\n"
          "     literature uses.\n")

    # ------------------------------------------------------------------
    # Theorem 4: build a new F member from per-block F members.
    # ------------------------------------------------------------------
    f2 = list(enumerate_class_f(2))
    jp = JPartition(4, (1, 3))     # 4 blocks of 4 elements
    block_perms = [rng.choice(f2) for _ in range(jp.n_blocks)]
    composite = within_blocks(jp, block_perms)
    print("Theorem 4 composition:")
    print(f"  J = {{1, 3}} partitions 0..15 into {jp.n_blocks} blocks "
          f"of {jp.block_size}")
    for b, (block, perm) in enumerate(zip(jp.blocks(), block_perms)):
        print(f"  block {b}: elements {block} permuted by "
              f"{perm.as_tuple()}")
    print(f"  composite in F(4)? {in_class_f(composite)}\n")

    # ------------------------------------------------------------------
    # F is NOT closed under products.
    # ------------------------------------------------------------------
    a = Permutation((3, 0, 1, 2))
    b = Permutation((0, 1, 3, 2))
    product = a.then(b)
    print("non-closure under product (paper's example):")
    print(f"  A = {a.as_tuple()}  in F: {in_class_f(a)}")
    print(f"  B = {b.as_tuple()}  in F: {in_class_f(b)}")
    print(f"  A then B = {product.as_tuple()}  in F: "
          f"{in_class_f(product)}")
    print("  -> two self-routable passes compose to a permutation the\n"
          "     network cannot self-route in one pass.")


if __name__ == "__main__":
    main()
