#!/usr/bin/env python3
"""Matrix transpose on SIMD machines — the Section III algorithms.

A 2^q x 2^q matrix distributed one element per PE (row-major) is
transposed with the paper's preprocessing-free routing on three
machines, and the route counts are compared against the sorting-based
alternative the paper cites:

- CCC: 2 log N - 1 interchanges (minus the BPC skip rule savings);
- PSC: 4 log N - 3 unit-routes;
- MCC: 7 sqrt(N) - 8 unit-routes;
- baseline: bitonic sort, Theta(log^2 N) interchanges.

Run:  python examples/simd_matrix_transpose.py
"""

from repro import CCC, MCC, PSC, matrix_transpose
from repro.simd import (
    load_bpc_tags,
    permute_ccc,
    permute_mcc,
    permute_psc,
    sort_permute_ccc,
)


def show_matrix(label: str, flat, side: int) -> None:
    print(label)
    for r in range(side):
        print("   " + "  ".join(
            f"{flat[r * side + c]:>6}" for c in range(side)
        ))


def main() -> None:
    q = 2                      # 4 x 4 matrix
    order = 2 * q
    n = 1 << order
    side = 1 << q

    spec = matrix_transpose(order)
    perm = spec.to_permutation()
    matrix = [f"a{r}{c}" for r in range(side) for c in range(side)]

    show_matrix("input matrix (row-major across PEs):", matrix, side)

    # ------------------------------------------------------------------
    # CCC — with the A-vector broadcast, each PE computes its own tag
    # in O(log N) steps, then 2 log N - 1 masked interchanges route it.
    # ------------------------------------------------------------------
    ccc = CCC(order)
    tag_steps = load_bpc_tags(ccc, spec)
    run_ccc = permute_ccc(ccc, list(ccc.read("D")), data=matrix,
                          bpc_spec=spec)
    print(f"\nCCC:  success={run_ccc.success}  "
          f"tag-gen steps={tag_steps}  "
          f"unit-routes={run_ccc.unit_routes} "
          f"(full loop would be {2 * order - 1}; "
          f"skip rule saved {2 * order - 1 - run_ccc.unit_routes})")

    show_matrix("\ntransposed matrix (CCC output):",
                list(run_ccc.data), side)

    # ------------------------------------------------------------------
    # PSC and MCC run the same permutation.
    # ------------------------------------------------------------------
    run_psc = permute_psc(PSC(order), perm, data=matrix)
    print(f"\nPSC:  success={run_psc.success}  "
          f"unit-routes={run_psc.unit_routes} (= 4 log N - 3 = "
          f"{4 * order - 3})")

    run_mcc = permute_mcc(MCC(q), perm, data=matrix, bpc_spec=spec)
    print(f"MCC:  success={run_mcc.success}  "
          f"unit-routes={run_mcc.unit_routes} "
          f"(full loop costs 7*sqrt(N)-8 = {7 * side - 8})")
    assert list(run_mcc.data) == list(run_ccc.data) == list(run_psc.data)

    # ------------------------------------------------------------------
    # Baseline: bitonic sort on the CCC (works for ANY permutation but
    # costs Theta(log^2 N)).
    # ------------------------------------------------------------------
    sort_run = sort_permute_ccc(CCC(order), perm, data=matrix)
    print(f"\nbitonic-sort baseline on CCC: success={sort_run.success}  "
          f"interchanges={sort_run.route_instructions} "
          f"(= log N (log N + 1)/2 = {order * (order + 1) // 2})")
    print(f"\nclass-F routing vs sorting: {run_ccc.unit_routes} vs "
          f"{sort_run.unit_routes} unit-routes "
          f"({sort_run.unit_routes / max(run_ccc.unit_routes, 1):.1f}x)")


if __name__ == "__main__":
    main()
