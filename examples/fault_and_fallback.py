#!/usr/bin/env python3
"""Operating the self-routing network outside the happy path.

Three situations a deployed interconnect faces, and what this library's
machinery does about each:

1. a permutation **outside F(n)** — the planner classifies it and the
   two-pass trick realizes it with zero setup;
2. a **stuck switch** — self-routing's adaptive downstream control
   masks distribution-stage faults and pinpoints fatal ones;
3. choosing per permutation between the attached network and the PE
   interconnect (the dual-network machine of Section IV).

Run:  python examples/fault_and_fallback.py
"""

import random

from repro import BenesNetwork, plan
from repro.core import random_class_f, random_permutation, in_class_f
from repro.core.twopass import route_two_pass, two_pass_decomposition
from repro.simd import DualNetworkComputer


def main() -> None:
    rng = random.Random(2026)
    order = 4
    n = 1 << order
    net = BenesNetwork(order)

    # ------------------------------------------------------------------
    # 1. An arbitrary permutation: classify, then route in two passes.
    # ------------------------------------------------------------------
    perm = random_permutation(n, rng)
    while in_class_f(perm):
        perm = random_permutation(n, rng)
    report = plan(perm)
    print(f"permutation outside F: {perm.as_tuple()}")
    print(f"  planner verdict : {report.network_strategy} "
          f"(alternatives: {', '.join(report.alternatives)})")
    print(f"  Theorem 1 witness: {report.failure_witness}")

    first, second = two_pass_decomposition(perm)
    print(f"  two-pass split  : inverse-omega {first.as_tuple()}")
    print(f"                    then omega    {second.as_tuple()}")
    data = [f"d{i}" for i in range(n)]
    routed = route_two_pass(perm, data, net)
    print(f"  two-pass routing correct: {routed == perm.apply(data)}\n")

    # ------------------------------------------------------------------
    # 2. Stuck switches: masked in the distribution half, fatal later.
    # ------------------------------------------------------------------
    f_perm = random_class_f(order, rng)
    print(f"fault injection while routing {f_perm.as_tuple()}:")
    healthy = net.route(f_perm, trace=True)
    for stage in (0, order - 1, net.n_stages - 1):
        flipped = 1 - int(healthy.stages[stage].states[0])
        faulty = net.route(f_perm,
                           stuck_switches={(stage, 0): flipped})
        zone = ("distribution half" if stage < order - 1
                else "destination-writing half")
        outcome = ("MASKED (rerouted through the other sub-network)"
                   if faulty.success else
                   f"fatal, misrouted outputs {list(faulty.misrouted)}")
        print(f"  stuck switch at stage {stage} ({zone}): {outcome}")
    print()

    # ------------------------------------------------------------------
    # 3. Dual-network dispatch (Section IV's proposed machine).
    # ------------------------------------------------------------------
    machine = DualNetworkComputer(order, step_gate_cost=10)
    print("dual-network dispatch (PSC + attached B(n), "
          "10 gate delays per routing step):")
    for label, candidate in (("class-F", f_perm), ("outside-F", perm)):
        rep = machine.permute(candidate)
        print(f"  {label:<10} -> {rep.chosen:<10} "
              f"({rep.gate_delays} gate delays; attached network "
              f"would cost {rep.benes_gate_delays}, E-network "
              f"{rep.e_network_gate_delays})")


if __name__ == "__main__":
    main()
