#!/usr/bin/env python3
"""Quickstart: the self-routing Benes network in five minutes.

Covers the core API surface:

1. build a network, route a permutation with destination tags;
2. see the O(log N) self-routing succeed for a class-F permutation and
   fail for the paper's Fig. 5 counterexample;
3. classify permutations (F / BPC / Omega / InverseOmega);
4. fall back to external (Waksman) switch setup for arbitrary
   permutations;
5. route with the omega-bit extension.

Run:  python examples/quickstart.py
"""

from repro import (
    BenesNetwork,
    Permutation,
    bit_reversal,
    in_class_f,
    is_bpc,
    is_inverse_omega,
    is_omega,
    setup_states,
)
from repro.viz import render_route


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Build B(3) — 8 inputs, 5 switch stages, 20 binary switches.
    # ------------------------------------------------------------------
    net = BenesNetwork(3)
    print(f"network: {net}  (N={net.n_terminals}, "
          f"stages={net.n_stages}, switches={net.n_switches})\n")

    # ------------------------------------------------------------------
    # 2. Self-route a Table I permutation: bit reversal (Fig. 4).
    #    Every signal carries a log N-bit destination tag; each switch
    #    sets itself from one tag bit. Total time: O(log N).
    # ------------------------------------------------------------------
    perm = bit_reversal(3).to_permutation()
    data = list("abcdefgh")
    routed = net.permute(perm, data)
    print(f"bit reversal tags : {perm.as_tuple()}")
    print(f"input data        : {data}")
    print(f"routed data       : {routed}\n")

    # ------------------------------------------------------------------
    # 3. Not every permutation is self-routable: the class F(n).
    # ------------------------------------------------------------------
    fig5 = Permutation((1, 3, 2, 0))
    print(f"D = {fig5.as_tuple()}:")
    print(f"  in F(2)?             {in_class_f(fig5)}")
    print(f"  in BPC(2)?           {is_bpc(fig5) is not None}")
    print(f"  in Omega(2)?         {is_omega(fig5)}")
    print(f"  in InverseOmega(2)?  {is_inverse_omega(fig5)}\n")

    small = BenesNetwork(2)
    result = small.route(fig5, trace=True)
    print("self-routing attempt (Fig. 5):")
    print(render_route(result, 2))
    print()

    # ------------------------------------------------------------------
    # 4. The same hardware still realizes ALL N! permutations when the
    #    self-setting logic is disabled and switches are set externally
    #    by the O(N log N) looping (Waksman) algorithm.
    # ------------------------------------------------------------------
    states = setup_states(fig5)
    external = small.route_with_states(states, payloads=list("wxyz"))
    print(f"external setup realizes : {external.realized.as_tuple()}")
    print(f"routed payloads         : {list(external.payloads)}\n")

    # ------------------------------------------------------------------
    # 5. Omega permutations: one extra tag bit forces the first n-1
    #    stages straight, and every Omega(n) permutation routes.
    # ------------------------------------------------------------------
    omega_routed = small.route(fig5, omega_mode=True)
    print(f"omega-bit mode success  : {omega_routed.success}")


if __name__ == "__main__":
    main()
