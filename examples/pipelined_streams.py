#!/usr/bin/env python3
"""Section IV: pipelined vector streams with mixed permutations.

An SIMD front-end often needs a *different* permutation every cycle
(e.g. alternating skew / unskew alignments between computation phases).
The paper's closing observation: with registers between stages, the
self-routing network accepts a new N-element vector every clock —
because each switch decides from tag bits travelling *with* the data,
no global reconfiguration separates back-to-back permutations.

This example streams Cannon's matrix-multiply alignment schedule (skew
rows, then repeated row/column rotations) through one pipelined B(4)
and reports latency, throughput and correctness.

Run:  python examples/pipelined_streams.py
"""

from repro.core import PipelinedBenes, Permutation, in_class_f
from repro.permclasses import skew_columns, skew_rows
from repro.permclasses.arraymaps import row_major_index


def rotate_rows(q: int, k: int) -> Permutation:
    """Every row rotated left by k (Cannon's per-step row shift)."""
    side = 1 << q
    return Permutation([
        row_major_index(r, (c - k) % side, q)
        for r in range(side) for c in range(side)
    ])


def rotate_columns(q: int, k: int) -> Permutation:
    """Every column rotated up by k."""
    side = 1 << q
    return Permutation([
        row_major_index((r - k) % side, c, q)
        for r in range(side) for c in range(side)
    ])


def main() -> None:
    q = 2
    order = 2 * q
    n = 1 << order
    side = 1 << q

    # Cannon's alignment schedule: initial skews, then unit rotations.
    schedule = [
        ("skew rows", skew_rows(q)),
        ("skew columns", skew_columns(q)),
        ("rotate rows by 1", rotate_rows(q, 1)),
        ("rotate columns by 1", rotate_columns(q, 1)),
        ("rotate rows by 1", rotate_rows(q, 1)),
        ("rotate columns by 1", rotate_columns(q, 1)),
    ]
    for name, perm in schedule:
        assert in_class_f(perm), f"{name} unexpectedly outside F"

    pipe = PipelinedBenes(order)
    payloads = [
        [f"{name[:4]}-{i}" for i in range(n)] for name, _ in schedule
    ]
    outputs = pipe.run(
        [list(perm) for _, perm in schedule], payloads=payloads
    )

    print(f"pipelined B({order}): {len(schedule)} alignment vectors, "
          f"{side}x{side} matrix per vector\n")
    print(f"{'vector':<22} {'entered':>8} {'emerged':>8} "
          f"{'latency':>8} {'correct':>8}")
    for (name, perm), out in zip(schedule, outputs):
        ok = out.result.success
        print(f"{name:<22} {out.entered_at:>8} {out.emerged_at:>8} "
              f"{out.latency:>8} {str(ok):>8}")

    total_clocks = outputs[-1].emerged_at
    serial_clocks = len(schedule) * (2 * order - 1)
    print(f"\ntotal clocks, pipelined : {total_clocks}")
    print(f"total clocks, serial    : {serial_clocks} "
          f"(one full transit per vector)")
    print(f"speedup                 : {serial_clocks / total_clocks:.2f}x")
    print(f"steady-state throughput : 1 vector/clock after "
          f"{2 * order - 1}-clock fill")


if __name__ == "__main__":
    main()
