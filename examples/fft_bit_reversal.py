#!/usr/bin/env python3
"""FFT data reordering through the self-routing network.

The decimation-in-time FFT consumes its input in *bit-reversed* order —
exactly the Table I "bit reversal" permutation the paper routes in
Fig. 4.  This example implements a radix-2 FFT whose reordering step is
performed by the self-routing Benes network, then streams a sequence of
FFT frames through the *pipelined* network (Section IV): one frame
enters per clock, the first emerges after 2 log N - 1 clocks.

Run:  python examples/fft_bit_reversal.py
"""

import cmath
import math

from repro import BenesNetwork, bit_reversal
from repro.core import PipelinedBenes


def fft_in_place(values: list) -> list:
    """Iterative radix-2 DIT FFT over complex values already in
    bit-reversed order."""
    n = len(values)
    out = list(values)
    size = 2
    while size <= n:
        half = size // 2
        step = cmath.exp(-2j * math.pi / size)
        for start in range(0, n, size):
            w = 1 + 0j
            for k in range(half):
                even = out[start + k]
                odd = out[start + k + half] * w
                out[start + k] = even + odd
                out[start + k + half] = even - odd
                w *= step
        size *= 2
    return out


def fft_via_network(samples: list, net: BenesNetwork) -> list:
    """FFT with the reordering routed through the Benes network."""
    order = net.order
    perm = bit_reversal(order).to_permutation()
    reordered = net.permute(perm, samples)
    return fft_in_place(reordered)


def reference_dft(samples: list) -> list:
    n = len(samples)
    return [
        sum(samples[t] * cmath.exp(-2j * math.pi * f * t / n)
            for t in range(n))
        for f in range(n)
    ]


def main() -> None:
    order = 4
    n = 1 << order
    net = BenesNetwork(order)

    # A test signal: two tones plus DC.
    samples = [
        1.0
        + math.sin(2 * math.pi * 3 * t / n)
        + 0.5 * math.cos(2 * math.pi * 5 * t / n)
        for t in range(n)
    ]

    spectrum = fft_via_network(samples, net)
    reference = reference_dft(samples)
    worst = max(abs(a - b) for a, b in zip(spectrum, reference))
    print(f"N = {n} FFT with network-routed bit reversal")
    print(f"max |FFT - DFT| = {worst:.2e}  "
          f"({'OK' if worst < 1e-9 else 'MISMATCH'})")
    print("\nbin  |X[f]|")
    for f in range(n // 2 + 1):
        bar = "#" * int(abs(spectrum[f]))
        print(f"{f:>3}  {abs(spectrum[f]):7.3f}  {bar}")

    # ------------------------------------------------------------------
    # Pipelined mode: stream frames back-to-back (Section IV).
    # ------------------------------------------------------------------
    n_frames = 6
    pipe = PipelinedBenes(order)
    perm = list(bit_reversal(order).to_permutation())
    frames = [
        [math.sin(2 * math.pi * (f + 1) * t / n) for t in range(n)]
        for f in range(n_frames)
    ]
    outputs = pipe.run([perm] * n_frames, payloads=frames)
    print(f"\npipelined reordering of {n_frames} frames:")
    print(f"  latency (first frame) : {outputs[0].latency} clocks "
          f"(= 2 log N - 1 = {2 * order - 1})")
    emerged = [o.emerged_at for o in outputs]
    print(f"  emergence clocks      : {emerged}  (one per clock)")
    spectra = [fft_in_place(list(o.result.payloads)) for o in outputs]
    peaks = [max(range(n // 2 + 1), key=lambda f: abs(s[f]))
             for s in spectra]
    print(f"  per-frame peak bins   : {peaks}  (expected 1..{n_frames})")


if __name__ == "__main__":
    main()
