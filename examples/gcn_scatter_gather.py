#!/usr/bin/env python3
"""Generalized connections: broadcast, multicast and gather patterns.

The paper's introduction notes that the Benes network "finds
application as a subnetwork of a generalized connection network" — a
network where every output names *any* input (repeats allowed), not
just a permutation.  This example drives the sort -> copy -> permute
GCN built around our Benes network through three SIMD memory-access
patterns:

1. row broadcast       — every PE in a row reads the row's first cell;
2. stencil gather      — every PE reads its left neighbour (with edge
                         clamping, a non-bijective map);
3. histogram multicast — a few hot inputs fan out to many outputs.

Run:  python examples/gcn_scatter_gather.py
"""

from repro.networks import GeneralizedConnectionNetwork


def show(label, sources, outputs, side=None):
    print(f"{label}:")
    if side:
        for r in range(side):
            row = outputs[r * side:(r + 1) * side]
            print("   " + "  ".join(f"{x:>6}" for x in row))
    else:
        print(f"   requests: {list(sources)}")
        print(f"   received: {list(outputs)}")
    print()


def main() -> None:
    q = 2
    order = 2 * q
    side = 1 << q
    n = 1 << order
    gcn = GeneralizedConnectionNetwork(order)
    print(f"GCN over B({order}): {gcn.n_switches} cells, "
          f"{gcn.delay}-stage delay "
          f"(sort {order * (order + 1) // 2} + copy {order} + "
          f"Benes {2 * order - 1})\n")

    data = [f"a{r}{c}" for r in range(side) for c in range(side)]

    # 1. row broadcast: output (r, c) requests input (r, 0)
    sources = [r * side for r in range(side) for _ in range(side)]
    result = gcn.connect(sources, payloads=data)
    show("row broadcast A(r,c) <- A(r,0)", sources, result.outputs, side)

    # 2. stencil gather: every cell reads its left neighbour
    sources = [
        r * side + max(c - 1, 0)
        for r in range(side) for c in range(side)
    ]
    result = gcn.connect(sources, payloads=data)
    show("left-neighbour gather A(r,c) <- A(r,c-1)", sources,
         result.outputs, side)

    # 3. multicast: two hot inputs serve all outputs alternately
    sources = [0 if o % 2 == 0 else n - 1 for o in range(n)]
    result = gcn.connect(sources, payloads=data)
    show("two-source multicast", sources, result.outputs)

    # The embedded Benes pass self-routes whenever the unsort
    # permutation lands in F — report how often that happened above.
    print("embedded Benes pass self-routed?")
    for label, sources in (
        ("row broadcast", [r * side for r in range(side)
                           for _ in range(side)]),
        ("identity", list(range(n))),
    ):
        result = gcn.connect(sources, payloads=data)
        print(f"   {label:<15}: {result.permute_self_routed}")


if __name__ == "__main__":
    main()
