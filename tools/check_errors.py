#!/usr/bin/env python
"""Lint: forbid bare ``raise ValueError`` in the library source.

Every domain violation raised by ``src/repro/`` must go through the
:mod:`repro.errors` hierarchy (e.g. ``InvalidParameterError``,
``SizeMismatchError``, ``NotAPowerOfTwoError``) so callers can catch
``ReproError`` uniformly.  This walker parses each source file and
flags any ``raise ValueError(...)`` / ``raise ValueError`` whose
exception is the *builtin* — subclasses with other names pass.

Exit status: 0 when clean, 1 with a ``path:line`` listing otherwise.

Run from the repository root (CI does, on both matrix legs)::

    python tools/check_errors.py
"""

from __future__ import annotations

import ast
import pathlib
import sys
from typing import Iterator, List, Tuple

FORBIDDEN = ("ValueError",)


def _violations(path: pathlib.Path) -> Iterator[Tuple[int, str]]:
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    for node in ast.walk(tree):
        if not isinstance(node, ast.Raise) or node.exc is None:
            continue
        exc = node.exc
        # raise ValueError(...)  |  raise ValueError
        name = None
        if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
            name = exc.func.id
        elif isinstance(exc, ast.Name):
            name = exc.id
        if name in FORBIDDEN:
            yield node.lineno, name


def check_tree(root: pathlib.Path) -> List[str]:
    """Return ``path:line`` strings for every bare raise under root."""
    found = []
    for path in sorted(root.rglob("*.py")):
        for lineno, name in _violations(path):
            found.append(f"{path}:{lineno}: bare `raise {name}` — "
                         f"use a repro.errors class instead")
    return found


def main(argv: List[str] = None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    root = pathlib.Path(args[0]) if args else pathlib.Path("src/repro")
    if not root.is_dir():
        print(f"check_errors: no such directory {root}", file=sys.stderr)
        return 2
    found = check_tree(root)
    for line in found:
        print(line)
    if found:
        print(f"check_errors: {len(found)} bare raise(s) found",
              file=sys.stderr)
        return 1
    print(f"check_errors: OK ({root})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
