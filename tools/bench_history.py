#!/usr/bin/env python
"""Append a ``BENCH_*.json`` report to the ``BENCH_history.jsonl``
perf trajectory.

One committed ``BENCH_accel.json`` is a single point; a trajectory of
them lets ``tools/check_bench_regression.py`` compare a fresh
measurement against the *recent median* instead of whatever machine
happened to write the last baseline.  Each invocation appends one
compact JSON line::

    {"ts": 1754438400, "source": "BENCH_accel.json",
     "benchmark": "...", "numpy": true, "cpu_count": 8,
     "cells": [{"kind": "route", "order": 8, "batch_size": 256,
                "parallel": false, "engine": "numpy",
                "speedup": 24.1}, ...]}

Only the identifying keys and the speedup of each cell are kept — the
raw items/second are machine-dependent noise for trend purposes.  Cells
from route reports (no ``kind`` field) are recorded as
``kind = "route"``; cells from pre-engine reports get the engine their
report could have used (``numpy`` when it was produced with NumPy,
``scalar`` otherwise).  Usage::

    python tools/bench_history.py BENCH_accel.json BENCH_setup.json \\
        [--history BENCH_history.jsonl]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time


def summarize(report: dict, source: str, ts: int) -> dict:
    """The one-line trajectory record for a bench report."""
    report_numpy = bool(report.get("numpy", False))
    default_engine = "numpy" if report_numpy else "scalar"

    def trim(cell: dict) -> dict:
        kept = {
            "kind": cell.get("kind", "route"),
            "order": cell.get("order"),
            "batch_size": cell.get("batch_size"),
            "parallel": bool(cell.get("parallel", False)),
            "engine": cell.get("engine") or default_engine,
            "speedup": cell.get("speedup"),
        }
        # serve cells are identified by concurrency and mode, not just
        # (order, batch): keep both so the serve guard can find its
        # headline cell in the trajectory.  Packet cells likewise key
        # on offered load and policy, and their trend signal is the
        # delivered throughput / drop curve rather than a speedup.
        for key in ("clients", "mode", "offered_load", "policy",
                    "throughput", "drop_rate", "misrouted"):
            if key in cell:
                kept[key] = cell[key]
        return kept

    return {
        "ts": ts,
        "source": source,
        "benchmark": report.get("benchmark", "?"),
        "numpy": report_numpy,
        "cpu_count": report.get("cpu_count"),
        "cells": [trim(cell) for cell in report.get("cells", [])],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="append bench reports to the perf trajectory"
    )
    parser.add_argument("reports", nargs="+",
                        help="BENCH_*.json files to record")
    parser.add_argument("--history", default="BENCH_history.jsonl",
                        help="trajectory file to append to")
    args = parser.parse_args(argv)

    ts = int(time.time())
    lines = []
    for path in args.reports:
        report_path = pathlib.Path(path)
        if not report_path.exists():
            print(f"bench history: {path} missing (skip)")
            continue
        report = json.loads(report_path.read_text(encoding="utf-8"))
        lines.append(summarize(report, report_path.name, ts))

    if not lines:
        return 0
    history = pathlib.Path(args.history)
    with history.open("a", encoding="utf-8") as fh:
        for record in lines:
            fh.write(json.dumps(record, separators=(",", ":")) + "\n")
    print(f"bench history: appended {len(lines)} record(s) "
          f"to {history}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
