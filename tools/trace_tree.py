#!/usr/bin/env python
"""Reassemble and pretty-print the span tree of a JSON-lines trace.

``repro.obs`` writes trace files as a flat stream of one-line JSON
records — possibly interleaved by many worker processes, each line
appended atomically (see ``repro/obs/trace.py``).  ``span`` records
carry ``trace_id`` / ``span_id`` / ``parent_id``; this tool groups
them by trace, rebuilds each causal tree and prints it indented with
wall times::

    PYTHONPATH=src python tools/trace_tree.py route.jsonl

    trace 4cf4ab12deadbeef
      batch.self_route  11.2ms
        executor.dispatch  10.9ms  (task=self_route items=64 shards=2)
          executor.shard  3.1ms  (shard=0)
            batch.self_route  2.8ms
          executor.shard  3.0ms  (shard=1)
            batch.self_route  2.7ms

Exit status is the validation verdict, so CI can smoke-test sharded
tracing: non-zero when any line fails to parse as JSON, any span
references a parent that never appears in the file, or (with
``--min-spans``) fewer spans than expected are present.  Non-span
events (``route_start`` / ``stage`` / ``deliver``) are counted and, when
stamped with a ``span_id``, attributed to their span.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict

_SKIP_FIELDS = {"v", "seq", "ts", "ev", "name", "trace_id", "span_id",
                "parent_id", "start_ts", "seconds"}


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds * 1e6:.0f}us"


def _fmt_fields(span: dict, event_counts: dict) -> str:
    parts = [f"{key}={value}" for key, value in sorted(span.items())
             if key not in _SKIP_FIELDS]
    events = event_counts.get(span.get("span_id"))
    if events:
        parts.append("events=" + ",".join(
            f"{ev}:{count}" for ev, count in sorted(events.items())))
    return f"  ({' '.join(parts)})" if parts else ""


def load_trace(path: str):
    """Parse ``path``; return ``(spans, other_events, errors)``."""
    spans, others, errors = [], [], []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                errors.append(f"line {lineno}: not valid JSON ({exc})")
                continue
            if record.get("ev") == "span":
                spans.append(record)
            else:
                others.append(record)
    return spans, others, errors


def validate(spans, errors) -> None:
    """Append orphan/duplicate findings to ``errors``."""
    ids = defaultdict(int)
    for span in spans:
        if not span.get("span_id"):
            errors.append(f"span {span.get('name')!r} has no span_id")
            continue
        ids[span["span_id"]] += 1
    for span_id, count in ids.items():
        if count > 1:
            errors.append(f"span_id {span_id} appears {count} times")
    for span in spans:
        parent = span.get("parent_id")
        if parent is not None and parent not in ids:
            errors.append(
                f"span {span.get('name')!r} ({span.get('span_id')}) "
                f"references missing parent {parent}"
            )


def print_trees(spans, others, out=sys.stdout) -> None:
    """Indented per-trace rendering, children in start order."""
    event_counts: dict = defaultdict(lambda: defaultdict(int))
    for record in others:
        if record.get("span_id"):
            event_counts[record["span_id"]][record.get("ev", "?")] += 1

    by_trace = defaultdict(list)
    for span in spans:
        by_trace[span.get("trace_id", "?")].append(span)

    known = {span["span_id"] for span in spans if span.get("span_id")}
    for trace_id in sorted(by_trace):
        members = sorted(by_trace[trace_id],
                         key=lambda s: s.get("start_ts", 0.0))
        children = defaultdict(list)
        roots = []
        for span in members:
            parent = span.get("parent_id")
            if parent is None or parent not in known:
                roots.append(span)
            else:
                children[parent].append(span)
        print(f"trace {trace_id}", file=out)

        def walk(span, depth):
            seconds = span.get("seconds", 0.0)
            print(f"{'  ' * depth}{span.get('name', '?')}  "
                  f"{_fmt_seconds(seconds)}"
                  f"{_fmt_fields(span, event_counts)}", file=out)
            for child in children.get(span.get("span_id"), []):
                walk(child, depth + 1)

        for root in roots:
            walk(root, 1)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="rebuild and validate the span tree of a "
                    "repro.obs JSON-lines trace file"
    )
    parser.add_argument("trace", help="path to the .jsonl trace")
    parser.add_argument("--min-spans", type=int, default=0,
                        help="fail unless at least this many span "
                             "events are present")
    parser.add_argument("--max-trees", type=int, default=None,
                        help="fail when the file holds more than this "
                             "many distinct trace ids (e.g. 1 to "
                             "assert a serving session reassembles "
                             "into one tree)")
    parser.add_argument("--quiet", action="store_true",
                        help="validate only, print nothing but errors")
    args = parser.parse_args(argv)

    spans, others, errors = load_trace(args.trace)
    validate(spans, errors)
    if len(spans) < args.min_spans:
        errors.append(f"expected >= {args.min_spans} spans, "
                      f"found {len(spans)}")
    if args.max_trees is not None:
        trace_ids = {span.get("trace_id") for span in spans}
        if len(trace_ids) > args.max_trees:
            errors.append(
                f"expected <= {args.max_trees} trace tree(s), found "
                f"{len(trace_ids)}: {', '.join(sorted(map(str, trace_ids)))}"
            )

    if not args.quiet:
        print_trees(spans, others)
        print(f"{len(spans)} spans, {len(others)} other events, "
              f"{len(errors)} errors")
    for error in errors:
        print(f"error: {error}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
