#!/usr/bin/env python
"""Lint an OpenMetrics text exposition (``benes metrics dump``).

Checks the structural invariants scrapers rely on, without requiring
any Prometheus tooling in the environment:

- every line is a ``# TYPE`` / ``# HELP`` / ``# UNIT`` comment, a
  sample (``name[{labels}] value [timestamp]``), or the terminator;
- the exposition ends with ``# EOF`` (exactly once, last line);
- metric names are legal (``[a-zA-Z_:][a-zA-Z0-9_:]*``) and every
  sample belongs to a declared ``# TYPE`` family;
- counter samples carry the ``_total`` suffix;
- histogram families expose ``_bucket`` series with non-decreasing
  cumulative counts ending in a ``le="+Inf"`` bucket that equals
  ``_count``, plus ``_sum``;
- sample values parse as floats.

Reads a file argument or stdin; exit 0 when clean::

    PYTHONPATH=src python -m repro.cli metrics dump --demo \\
        | python tools/check_openmetrics.py
"""

from __future__ import annotations

import argparse
import math
import re
import sys
from collections import defaultdict

_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_TYPE_RE = re.compile(rf"^# TYPE ({_NAME}) "
                      r"(counter|gauge|histogram|summary|"
                      r"stateset|info|unknown)$")
_COMMENT_RE = re.compile(rf"^# (HELP|UNIT) ({_NAME}) ?.*$")
_SAMPLE_RE = re.compile(
    rf"^({_NAME})(\{{[^}}]*\}})? (\S+)( \S+)?$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _family_of(name: str, families: dict) -> str:
    """The declared family a sample name belongs to (suffix-aware)."""
    if name in families:
        return name
    for suffix in ("_total", "_bucket", "_count", "_sum", "_created"):
        if name.endswith(suffix) and name[: -len(suffix)] in families:
            return name[: -len(suffix)]
    return ""


def lint(text: str) -> list:
    """All violations found in ``text`` (empty when clean)."""
    errors = []
    lines = text.splitlines()
    if not lines or lines[-1] != "# EOF":
        errors.append("exposition does not end with '# EOF'")
    families: dict = {}
    buckets = defaultdict(list)  # family -> [(le, value), ...]
    counts: dict = {}
    sums: dict = {}

    for lineno, line in enumerate(lines, 1):
        if not line:
            errors.append(f"line {lineno}: blank line")
            continue
        if line == "# EOF":
            if lineno != len(lines):
                errors.append(f"line {lineno}: '# EOF' before the end")
            continue
        type_match = _TYPE_RE.match(line)
        if type_match:
            name, kind = type_match.groups()
            if name in families:
                errors.append(f"line {lineno}: duplicate # TYPE {name}")
            families[name] = kind
            continue
        if _COMMENT_RE.match(line):
            continue
        if line.startswith("#"):
            errors.append(f"line {lineno}: unrecognized comment {line!r}")
            continue
        sample = _SAMPLE_RE.match(line)
        if not sample:
            errors.append(f"line {lineno}: not a valid sample: {line!r}")
            continue
        name, labels, value = sample.group(1), sample.group(2), \
            sample.group(3)
        try:
            number = float(value)
        except ValueError:
            errors.append(f"line {lineno}: non-numeric value {value!r}")
            continue
        family = _family_of(name, families)
        if not family:
            errors.append(f"line {lineno}: sample {name!r} has no "
                          f"# TYPE declaration")
            continue
        kind = families[family]
        if kind == "counter" and not name.endswith(
                ("_total", "_created")):
            errors.append(f"line {lineno}: counter sample {name!r} "
                          f"must end with _total")
        if kind == "counter" and number < 0:
            errors.append(f"line {lineno}: counter {name!r} is negative")
        if kind == "histogram":
            if name.endswith("_bucket"):
                parsed = dict(_LABEL_RE.findall(labels or ""))
                if "le" not in parsed:
                    errors.append(f"line {lineno}: histogram bucket "
                                  f"without an le label")
                else:
                    le = (math.inf if parsed["le"] == "+Inf"
                          else float(parsed["le"]))
                    buckets[family].append((lineno, le, number))
            elif name.endswith("_count"):
                counts[family] = (lineno, number)
            elif name.endswith("_sum"):
                sums[family] = (lineno, number)

    for family, series in buckets.items():
        previous = -math.inf
        cumulative = -1.0
        for lineno, le, value in series:
            if le <= previous:
                errors.append(f"line {lineno}: {family} buckets out of "
                              f"le order")
            if value < cumulative:
                errors.append(f"line {lineno}: {family} bucket counts "
                              f"not cumulative")
            previous, cumulative = le, value
        if series and series[-1][1] != math.inf:
            errors.append(f"{family}: histogram lacks an le=\"+Inf\" "
                          f"bucket")
        if family in counts and series \
                and series[-1][2] != counts[family][1]:
            errors.append(f"{family}: +Inf bucket != _count")
    for family, kind in families.items():
        if kind == "histogram":
            if family not in counts:
                errors.append(f"{family}: histogram lacks _count")
            if family not in sums:
                errors.append(f"{family}: histogram lacks _sum")
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="lint an OpenMetrics text exposition"
    )
    parser.add_argument("path", nargs="?", default="-",
                        help="file to lint (default: stdin)")
    args = parser.parse_args(argv)

    if args.path == "-":
        text = sys.stdin.read()
    else:
        with open(args.path, encoding="utf-8") as fh:
            text = fh.read()
    errors = lint(text)
    for error in errors:
        print(f"error: {error}", file=sys.stderr)
    if not errors:
        samples = sum(1 for line in text.splitlines()
                      if line and not line.startswith("#"))
        print(f"openmetrics ok: {samples} samples")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
