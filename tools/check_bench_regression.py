#!/usr/bin/env python
"""Perf guard: re-measure the batch engine's headline cell and compare
it against the committed baseline.

The headline cell is order 8, batch 256 of ``BENCH_accel.json`` (and,
when present, the same cell of ``BENCH_setup.json``).  Raw items/second
are machine-dependent, so the guard compares the **scalar-normalized
speedup** — batch throughput over scalar throughput measured in the
same process on the same machine — which tracks engine regressions
(a dropped vectorized path, an accidental per-item Python loop) while
shrugging off slow CI runners.

Cells carry an ``engine`` column since the bit-sliced big-int engine
joined; legacy baselines without it are read as ``numpy`` when their
report was produced with NumPy and ``scalar`` otherwise.  Two route
guards run: the NumPy cell (floor 10x, skipped when NumPy is absent)
and the bitslice cell (floor 5x, runs on **both** CI legs — the
no-NumPy fast path is exactly what it guards).

Verdict per cell:

- **fail** when the measured speedup drops more than ``--tolerance``
  (default 30%) below the baseline *and* falls under the engine's
  acceptance floor; a run that still clears the floor passes with a
  warning unless ``--strict`` is given (CI boxes are noisy — a 30%
  swing above the floor is weather, not climate);
- **skip** cleanly (exit 0) for guards whose engine is unavailable
  (NumPy absent) or whose baseline file has no matching cell.

The serve daemon's coalescing win is guarded differently: a daemon
load test is too heavy to re-measure here, so the guard is read-only —
the **committed** ``BENCH_serve.json`` must show coalesced throughput
at least 3x the per-request rate at 256+ concurrent clients (skipped
cleanly when no serve report is committed).

``BENCH_scaling.json`` (the composed-engine sweep produced by
``benchmarks/bench_scaling.py``) is likewise guarded read-only, on two
axes: the composed engine must beat the serial Waksman baseline by at
least 5x wall-time at order >= 14, and — when the report's cells were
measured in isolated subprocesses (``rss_isolated: true``) — composed
peak RSS at the top order must stay under 4x its order-14 peak (the
streaming decomposition's memory claim).  A scaling cell without an
``engine`` column is a schema error and fails with a clear message
naming the cell, never a raw ``KeyError``.

``BENCH_packet.json`` (the packet-mode saturation sweep from
``benchmarks/bench_packet.py``) is guarded read-only too: every cell
must carry the packet schema columns (unknown cells fail with a named
message), each policy curve needs at least 3 offered-load points with
zero misrouted packets, and the lowest load must be unsaturated
(throughput >= 90% of offered).

When a ``BENCH_history.jsonl`` trajectory exists (appended by
``tools/bench_history.py``), the baseline for each cell is the
**median of its recent history** (last ``--window`` records, default
5) rather than the single committed report — one outlier run, fast or
slow, no longer moves the goalposts.  The committed ``BENCH_*.json``
remains the fallback when the trajectory has no matching cell.

Run from the repository root (CI does, on both matrix legs)::

    PYTHONPATH=src python tools/check_bench_regression.py
"""

from __future__ import annotations

import argparse
import json
import pathlib
import random
import statistics
import sys

GUARD_ORDER = 8
GUARD_BATCH = 256
FLOOR = 10.0           # NumPy engine acceptance floor
BITSLICE_FLOOR = 5.0   # bit-sliced big-int engine acceptance floor
SERVE_FLOOR = 3.0      # coalesced vs per-request rps, >= 256 clients
SERVE_CLIENTS = 256    # concurrency the serve floor is asserted at
SCALING_FLOOR = 5.0    # composed vs serial Waksman, order >= 14
SCALING_MIN_ORDER = 14     # order the composed floor is asserted at
SCALING_RSS_BASE_ORDER = 14  # RSS-growth baseline order
SCALING_RSS_CAP = 4.0  # composed peak-RSS ratio, top order vs base
PACKET_MIN_POINTS = 3       # distinct offered loads per policy curve
PACKET_LOWLOAD_EFF = 0.90   # throughput/offered at the lowest load
PACKET_CELL_KEYS = ("offered_load", "policy", "throughput",
                    "drop_rate", "misrouted")


def _cell_engine(cell, report_numpy: bool) -> str:
    """A cell's engine column, defaulting legacy (pre-engine) cells to
    the engine their report could have used."""
    engine = cell.get("engine")
    if engine is not None:
        return engine
    return "numpy" if report_numpy else "scalar"


def _require_engine(cell, name: str, index: int):
    """The cell's engine column, or ``None`` after a clear schema
    failure message — newer reports (the scaling sweep) have no legacy
    era to default into, so a missing column is a bug in the producer,
    not something to paper over with a guess (and never a raw
    ``KeyError`` out of the guard)."""
    engine = cell.get("engine")
    if engine is None:
        print(f"  {name}: cell #{index} "
              f"(order {cell.get('order', '?')}, "
              f"mode {cell.get('mode', '?')}) has no 'engine' column "
              f"-> FAIL (regenerate the report with "
              f"benchmarks/bench_scaling.py)")
    return engine


def _load_report(path: pathlib.Path):
    """Parse a committed BENCH report, or None with a skip note when
    the file is unreadable or predates the current report schema — an
    old baseline must downgrade the guard to a skip, never crash it."""
    if not path.exists():
        return None
    try:
        report = json.loads(path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, OSError) as exc:
        print(f"  {path.name}: unreadable ({exc.__class__.__name__}) "
              f"-> skip")
        return None
    if not isinstance(report, dict) or \
            not isinstance(report.get("cells"), list):
        print(f"  {path.name}: pre-verify report format (no cells "
              f"list) -> skip")
        return None
    return report


def _baseline_speedup(path: pathlib.Path, kind=None,
                      engine: str = "numpy"):
    """The guarded cell's speedup in a committed report, or None."""
    report = _load_report(path)
    if report is None:
        return None
    report_numpy = bool(report.get("numpy", False))
    for cell in report.get("cells", []):
        if (isinstance(cell, dict)
                and cell.get("order") == GUARD_ORDER
                and cell.get("batch_size") == GUARD_BATCH
                and not cell.get("parallel", False)
                and (kind is None or cell.get("kind") == kind)
                and _cell_engine(cell, report_numpy) == engine):
            if cell.get("speedup") is None:
                # pre-verify benchmark cells carried no normalized
                # speedup; nothing comparable to guard against
                print(f"  {path.name}: guarded cell has no speedup "
                      f"field (pre-verify baseline) -> skip")
                return None
            return float(cell["speedup"])
    return None


def _trajectory_speedup(history: pathlib.Path, kind: str,
                        window: int, engine: str = "numpy") -> tuple:
    """Median guarded-cell speedup over the last ``window`` matching
    trajectory records, as ``(median, n_points)`` — ``(None, 0)``
    when the history has nothing usable."""
    if not history.exists():
        return None, 0
    points = []
    for line in history.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # a torn/hand-edited line must not kill the guard
        record_numpy = bool(record.get("numpy", False))
        for cell in record.get("cells", []):
            if (cell.get("kind", "route") == kind
                    and cell.get("order") == GUARD_ORDER
                    and cell.get("batch_size") == GUARD_BATCH
                    and not cell.get("parallel", False)
                    and cell.get("speedup") is not None
                    and _cell_engine(cell, record_numpy) == engine):
                points.append(float(cell["speedup"]))
    if not points:
        return None, 0
    recent = points[-window:]
    return statistics.median(recent), len(recent)


def _check(name: str, baseline: float, current: float,
           tolerance: float, strict: bool,
           floor: float = FLOOR) -> bool:
    """Print one verdict line; return False on a hard failure."""
    drop = 1.0 - current / baseline if baseline > 0 else 0.0
    status = "ok"
    failed = False
    if drop > tolerance:
        if current < floor or strict:
            status, failed = "FAIL", True
        else:
            status = "warn (above floor)"
    print(f"  {name}: baseline {baseline:.1f}x, measured "
          f"{current:.1f}x ({-drop * 100.0:+.0f}%) -> {status}")
    return not failed


def _check_serve_baseline(path: pathlib.Path) -> bool:
    """The serve acceptance floor, checked against the **committed**
    ``BENCH_serve.json`` (read-only — a daemon load test is too heavy
    to re-measure inside the guard): the coalescing daemon must serve
    at least ``SERVE_FLOOR``x the per-request rate at
    ``SERVE_CLIENTS``+ concurrent clients.  Skips cleanly when no
    serve report is committed."""
    report = _load_report(path)
    if report is None:
        print("  serve/coalesce: no baseline (skip)")
        return True
    cells = [
        cell for cell in report.get("cells", [])
        if isinstance(cell, dict)
        and cell.get("kind") == "serve"
        and cell.get("mode") == "coalesced"
        and (cell.get("clients") or 0) >= SERVE_CLIENTS
        and cell.get("speedup") is not None
    ]
    if not cells:
        print(f"  serve/coalesce: no coalesced cell at >= "
              f"{SERVE_CLIENTS} clients (skip)")
        return True
    best = max(cells, key=lambda cell: cell["speedup"])
    speedup = float(best["speedup"])
    status = "ok" if speedup >= SERVE_FLOOR else "FAIL"
    print(f"  serve/coalesce ({best.get('engine', '?')}, "
          f"{best.get('clients')} clients): committed "
          f"{speedup:.1f}x vs floor {SERVE_FLOOR:.1f}x -> {status}")
    return speedup >= SERVE_FLOOR


def _check_scaling_baseline(path: pathlib.Path) -> bool:
    """The composed-engine acceptance floors, checked against the
    **committed** ``BENCH_scaling.json`` (read-only — a full scaling
    sweep re-measures minutes of work):

    - **speedup**: some composed cell at order >= ``SCALING_MIN_ORDER``
      must carry ``speedup_vs_serial`` >= ``SCALING_FLOOR``;
    - **memory**: when the report is subprocess-isolated
      (``rss_isolated: true``), composed ``peak_rss_kb`` at the top
      measured order must stay under ``SCALING_RSS_CAP`` times the
      order-``SCALING_RSS_BASE_ORDER`` composed peak — the streaming
      decomposition's O(N/blocks * log N) claim.

    Skips cleanly when no scaling report is committed; fails with a
    named-cell message (never a ``KeyError``) when a cell lacks the
    ``engine`` column.
    """
    report = _load_report(path)
    if report is None:
        print("  scaling/composed: no baseline (skip)")
        return True
    composed = []
    for index, cell in enumerate(report.get("cells", [])):
        if not isinstance(cell, dict):
            print(f"  {path.name}: cell #{index} is not an object "
                  f"-> FAIL")
            return False
        engine = _require_engine(cell, path.name, index)
        if engine is None:
            return False
        if engine == "composed":
            composed.append(cell)
    if not composed:
        print("  scaling/composed: no composed cells in baseline "
              "(skip)")
        return True

    ok = True
    guarded = [cell for cell in composed
               if cell.get("order", 0) >= SCALING_MIN_ORDER
               and cell.get("speedup_vs_serial") is not None]
    if guarded:
        best = max(guarded, key=lambda cell:
                   float(cell["speedup_vs_serial"]))
        speedup = float(best["speedup_vs_serial"])
        status = "ok" if speedup >= SCALING_FLOOR else "FAIL"
        print(f"  scaling/composed (order {best.get('order')}): "
              f"committed {speedup:.1f}x vs serial, floor "
              f"{SCALING_FLOOR:.1f}x -> {status}")
        ok &= speedup >= SCALING_FLOOR
    else:
        print(f"  scaling/composed: no speedup_vs_serial cell at "
              f"order >= {SCALING_MIN_ORDER} (skip)")

    if not report.get("rss_isolated", False):
        print("  scaling/rss: cells not subprocess-isolated, RSS is "
              "a monotonic high-water mark (skip)")
        return bool(ok)
    by_order = {cell["order"]: cell for cell in composed
                if cell.get("order") is not None
                and cell.get("peak_rss_kb")}
    top = max(by_order) if by_order else None
    base = by_order.get(SCALING_RSS_BASE_ORDER)
    if top is None or base is None or top <= SCALING_RSS_BASE_ORDER:
        print(f"  scaling/rss: no composed RSS pair (order "
              f"{SCALING_RSS_BASE_ORDER} + a higher order) (skip)")
        return bool(ok)
    ratio = float(by_order[top]["peak_rss_kb"]) / \
        float(base["peak_rss_kb"])
    status = "ok" if ratio < SCALING_RSS_CAP else "FAIL"
    print(f"  scaling/rss (order {top} vs "
          f"{SCALING_RSS_BASE_ORDER}): committed {ratio:.2f}x vs cap "
          f"{SCALING_RSS_CAP:.1f}x -> {status}")
    return bool(ok) and ratio < SCALING_RSS_CAP


def _check_packet_baseline(path: pathlib.Path) -> bool:
    """The packet-mode saturation curve, checked against the
    **committed** ``BENCH_packet.json`` (read-only — the sweep is a
    multi-second simulation):

    - every cell must be a ``kind = "packet"`` object carrying the
      packet schema columns (``offered_load`` / ``policy`` /
      ``throughput`` / ``drop_rate`` / ``misrouted``) — an unknown or
      incomplete cell fails with a message naming it, never a raw
      ``KeyError``;
    - each policy's curve must span at least ``PACKET_MIN_POINTS``
      distinct offered loads;
    - ``misrouted`` must be 0 everywhere — self-routing delivers every
      packet that exits, under contention and retry;
    - at the lowest committed load the network must be unsaturated:
      throughput >= ``PACKET_LOWLOAD_EFF`` x offered load.

    Skips cleanly when no packet report is committed."""
    report = _load_report(path)
    if report is None:
        print("  packet/curve: no baseline (skip)")
        return True
    by_policy = {}
    for index, cell in enumerate(report.get("cells", [])):
        if not isinstance(cell, dict) or                 cell.get("kind") != "packet":
            print(f"  {path.name}: cell #{index} is not a packet "
                  f"cell (kind {cell.get('kind', '?') if isinstance(cell, dict) else '?'!r}) "
                  f"-> FAIL (regenerate with "
                  f"benchmarks/bench_packet.py)")
            return False
        missing = [key for key in PACKET_CELL_KEYS
                   if cell.get(key) is None]
        if missing:
            print(f"  {path.name}: cell #{index} "
                  f"(load {cell.get('offered_load', '?')}, policy "
                  f"{cell.get('policy', '?')}) lacks "
                  f"{', '.join(missing)} -> FAIL (regenerate with "
                  f"benchmarks/bench_packet.py)")
            return False
        by_policy.setdefault(cell["policy"], []).append(cell)

    ok = True
    for policy, cells in sorted(by_policy.items()):
        loads = sorted({float(cell["offered_load"])
                        for cell in cells})
        if len(loads) < PACKET_MIN_POINTS:
            print(f"  packet/{policy}: only {len(loads)} load "
                  f"point(s), need >= {PACKET_MIN_POINTS} -> FAIL")
            ok = False
            continue
        misrouted = sum(int(cell["misrouted"]) for cell in cells)
        if misrouted:
            print(f"  packet/{policy}: {misrouted} misrouted "
                  f"packet(s) in the committed curve -> FAIL")
            ok = False
            continue
        low = min(cells, key=lambda cell: float(cell["offered_load"]))
        eff = float(low["throughput"]) /             max(1e-9, float(low["offered_load"]))
        status = "ok" if eff >= PACKET_LOWLOAD_EFF else "FAIL"
        print(f"  packet/{policy}: {len(loads)} loads, low-load "
              f"efficiency {eff:.2f} vs floor "
              f"{PACKET_LOWLOAD_EFF:.2f} -> {status}")
        ok &= eff >= PACKET_LOWLOAD_EFF
    if not by_policy:
        print("  packet/curve: report has no cells (skip)")
    return bool(ok)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="guard the batch engine's headline speedup against "
                    "the committed baselines"
    )
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional speedup drop "
                             "(default 0.30)")
    parser.add_argument("--strict", action="store_true",
                        help="fail on any drop beyond tolerance, even "
                             "above the acceptance floor")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--root", default=".",
                        help="repository root holding the BENCH_*.json "
                             "baselines")
    parser.add_argument("--history", default="BENCH_history.jsonl",
                        help="perf trajectory (relative to --root) "
                             "whose recent median beats the single "
                             "committed baseline when present")
    parser.add_argument("--window", type=int, default=5,
                        help="trajectory records per median "
                             "(default 5)")
    args = parser.parse_args(argv)

    from repro.accel import have_numpy

    np_available = have_numpy()
    root = pathlib.Path(args.root)
    from repro.accel.benchmark import measure_cell, measure_setup_cell

    ok = True
    print(f"bench guard: order {GUARD_ORDER}, batch {GUARD_BATCH}, "
          f"tolerance {args.tolerance:.0%}"
          + ("" if np_available else " (NumPy absent)"))
    history = root / args.history

    def _resolve_baseline(kind: str, committed, engine: str):
        """Trajectory median when available, else the committed
        report's cell; the source is named in the verdict line."""
        median, n_points = _trajectory_speedup(history, kind,
                                               args.window, engine)
        if median is not None:
            return median, f"{kind}/{engine} (median of {n_points})"
        return committed, f"{kind}/{engine}"

    if np_available:
        baseline, label = _resolve_baseline(
            "route",
            _baseline_speedup(root / "BENCH_accel.json"), "numpy")
        if baseline is None:
            print("  route/numpy: no baseline (skip)")
        else:
            cell = measure_cell(GUARD_ORDER, GUARD_BATCH,
                                random.Random(1980),
                                repeats=args.repeats, engine="numpy")
            ok &= _check(label, baseline, cell["speedup"],
                         args.tolerance, args.strict)
    else:
        print("  route/numpy: NumPy absent (skip)")

    # The bitslice guard runs on both CI legs: the engine needs
    # nothing beyond the stdlib, and the no-NumPy fast path is
    # exactly what it protects.
    baseline, label = _resolve_baseline(
        "route",
        _baseline_speedup(root / "BENCH_accel.json",
                          engine="bitslice"), "bitslice")
    if baseline is None:
        print("  route/bitslice: no baseline (skip)")
    else:
        cell = measure_cell(GUARD_ORDER, GUARD_BATCH,
                            random.Random(1980), repeats=args.repeats,
                            engine="bitslice")
        ok &= _check(label, baseline, cell["speedup"],
                     args.tolerance, args.strict,
                     floor=BITSLICE_FLOOR)

    if np_available:
        for kind in ("setup", "two_pass"):
            baseline, label = _resolve_baseline(
                kind,
                _baseline_speedup(root / "BENCH_setup.json", kind),
                "numpy")
            if baseline is None:
                print(f"  {kind}/numpy: no baseline (skip)")
                continue
            cell = measure_setup_cell(GUARD_ORDER, GUARD_BATCH,
                                      random.Random(1968), kind=kind,
                                      repeats=args.repeats,
                                      engine="numpy")
            ok &= _check(label, baseline, cell["speedup"],
                         args.tolerance, args.strict)

    # The serve guard is read-only: it asserts the committed
    # BENCH_serve.json still clears the coalescing acceptance floor.
    ok &= _check_serve_baseline(root / "BENCH_serve.json")

    # So is the scaling guard: the committed BENCH_scaling.json must
    # keep the composed engine's speedup and memory claims.
    ok &= _check_scaling_baseline(root / "BENCH_scaling.json")

    # And the packet guard: the committed BENCH_packet.json saturation
    # curve must keep its schema and delivery invariants.
    ok &= _check_packet_baseline(root / "BENCH_packet.json")

    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
