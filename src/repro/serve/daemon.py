"""The ``benes serve`` routing daemon: asyncio front, accel-batch back.

One stdlib-asyncio TCP server accepts newline-delimited JSON requests
(:mod:`repro.serve.protocol`) from many concurrent clients and feeds
them through the :class:`~repro.serve.coalescer.CoalescingQueue`:
compatible requests arriving within the latency window — across
connections — are dispatched as **one** ``(B, N)`` accel batch, so
per-call Python overhead is paid once per batch instead of once per
request (the same amortization :mod:`repro.accel` performs across
batch lanes, lifted to the network edge).

Dataflow per request::

    accept ── readline ── decode ── offer ─┬─ FLUSH  ─┐
                                           ├─ QUEUED ─┤ (timer fires)
                                           │          ├─ to_thread ──
                                           │          │  engine batch
                                           │          └─ fan responses
                                           └─ REJECT ── "rejected"

Engine dispatch goes through the first-class registry seam
(:func:`repro.accel.resolve_engine` — explicit config engine >
``BENES_ENGINE`` > auto) once per batch, and the resolved name is
stamped on every response.  The blocking engine call runs in a worker
thread (``asyncio.to_thread``) so the event loop keeps accepting while
an engine routes.

Observability: when a trace sink is active the daemon opens one root
``serve.daemon`` span; every connection (``serve.connection``), request
(``serve.request``) and dispatched batch (``serve.batch``) span adopts
it, so an entire serving session — socket accept through executor
shard — reassembles into **one** trace tree
(``tools/trace_tree.py --max-trees 1``).  Counters: ``serve.requests.
<op>``, ``serve.batches``, ``serve.rejected``, ``serve.errors``,
``serve.connections.opened/closed``; histogram ``serve.batch_size``.
"""

from __future__ import annotations

import asyncio
import threading
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Optional, Tuple

from .. import obs as _obs
from ..accel.batch import (
    batch_in_class_f,
    batch_self_route,
)
from ..accel.partial import batch_route_partial
from ..accel.plans import cached_topology, stage_plan
from ..accel.setup import batch_setup_states, setup_plan
from ..accel._np import resolve_engine
from ..core.bits import log2_exact
from ..errors import ProtocolError, ReproError
from ..obs import spans as _spans
from . import protocol
from .coalescer import FLUSH, REJECT, CoalescingQueue
from .lifecycle import flush_observability

__all__ = [
    "DaemonHandle",
    "RoutingDaemon",
    "ServeConfig",
    "serve",
    "start_in_thread",
]


@dataclass(frozen=True)
class ServeConfig:
    """Everything a routing daemon needs to run.

    Attributes:
        host / port: bind address; port 0 lets the OS pick (tests and
            the in-thread verification daemon use this).
        max_batch: coalescer size cutoff — also the widest batch an
            engine sees.
        max_wait_us: coalescer latency cutoff in microseconds: the
            most extra latency a lone request pays waiting for
            companions.
        queue_limit: total queued requests before backpressure
            rejects.
        engine: fixed execution engine for every batch, or ``None``
            for per-batch auto resolution (registry precedence:
            explicit > ``BENES_ENGINE`` > auto).
        parallel: passed through to the accel entry points — batches
            above the executor threshold shard across worker
            processes.
        warm_orders: stage/setup plan caches to populate before
            accepting traffic, so first requests do not pay the
            plan-build latency.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_batch: int = 64
    max_wait_us: float = 500.0
    queue_limit: int = 4096
    engine: Optional[str] = None
    parallel: object = False
    warm_orders: Tuple[int, ...] = (2, 3, 4, 5, 6)


class RoutingDaemon:
    """The asyncio routing daemon; one instance per listening socket.

    Use :func:`start_in_thread` (tests, benches, the verify adapter)
    or :func:`serve` (the CLI) rather than driving this directly.
    """

    def __init__(self, config: ServeConfig):
        self.config = config
        self._coalescer = CoalescingQueue(
            max_batch=config.max_batch,
            max_wait=config.max_wait_us * 1e-6,
            queue_limit=config.queue_limit,
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._root: Optional[_spans.Span] = None
        self._root_ids: Optional[Tuple[str, str]] = None
        self._timer: Optional[asyncio.Task] = None
        self._dispatches: set = set()
        self._request_tasks: set = set()
        self._conn_tasks: set = set()
        self._writers: set = set()
        self._stopping = False

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        """Warm caches, validate the configured engine, open the root
        span, bind and start accepting."""
        for order in self.config.warm_orders:
            cached_topology(order)
            stage_plan(order)
            setup_plan(order)
        if self.config.engine is not None:
            # Fail at startup, not on the first request: an unknown or
            # unavailable engine is a configuration error.
            resolve_engine(self.config.engine,
                           order=max(self.config.warm_orders or (3,)),
                           batch_size=self.config.max_batch)
        self._root = _spans.start_span(
            "serve.daemon", host=self.config.host,
            max_batch=self.config.max_batch,
            max_wait_us=self.config.max_wait_us,
        )
        if self._root is not None:
            self._root_ids = (self._root.context.trace_id,
                              self._root.context.span_id)
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port,
            reuse_address=True,
        )

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — resolves port 0 binds."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("daemon is not started")
        return self._server.sockets[0].getsockname()[:2]

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, flush every queued
        request through the engines, let in-flight responses reach
        their sockets, close connections, finish the root span."""
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for _key, items in self._coalescer.drain():
            self._spawn_dispatch(items)
        while self._dispatches:
            await asyncio.gather(*list(self._dispatches),
                                 return_exceptions=True)
        # Fast-path response callbacks were scheduled by the batch
        # futures resolving above; give the loop one pass to run them
        # before the writers close.
        await asyncio.sleep(0)
        while self._request_tasks:
            await asyncio.gather(*list(self._request_tasks),
                                 return_exceptions=True)
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        for writer in list(self._writers):
            try:
                writer.close()
            except Exception:  # noqa: BLE001 - shutdown must proceed
                # A transport that refuses to close is an operational
                # fault worth counting, not worth failing shutdown for.
                _obs.inc("serve.errors")
        while self._conn_tasks:
            await asyncio.gather(*list(self._conn_tasks),
                                 return_exceptions=True)
        if self._root is not None:
            try:
                self._root.finish()
            except ValueError:
                # Finished from a different context than it was opened
                # in; the span event is still emitted by finish().
                pass
            self._root = None
            self._root_ids = None

    async def run_until(self, stop_event: "asyncio.Event") -> None:
        """Serve until ``stop_event`` is set (or cancellation), then
        shut down cleanly — the shared driver under both the CLI
        foreground path and :func:`start_in_thread`."""
        try:
            await stop_event.wait()
        finally:
            await self.stop()

    # -- connection handling -------------------------------------------

    def _adopt_root(self):
        if self._root_ids is None:
            return nullcontext()
        return _spans.adopt(*self._root_ids)

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        _obs.inc("serve.connections.opened")
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._writers.add(writer)
        write_lock = asyncio.Lock()
        line_tasks: set = set()
        pending: set = set()
        with self._adopt_root():
            conn_span = _spans.start_span("serve.connection")
            try:
                while True:
                    try:
                        line = await reader.readline()
                    except (ConnectionError, asyncio.IncompleteReadError):
                        break
                    if not line:
                        break
                    if not line.strip():
                        continue
                    if conn_span is not None:
                        # Traced path: one task per request so each
                        # gets its own serve.request span, written as
                        # its batch completes.
                        line_task = asyncio.create_task(
                            self._handle_line(line, writer, write_lock))
                        line_tasks.add(line_task)
                        self._request_tasks.add(line_task)
                        line_task.add_done_callback(line_tasks.discard)
                        line_task.add_done_callback(
                            self._request_tasks.discard)
                    else:
                        # Hot path: decode and enqueue inline, deliver
                        # via a future callback — no task, no lock, no
                        # per-response drain (response writes happen on
                        # the loop thread, where write() only buffers;
                        # the transport flushes on close).
                        self._handle_line_fast(line, writer, pending)
            finally:
                if line_tasks:
                    await asyncio.gather(*list(line_tasks),
                                         return_exceptions=True)
                if pending:
                    # Batches still in flight for this connection:
                    # their response callbacks must run before the
                    # writer closes.
                    await asyncio.gather(*list(pending),
                                         return_exceptions=True)
                    await asyncio.sleep(0)
                if conn_span is not None:
                    conn_span.finish()
                self._writers.discard(writer)
                try:
                    writer.close()
                    await writer.wait_closed()
                except Exception:  # noqa: BLE001 - teardown continues
                    # Peers that vanish mid-close (reset, aborted
                    # handshake) surface here; count instead of hiding.
                    _obs.inc("serve.errors")
                if task is not None:
                    self._conn_tasks.discard(task)
                _obs.inc("serve.connections.closed")

    async def _handle_line(self, line: bytes,
                           writer: asyncio.StreamWriter,
                           write_lock: asyncio.Lock) -> None:
        try:
            request = protocol.decode_request(line)
        except ProtocolError as exc:
            _obs.inc("serve.errors")
            await self._send(writer, write_lock,
                             protocol.error_response("route", -1,
                                                     str(exc)))
            return
        _obs.inc(f"serve.requests.{request.op}")
        opened = _spans.start_span("serve.request", op=request.op,
                                   n=len(request.tags))
        status = "error"
        try:
            try:
                response = await self._submit(request)
            except ReproError as exc:
                _obs.inc("serve.errors")
                response = protocol.error_response(
                    request.op, request.id,
                    f"{type(exc).__name__}: {exc}")
            status = response.status
            await self._send(writer, write_lock, response)
        finally:
            if opened is not None:
                opened.finish(status=status)

    def _handle_line_fast(self, line: bytes,
                          writer: asyncio.StreamWriter,
                          pending: set) -> None:
        """The untraced request path, run inline in the reader loop:
        decode, enqueue, and hook the response write onto the batch
        future — per-request work the event loop cannot avoid, and
        nothing else."""
        try:
            request = protocol.decode_request(line)
        except ProtocolError as exc:
            _obs.inc("serve.errors")
            self._write_response(
                writer, protocol.error_response("route", -1, str(exc)))
            return
        _obs.inc(f"serve.requests.{request.op}")
        outcome = self._submit_nowait(request)
        if isinstance(outcome, protocol.RouteResponse):
            self._write_response(writer, outcome)
            return
        pending.add(outcome)

        def deliver(future: "asyncio.Future") -> None:
            pending.discard(future)
            self._write_response(writer, future.result())

        outcome.add_done_callback(deliver)

    def _write_response(self, writer: asyncio.StreamWriter,
                        response: protocol.RouteResponse) -> None:
        payload = (protocol.encode_response(response) + "\n") \
            .encode("utf-8")
        try:
            writer.write(payload)
        except (ConnectionError, RuntimeError):
            pass  # client went away; nothing to tell it

    async def _send(self, writer: asyncio.StreamWriter,
                    write_lock: asyncio.Lock,
                    response: protocol.RouteResponse) -> None:
        payload = (protocol.encode_response(response) + "\n") \
            .encode("utf-8")
        try:
            async with write_lock:
                writer.write(payload)
                await writer.drain()
        except (ConnectionError, RuntimeError):
            pass  # client went away; nothing to tell it

    # -- coalescing ----------------------------------------------------

    def _submit_nowait(self, request: protocol.RouteRequest):
        """Offer a request to the coalescer; an immediate
        :class:`~repro.serve.protocol.RouteResponse` (rejection) or the
        future its batch will resolve."""
        loop = asyncio.get_running_loop()
        if self._stopping:
            _obs.inc("serve.rejected")
            return protocol.rejected_response(request)
        future: "asyncio.Future" = loop.create_future()
        verdict, batch = self._coalescer.offer(
            request.coalesce_key(), (request, future), loop.time())
        if verdict == REJECT:
            _obs.inc("serve.rejected")
            return protocol.rejected_response(request)
        if verdict == FLUSH:
            self._spawn_dispatch(batch)
        else:
            self._arm_timer()
        return future

    async def _submit(self, request: protocol.RouteRequest
                      ) -> protocol.RouteResponse:
        outcome = self._submit_nowait(request)
        if isinstance(outcome, protocol.RouteResponse):
            return outcome
        return await outcome

    def _arm_timer(self) -> None:
        if self._timer is None or self._timer.done():
            self._timer = asyncio.create_task(self._timer_loop())

    async def _timer_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            deadline = self._coalescer.next_deadline()
            if deadline is None:
                return
            delay = deadline - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            for _key, items in self._coalescer.due(loop.time()):
                self._spawn_dispatch(items)

    def _spawn_dispatch(self, items) -> None:
        task = asyncio.create_task(self._dispatch(items))
        self._dispatches.add(task)
        task.add_done_callback(self._dispatches.discard)

    async def _dispatch(self, items) -> None:
        requests = [request for request, _future in items]
        try:
            responses = await asyncio.to_thread(self._run_batch,
                                                requests)
        except Exception as exc:  # noqa: BLE001 - every lane must answer
            _obs.inc("serve.errors")
            message = f"{type(exc).__name__}: {exc}"
            responses = [
                protocol.error_response(request.op, request.id, message)
                for request in requests
            ]
        for (_request, future), response in zip(items, responses):
            if not future.done():
                future.set_result(response)

    # -- engine dispatch (worker thread) -------------------------------

    def _run_batch(self, requests) -> list:
        head = requests[0]
        rows = [request.tags for request in requests]
        order = log2_exact(len(head.tags))
        kind = "setup" if head.op == "setup" else "route"
        engine = resolve_engine(self.config.engine, order=order,
                                batch_size=len(rows), kind=kind)
        with self._adopt_root(), \
                _spans.span("serve.batch", op=head.op,
                            batch_size=len(rows), engine=engine):
            if head.op == "route":
                result = batch_self_route(
                    rows, omega_mode=head.omega_mode,
                    stuck_switches=head.stuck_switches,
                    stage_states=head.stage_states,
                    parallel=self.config.parallel, engine=engine)
                responses = [
                    protocol.from_batch_result(request, result, index,
                                               engine)
                    for index, request in enumerate(requests)
                ]
            elif head.op == "membership":
                mask = batch_in_class_f(
                    rows, parallel=self.config.parallel, engine=engine)
                responses = [
                    protocol.from_membership_mask(request, mask, index,
                                                  engine)
                    for index, request in enumerate(requests)
                ]
            elif head.op == "packet":
                result = batch_route_partial(
                    rows, omega_mode=head.omega_mode,
                    stuck_switches=head.stuck_switches,
                    parallel=self.config.parallel, engine=engine)
                responses = [
                    protocol.from_partial_result(request, result,
                                                 index, engine)
                    for index, request in enumerate(requests)
                ]
            else:
                states = batch_setup_states(
                    order, rows, parallel=self.config.parallel,
                    engine=engine)
                responses = [
                    protocol.from_setup_states(request, states, index,
                                               engine)
                    for index, request in enumerate(requests)
                ]
        _obs.inc("serve.batches")
        _obs.observe("serve.batch_size", len(rows))
        return responses


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------

class DaemonHandle:
    """A daemon running in a background thread: ``address`` to connect,
    ``stop()`` to shut it down (idempotent)."""

    def __init__(self, holder: dict, thread: threading.Thread):
        self._holder = holder
        self._thread = thread

    @property
    def address(self) -> Tuple[str, int]:
        return self._holder["address"]

    def stop(self, timeout: float = 15.0) -> None:
        loop = self._holder.get("loop")
        stop_event = self._holder.get("stop_event")
        if loop is not None and stop_event is not None \
                and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(stop_event.set)
            except RuntimeError:
                pass  # loop already closing
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "DaemonHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_in_thread(config: ServeConfig) -> DaemonHandle:
    """Run a daemon on a dedicated event-loop thread and block until it
    accepts connections — the harness tests, benches and the verify
    fuzzer's ``serve`` adapter use.  Raises whatever :meth:`start`
    raised (bad engine, unbindable port) instead of returning a dead
    handle."""
    holder: dict = {}
    started = threading.Event()

    def runner() -> None:
        async def main() -> None:
            daemon = RoutingDaemon(config)
            try:
                await daemon.start()
            except BaseException as exc:
                holder["error"] = exc
                started.set()
                return
            holder["loop"] = asyncio.get_running_loop()
            holder["stop_event"] = asyncio.Event()
            holder["address"] = daemon.address
            started.set()
            await daemon.run_until(holder["stop_event"])

        try:
            asyncio.run(main())
        except BaseException as exc:  # pragma: no cover - defensive
            holder.setdefault("error", exc)
            started.set()

    thread = threading.Thread(target=runner, name="benes-serve",
                              daemon=True)
    thread.start()
    if not started.wait(timeout=30.0):
        raise RuntimeError("benes serve daemon failed to start "
                           "within 30s")
    if "error" in holder:
        raise holder["error"]
    return DaemonHandle(holder, thread)


def serve(config: ServeConfig) -> Tuple[str, int]:
    """The blocking CLI entry: run the daemon in the foreground until
    KeyboardInterrupt, then shut down cleanly and flush observability
    (the one lifecycle contract shared with ``benes metrics serve``)."""
    address: dict = {}

    async def main() -> None:
        daemon = RoutingDaemon(config)
        await daemon.start()
        address["address"] = daemon.address
        host, port = daemon.address
        print(f"benes serve: listening on {host}:{port} "
              f"(max_batch={config.max_batch}, "
              f"max_wait_us={config.max_wait_us:g})", flush=True)
        await daemon.run_until(asyncio.Event())

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    finally:
        flush_observability()
    return address.get("address", (config.host, config.port))
