"""A synchronous, pipelining client for the ``benes serve`` daemon.

The client speaks exactly the frozen protocol of
:mod:`repro.serve.protocol` — it has no second message shape, no
private dict format; everything it sends and returns is a
:class:`~repro.serve.protocol.RouteRequest` /
:class:`~repro.serve.protocol.RouteResponse`.

:meth:`ServeClient.request_many` **pipelines**: all request lines go
out before any response line is read, which is what lets the daemon
coalesce one client's burst (and many clients' concurrent bursts) into
wide engine batches.  Responses arrive in whatever order their batches
complete; the client reorders by correlation id, so callers always get
answers positionally matched to their requests.
"""

from __future__ import annotations

import socket
from typing import Dict, List, Optional, Sequence

from ..errors import ProtocolError, ServerBusyError
from . import protocol

__all__ = ["ServeClient"]


class ServeClient:
    """One TCP connection to a routing daemon.

    Usable as a context manager; the socket is opened eagerly so
    connection failures surface at construction, not first use.

    Args:
        host / port: the daemon's bound address
            (:attr:`repro.serve.daemon.DaemonHandle.address`).
        timeout: per-socket-operation timeout in seconds.
    """

    def __init__(self, host: str, port: int, *,
                 timeout: float = 30.0):
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout)
        self._reader = self._sock.makefile("rb")
        self._next_id = 0

    def close(self) -> None:
        """Close the connection (idempotent)."""
        if self._sock is not None:
            try:
                self._reader.close()
            except OSError:
                pass
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- core ----------------------------------------------------------

    def _take_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def request_many(self, requests: Sequence[protocol.RouteRequest]
                     ) -> List[protocol.RouteResponse]:
        """Send every request before reading any response (one write,
        one pipelined burst — the shape the daemon coalesces), then
        return responses **in request order** regardless of the order
        batches completed in."""
        if not requests:
            return []
        lines = "".join(protocol.encode_request(request) + "\n"
                        for request in requests)
        self._sock.sendall(lines.encode("utf-8"))
        by_id: Dict[int, protocol.RouteResponse] = {}
        for _ in range(len(requests)):
            line = self._reader.readline()
            if not line:
                raise ProtocolError(
                    "connection closed by daemon before all "
                    f"responses arrived ({len(by_id)} of "
                    f"{len(requests)} received)")
            response = protocol.decode_response(line)
            by_id[response.id] = response
        try:
            return [by_id[request.id] for request in requests]
        except KeyError as exc:
            raise ProtocolError(
                f"daemon response for request id {exc} missing")

    def request(self, request: protocol.RouteRequest
                ) -> protocol.RouteResponse:
        """Send one request, wait for its response."""
        return self.request_many([request])[0]

    # -- convenience wrappers ------------------------------------------

    def route_many(self, rows: Sequence[Sequence[int]], *,
                   omega_mode: bool = False,
                   stuck_switches: Optional[dict] = None,
                   stage_states: bool = False
                   ) -> List[protocol.RouteResponse]:
        """Self-route a burst of tag vectors (one request per row,
        pipelined)."""
        stuck = protocol.stuck_to_wire(stuck_switches)
        return self.request_many([
            protocol.RouteRequest(
                op="route", tags=tuple(int(v) for v in row),
                id=self._take_id(), omega_mode=omega_mode,
                stuck=stuck, stage_states=stage_states)
            for row in rows
        ])

    def route(self, tags: Sequence[int], *, omega_mode: bool = False,
              stuck_switches: Optional[dict] = None,
              stage_states: bool = False) -> protocol.RouteResponse:
        """Self-route one tag vector; raises
        :class:`~repro.errors.ServerBusyError` on backpressure
        rejection."""
        response = self.route_many(
            [tags], omega_mode=omega_mode,
            stuck_switches=stuck_switches,
            stage_states=stage_states)[0]
        if response.status == "rejected":
            raise ServerBusyError(response.error or "server busy")
        return response

    def membership_many(self, rows: Sequence[Sequence[int]]
                        ) -> List[protocol.RouteResponse]:
        """F(n) membership verdicts for a burst of permutations."""
        return self.request_many([
            protocol.RouteRequest(
                op="membership", tags=tuple(int(v) for v in row),
                id=self._take_id())
            for row in rows
        ])

    def packet_many(self, rows: Sequence[Sequence[int]], *,
                    omega_mode: bool = False,
                    stuck_switches: Optional[dict] = None
                    ) -> List[protocol.RouteResponse]:
        """Partial-permutation routing for a burst of dense k-of-N
        call patterns (idle lanes ``-1``); each response carries the
        all-active-lanes verdict and the completed delivered
        mapping."""
        stuck = protocol.stuck_to_wire(stuck_switches)
        return self.request_many([
            protocol.RouteRequest(
                op="packet", tags=tuple(int(v) for v in row),
                id=self._take_id(), omega_mode=omega_mode,
                stuck=stuck)
            for row in rows
        ])

    def setup_many(self, perms: Sequence[Sequence[int]]
                   ) -> List[protocol.RouteResponse]:
        """Universal Waksman setups for a burst of arbitrary
        permutations (states in each response's ``stage_states``)."""
        return self.request_many([
            protocol.RouteRequest(
                op="setup", tags=tuple(int(v) for v in perm),
                id=self._take_id(), stage_states=True)
            for perm in perms
        ])
