"""One server-lifecycle implementation for every ``benes`` endpoint.

Both long-lived servers in this package — the ``benes metrics serve``
scrape endpoint (:mod:`http.server`) and the ``benes serve`` routing
daemon (asyncio) — share the same operational contract, implemented
here exactly once:

- the listening socket is created with ``SO_REUSEADDR`` so an
  operator's restart does not trade a ``TIME_WAIT`` interval for an
  ``EADDRINUSE`` crash;
- ``KeyboardInterrupt`` is a *clean* shutdown: the socket closes and
  the observability state flushes (trace sink closed so every buffered
  span line reaches disk, metrics left intact for a final scrape or
  dump) — never a traceback to stderr.
"""

from __future__ import annotations

import socket
from typing import Optional

__all__ = [
    "enable_reuseaddr",
    "flush_observability",
    "run_http_server",
]


def enable_reuseaddr(sock: Optional[socket.socket]) -> None:
    """Set ``SO_REUSEADDR`` on ``sock`` (ignoring platforms/sockets
    that refuse — a scrape endpoint must not die over a socket
    option)."""
    if sock is None:
        return
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    except OSError:
        pass


def flush_observability(*, close_trace: bool = True) -> None:
    """Flush observability state on server shutdown: detach (and
    thereby close/flush) the trace sink so spans emitted by the dying
    server are durable.  Metrics registries are process-global and
    need no flushing — they survive for a final ``benes metrics``
    dump."""
    from .. import obs as _obs

    if close_trace and _obs.trace_active():
        _obs.trace_off()


def run_http_server(server, *, flush: bool = True) -> None:
    """Drive an :class:`http.server.HTTPServer` until interrupted,
    with the package-wide lifecycle contract (``SO_REUSEADDR`` is set
    at bind time by ``allow_reuse_address``; this adds the clean
    KeyboardInterrupt path and the shutdown flush)."""
    enable_reuseaddr(server.socket)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        if flush:
            flush_observability()
