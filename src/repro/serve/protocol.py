"""The ``benes serve`` wire protocol: one frozen request/response pair.

Transport framing is newline-delimited JSON — one compact object per
line, UTF-8, ``sort_keys`` canonical form so a given response has
exactly one byte encoding (the parity tests compare daemon output
byte-for-byte against :func:`from_batch_result` applied to a direct
in-process engine call).  The schema is versioned
(:data:`PROTOCOL_VERSION`); a request carrying a different ``v`` is
refused with :class:`~repro.errors.ProtocolError` rather than
half-understood.

Exactly **one** shape exists on both sides of the socket: the wire
protocol, the in-process :class:`repro.serve.client.ServeClient`, and
the tests all build and consume :class:`RouteRequest` /
:class:`RouteResponse` — there is no second ad-hoc dict format.  The
response mirrors :class:`~repro.core.routing.BatchRouteResult` field
for field (``success`` / ``mapping`` / ``per_stage`` /
``stage_states``), sliced down to the one batch lane that belongs to
the request; :func:`from_batch_result` is the **only** code that does
that slicing, shared by the daemon and the parity tests.

Operations:

``route``
    Self-route one tag vector (Theorem 1 semantics): ``success``,
    delivered ``mapping``, optional full ``stage_states``; honors
    ``omega_mode`` and ``stuck`` fault injection.
``membership``
    F(n) membership verdict for one permutation — ``success`` only.
``setup``
    Universal Waksman setup for one arbitrary permutation: the
    realizing switch states in ``stage_states``.
``packet``
    Partial-permutation routing: ``tags`` is a dense k-of-N call
    pattern with idle lanes ``-1`` (see
    :mod:`repro.packet.partial`).  ``success`` means every *active*
    lane delivered; ``mapping`` is the full delivered mapping of the
    canonical completion; honors ``omega_mode``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional, Tuple, Union

from ..errors import ProtocolError

__all__ = [
    "OPS",
    "PROTOCOL_VERSION",
    "RouteRequest",
    "RouteResponse",
    "decode_request",
    "decode_response",
    "encode_request",
    "encode_response",
    "error_response",
    "from_batch_result",
    "from_membership_mask",
    "from_partial_result",
    "from_setup_states",
    "rejected_response",
    "stuck_to_wire",
    "wire_to_stuck",
]

#: Wire schema version; bumped on any incompatible field change.
PROTOCOL_VERSION = 1

#: The operations the daemon understands.
OPS = ("route", "membership", "setup", "packet")

#: Response statuses: computed / failed / shed under backpressure.
STATUSES = ("ok", "error", "rejected")

Row = Tuple[int, ...]
States = Tuple[Tuple[int, ...], ...]
Stuck = Tuple[Tuple[int, int, int], ...]


def stuck_to_wire(stuck_switches: Optional[dict]) -> Optional[Stuck]:
    """The canonical wire form of a ``{(stage, switch): state}`` fault
    map: sorted ``(stage, switch, state)`` triples (sorted so equal
    maps encode to equal bytes and coalesce into the same batch)."""
    if not stuck_switches:
        return None
    return tuple(sorted(
        (int(stage), int(switch), 1 if state else 0)
        for (stage, switch), state in stuck_switches.items()
    ))


def wire_to_stuck(stuck: Optional[Stuck]) -> Optional[dict]:
    """The engine-side ``{(stage, switch): state}`` map of a wire fault
    list (``None`` for an absent/empty list)."""
    if not stuck:
        return None
    return {(stage, switch): bool(state)
            for stage, switch, state in stuck}


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ProtocolError(message)


def _int_tuple(values, what: str) -> Row:
    _require(isinstance(values, (list, tuple)) and len(values) > 0,
             f"{what} must be a non-empty list of integers")
    out = []
    for value in values:
        _require(isinstance(value, int) and not isinstance(value, bool),
                 f"{what} must contain only integers")
        out.append(value)
    return tuple(out)


@dataclass(frozen=True)
class RouteRequest:
    """One client request (one wire line).

    Attributes:
        op: one of :data:`OPS`.
        tags: the tag vector (``route``) or permutation
            (``membership`` / ``setup``) to process.
        id: client-chosen correlation id, echoed verbatim in the
            response (responses may arrive out of request order — the
            daemon answers per coalesced batch, not per connection
            sequence).
        omega_mode: force the first ``n - 1`` columns straight
            (``route`` only).
        stuck: fault injection as sorted ``(stage, switch, state)``
            triples (``route`` only); see :func:`stuck_to_wire`.
        stage_states: ask for the full per-stage switch states in the
            response (``route``; always on for ``setup``).
        v: wire schema version, :data:`PROTOCOL_VERSION`.
    """

    op: str
    tags: Row
    id: int = 0
    omega_mode: bool = False
    stuck: Optional[Stuck] = None
    stage_states: bool = False
    v: int = PROTOCOL_VERSION

    def __post_init__(self):
        _require(self.op in OPS,
                 f"unknown op {self.op!r}; expected one of "
                 f"{', '.join(OPS)}")
        _require(self.v == PROTOCOL_VERSION,
                 f"unsupported protocol version {self.v!r} "
                 f"(this daemon speaks v{PROTOCOL_VERSION})")
        object.__setattr__(self, "tags",
                           _int_tuple(self.tags, "tags"))
        _require(isinstance(self.id, int)
                 and not isinstance(self.id, bool),
                 "id must be an integer")
        _require(isinstance(self.omega_mode, bool),
                 "omega_mode must be a boolean")
        _require(isinstance(self.stage_states, bool),
                 "stage_states must be a boolean")
        if self.stuck is not None:
            triples = []
            _require(isinstance(self.stuck, (list, tuple)),
                     "stuck must be a list of [stage, switch, state]")
            for entry in self.stuck:
                entry = _int_tuple(entry, "stuck entry")
                _require(len(entry) == 3,
                         "stuck entries must be "
                         "[stage, switch, state] triples")
                _require(entry[2] in (0, 1),
                         "stuck state must be 0 or 1")
                triples.append(entry)
            object.__setattr__(self, "stuck", tuple(sorted(triples))
                               or None)

    @property
    def stuck_switches(self) -> Optional[dict]:
        """The engine-side fault map for this request."""
        return wire_to_stuck(self.stuck)

    def coalesce_key(self) -> tuple:
        """Requests with equal keys may share one accel batch: the
        batched entry points take ``omega_mode`` / ``stuck_switches``
        / ``stage_states`` per *batch*, and all lanes must share the
        vector width."""
        return (self.op, len(self.tags), self.omega_mode, self.stuck,
                self.stage_states)


@dataclass(frozen=True)
class RouteResponse:
    """One daemon answer (one wire line), the single-lane mirror of
    :class:`~repro.core.routing.BatchRouteResult`.

    Attributes:
        op: the request's operation, echoed.
        id: the request's correlation id, echoed.
        status: ``ok`` (fields populated), ``error`` (``error``
            explains), or ``rejected`` (backpressure shed — retry).
        success: routing success / membership verdict.
        mapping: delivered mapping — ``mapping[o]`` is the input whose
            signal arrived at output ``o`` (``route`` only).
        per_stage: per-column crossed-switch counts for this instance,
            when the serving engine collected them.
        stage_states: full ``(2n-1, N/2)`` switch states, when asked
            for (``stage_states=True`` requests, every ``setup``).
        engine: the execution engine that served the batch (the
            recorded engine column of the serve bench).
        error: human-readable failure, for ``status="error"``.
        v: wire schema version.
    """

    op: str
    id: int
    status: str = "ok"
    success: Optional[bool] = None
    mapping: Optional[Row] = None
    per_stage: Optional[Row] = None
    stage_states: Optional[States] = None
    engine: Optional[str] = None
    error: Optional[str] = None
    v: int = PROTOCOL_VERSION

    def __post_init__(self):
        _require(self.op in OPS,
                 f"unknown op {self.op!r} in response")
        _require(self.status in STATUSES,
                 f"unknown status {self.status!r}; expected one of "
                 f"{', '.join(STATUSES)}")
        _require(self.v == PROTOCOL_VERSION,
                 f"unsupported protocol version {self.v!r}")
        if self.mapping is not None:
            object.__setattr__(self, "mapping",
                               _int_tuple(self.mapping, "mapping"))
        if self.per_stage is not None:
            object.__setattr__(self, "per_stage",
                               _int_tuple(self.per_stage, "per_stage"))
        if self.stage_states is not None:
            object.__setattr__(self, "stage_states", tuple(
                _int_tuple(column, "stage_states column")
                for column in self.stage_states
            ))


# ----------------------------------------------------------------------
# Canonical JSON encoding — one byte form per message
# ----------------------------------------------------------------------

def _canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def encode_request(request: RouteRequest) -> str:
    """The request's canonical wire line (no trailing newline — the
    transport frames)."""
    payload = {
        "v": request.v,
        "op": request.op,
        "id": request.id,
        "tags": list(request.tags),
        "omega": request.omega_mode,
        "states": request.stage_states,
    }
    if request.stuck is not None:
        payload["stuck"] = [list(t) for t in request.stuck]
    return _canonical(payload)


def encode_response(response: RouteResponse) -> str:
    """The response's canonical wire line; ``None`` fields are
    omitted, everything else is emitted in one deterministic byte
    form."""
    payload = {
        "v": response.v,
        "op": response.op,
        "id": response.id,
        "status": response.status,
    }
    if response.success is not None:
        payload["success"] = response.success
    if response.mapping is not None:
        payload["mapping"] = list(response.mapping)
    if response.per_stage is not None:
        payload["per_stage"] = list(response.per_stage)
    if response.stage_states is not None:
        payload["states"] = [list(col) for col in response.stage_states]
    if response.engine is not None:
        payload["engine"] = response.engine
    if response.error is not None:
        payload["error"] = response.error
    return _canonical(payload)


def _parse_line(line: Union[str, bytes], what: str) -> dict:
    if isinstance(line, (bytes, bytearray)):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"{what} line is not UTF-8: {exc}")
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"{what} line is not valid JSON: {exc}")
    _require(isinstance(payload, dict),
             f"{what} line must be a JSON object")
    return payload


def decode_request(line: Union[str, bytes]) -> RouteRequest:
    """Parse and validate one request line; any malformation raises
    :class:`~repro.errors.ProtocolError`."""
    payload = _parse_line(line, "request")
    unknown = set(payload) - {"v", "op", "id", "tags", "omega",
                              "states", "stuck"}
    _require(not unknown,
             f"unknown request fields: {', '.join(sorted(unknown))}")
    _require("op" in payload and "tags" in payload,
             "request must carry op and tags")
    return RouteRequest(
        op=payload["op"],
        tags=payload["tags"],
        id=payload.get("id", 0),
        omega_mode=payload.get("omega", False),
        stuck=payload.get("stuck"),
        stage_states=payload.get("states", False),
        v=payload.get("v", PROTOCOL_VERSION),
    )


def decode_response(line: Union[str, bytes]) -> RouteResponse:
    """Parse and validate one response line."""
    payload = _parse_line(line, "response")
    return RouteResponse(
        op=payload.get("op", "route"),
        id=payload.get("id", 0),
        status=payload.get("status", "ok"),
        success=payload.get("success"),
        mapping=payload.get("mapping"),
        per_stage=payload.get("per_stage"),
        stage_states=payload.get("states"),
        engine=payload.get("engine"),
        error=payload.get("error"),
        v=payload.get("v", PROTOCOL_VERSION),
    )


# ----------------------------------------------------------------------
# Builders — THE slicing code, shared by daemon and parity tests
# ----------------------------------------------------------------------

def from_batch_result(request: RouteRequest, result, index: int,
                      engine: Optional[str] = None) -> RouteResponse:
    """The response for lane ``index`` of a
    :class:`~repro.core.routing.BatchRouteResult` — the one place a
    batch is sliced into per-request answers, so a coalesced daemon
    response and a direct ``batch_self_route`` call produce identical
    bytes by construction."""
    per_stage = None
    if result.per_stage is not None:
        # per_stage is (2n-1, B): column `index` is this lane's counts.
        per_stage = tuple(int(row[index]) for row in result.per_stage)
    stage_states = None
    if request.stage_states and result.stage_states is not None:
        stage_states = tuple(
            tuple(int(s) for s in column)
            for column in result.stage_states[index]
        )
    return RouteResponse(
        op=request.op,
        id=request.id,
        status="ok",
        success=bool(result.success_mask[index]),
        mapping=tuple(int(v) for v in result.mappings[index]),
        per_stage=per_stage,
        stage_states=stage_states,
        engine=engine,
    )


def from_membership_mask(request: RouteRequest, mask, index: int,
                         engine: Optional[str] = None) -> RouteResponse:
    """The response for lane ``index`` of a ``batch_in_class_f``
    verdict mask."""
    return RouteResponse(
        op=request.op,
        id=request.id,
        status="ok",
        success=bool(mask[index]),
        engine=engine,
    )


def from_partial_result(request: RouteRequest, result, index: int,
                        engine: Optional[str] = None) -> RouteResponse:
    """The response for lane ``index`` of a
    :class:`~repro.accel.partial.PartialBatchResult`: per-instance
    all-active-lanes-delivered verdict plus the delivered mapping of
    the canonical completion (idle lanes carry the completion's
    filler routes — clients mask by their own active set)."""
    return RouteResponse(
        op=request.op,
        id=request.id,
        status="ok",
        success=bool(result.success_mask[index]),
        mapping=tuple(int(v) for v in result.delivered[index]),
        engine=engine,
    )


def from_setup_states(request: RouteRequest, states_batch, index: int,
                      engine: Optional[str] = None) -> RouteResponse:
    """The response for lane ``index`` of a ``batch_setup_states``
    result: the realizing switch states for the request's
    permutation."""
    return RouteResponse(
        op=request.op,
        id=request.id,
        status="ok",
        success=True,
        stage_states=tuple(
            tuple(int(s) for s in column)
            for column in states_batch[index]
        ),
        engine=engine,
    )


def error_response(op: str, request_id: int, message: str
                   ) -> RouteResponse:
    """A ``status="error"`` response carrying ``message``."""
    return RouteResponse(op=op, id=request_id, status="error",
                         error=message)


def rejected_response(request: RouteRequest) -> RouteResponse:
    """The backpressure answer: the coalescing queue was full and this
    request was shed instead of queued (HTTP's 429, in one word)."""
    return RouteResponse(op=request.op, id=request.id,
                         status="rejected",
                         error="server busy: coalescing queue full")
