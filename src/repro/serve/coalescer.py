"""The coalescing queue: many client requests, few engine batches.

The daemon's whole reason to exist is amortization — the accel engines
route a ``(B, N)`` batch for barely more than a single vector, so the
win is turning per-connection request streams into wide batches.  This
module is the **synchronous core** of that state machine: no sockets,
no asyncio, no wall clock.  Callers pass ``now`` explicitly, which is
what makes the cutoff logic testable with a fake clock (the asyncio
driver in :mod:`repro.serve.daemon` passes the event loop's time).

State machine per bucket (requests sharing a
:meth:`~repro.serve.protocol.RouteRequest.coalesce_key` — same op,
width, omega mode, fault map, states flag):

- **offer** appends to the bucket; the bucket's deadline is the *first*
  item's arrival plus ``max_wait`` (latency cutoff — one straggler
  cannot hold a batch forever);
- a bucket reaching ``max_batch`` items flushes immediately (size
  cutoff — returned straight from :meth:`offer`, no timer involved);
- :meth:`due` pops every bucket whose deadline has passed (the driver
  calls it when its timer fires at :meth:`next_deadline`);
- an offer that would push *total* queued items past ``queue_limit``
  is **rejected** — bounded memory under overload, the wire protocol's
  429-style ``rejected`` status (shedding beats unbounded latency) —
  *unless* the offer completes an existing bucket to ``max_batch``, in
  which case it is accepted and the full bucket flushes in the same
  call: the capacity it occupies frees immediately, so shedding it
  would only throw away work the engine is about to absorb for free.

Zero-wait semantics (``max_wait=0``): a bucket created at ``now`` has
``deadline == now``, and "due" means ``deadline <= now`` everywhere —
:meth:`due` pops it the next time the driver ticks, and the driver's
``delay = deadline - loop.time()`` comes out ``<= 0`` so it polls
without sleeping.  :meth:`offer` still answers ``QUEUED`` (not
``FLUSH``) for such a bucket: the flush happens on the next driver
tick, which keeps the size cutoff the *only* reason ``offer`` itself
returns a batch.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from ..errors import InvalidParameterError

__all__ = ["CoalescingQueue", "FLUSH", "QUEUED", "REJECT"]

#: :meth:`CoalescingQueue.offer` verdicts.
QUEUED = "queued"
FLUSH = "flush"
REJECT = "reject"


class _Bucket:
    __slots__ = ("items", "deadline")

    def __init__(self, deadline: float):
        self.items: List = []
        self.deadline = deadline


class CoalescingQueue:
    """Size/latency-cutoff micro-batching with bounded occupancy.

    Args:
        max_batch: size cutoff — a bucket flushes the moment it holds
            this many items (also the widest batch handed to the
            engine).
        max_wait: latency cutoff in **seconds** — a bucket flushes at
            latest this long after its first item arrived.
        queue_limit: total queued items across all buckets; offers
            beyond it are rejected.
    """

    def __init__(self, *, max_batch: int = 64,
                 max_wait: float = 500e-6,
                 queue_limit: int = 4096):
        if max_batch < 1:
            raise InvalidParameterError(
                f"max_batch must be >= 1, got {max_batch}")
        if max_wait < 0:
            raise InvalidParameterError(
                f"max_wait must be >= 0, got {max_wait}")
        if queue_limit < 1:
            raise InvalidParameterError(
                f"queue_limit must be >= 1, got {queue_limit}")
        self.max_batch = max_batch
        self.max_wait = max_wait
        self.queue_limit = queue_limit
        self._buckets: "Dict[Hashable, _Bucket]" = {}
        self._pending = 0

    @property
    def pending(self) -> int:
        """Items queued and not yet flushed, across all buckets."""
        return self._pending

    def offer(self, key: Hashable, item, now: float
              ) -> Tuple[str, Optional[List]]:
        """Queue ``item`` under ``key`` at time ``now``.

        Returns ``(verdict, batch)``: ``(FLUSH, items)`` when this
        offer completed a full batch (the offered item included, bucket
        cleared), ``(QUEUED, None)`` when it waits for more lanes or
        the deadline, ``(REJECT, None)`` when the queue is full — the
        item was **not** queued and the caller owes the client a
        ``rejected`` response.

        At ``queue_limit`` the offer is still accepted when it
        completes an existing bucket to ``max_batch``: the bucket
        flushes in this very call, so total occupancy drops by
        ``max_batch - 1`` instead of growing — rejecting would shed
        work whose capacity is about to free."""
        bucket = self._buckets.get(key)
        if self._pending >= self.queue_limit:
            if bucket is None or \
                    len(bucket.items) + 1 < self.max_batch:
                return REJECT, None
            bucket.items.append(item)
            self._pending += 1
            return FLUSH, self._pop(key)
        if bucket is None:
            bucket = _Bucket(deadline=now + self.max_wait)
            self._buckets[key] = bucket
        bucket.items.append(item)
        self._pending += 1
        if len(bucket.items) >= self.max_batch:
            return FLUSH, self._pop(key)
        return QUEUED, None

    def due(self, now: float) -> List[Tuple[Hashable, List]]:
        """Pop every bucket whose latency deadline has passed —
        ``deadline <= now``, so a ``max_wait=0`` bucket created at
        ``now`` is already due on the same tick."""
        ready = [key for key, bucket in self._buckets.items()
                 if bucket.deadline <= now]
        return [(key, self._pop(key)) for key in ready]

    def next_deadline(self) -> Optional[float]:
        """The earliest pending latency deadline, or ``None`` when
        nothing is queued (the driver's next timer target)."""
        if not self._buckets:
            return None
        return min(bucket.deadline
                   for bucket in self._buckets.values())

    def drain(self) -> List[Tuple[Hashable, List]]:
        """Pop everything regardless of deadlines (shutdown path: no
        queued request may be dropped silently)."""
        return [(key, self._pop(key)) for key in list(self._buckets)]

    def _pop(self, key: Hashable) -> List:
        bucket = self._buckets.pop(key)
        self._pending -= len(bucket.items)
        return bucket.items
