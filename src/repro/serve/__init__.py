"""``repro.serve`` — routing as a service.

The ``benes serve`` daemon turns the repository's batch engines into a
long-lived network service: many concurrent clients send
newline-delimited JSON requests, a coalescing queue micro-batches them
across connections into ``(B, N)`` accel batches, and every response
is byte-identical to what a direct in-process engine call would have
produced (pinned by the verify fuzzer's ``serve`` adapter).

Modules:

- :mod:`~repro.serve.protocol` — the frozen, versioned
  request/response pair and its canonical JSON encoding;
- :mod:`~repro.serve.coalescer` — the synchronous size/latency-cutoff
  batching state machine (fake-clock testable);
- :mod:`~repro.serve.daemon` — the asyncio server, engine dispatch
  through the :mod:`repro.engines` registry, span instrumentation;
- :mod:`~repro.serve.client` — the pipelining sync client;
- :mod:`~repro.serve.lifecycle` — the server-lifecycle contract
  (``SO_REUSEADDR``, clean-interrupt shutdown, observability flush)
  shared with ``benes metrics serve``.
"""

from .client import ServeClient
from .coalescer import CoalescingQueue
from .daemon import (
    DaemonHandle,
    RoutingDaemon,
    ServeConfig,
    serve,
    start_in_thread,
)
from .protocol import (
    PROTOCOL_VERSION,
    RouteRequest,
    RouteResponse,
)

__all__ = [
    "CoalescingQueue",
    "DaemonHandle",
    "PROTOCOL_VERSION",
    "RouteRequest",
    "RouteResponse",
    "RoutingDaemon",
    "ServeClient",
    "ServeConfig",
    "serve",
    "start_in_thread",
]
