"""``repro.engines`` — the first-class engine registry.

Every routing implementation in this repository is an **engine**: the
structural :class:`~repro.core.benes.BenesNetwork`, the integer
:mod:`~repro.core.fastpath`, the vectorized :mod:`repro.accel.batch`
kernel (NumPy and pure-Python), the bit-sliced big-int kernel of
:mod:`repro.accel.bitslice`, the sharded :mod:`repro.accel.executor`
path, and — since routing became a service — the ``benes serve``
daemon reached over a socket.  Before this module existed each
consumer kept its own list: the accel seam validated ``engine=``
keywords, the verifier kept three adapter dicts, the bench CLI
hard-coded its ``--engine`` choices, and the planner/executor trusted
whatever string reached them.  Adding an engine meant five call sites.

Now there is **one registry**.  An :class:`EngineSpec` names an engine
once and declares everything any consumer needs:

- ``selfroute`` / ``membership`` / ``states`` — normalized adapters
  (each drives the engine through its *public* entry points and
  returns plain-Python :class:`EngineRun` / mask / mapping data ready
  for byte-level comparison — the differential verifier's currency);
- ``exec_seam`` — whether the name is a valid ``engine=`` value for
  the batch entry points (the :func:`repro.accel.resolve_engine`
  seam);
- ``available`` — a predicate gating optional dependencies (NumPy);
- ``default`` — whether the engine joins *default* verification
  sweeps (the socket-backed ``serve`` engine is registered but opt-in:
  it spins up a live daemon per process).

Consumers resolve through the registry:

- :func:`repro.accel.resolve_engine` validates ``engine=`` keywords
  against :func:`exec_engine_names` (precedence: explicit keyword >
  ``FORCE_ENGINE`` test hook > ``BENES_ENGINE`` environment variable >
  ``auto`` policy — documented there, enforced here);
- :mod:`repro.verify` builds its engine tables from
  :data:`SELF_ROUTE_ENGINES` / :data:`MEMBERSHIP_ENGINES` /
  :data:`STATES_ENGINES` (live views of this registry);
- ``benes bench|route|verify|serve`` derive their ``--engine`` choices
  from :func:`exec_engine_names`;
- :mod:`repro.serve` resolves its dispatch engine here at startup.

Registering a new :class:`EngineSpec` therefore makes the engine
appear everywhere at once — one registration, not five call sites.
"""

from __future__ import annotations

import atexit
from collections.abc import Mapping
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .accel import executor as _executor
from .accel import _np as _np_seam
from .accel.batch import (
    batch_in_class_f,
    batch_route_with_states,
    batch_self_route,
)
from .accel.partial import batch_route_partial, complete_partial_row
from .core.benes import BenesNetwork
from .core.fastpath import (
    fast_route_with_states,
    fast_self_route_states,
)
from .core.membership import in_class_f
from .errors import InvalidParameterError, MissingDependencyError

__all__ = [
    "ALL_MEMBERSHIP_ENGINES",
    "ALL_PARTIAL_ENGINES",
    "ALL_SELF_ROUTE_ENGINES",
    "ALL_STATES_ENGINES",
    "EngineRun",
    "EngineSpec",
    "MEMBERSHIP_ENGINES",
    "PARTIAL_ENGINES",
    "SELF_ROUTE_ENGINES",
    "STATES_ENGINES",
    "default_selfroute_names",
    "exec_engine_names",
    "force_engine",
    "force_fallback",
    "get",
    "low_shard_threshold",
    "names",
    "register",
    "require_exec",
    "run_engine",
    "run_membership_engine",
    "run_partial_engine",
    "run_states_engine",
]

Row = Tuple[int, ...]
States = Tuple[Tuple[int, ...], ...]


@dataclass(frozen=True)
class EngineRun:
    """One engine's normalized answer for a batch of tag vectors.

    Attributes:
        engine: adapter name.
        success: per-instance routing success.
        mappings: per-instance delivered mapping — ``mappings[b][o]``
            is the input whose signal arrived at output ``o``.
        states: per-instance ``(2n-1, N/2)`` switch states as nested
            tuples, or ``None`` when the engine cannot expose them.
    """

    engine: str
    success: Tuple[bool, ...]
    mappings: Tuple[Row, ...]
    states: Optional[Tuple[States, ...]] = None


def _always() -> bool:
    return True


@dataclass(frozen=True)
class EngineSpec:
    """One engine, registered once, visible to every consumer.

    Attributes:
        name: the canonical engine name (also the self-routing adapter
            key and, when ``exec_seam`` is set, the value accepted by
            the batch entry points' ``engine=`` keyword).
        selfroute: ``(rows, order, *, omega_mode, stuck_switches) ->
            EngineRun`` adapter, or ``None`` when the engine has no
            self-routing surface.
        membership: ``(rows, order) -> Tuple[bool, ...]`` F(n)-verdict
            adapter (key: ``membership_name``).
        states: ``(states_batch, order) -> Tuple[Row, ...]``
            external-state adapter (key: ``states_name``).
        partial: ``(rows, order, *, omega_mode, stuck_switches) ->
            EngineRun`` adapter for **partial permutations** (dense
            rows, idle lanes ``-1``); ``success`` is the per-instance
            all-active-lanes-delivered verdict and ``mappings`` holds
            each instance's arrival outputs for its active sources in
            increasing source order — the masked currency the
            ``partial`` verify family compares byte-for-byte
            (key: ``partial_name``).
        membership_name / states_name / partial_name: historical
            per-family adapter names kept stable for the verifier's
            reports and generated regression tests.
        exec_seam: True when :func:`repro.accel.resolve_engine` should
            accept ``name`` as a concrete batch execution engine.
        available: dependency gate — ``False`` means requesting the
            engine raises ``MissingDependencyError`` and default
            sweeps skip it.
        default: False keeps the engine out of *default* verification
            sweeps (it stays reachable by explicit name).
        description: one line for ``benes verify`` / docs.
    """

    name: str
    selfroute: Optional[Callable[..., EngineRun]] = None
    membership: Optional[Callable[..., Tuple[bool, ...]]] = None
    states: Optional[Callable[..., Tuple[Row, ...]]] = None
    partial: Optional[Callable[..., EngineRun]] = None
    membership_name: Optional[str] = None
    states_name: Optional[str] = None
    partial_name: Optional[str] = None
    exec_seam: bool = False
    available: Callable[[], bool] = field(default=_always)
    default: bool = True
    description: str = ""


_REGISTRY: "Dict[str, EngineSpec]" = {}


def register(spec: EngineSpec, *, replace: bool = False) -> EngineSpec:
    """Add ``spec`` to the registry (the one step that makes a new
    engine visible to the accel seam, the verifier, the bench CLI and
    the serve daemon at once).  Re-registering a name requires
    ``replace=True`` so typos fail loudly."""
    if spec.name in _REGISTRY and not replace:
        raise InvalidParameterError(
            f"engine {spec.name!r} is already registered; pass "
            "replace=True to override it"
        )
    _REGISTRY[spec.name] = spec
    return spec


def get(name: str) -> EngineSpec:
    """The spec registered under ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise InvalidParameterError(
            f"unknown engine {name!r}; registered: "
            f"{', '.join(sorted(_REGISTRY))}"
        )


def names() -> Tuple[str, ...]:
    """Every registered engine name, in registration order."""
    return tuple(_REGISTRY)


def exec_engine_names(*, available_only: bool = False
                      ) -> Tuple[str, ...]:
    """The names :func:`repro.accel.resolve_engine` accepts as concrete
    execution engines, in registration order."""
    return tuple(
        spec.name for spec in _REGISTRY.values()
        if spec.exec_seam and (not available_only or spec.available())
    )


def require_exec(name: str) -> EngineSpec:
    """The exec-seam spec for ``name``, raising
    :class:`~repro.errors.InvalidParameterError` for non-seam names and
    :class:`~repro.errors.MissingDependencyError` when the engine's
    dependency gate is closed — the validation backing
    :func:`repro.accel.resolve_engine`."""
    spec = _REGISTRY.get(name)
    if spec is None or not spec.exec_seam:
        raise InvalidParameterError(
            f"unknown accel engine {name!r}; choose one of "
            f"{', '.join(exec_engine_names())} or 'auto' (also "
            "settable via the BENES_ENGINE environment variable)"
        )
    if not spec.available():
        if name == "numpy":
            from .accel._np import require_numpy

            # The canonical NumPy error names the extra to install.
            require_numpy(f"engine={name!r}")
        raise MissingDependencyError(
            f"engine {name!r} is registered but its dependency gate "
            "is closed (optional dependency missing)"
        )
    return spec


def default_selfroute_names() -> Tuple[str, ...]:
    """The self-routing engines a *default* verification sweep should
    drive: registered, adapter present, available, and not opted out
    (``default=False`` — e.g. the live-daemon ``serve`` engine)."""
    return tuple(
        spec.name for spec in _REGISTRY.values()
        if spec.selfroute is not None and spec.default
        and spec.available()
    )


class _CapabilityView(Mapping):
    """A live, read-only ``{name: adapter}`` view over one capability
    of the registry — what :mod:`repro.verify` iterates.  Late
    registrations (a plugin engine, a test double) appear without any
    rebuild.  Default views (``default_only=True``) hide engines
    registered with ``default=False`` — the socket-backed ``serve``
    engine must not start a daemon inside every default sweep — while
    the full views back explicit-name lookups (:func:`run_engine`,
    ``benes verify --engines``)."""

    def __init__(self, capability: str, key_attr: str, *,
                 default_only: bool = True):
        self._capability = capability
        self._key_attr = key_attr
        self._default_only = default_only

    def _table(self) -> "Dict[str, Callable]":
        table = {}
        for spec in _REGISTRY.values():
            adapter = getattr(spec, self._capability)
            if adapter is None:
                continue
            if self._default_only and not spec.default:
                continue
            key = getattr(spec, self._key_attr) or spec.name
            table[key] = adapter
        return table

    def __getitem__(self, key):
        return self._table()[key]

    def __iter__(self):
        return iter(self._table())

    def __len__(self):
        return len(self._table())

    def __repr__(self):
        return (f"<engine registry view {self._capability}: "
                f"{', '.join(self._table())}>")


#: Live views of the registry, one per comparison family — the tables
#: :mod:`repro.verify` fuzzes over by default.  ``scalar`` (the
#: structural network) is always first: the fuzzer treats the first
#: entry as the oracle.  Opt-in engines (``default=False``) are hidden
#: here but reachable through the full views / :func:`run_engine`.
SELF_ROUTE_ENGINES: Mapping = _CapabilityView("selfroute", "name")
MEMBERSHIP_ENGINES: Mapping = _CapabilityView("membership",
                                              "membership_name")
STATES_ENGINES: Mapping = _CapabilityView("states", "states_name")

#: Full views including opt-in engines — what explicit name lookups
#: (CLI ``--engines``, generated regression tests) resolve against.
ALL_SELF_ROUTE_ENGINES: Mapping = _CapabilityView(
    "selfroute", "name", default_only=False)
ALL_MEMBERSHIP_ENGINES: Mapping = _CapabilityView(
    "membership", "membership_name", default_only=False)
ALL_STATES_ENGINES: Mapping = _CapabilityView(
    "states", "states_name", default_only=False)

#: Partial-permutation views (dense rows, idle lanes ``-1``): the
#: masked k-of-N call model every engine answers through canonical
#: completion.  Same default/full split as the other capabilities.
PARTIAL_ENGINES: Mapping = _CapabilityView("partial", "partial_name")
ALL_PARTIAL_ENGINES: Mapping = _CapabilityView(
    "partial", "partial_name", default_only=False)


# ----------------------------------------------------------------------
# Environment toggles
# ----------------------------------------------------------------------

@contextmanager
def force_fallback():
    """Run the body as if NumPy were not installed (flips the
    :data:`repro.accel._np.FORCE_FALLBACK` seam)."""
    previous = _np_seam.FORCE_FALLBACK
    _np_seam.FORCE_FALLBACK = True
    try:
        yield
    finally:
        _np_seam.FORCE_FALLBACK = previous


@contextmanager
def force_engine(name: Optional[str]):
    """Steer every engine resolution inside the body to ``name``
    (flips the :data:`repro.accel._np.FORCE_ENGINE` seam — the
    monkeypatch equivalent of exporting ``BENES_ENGINE``)."""
    previous = _np_seam.FORCE_ENGINE
    _np_seam.FORCE_ENGINE = name
    try:
        yield
    finally:
        _np_seam.FORCE_ENGINE = previous


@contextmanager
def low_shard_threshold(threshold: int = 2):
    """Temporarily lower the executor's sharding threshold so small
    verification batches exercise the dispatch/merge path."""
    previous = _executor.SHARD_THRESHOLD
    _executor.SHARD_THRESHOLD = threshold
    try:
        yield
    finally:
        _executor.SHARD_THRESHOLD = previous


# ----------------------------------------------------------------------
# Normalization helpers
# ----------------------------------------------------------------------

def _as_rows(rows: Sequence[Sequence[int]]) -> List[Row]:
    return [tuple(int(v) for v in row) for row in rows]


def _normalize_states(states) -> Optional[Tuple[States, ...]]:
    if states is None:
        return None
    return tuple(
        tuple(tuple(int(s) for s in column) for column in per_instance)
        for per_instance in states
    )


def _from_batch_result(engine: str, result) -> EngineRun:
    return EngineRun(
        engine=engine,
        success=tuple(bool(ok) for ok in result.success_mask),
        mappings=tuple(tuple(int(v) for v in row)
                       for row in result.mappings),
        states=_normalize_states(result.stage_states),
    )


# ----------------------------------------------------------------------
# Self-routing adapters (six in-process generations + the daemon)
# ----------------------------------------------------------------------

def _scalar_engine(rows, order, *, omega_mode=False,
                   stuck_switches=None) -> EngineRun:
    net = BenesNetwork(order)
    success, mappings, states = [], [], []
    for row in rows:
        result = net.route(row, omega_mode=omega_mode, trace=True,
                           stuck_switches=stuck_switches)
        success.append(result.success)
        mappings.append(tuple(int(v) for v in result.delivered))
        states.append(tuple(
            tuple(int(s) for s in trace.states)
            for trace in result.stages
        ))
    return EngineRun("scalar", tuple(success), tuple(mappings),
                     tuple(states))


def _fastpath_engine(rows, order, *, omega_mode=False,
                     stuck_switches=None) -> EngineRun:
    success, mappings, states = [], [], []
    for row in rows:
        ok, delivered, st = fast_self_route_states(
            row, omega_mode=omega_mode, stuck_switches=stuck_switches
        )
        success.append(ok)
        mappings.append(delivered)
        states.append(st)
    return EngineRun("fastpath", tuple(success), tuple(mappings),
                     tuple(states))


def _batch_engine(rows, order, *, omega_mode=False,
                  stuck_switches=None) -> EngineRun:
    result = batch_self_route(list(rows), omega_mode=omega_mode,
                              stuck_switches=stuck_switches,
                              stage_states=True)
    return _from_batch_result("batch", result)


def _batch_fallback_engine(rows, order, *, omega_mode=False,
                           stuck_switches=None) -> EngineRun:
    # engine="scalar" pins the scalar per-instance loop: under
    # force_fallback an unqualified auto could resolve to bitslice,
    # and this adapter exists to keep the loop leg under test.
    with force_fallback():
        result = batch_self_route(list(rows), omega_mode=omega_mode,
                                  stuck_switches=stuck_switches,
                                  stage_states=True, engine="scalar")
    return _from_batch_result("batch-fallback", result)


def _bitslice_engine(rows, order, *, omega_mode=False,
                     stuck_switches=None) -> EngineRun:
    result = batch_self_route(list(rows), omega_mode=omega_mode,
                              stuck_switches=stuck_switches,
                              stage_states=True, engine="bitslice")
    return _from_batch_result("bitslice", result)


def _sharded_engine(rows, order, *, omega_mode=False,
                    stuck_switches=None) -> EngineRun:
    with low_shard_threshold(2):
        result = batch_self_route(list(rows), omega_mode=omega_mode,
                                  stuck_switches=stuck_switches,
                                  stage_states=True, parallel=2)
    return _from_batch_result("sharded", result)


def _composed_engine(rows, order, *, omega_mode=False,
                     stuck_switches=None) -> EngineRun:
    result = batch_self_route(list(rows), omega_mode=omega_mode,
                              stuck_switches=stuck_switches,
                              stage_states=True, engine="composed")
    return _from_batch_result("composed", result)


# ----------------------------------------------------------------------
# Partial-permutation adapters — masked k-of-N calls, dense rows with
# idle lanes -1.  Normalized currency: success = every active lane
# delivered; mappings[b] = the arrival outputs of instance b's active
# sources in increasing source order.
# ----------------------------------------------------------------------

def _partial_run_from_delivered(engine: str, dense_rows,
                                delivered_rows) -> EngineRun:
    """Mask full delivered mappings back to the active lanes — the one
    normalization every partial adapter funnels through, so engines
    only differ in how they *routed* the canonical completion."""
    success, arrivals = [], []
    for row, delivered in zip(dense_rows, delivered_rows):
        inverse = {src: out for out, src in enumerate(delivered)}
        oks, outs = [], []
        for src, dst in enumerate(row):
            if dst == -1:
                continue
            oks.append(delivered[dst] == src)
            outs.append(inverse[src])
        success.append(all(oks))
        arrivals.append(tuple(int(v) for v in outs))
    return EngineRun(engine, tuple(success), tuple(arrivals))


def _partial_from_result(engine: str, result) -> EngineRun:
    return EngineRun(
        engine=engine,
        success=tuple(bool(ok) for ok in result.success_mask),
        mappings=tuple(
            tuple(int(out) for _src, out in arrival)
            for arrival in result.arrivals
        ),
    )


def _partial_scalar_engine(rows, order, *, omega_mode=False,
                           stuck_switches=None) -> EngineRun:
    # The oracle leg: structural network on the canonical completion,
    # masked here rather than through the accel result type.
    net = BenesNetwork(order)
    dense = [tuple(int(v) for v in row) for row in rows]
    delivered_rows = []
    for row in dense:
        result = net.route(complete_partial_row(row),
                           omega_mode=omega_mode,
                           stuck_switches=stuck_switches)
        delivered_rows.append(tuple(int(v) for v in result.delivered))
    return _partial_run_from_delivered("partial-scalar", dense,
                                       delivered_rows)


def _partial_batch_engine(rows, order, *, omega_mode=False,
                          stuck_switches=None) -> EngineRun:
    result = batch_route_partial(list(rows), omega_mode=omega_mode,
                                 stuck_switches=stuck_switches)
    return _partial_from_result("partial-batch", result)


def _partial_batch_fallback_engine(rows, order, *, omega_mode=False,
                                   stuck_switches=None) -> EngineRun:
    with force_fallback():
        result = batch_route_partial(list(rows), omega_mode=omega_mode,
                                     stuck_switches=stuck_switches,
                                     engine="scalar")
    return _partial_from_result("partial-batch-fallback", result)


def _partial_bitslice_engine(rows, order, *, omega_mode=False,
                             stuck_switches=None) -> EngineRun:
    result = batch_route_partial(list(rows), omega_mode=omega_mode,
                                 stuck_switches=stuck_switches,
                                 engine="bitslice")
    return _partial_from_result("partial-bitslice", result)


def _partial_composed_engine(rows, order, *, omega_mode=False,
                             stuck_switches=None) -> EngineRun:
    result = batch_route_partial(list(rows), omega_mode=omega_mode,
                                 stuck_switches=stuck_switches,
                                 engine="composed")
    return _partial_from_result("partial-composed", result)


# --- the routing daemon, reached over its wire protocol ---------------

_SERVE_HANDLE = None


def _serve_runtime():
    """The per-process verification daemon: started lazily on first
    use of the ``serve`` adapters, reused across calls, stopped at
    interpreter exit.  A coalescing window well above the adapter's
    pipelined submit time keeps the requests micro-batched — the
    adapter verifies the *coalesced* path, not a degenerate B=1 one."""
    global _SERVE_HANDLE
    if _SERVE_HANDLE is None:
        from .serve import ServeConfig
        from .serve.daemon import start_in_thread

        _SERVE_HANDLE = start_in_thread(ServeConfig(
            port=0, max_batch=64, max_wait_us=5000.0,
        ))
        atexit.register(_stop_serve_runtime)
    return _SERVE_HANDLE


def _stop_serve_runtime() -> None:
    global _SERVE_HANDLE
    handle, _SERVE_HANDLE = _SERVE_HANDLE, None
    if handle is not None:
        handle.stop()


def _serve_client():
    from .serve.client import ServeClient

    handle = _serve_runtime()
    return ServeClient(*handle.address)


def _serve_engine(rows, order, *, omega_mode=False,
                  stuck_switches=None) -> EngineRun:
    with _serve_client() as client:
        responses = client.route_many(
            list(rows), omega_mode=omega_mode,
            stuck_switches=stuck_switches, stage_states=True,
        )
    return EngineRun(
        engine="serve",
        success=tuple(bool(r.success) for r in responses),
        mappings=tuple(tuple(int(v) for v in r.mapping)
                       for r in responses),
        states=tuple(
            tuple(tuple(int(s) for s in column)
                  for column in r.stage_states)
            for r in responses
        ),
    )


def _membership_serve(rows, order) -> Tuple[bool, ...]:
    with _serve_client() as client:
        responses = client.membership_many(list(rows))
    return tuple(bool(r.success) for r in responses)


def _partial_serve_engine(rows, order, *, omega_mode=False,
                          stuck_switches=None) -> EngineRun:
    dense = [tuple(int(v) for v in row) for row in rows]
    with _serve_client() as client:
        responses = client.packet_many(
            dense, omega_mode=omega_mode,
            stuck_switches=stuck_switches)
    delivered_rows = [tuple(int(v) for v in r.mapping)
                      for r in responses]
    return _partial_run_from_delivered("partial-serve", dense,
                                       delivered_rows)


# ----------------------------------------------------------------------
# Membership adapters — (B,) F(n) verdict masks over permutations
# ----------------------------------------------------------------------

def _membership_theorem1(rows, order) -> Tuple[bool, ...]:
    return tuple(bool(in_class_f(row)) for row in rows)


def _membership_batch(rows, order) -> Tuple[bool, ...]:
    return tuple(bool(ok) for ok in batch_in_class_f(list(rows)))


def _membership_batch_fallback(rows, order) -> Tuple[bool, ...]:
    with force_fallback():
        mask = batch_in_class_f(list(rows), engine="scalar")
    return tuple(bool(ok) for ok in mask)


def _membership_bitslice(rows, order) -> Tuple[bool, ...]:
    mask = batch_in_class_f(list(rows), engine="bitslice")
    return tuple(bool(ok) for ok in mask)


def _membership_composed(rows, order) -> Tuple[bool, ...]:
    mask = batch_in_class_f(list(rows), engine="composed")
    return tuple(bool(ok) for ok in mask)


def _membership_route_success(rows, order) -> Tuple[bool, ...]:
    # Theorem 1 states membership == routing success; feeding the
    # routed verdict into the same comparison pins that equivalence
    # across engine generations.
    return tuple(
        fast_self_route_states(row)[0] for row in rows
    )


# ----------------------------------------------------------------------
# External-state adapters — realized permutation under given states
# ----------------------------------------------------------------------

def _states_scalar(states_batch, order) -> Tuple[Row, ...]:
    net = BenesNetwork(order)
    return tuple(
        tuple(int(v) for v in net.route_with_states(states).realized)
        for states in states_batch
    )


def _states_fastpath(states_batch, order) -> Tuple[Row, ...]:
    return tuple(
        tuple(int(v) for v in fast_route_with_states(states, order))
        for states in states_batch
    )


def _states_batch(states_batch, order) -> Tuple[Row, ...]:
    # mappings rows are already the realized input -> output view, the
    # same convention as fast_route_with_states.
    result = batch_route_with_states(list(states_batch), order)
    return tuple(tuple(int(v) for v in row) for row in result.mappings)


def _states_batch_fallback(states_batch, order) -> Tuple[Row, ...]:
    with force_fallback():
        result = batch_route_with_states(list(states_batch), order,
                                         engine="scalar")
    return tuple(tuple(int(v) for v in row) for row in result.mappings)


def _states_bitslice(states_batch, order) -> Tuple[Row, ...]:
    result = batch_route_with_states(list(states_batch), order,
                                     engine="bitslice")
    return tuple(tuple(int(v) for v in row) for row in result.mappings)


def _states_composed(states_batch, order) -> Tuple[Row, ...]:
    result = batch_route_with_states(list(states_batch), order,
                                     engine="composed")
    return tuple(tuple(int(v) for v in row) for row in result.mappings)


# ----------------------------------------------------------------------
# Public runners — the entries generated regression tests call
# ----------------------------------------------------------------------

def run_engine(name: str, rows: Sequence[Sequence[int]], order: int, *,
               omega_mode: bool = False,
               stuck_switches: Optional[dict] = None) -> EngineRun:
    """Run one named self-routing engine over ``rows`` — the public
    entry the shrinker's generated regression tests call."""
    try:
        engine = ALL_SELF_ROUTE_ENGINES[name]
    except KeyError:
        raise InvalidParameterError(
            f"unknown verify engine {name!r}; known: "
            f"{sorted(ALL_SELF_ROUTE_ENGINES)}"
        )
    return engine(_as_rows(rows), order, omega_mode=omega_mode,
                  stuck_switches=stuck_switches)


def run_membership_engine(name: str, rows: Sequence[Sequence[int]],
                          order: int) -> Tuple[bool, ...]:
    """Run one named F(n)-membership engine over permutation ``rows``."""
    try:
        engine = ALL_MEMBERSHIP_ENGINES[name]
    except KeyError:
        raise InvalidParameterError(
            f"unknown membership engine {name!r}; known: "
            f"{sorted(ALL_MEMBERSHIP_ENGINES)}"
        )
    return engine(_as_rows(rows), order)


def run_partial_engine(name: str, rows: Sequence[Sequence[int]],
                       order: int, *, omega_mode: bool = False,
                       stuck_switches: Optional[dict] = None
                       ) -> EngineRun:
    """Run one named partial-permutation engine over dense ``rows``
    (idle lanes ``-1``)."""
    try:
        engine = ALL_PARTIAL_ENGINES[name]
    except KeyError:
        raise InvalidParameterError(
            f"unknown partial engine {name!r}; known: "
            f"{sorted(ALL_PARTIAL_ENGINES)}"
        )
    return engine(_as_rows(rows), order, omega_mode=omega_mode,
                  stuck_switches=stuck_switches)


def run_states_engine(name: str, states_batch, order: int
                      ) -> Tuple[Row, ...]:
    """Realized permutations of ``B(order)`` under each instance of
    ``states_batch``, per the named external-state engine."""
    try:
        engine = ALL_STATES_ENGINES[name]
    except KeyError:
        raise InvalidParameterError(
            f"unknown states engine {name!r}; known: "
            f"{sorted(ALL_STATES_ENGINES)}"
        )
    return engine(states_batch, order)


# ----------------------------------------------------------------------
# Built-in registrations — ONE entry per engine generation.  Order
# matters twice: the fuzzer's oracle is the first self-routing entry
# (scalar), and resolve_engine's error text lists the exec seam in
# registration order (scalar, numpy, bitslice).
# ----------------------------------------------------------------------

register(EngineSpec(
    name="scalar",
    selfroute=_scalar_engine,
    membership=_membership_theorem1,
    membership_name="theorem1",
    states=_states_scalar,
    states_name="states-scalar",
    partial=_partial_scalar_engine,
    partial_name="partial-scalar",
    exec_seam=True,
    description="structural BenesNetwork oracle / per-row scalar loop",
))
register(EngineSpec(
    name="numpy",
    exec_seam=True,
    available=_np_seam.have_numpy,
    description="vectorized (B, N) NumPy kernels (the accel extra)",
))
register(EngineSpec(
    name="fastpath",
    selfroute=_fastpath_engine,
    membership=_membership_route_success,
    membership_name="route-success",
    states=_states_fastpath,
    states_name="states-fastpath",
    description="integer fast path (core.fastpath)",
))
register(EngineSpec(
    name="batch",
    selfroute=_batch_engine,
    membership=_membership_batch,
    membership_name="membership-batch",
    states=_states_batch,
    states_name="states-batch",
    partial=_partial_batch_engine,
    partial_name="partial-batch",
    description="accel batch entry points under auto resolution",
))
register(EngineSpec(
    name="batch-fallback",
    selfroute=_batch_fallback_engine,
    membership=_membership_batch_fallback,
    membership_name="membership-batch-fallback",
    states=_states_batch_fallback,
    states_name="states-batch-fallback",
    partial=_partial_batch_fallback_engine,
    partial_name="partial-batch-fallback",
    description="accel batch entry points with NumPy forced absent",
))
register(EngineSpec(
    name="bitslice",
    selfroute=_bitslice_engine,
    membership=_membership_bitslice,
    membership_name="membership-bitslice",
    states=_states_bitslice,
    states_name="states-bitslice",
    partial=_partial_bitslice_engine,
    partial_name="partial-bitslice",
    exec_seam=True,
    description="bit-sliced big-int lane-parallel kernel",
))
register(EngineSpec(
    name="sharded",
    selfroute=_sharded_engine,
    description="multicore shard executor over the batch engine",
))
register(EngineSpec(
    name="composed",
    selfroute=_composed_engine,
    membership=_membership_composed,
    membership_name="membership-composed",
    states=_states_composed,
    states_name="states-composed",
    partial=_partial_composed_engine,
    partial_name="partial-composed",
    exec_seam=True,
    description="block-composed sub-network engine: peel + per-block "
                "dispatch with streaming state chunks",
))
register(EngineSpec(
    name="serve",
    selfroute=_serve_engine,
    membership=_membership_serve,
    membership_name="membership-serve",
    partial=_partial_serve_engine,
    partial_name="partial-serve",
    default=False,
    description="the benes serve daemon, reached over its newline-"
                "delimited JSON wire protocol (opt-in: live socket)",
))
