"""Precompiled per-order **stage plans** and the shared topology cache.

A :class:`StagePlan` is everything the batch router needs to push a
``(B, N)`` block of tag vectors through ``B(order)`` without touching
the structural model per call:

- the control-bit schedule ``(0, 1, ..., n-1, ..., 1, 0)`` (Fig. 3);
- the ``2n - 2`` inter-stage link permutations of
  :class:`~repro.core.topology.BenesTopology`, plus their **inverses**
  so a link crossing becomes a single NumPy *gather*
  (``rows[:, inv_link]``) instead of a scatter;
- lazily-built ``intp`` index arrays of those inverses (only when NumPy
  is importable — the plan itself is pure Python and always available).

Plans and topologies live in bounded, lock-guarded
:class:`~repro.accel.lru.LRUCache` instances.  :func:`cached_topology`
replaces the old unbounded ``_TOPO_CACHE`` dict in
:mod:`repro.core.fastpath`, so the scalar fast path and the vectorized
batch engine share one cache hierarchy.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .. import obs as _obs
from ..core.topology import BenesTopology
from ._np import numpy_or_none
from .lru import LRUCache

__all__ = [
    "StagePlan",
    "bitslice_plan_cache",
    "cache_clear",
    "cache_stats",
    "cached_topology",
    "composed_plan_cache",
    "setup_plan_cache",
    "stage_plan",
    "topology_cache",
    "plan_cache",
]

#: One ``B(order)`` topology can reach ~megabytes at order 12+; a few
#: dozen distinct orders in flight is far beyond any realistic workload.
_TOPOLOGY_CACHE: "LRUCache[int, BenesTopology]" = LRUCache(maxsize=32)
_PLAN_CACHE: "LRUCache[int, StagePlan]" = LRUCache(maxsize=32)
# Per-order constants of the batched universal setup (the SetupPlan
# objects of repro.accel.setup); held here so all three accel LRUs are
# exposed through one cache_stats()/cache_clear() surface.
_SETUP_CACHE: "LRUCache[int, object]" = LRUCache(maxsize=32)
# Lane-packing constants of the bit-sliced big-int engine (the
# BitslicePlan objects of repro.accel.bitslice), keyed by
# (order, lanes, value_bits) — masks depend on the batch width, so this
# cache sees more distinct keys than the per-order ones.
_BITSLICE_CACHE: "LRUCache[tuple, object]" = LRUCache(maxsize=64)
# Block-decomposition constants of the composed engine (the
# ComposedPlan objects of repro.accel.composed), keyed by
# (order, sub_order) — the peel depth is a tunable, so one order can
# legitimately hold several plans.
_COMPOSED_CACHE: "LRUCache[tuple, object]" = LRUCache(maxsize=32)


def topology_cache() -> "LRUCache[int, BenesTopology]":
    """The process-wide topology cache (exposed for tests/metrics)."""
    return _TOPOLOGY_CACHE


def plan_cache() -> "LRUCache[int, StagePlan]":
    """The process-wide stage-plan cache (exposed for tests/metrics)."""
    return _PLAN_CACHE


def setup_plan_cache() -> "LRUCache[int, object]":
    """The process-wide setup-plan cache backing
    :func:`repro.accel.setup.setup_plan` (exposed for tests/metrics)."""
    return _SETUP_CACHE


def bitslice_plan_cache() -> "LRUCache[tuple, object]":
    """The process-wide bitslice-plan cache backing
    :func:`repro.accel.bitslice.bitslice_plan` (exposed for
    tests/metrics)."""
    return _BITSLICE_CACHE


def composed_plan_cache() -> "LRUCache[tuple, object]":
    """The process-wide composed-plan cache backing
    :func:`repro.accel.composed.composed_plan` (exposed for
    tests/metrics)."""
    return _COMPOSED_CACHE


def cache_stats() -> Dict[str, Dict[str, int]]:
    """Hit/miss/size/capacity counters of the process-wide plan,
    topology and setup-plan LRUs — the public face of their internal
    bookkeeping, and the payload of the metrics registry's
    ``accel.cache`` provider.

    Each per-cache dict is an atomic snapshot (one lock acquisition in
    :meth:`~repro.accel.lru.LRUCache.stats`): ``hits + misses`` counts
    completed lookups and ``building`` the in-flight factory builds, so
    a read taken while an executor thread-shard warms a cache is
    internally consistent.  The five caches are snapshotted in
    sequence — values may straddle an update *between* caches, but
    never within one."""
    return {
        "plan": _PLAN_CACHE.stats(),
        "topology": _TOPOLOGY_CACHE.stats(),
        "setup": _SETUP_CACHE.stats(),
        "bitslice": _BITSLICE_CACHE.stats(),
        "composed": _COMPOSED_CACHE.stats(),
    }


def cache_clear() -> None:
    """Empty all five caches and zero their hit/miss counters (tests,
    memory pressure)."""
    _PLAN_CACHE.clear()
    _TOPOLOGY_CACHE.clear()
    _SETUP_CACHE.clear()
    _BITSLICE_CACHE.clear()
    _COMPOSED_CACHE.clear()


# Pull-style metrics: snapshots read the LRU counters on demand rather
# than the hot path pushing on every lookup.
_obs.registry().register_provider("accel.cache", cache_stats)


def cached_topology(order: int) -> BenesTopology:
    """``BenesTopology.build(order)``, memoized in the bounded LRU."""
    return _TOPOLOGY_CACHE.get_or_build(
        order, lambda: BenesTopology.build(order)
    )


def _invert(link: Tuple[int, ...]) -> Tuple[int, ...]:
    inv = [0] * len(link)
    for r, target in enumerate(link):
        inv[target] = r
    return tuple(inv)


class StagePlan:
    """The compiled routing schedule of ``B(order)`` for batch use.

    Attributes:
        order: the paper's ``n``.
        n_terminals: ``N = 2^n`` rows.
        n_stages: ``2n - 1`` switch columns.
        ctrl_bits: per-stage controlling tag bit, ``min(s, 2n-2-s)``.
        links: the topology's link permutations (``links[s][r]`` = input
            row of column ``s+1`` fed by output row ``r`` of column ``s``).
        inv_links: their inverses (``inv_links[s][j]`` = output row of
            column ``s`` wired to input row ``j`` of column ``s+1``), the
            gather form used by the vectorized engine.
    """

    __slots__ = ("order", "n_terminals", "n_stages", "ctrl_bits",
                 "links", "inv_links", "_np_inv_links")

    def __init__(self, topology: BenesTopology):
        self.order = topology.order
        self.n_terminals = topology.n_terminals
        self.n_stages = topology.n_stages
        self.ctrl_bits = topology.control_bits()
        self.links = topology.links
        self.inv_links = tuple(_invert(link) for link in topology.links)
        self._np_inv_links = None

    def np_inv_links(self):
        """``(2n-2, N)`` ``intp`` array of the inverse links, built on
        first use (requires NumPy — callers on the fallback path use
        the tuple form in :attr:`inv_links` instead)."""
        if self._np_inv_links is None:
            np = numpy_or_none()
            if np is None:
                raise RuntimeError(
                    "np_inv_links() called without NumPy; use inv_links"
                )
            if self.inv_links:
                arr = np.array(self.inv_links, dtype=np.intp)
            else:  # order 1: single stage, no links
                arr = np.empty((0, self.n_terminals), dtype=np.intp)
            arr.setflags(write=False)
            self._np_inv_links = arr
        return self._np_inv_links


def stage_plan(order: int) -> StagePlan:
    """The (cached) :class:`StagePlan` for ``B(order)``."""
    return _PLAN_CACHE.get_or_build(
        order, lambda: StagePlan(cached_topology(order))
    )
