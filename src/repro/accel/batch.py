"""Vectorized batch-routing engine.

The analysis layer routes *millions* of tag vectors: cardinality
sweeps, Monte-Carlo F(n) density estimates, membership sampling, fault
sweeps.  One at a time through the scalar
:func:`~repro.core.fastpath.fast_self_route` loop that is ``O(N log N)``
Python bytecode per vector; here the whole batch advances through each
of the ``2n - 1`` stages *simultaneously* as a ``(B, N)`` integer array:

- a stage's switch decisions for every instance at once are one bitwise
  expression on the even columns (the self-routing rule reads bit
  ``min(s, 2n-2-s)`` of the upper input's tag);
- the conditional pair-swap is one ``where`` over the ``(B, N/2, 2)``
  pair view;
- a link crossing is one gather through the precompiled inverse-link
  index row of the :class:`~repro.accel.plans.StagePlan`.

Two implementation tricks keep the inner loop to a handful of NumPy
kernels per stage (measured ~40x over the scalar loop at order 8):

- **source packing** — instead of propagating a ``(tag, source)`` array
  pair, each value carries its source in the high bits
  (``source << order | tag``); the control rule only reads tag bits
  ``< order``, so one array routes both and the pair is unpacked once
  at the end;
- **arithmetic pair-swap** — with the batch laid out ``(N, B)``
  (terminals × instances), a stage's conditional exchange is
  ``diff = (odd - even) * s; even += diff; odd -= diff`` on the
  even/odd row views, avoiding ``where`` temporaries, and a link
  crossing is a contiguous row gather through the plan's inverse-link
  index.

Three bulk primitives cover the analysis workloads:

- :func:`batch_self_route` — success mask + delivered mappings;
- :func:`batch_route_with_states` — realized permutations under
  external per-instance switch settings;
- :func:`batch_in_class_f` — the F(n) membership mask (success only,
  no source tracking: the cheapest of the three).

Every primitive degrades to the scalar fast path when NumPy (the
``accel`` extra) is absent, returning plain lists — same values,
element for element.  Parity with both the scalar fast path and the
structural :class:`~repro.core.benes.BenesNetwork` is pinned by
``tests/test_accel.py`` (exhaustively for small orders, randomized via
hypothesis for larger).
"""

from __future__ import annotations

from ..core.bits import log2_exact
from ..core.fastpath import fast_route_with_states, fast_self_route
from ._np import numpy_or_none
from .plans import stage_plan

__all__ = [
    "batch_self_route",
    "batch_route_with_states",
    "batch_in_class_f",
]


def _as_tag_array(np, tags_batch):
    """Validate a batch of tag vectors as a ``(B, N)`` int64 array."""
    arr = np.asarray(tags_batch, dtype=np.int64)
    if arr.ndim != 2:
        raise ValueError(
            f"expected a (B, N) batch of tag vectors, got shape "
            f"{arr.shape}"
        )
    n = arr.shape[1]
    if arr.size and ((arr < 0) | (arr >= n)).any():
        raise ValueError(
            f"destination tags must lie in [0, {n}) — out-of-range "
            "values cannot address any output"
        )
    return arr


def _working_block(np, arr, n_value_bits):
    """Transpose ``(B, N)`` into the ``(N, B)`` working layout with the
    narrowest safe dtype for ``n_value_bits`` bits per element (int32
    covers packed source+tag routing up to order 15).

    ``copy=True``: the routing kernel mutates the block in place, and
    the transpose of a caller-owned F-contiguous array would alias it.
    """
    dtype = np.int32 if n_value_bits <= 31 else np.int64
    return np.array(arr.T, dtype=dtype, order="C", copy=True)


def _swap_stage(rows, cond):
    """In place, exchange adjacent row pairs of the ``(N, B)`` array
    where ``cond`` (``(N/2, B)``, values 0/1) is set — branch-free:
    ``diff = (odd - even) * cond`` then ``even += diff; odd -= diff``."""
    even = rows[0::2, :]
    odd = rows[1::2, :]
    diff = (odd - even) * cond
    even += diff
    odd -= diff


def _route_array(np, rows, order):
    """Push an ``(N, B)`` value block through all stages in place
    (modulo link gathers); the self-routing control reads tag bits of
    ``rows``, which must occupy the low ``order`` bits of each value."""
    plan = stage_plan(order)
    inv_links = plan.np_inv_links()
    last_stage = plan.n_stages - 1
    for stage in range(plan.n_stages):
        ctrl = plan.ctrl_bits[stage]
        _swap_stage(rows, (rows[0::2, :] >> ctrl) & 1)
        if stage < last_stage:
            rows = rows[inv_links[stage]]
    return rows


def batch_self_route(tags_batch):
    """Self-route a batch of tag vectors; the vectorized equivalent of
    ``[fast_self_route(t) for t in tags_batch]``.

    Args:
        tags_batch: ``(B, N)`` array-like of destination tags (each row
            an arbitrary tag vector — duplicates allowed, exactly as in
            the scalar fast path).

    Returns:
        ``(success, delivered)`` — with NumPy, a ``(B,)`` bool array and
        a ``(B, N)`` int array where ``delivered[b, o]`` is the input
        whose signal reached output ``o`` of instance ``b``; without
        NumPy, a list of bools and a list of tuples with identical
        values.
    """
    np = numpy_or_none()
    if np is None:
        successes, delivered = [], []
        for tags in tags_batch:
            ok, dst = fast_self_route(tags)
            successes.append(ok)
            delivered.append(dst)
        return successes, delivered
    arr = _as_tag_array(np, tags_batch)
    n = arr.shape[1]
    order = log2_exact(n)
    # Pack each value's source row into its high bits; the control rule
    # only reads tag bits < order, so one array routes both.
    rows = _working_block(np, arr, n_value_bits=2 * order)
    rows |= np.arange(n, dtype=rows.dtype)[:, None] << order
    rows = _route_array(np, rows, order)
    tags = rows & (n - 1)
    success = (tags == np.arange(n, dtype=rows.dtype)[:, None]
               ).all(axis=0)
    return success, (rows >> order).T.astype(np.int64)


def batch_in_class_f(perms_batch):
    """F(n) membership mask for a batch of permutations: instance ``b``
    is in ``F(n)`` iff the self-routing network delivers every one of
    its tags (Theorem 1 ≡ routing success; the equivalence is pinned in
    ``tests/test_membership.py``).

    Cheaper than :func:`batch_self_route`: no source tracking.  Returns
    a ``(B,)`` bool array, or a list of bools on the fallback path.
    """
    np = numpy_or_none()
    if np is None:
        # Scalar Theorem 1 recursion early-exits on the first conflict,
        # so it beats a full scalar routing pass here.
        from ..core.membership import in_class_f

        return [in_class_f(perm) for perm in perms_batch]
    arr = _as_tag_array(np, perms_batch)
    n = arr.shape[1]
    order = log2_exact(n)
    rows = _working_block(np, arr, n_value_bits=order)
    rows = _route_array(np, rows, order)
    return (rows == np.arange(n, dtype=rows.dtype)[:, None]).all(axis=0)


def batch_route_with_states(states_batch, order: int):
    """Realized permutations of ``B(order)`` under a batch of external
    state assignments; the vectorized equivalent of
    ``[fast_route_with_states(s, order) for s in states_batch]``.

    Args:
        states_batch: ``(B, 2*order - 1, N/2)`` array-like of 0/1
            switch states.
        order: the network order ``n``.

    Returns:
        ``(B, N)`` int array (or list of tuples on the fallback path)
        where row ``b`` maps input -> output for instance ``b``.
    """
    np = numpy_or_none()
    if np is None:
        return [fast_route_with_states(states, order)
                for states in states_batch]
    plan = stage_plan(order)
    n = plan.n_terminals
    states = np.asarray(states_batch, dtype=np.int64)
    expected = (plan.n_stages, n // 2)
    if states.ndim != 3 or states.shape[1:] != expected:
        raise ValueError(
            f"expected a (B, {expected[0]}, {expected[1]}) batch of "
            f"switch states for order {order}, got shape {states.shape}"
        )
    batch = states.shape[0]
    inv_links = plan.np_inv_links()
    dtype = np.int32 if plan.order <= 31 else np.int64
    rows = np.repeat(np.arange(n, dtype=dtype)[:, None], batch, axis=1)
    last_stage = plan.n_stages - 1
    for stage in range(plan.n_stages):
        cond = (states[:, stage, :].T != 0).astype(dtype)
        _swap_stage(rows, cond)
        if stage < last_stage:
            rows = rows[inv_links[stage]]
    # rows[output, b] = source  ->  dest[b, source] = output
    rows = rows.T.astype(np.int64)
    dest = np.empty_like(rows)
    outputs = np.broadcast_to(np.arange(n, dtype=np.int64), (batch, n))
    np.put_along_axis(dest, rows, outputs, axis=1)
    return dest
