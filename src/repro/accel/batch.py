"""Vectorized batch-routing engine.

The analysis layer routes *millions* of tag vectors: cardinality
sweeps, Monte-Carlo F(n) density estimates, membership sampling, fault
sweeps.  One at a time through the scalar
:func:`~repro.core.fastpath.fast_self_route` loop that is ``O(N log N)``
Python bytecode per vector; here the whole batch advances through each
of the ``2n - 1`` stages *simultaneously* as a ``(B, N)`` integer array:

- a stage's switch decisions for every instance at once are one bitwise
  expression on the even columns (the self-routing rule reads bit
  ``min(s, 2n-2-s)`` of the upper input's tag);
- the conditional pair-swap is one ``where`` over the ``(B, N/2, 2)``
  pair view;
- a link crossing is one gather through the precompiled inverse-link
  index row of the :class:`~repro.accel.plans.StagePlan`.

Two implementation tricks keep the inner loop to a handful of NumPy
kernels per stage (measured ~40x over the scalar loop at order 8):

- **source packing** — instead of propagating a ``(tag, source)`` array
  pair, each value carries its source in the high bits
  (``source << order | tag``); the control rule only reads tag bits
  ``< order``, so one array routes both and the pair is unpacked once
  at the end;
- **arithmetic pair-swap** — with the batch laid out ``(N, B)``
  (terminals × instances), a stage's conditional exchange is
  ``diff = (odd - even) * s; even += diff; odd -= diff`` on the
  even/odd row views, avoiding ``where`` temporaries, and a link
  crossing is a contiguous row gather through the plan's inverse-link
  index.

Three bulk primitives cover the analysis workloads:

- :func:`batch_self_route` — a
  :class:`~repro.core.routing.BatchRouteResult` (success mask +
  delivered mappings, optional per-stage switch-flip data);
- :func:`batch_route_with_states` — the realized permutations under
  external per-instance switch settings, same result shape;
- :func:`batch_in_class_f` — the F(n) membership mask (success only,
  no source tracking: the cheapest of the three).

Every primitive degrades to the scalar fast path when NumPy (the
``accel`` extra) is absent, carrying plain lists in the same result
types — same values, element for element.  Parity with both the scalar
fast path and the structural :class:`~repro.core.benes.BenesNetwork`
is pinned by ``tests/test_accel.py`` (exhaustively for small orders,
randomized via hypothesis for larger).

When :mod:`repro.obs` is enabled the engine reports call/item counts,
success/failure tallies, per-stage switch-flip totals, batch-size and
wall-time histograms under the ``accel.*`` metric names; disabled, the
only cost is one flag check per call.
"""

from __future__ import annotations

from time import perf_counter as _perf_counter

from .. import obs as _obs
from ..core.bits import log2_exact
from ..core.fastpath import (
    fast_route_with_states,
    fast_self_route,
    fast_self_route_states,
)
from ..core.routing import BatchRouteResult
from ..core.switch import validate_stuck_switches
from ..errors import InvalidParameterError, SizeMismatchError
from ..obs.spans import spanned as _spanned
from . import executor as _executor
from ._np import numpy_or_none, resolve_engine
from .plans import stage_plan

__all__ = [
    "batch_self_route",
    "batch_route_with_states",
    "batch_in_class_f",
]


def _batch_dims(batch):
    """Cheap ``(B, N)`` hint for engine resolution — no validation, no
    materialization; ``(None, None)`` when the shape is unreadable
    (the selected engine's own validation then reports properly)."""
    shape = getattr(batch, "shape", None)
    if shape is not None and len(shape) == 2:
        return int(shape[0]), int(shape[1])
    try:
        b = len(batch)
        n = len(batch[0]) if b else 0
    except (TypeError, IndexError, KeyError):
        return None, None
    return b, n


def _order_hint(width):
    """``log2(width)`` when it is a positive power of two, else None."""
    if width and width > 0 and (width & (width - 1)) == 0:
        return width.bit_length() - 1
    return None


def _resolve(engine, *, order, batch_size, kind="route"):
    """Resolve the engine for one user-facing call and record the
    decision (``accel.engine_selected.<engine>``).  Shard-side calls
    arrive with the dispatcher's concrete engine and skip the counter
    — the selection happened once, at the dispatching call."""
    resolved = resolve_engine(engine, order=order,
                              batch_size=batch_size, kind=kind)
    if _obs.enabled() and not _executor.in_shard():
        _obs.inc(f"accel.engine_selected.{resolved}")
    return resolved


def _as_tag_array(np, tags_batch):
    """Validate a batch of tag vectors as a ``(B, N)`` int64 array."""
    arr = np.asarray(tags_batch, dtype=np.int64)
    if arr.ndim != 2:
        raise SizeMismatchError(
            f"expected a (B, N) batch of tag vectors, got shape "
            f"{arr.shape}"
        )
    n = arr.shape[1]
    if arr.size and ((arr < 0) | (arr >= n)).any():
        raise InvalidParameterError(
            f"destination tags must lie in [0, {n}) — out-of-range "
            "values cannot address any output"
        )
    return arr


def _reject_scalar_options(entry: str, options: dict) -> None:
    """Engine options this batch entry point does not implement must
    fail loudly: the scalar path honors them, so accepting-and-ignoring
    would make the engines silently diverge — exactly the bug class
    :mod:`repro.verify` exists to catch.  Raises
    :class:`~repro.errors.InvalidParameterError` (never a bare
    ``TypeError``) naming every offending option."""
    if options:
        names = ", ".join(repr(name) for name in sorted(options))
        raise InvalidParameterError(
            f"{entry}() does not support engine option(s) {names}; "
            "the scalar path (BenesNetwork.route / fast_self_route) "
            "honors them, and silently ignoring them here would let "
            "the engines diverge — route through the scalar API or "
            "drop the option"
        )


def _stuck_plan(np, order: int, stuck_switches):
    """Validate a ``{(stage, switch): state}`` fault map and compile it
    into per-stage ``(switch_indices, states)`` index arrays — the
    vectorized stuck-mask applied on top of each stage's control
    decision (one fancy assignment per faulted stage)."""
    if not stuck_switches:
        return None
    n_stages = 2 * order - 1
    half = (1 << order) // 2
    validate_stuck_switches(stuck_switches, n_stages, half)
    grouped = {}
    for (stage, index), state in stuck_switches.items():
        grouped.setdefault(stage, ([], []))
        grouped[stage][0].append(index)
        grouped[stage][1].append(1 if state else 0)
    return {
        stage: (np.asarray(idx, dtype=np.intp),
                np.asarray(vals, dtype=np.int64))
        for stage, (idx, vals) in grouped.items()
    }


def _working_block(np, arr, n_value_bits):
    """Transpose ``(B, N)`` into the ``(N, B)`` working layout with the
    narrowest safe dtype for ``n_value_bits`` bits per element (int32
    covers packed source+tag routing up to order 15).

    ``copy=True``: the routing kernel mutates the block in place, and
    the transpose of a caller-owned F-contiguous array would alias it.
    """
    dtype = np.int32 if n_value_bits <= 31 else np.int64
    return np.array(arr.T, dtype=dtype, order="C", copy=True)


def _swap_stage(rows, cond):
    """In place, exchange adjacent row pairs of the ``(N, B)`` array
    where ``cond`` (``(N/2, B)``, values 0/1) is set — branch-free:
    ``diff = (odd - even) * cond`` then ``even += diff; odd -= diff``."""
    even = rows[0::2, :]
    odd = rows[1::2, :]
    diff = (odd - even) * cond
    even += diff
    odd -= diff


def _route_array(np, rows, order, stage_cross=None, omega_mode=False,
                 stuck=None, stage_states=None):
    """Push an ``(N, B)`` value block through all stages in place
    (modulo link gathers); the self-routing control reads tag bits of
    ``rows``, which must occupy the low ``order`` bits of each value.

    When ``stage_cross`` is a list, the per-instance crossed-switch
    count of every stage (a ``(B,)`` array) is appended to it.  With
    ``omega_mode`` the first ``order - 1`` columns are forced straight
    (the Section II omega-bit extension).  ``stuck`` is a compiled
    fault plan (:func:`_stuck_plan`): in each faulted stage the stuck
    switches' decisions are overwritten with their stuck states —
    overriding the omega forcing too, exactly like the structural
    network.  When ``stage_states`` is a list, the full ``(N/2, B)``
    0/1 decision array of every stage is appended to it.
    """
    plan = stage_plan(order)
    inv_links = plan.np_inv_links()
    last_stage = plan.n_stages - 1
    omega_stages = order - 1 if omega_mode else 0
    half = rows.shape[0] // 2
    for stage in range(plan.n_stages):
        stuck_here = stuck.get(stage) if stuck else None
        if stage < omega_stages and stuck_here is None:
            if stage_cross is not None:
                stage_cross.append(
                    np.zeros(rows.shape[1], dtype=rows.dtype)
                )
            if stage_states is not None:
                stage_states.append(
                    np.zeros((half, rows.shape[1]), dtype=np.int8)
                )
            rows = rows[inv_links[stage]]
            continue
        if stage < omega_stages:
            cond = np.zeros((half, rows.shape[1]), dtype=rows.dtype)
        else:
            ctrl = plan.ctrl_bits[stage]
            cond = (rows[0::2, :] >> ctrl) & 1
        if stuck_here is not None:
            indices, states = stuck_here
            cond[indices, :] = states.astype(rows.dtype)[:, None]
        if stage_cross is not None:
            stage_cross.append(cond.sum(axis=0))
        if stage_states is not None:
            stage_states.append(cond.astype(np.int8))
        _swap_stage(rows, cond)
        if stage < last_stage:
            rows = rows[inv_links[stage]]
    return rows


def _record_batch_metrics(kind, batch_size, seconds, n_success=None,
                          per_stage=None, scope="full"):
    """Feed one batch call into the registry (metrics are enabled).

    ``scope`` splits the catalogue so a sharded run's totals equal the
    inline run's exactly (no double counting between the dispatching
    call and its shards): ``"call"`` records the once-per-user-call
    instruments (calls, wall time, batch-size histogram), ``"work"``
    the per-item ones each shard records for its slice (items,
    success/failure, per-stage crosses), and ``"full"`` — the inline,
    unsharded path — both.  Entry points pick ``"work"`` when
    :func:`repro.accel.executor.in_shard` is true.
    """
    if scope != "work":
        _obs.inc(f"accel.{kind}.calls")
        _obs.observe(f"accel.{kind}.seconds", seconds)
        _obs.observe("accel.batch.size", batch_size,
                     bounds=_obs.POW2_BOUNDS)
    if scope != "call":
        _obs.inc(f"accel.{kind}.items", batch_size)
        if n_success is not None:
            _obs.inc(f"accel.{kind}.success", n_success)
            _obs.inc(f"accel.{kind}.failure", batch_size - n_success)
        if per_stage is not None:
            # NumPy path entries are (B,) arrays; the bitslice path
            # hands whole-batch ints per stage.
            for stage, crosses in enumerate(per_stage):
                if not isinstance(crosses, int):
                    crosses = crosses.sum() if hasattr(crosses, "sum") \
                        else sum(crosses)
                _obs.inc(f"accel.{kind}.stage_cross.{stage}",
                         int(crosses))


def _metric_scope() -> str:
    """``"work"`` inside an executor shard, else ``"full"``."""
    return "work" if _executor.in_shard() else "full"


@_spanned("batch.self_route")
def batch_self_route(tags_batch, *, omega_mode=False, stage_data=False,
                     stage_states=False, stuck_switches=None,
                     parallel=False, engine=None, **scalar_options):
    """Self-route a batch of tag vectors; the vectorized equivalent of
    ``[fast_self_route(t) for t in tags_batch]``.

    Args:
        tags_batch: ``(B, N)`` array-like of destination tags (each row
            an arbitrary tag vector — duplicates allowed, exactly as in
            the scalar fast path).
        omega_mode: set the omega bit on every signal, forcing the
            first ``n - 1`` columns straight (realizes ``Omega(n)``,
            mirroring ``BenesNetwork.route(omega_mode=True)``).
        stage_data: also collect per-stage switch-flip counts into the
            result's ``per_stage`` field (NumPy path only; the fallback
            path leaves it ``None``).
        stage_states: also record every stage's full 0/1 switch-state
            array into the result's ``stage_states`` field
            (``(B, 2n-1, N/2)`` int8, nested tuples on the fallback
            path) — value-identical to the scalar network's per-stage
            trace states; the evidence differential verification
            compares byte-for-byte.
        stuck_switches: fault injection — the same ``{(stage, switch):
            state}`` map ``BenesNetwork.route`` takes, applied to
            *every* instance of the batch (one fault configuration,
            many workloads: the shape of a fault campaign).  Stuck
            states override both the tag rule and the omega forcing.
        parallel: shard the batch across worker processes above the
            executor threshold (see :mod:`repro.accel.executor`);
            ``True`` resolves to ``os.cpu_count()`` workers, an int is
            an explicit worker count.  Results are identical for any
            value.
        engine: ``"scalar"``, ``"numpy"``, ``"bitslice"`` or ``"auto"``
            (default: auto, overridable via ``BENES_ENGINE`` — see
            :func:`repro.accel.resolve_engine`).  Values are identical
            for every engine; result *containers* follow the engine
            (arrays for numpy, lists/tuples otherwise).

    Any other keyword — in particular scalar-route options such as
    ``control``, ``trace``, ``payloads`` or ``require_success`` that
    this engine does not implement — raises
    :class:`~repro.errors.InvalidParameterError` rather than being
    silently ignored.

    Returns:
        a :class:`~repro.core.routing.BatchRouteResult` whose
        ``success_mask`` is a ``(B,)`` bool array and whose
        ``mappings[b][o]`` is the input whose signal reached output
        ``o`` of instance ``b`` (lists of identical values on the
        no-NumPy fallback path).
    """
    _reject_scalar_options("batch_self_route", scalar_options)
    np = numpy_or_none()
    enabled = _obs.enabled()
    t0 = _perf_counter() if enabled else 0.0
    b_hint, n_hint = _batch_dims(tags_batch)
    engine = _resolve(engine, order=_order_hint(n_hint),
                      batch_size=b_hint)
    if engine == "composed":
        from .composed import composed_self_route

        result = composed_self_route(
            tags_batch, omega_mode=omega_mode, stage_data=stage_data,
            stage_states=stage_states, stuck_switches=stuck_switches,
            parallel=parallel,
        )
        if enabled:
            _record_batch_metrics(
                "batch", len(result.success_mask),
                _perf_counter() - t0,
                n_success=sum(bool(ok) for ok in result.success_mask),
                scope=_metric_scope(),
            )
        return result
    extra = (omega_mode, stage_data, stuck_switches, stage_states,
             engine)
    if engine != "numpy":
        rows_in = tags_batch if isinstance(tags_batch, list) \
            else list(tags_batch)
        if _executor.wants_shards(parallel, len(rows_in)):
            result = _executor.dispatch(
                "self_route", rows_in, extra=extra, parallel=parallel,
            )
            if enabled:
                if np is None:
                    _obs.inc("accel.fallback.calls")
                _record_batch_metrics("batch", len(rows_in),
                                      _perf_counter() - t0, scope="call")
            return result
        scope = _metric_scope()
        if engine == "bitslice":
            from .bitslice import bitslice_self_route

            stage_totals = [] if enabled else None
            result = bitslice_self_route(
                rows_in, omega_mode=omega_mode, stage_data=stage_data,
                stage_states=stage_states,
                stuck_switches=stuck_switches,
                _stage_totals=stage_totals,
            )
            if enabled:
                if np is None and scope == "full":
                    _obs.inc("accel.fallback.calls")
                _record_batch_metrics("batch", len(result.success_mask),
                                      _perf_counter() - t0,
                                      n_success=sum(result.success_mask),
                                      per_stage=stage_totals,
                                      scope=scope)
            return result
        successes, delivered = [], []
        states_acc = [] if stage_states else None
        for tags in rows_in:
            if stage_states:
                ok, dst, st = fast_self_route_states(
                    tags, omega_mode=omega_mode,
                    stuck_switches=stuck_switches,
                )
                states_acc.append(st)
            else:
                ok, dst = fast_self_route(
                    tags, omega_mode=omega_mode,
                    stuck_switches=stuck_switches,
                )
            successes.append(ok)
            delivered.append(dst)
        if enabled:
            if np is None and scope == "full":
                _obs.inc("accel.fallback.calls")
            _record_batch_metrics("batch", len(successes),
                                  _perf_counter() - t0,
                                  n_success=sum(successes), scope=scope)
        return BatchRouteResult(success_mask=successes,
                                mappings=delivered,
                                stage_states=states_acc)
    arr = _as_tag_array(np, tags_batch)
    n = arr.shape[1]
    order = log2_exact(n)
    stuck = _stuck_plan(np, order, stuck_switches)  # validates eagerly
    if _executor.wants_shards(parallel, arr.shape[0]):
        result = _executor.dispatch(
            "self_route", arr, extra=extra,
            parallel=parallel, order_hint=order,
        )
        if enabled:
            # Work-level metrics (items, success/failure, crosses) were
            # recorded by the shards and merged from their deltas.
            _record_batch_metrics("batch", int(arr.shape[0]),
                                  _perf_counter() - t0, scope="call")
        return result
    # Pack each value's source row into its high bits; the control rule
    # only reads tag bits < order, so one array routes both.
    rows = _working_block(np, arr, n_value_bits=2 * order)
    rows |= np.arange(n, dtype=rows.dtype)[:, None] << order
    stage_cross = [] if (stage_data or enabled) else None
    states_acc = [] if stage_states else None
    rows = _route_array(np, rows, order, stage_cross=stage_cross,
                        omega_mode=omega_mode, stuck=stuck,
                        stage_states=states_acc)
    tags = rows & (n - 1)
    success = (tags == np.arange(n, dtype=rows.dtype)[:, None]
               ).all(axis=0)
    result = BatchRouteResult(
        success_mask=success,
        mappings=(rows >> order).T.astype(np.int64),
        per_stage=(np.array(stage_cross) if stage_data else None),
        stage_states=(np.transpose(np.array(states_acc), (2, 0, 1))
                      if stage_states else None),
    )
    if enabled:
        _record_batch_metrics("batch", int(arr.shape[0]),
                              _perf_counter() - t0,
                              n_success=int(success.sum()),
                              per_stage=stage_cross,
                              scope=_metric_scope())
    return result


@_spanned("batch.membership")
def batch_in_class_f(perms_batch, *, parallel=False, engine=None,
                     **scalar_options):
    """F(n) membership mask for a batch of permutations: instance ``b``
    is in ``F(n)`` iff the self-routing network delivers every one of
    its tags (Theorem 1 ≡ routing success; the equivalence is pinned in
    ``tests/test_membership.py``).

    Cheaper than :func:`batch_self_route`: no source tracking.  Returns
    a ``(B,)`` bool array, or a list of bools on the pure-Python
    engines.  ``parallel=`` shards large batches across worker
    processes with identical results; ``engine=`` selects the
    execution engine exactly as in :func:`batch_self_route`.
    Unsupported engine options (``stuck_switches``
    and friends — fault campaigns read :func:`batch_self_route`'s
    success mask instead) raise
    :class:`~repro.errors.InvalidParameterError`.
    """
    _reject_scalar_options("batch_in_class_f", scalar_options)
    np = numpy_or_none()
    enabled = _obs.enabled()
    t0 = _perf_counter() if enabled else 0.0
    b_hint, n_hint = _batch_dims(perms_batch)
    engine = _resolve(engine, order=_order_hint(n_hint),
                      batch_size=b_hint)
    if engine == "composed":
        from .composed import composed_in_class_f

        mask = composed_in_class_f(perms_batch, parallel=parallel)
        if enabled:
            _record_batch_metrics(
                "membership", len(mask), _perf_counter() - t0,
                n_success=sum(bool(ok) for ok in mask),
                scope=_metric_scope(),
            )
        return mask
    if engine != "numpy":
        rows_in = perms_batch if isinstance(perms_batch, list) \
            else list(perms_batch)
        if _executor.wants_shards(parallel, len(rows_in)):
            mask = _executor.dispatch("in_class_f", rows_in,
                                      extra=(engine,),
                                      parallel=parallel)
            if enabled:
                if np is None:
                    _obs.inc("accel.fallback.calls")
                _record_batch_metrics("membership", len(rows_in),
                                      _perf_counter() - t0, scope="call")
            return mask
        scope = _metric_scope()
        if engine == "bitslice":
            from .bitslice import bitslice_in_class_f

            mask = bitslice_in_class_f(rows_in)
        else:
            # Scalar Theorem 1 recursion early-exits on the first
            # conflict, so it beats a full scalar routing pass here.
            from ..core.membership import in_class_f

            mask = [in_class_f(perm) for perm in rows_in]
        if enabled:
            if np is None and scope == "full":
                _obs.inc("accel.fallback.calls")
            _record_batch_metrics("membership", len(mask),
                                  _perf_counter() - t0,
                                  n_success=sum(mask), scope=scope)
        return mask
    arr = _as_tag_array(np, perms_batch)
    n = arr.shape[1]
    order = log2_exact(n)
    if _executor.wants_shards(parallel, arr.shape[0]):
        mask = _executor.dispatch("in_class_f", arr,
                                  extra=("numpy",), parallel=parallel,
                                  order_hint=order)
        if enabled:
            _record_batch_metrics("membership", int(arr.shape[0]),
                                  _perf_counter() - t0, scope="call")
        return mask
    rows = _working_block(np, arr, n_value_bits=order)
    rows = _route_array(np, rows, order)
    mask = (rows == np.arange(n, dtype=rows.dtype)[:, None]).all(axis=0)
    if enabled:
        _record_batch_metrics("membership", int(arr.shape[0]),
                              _perf_counter() - t0,
                              n_success=int(mask.sum()),
                              scope=_metric_scope())
    return mask


@_spanned("batch.route_with_states")
def batch_route_with_states(states_batch, order: int, *,
                            stage_data=False, parallel=False,
                            engine=None, **scalar_options):
    """Realized permutations of ``B(order)`` under a batch of external
    state assignments; the vectorized equivalent of
    ``[fast_route_with_states(s, order) for s in states_batch]``.

    Args:
        states_batch: ``(B, 2*order - 1, N/2)`` array-like of 0/1
            switch states.
        order: the network order ``n``.
        stage_data: also expose the per-stage crossed-switch counts in
            the result's ``per_stage`` field (numpy and bitslice
            engines).
        parallel: shard the batch across worker processes above the
            executor threshold; results identical for any value.
        engine: execution engine, exactly as in
            :func:`batch_self_route`.

    Returns:
        a :class:`~repro.core.routing.BatchRouteResult`; row ``b`` of
        ``mappings`` maps input -> output for instance ``b``.  External
        states always deliver *some* permutation, so ``success_mask``
        is all-True — mirroring
        :meth:`~repro.core.benes.BenesNetwork.route_with_states`, where
        what matters is the realized mapping.  Unsupported engine
        options (``payloads``, ``trace``, ...) raise
        :class:`~repro.errors.InvalidParameterError`.
    """
    _reject_scalar_options("batch_route_with_states", scalar_options)
    np = numpy_or_none()
    enabled = _obs.enabled()
    t0 = _perf_counter() if enabled else 0.0
    try:
        b_hint = len(states_batch)
    except TypeError:
        b_hint = None
    engine = _resolve(engine, order=order, batch_size=b_hint)
    if engine == "composed":
        from .composed import composed_route_with_states

        result = composed_route_with_states(
            states_batch, order, stage_data=stage_data,
            parallel=parallel,
        )
        if enabled:
            _record_batch_metrics("states", len(result.success_mask),
                                  _perf_counter() - t0,
                                  scope=_metric_scope())
        return result
    if engine != "numpy":
        rows_in = states_batch if isinstance(states_batch, list) \
            else list(states_batch)
        if _executor.wants_shards(parallel, len(rows_in)):
            result = _executor.dispatch(
                "route_with_states", rows_in,
                extra=(order, stage_data, engine), parallel=parallel,
            )
            if enabled:
                if np is None:
                    _obs.inc("accel.fallback.calls")
                _record_batch_metrics("states", len(rows_in),
                                      _perf_counter() - t0, scope="call")
            return result
        scope = _metric_scope()
        if engine == "bitslice":
            from .bitslice import bitslice_route_with_states

            result = bitslice_route_with_states(rows_in, order,
                                                stage_data=stage_data)
        else:
            mappings = [fast_route_with_states(states, order)
                        for states in rows_in]
            result = BatchRouteResult(
                success_mask=[True] * len(mappings), mappings=mappings
            )
        if enabled:
            if np is None and scope == "full":
                _obs.inc("accel.fallback.calls")
            _record_batch_metrics("states", len(result.success_mask),
                                  _perf_counter() - t0, scope=scope)
        return result
    plan = stage_plan(order)
    n = plan.n_terminals
    states = np.asarray(states_batch, dtype=np.int64)
    expected = (plan.n_stages, n // 2)
    if states.ndim != 3 or states.shape[1:] != expected:
        raise SizeMismatchError(
            f"expected a (B, {expected[0]}, {expected[1]}) batch of "
            f"switch states for order {order}, got shape {states.shape}"
        )
    batch = states.shape[0]
    if _executor.wants_shards(parallel, batch):
        result = _executor.dispatch(
            "route_with_states", states,
            extra=(order, stage_data, "numpy"),
            parallel=parallel, order_hint=order,
        )
        if enabled:
            _record_batch_metrics("states", int(batch),
                                  _perf_counter() - t0, scope="call")
        return result
    inv_links = plan.np_inv_links()
    dtype = np.int32 if plan.order <= 31 else np.int64
    rows = np.repeat(np.arange(n, dtype=dtype)[:, None], batch, axis=1)
    last_stage = plan.n_stages - 1
    for stage in range(plan.n_stages):
        cond = (states[:, stage, :].T != 0).astype(dtype)
        _swap_stage(rows, cond)
        if stage < last_stage:
            rows = rows[inv_links[stage]]
    # rows[output, b] = source  ->  dest[b, source] = output
    rows = rows.T.astype(np.int64)
    dest = np.empty_like(rows)
    outputs = np.broadcast_to(np.arange(n, dtype=np.int64), (batch, n))
    np.put_along_axis(dest, rows, outputs, axis=1)
    result = BatchRouteResult(
        success_mask=np.ones(batch, dtype=bool),
        mappings=dest,
        per_stage=((states != 0).sum(axis=2).T if stage_data else None),
    )
    if enabled:
        _record_batch_metrics("states", int(batch),
                              _perf_counter() - t0,
                              scope=_metric_scope())
    return result
