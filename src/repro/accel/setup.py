"""Vectorized **universal setup**: batch Waksman looping and the batch
two-pass decomposition.

PR 1 vectorized the *self-routing* surface (:mod:`repro.accel.batch`);
this module vectorizes the paper's other half — the ``O(N log N)``
serial looping setup it benchmarks against (Waksman 1968, Section I)
and the two-pass universality construction (Section II) — so the
all-``N!``-permutations path scales like the ``F(n)`` path.

**Batched looping** (:func:`batch_setup_states`).  The serial algorithm
walks each input/output-pair constraint cycle one element at a time;
here a whole ``(B, N)`` permutation array is processed *level by
level*, every cycle of every instance at once:

- the looping successor ``succ(t) = inv[D[t XOR 1] XOR 1]`` of every
  terminal is two NumPy gathers;
- each succ-orbit elects its minimum-index **leader** by pointer
  jumping (``log m`` doubling steps, each one gather + one ``minimum``)
  — exactly the data-parallel formulation of
  :mod:`repro.simd.parallel_setup`, which provably assigns the same
  sub-network sides as the serial walk: the serial scan starts every
  cycle at its smallest untouched terminal with side 0, so *side 0 is
  the orbit with the smaller leader* (the states are byte-identical to
  :func:`repro.core.waksman.setup_states`, pinned by
  ``tests/test_accel_setup.py``);
- the first/last switch columns fall out of the side array with one
  slice and one gather, and the two half-size sub-problems of every
  instance are stacked onto the batch axis (``(B*S, m)`` with ``S``
  same-level sub-problems of size ``m``) so the next level is again one
  flat array pass — no recursion, no Python per cycle.

**Batch two-pass** (:func:`batch_two_pass`).  Mirrors
:mod:`repro.core.twopass`: run the batched looping setup, push identity
rows through the first ``n`` switch columns with the stage plan's link
gathers to read the half-way map ``M``, compose with the cached
inverse of the fixed all-straight wire map — one gather for
``omega_1`` and one scatter for ``omega_2``.
:func:`batch_route_two_pass` then routes both factors through the
vectorized engine (pass 1 ordinary self-routing, pass 2 with the omega
bit set) and composes the delivered mappings.

Per-order constants (the fixed all-straight map and its inverse) live
in a :class:`SetupPlan`, cached in the bounded LRU exposed through
:func:`repro.accel.cache_stats` next to the topology and stage-plan
caches.

Every entry point accepts ``parallel=`` (see
:mod:`repro.accel.executor`) and degrades to the scalar algorithms when
NumPy is absent — identical values, element for element.
"""

from __future__ import annotations

from time import perf_counter as _perf_counter
from typing import List, Sequence, Tuple

from .. import obs as _obs
from ..core.bits import log2_exact
from ..core.permutation import Permutation
from ..core.routing import BatchRouteResult
from ..errors import (
    InvalidParameterError,
    InvalidPermutationError,
    SizeMismatchError,
)
from ..obs.spans import spanned as _spanned
from . import executor as _executor
from ._np import numpy_or_none
from .batch import (
    _as_tag_array,
    _metric_scope,
    _resolve,
    _swap_stage,
    batch_self_route,
)
from .plans import setup_plan_cache, stage_plan

__all__ = [
    "SetupPlan",
    "batch_setup_states",
    "batch_two_pass",
    "batch_route_two_pass",
    "peel_level_stream",
    "setup_plan",
]


class SetupPlan:
    """Per-order constants of the batched universal setup.

    Attributes:
        order: the paper's ``n``.
        n_terminals: ``N = 2^n``.
        straight: the fixed wire permutation the first ``n`` columns
            perform with every switch straight (the "rearrangement of
            switches" between the Benes half and a true inverse-omega
            network), as a tuple.
        straight_inverse: its inverse, the gather form used by the
            two-pass factorization.
    """

    __slots__ = ("order", "n_terminals", "straight", "straight_inverse",
                 "_np_straight_inverse")

    def __init__(self, order: int):
        # Local import: core.twopass pulls in the structural network,
        # which this leaf package must not require at import time.
        from ..core.twopass import straight_map

        self.order = order
        self.n_terminals = 1 << order
        self.straight = straight_map(order).as_tuple()
        self.straight_inverse = Permutation(self.straight) \
            .inverse().as_tuple()
        self._np_straight_inverse = None

    def np_straight_inverse(self):
        """``(N,)`` index array of :attr:`straight_inverse` (NumPy
        path only), built on first use."""
        if self._np_straight_inverse is None:
            np = numpy_or_none()
            arr = np.array(self.straight_inverse, dtype=np.intp)
            arr.setflags(write=False)
            self._np_straight_inverse = arr
        return self._np_straight_inverse


def setup_plan(order: int) -> SetupPlan:
    """The (cached) :class:`SetupPlan` for ``B(order)``."""
    return setup_plan_cache().get_or_build(
        order, lambda: SetupPlan(order)
    )


def _as_perm_array(np, order: int, perms):
    """Validate a ``(B, N)`` batch where every row must be a genuine
    permutation (the looping algorithm's cycles are only consistent on
    permutations — duplicates would walk forever)."""
    arr = _as_tag_array(np, perms)
    n = 1 << order
    if arr.shape[1] != n:
        raise SizeMismatchError(
            f"expected (B, {n}) permutations for order {order}, got "
            f"shape {arr.shape}"
        )
    if arr.size and (np.sort(arr, axis=1)
                     != np.arange(n, dtype=arr.dtype)).any():
        raise InvalidPermutationError(
            "every row of a setup batch must be a permutation — "
            "duplicate or missing destinations break the looping cycles"
        )
    return arr


def _record_setup_metrics(kind: str, batch_size: int, seconds: float,
                          scope: str = "full") -> None:
    """Same call/work split as
    :func:`repro.accel.batch._record_batch_metrics`: the dispatching
    call records ``"call"`` instruments once, shards record ``"work"``
    for their slice, the inline path records ``"full"`` (both)."""
    if scope != "work":
        _obs.inc(f"accel.{kind}.calls")
        _obs.observe(f"accel.{kind}.seconds", seconds)
        _obs.observe("accel.batch.size", batch_size,
                     bounds=_obs.POW2_BOUNDS)
    if scope != "call":
        _obs.inc(f"accel.{kind}.items", batch_size)


def _leaders(np, succ, base, steps: int):
    """Minimum-index orbit leader of every element of the **flat**
    successor array (values are flat indices, so orbits compose with
    plain ``take``), by pointer jumping: after ``k`` doubling steps each
    element has folded ``2^k`` successors into its running minimum, so
    ``steps >= log2(orbit length)`` converges.  Leaders are flat indices
    too — orbits never cross a sub-problem boundary, so within any
    comparison the flat and local orderings agree."""
    leader = base.copy()
    jump = succ
    for _ in range(steps):
        leader = np.minimum(leader, leader.take(jump))
        jump = jump.take(jump)
    return leader


def _setup_levels(np, plan: SetupPlan, arr):
    """Core of the batched looping algorithm: returns the
    ``(B, 2n-1, N/2)`` int8 states array for the validated ``(B, N)``
    permutation array ``arr``.

    All gathers run on **flat** arrays with precomputed per-sub-problem
    offsets (``ndarray.take`` / fancy assignment, no ``*_along_axis``
    wrapper overhead); the stacked sub-problems of every level occupy
    contiguous flat runs, so the (batch, sub-problem) structure is
    carried entirely by index arithmetic."""
    order = plan.order
    n = plan.n_terminals
    batch = arr.shape[0]
    half = n // 2
    states = np.empty((batch, 2 * order - 1, half), dtype=np.int8)

    total = batch * n
    tags = arr.astype(np.intp).ravel()  # flat working copy
    base = np.arange(total, dtype=np.intp)
    inv = np.empty(total, dtype=np.intp)
    for level in range(order - 1):
        m = n >> level
        offs = base & ~(m - 1)  # flat start of each sub-problem
        # inverse permutation of every sub-problem: inv[D[t]] = t,
        # both sides in flat coordinates (full overwrite every level)
        inv[tags + offs] = base
        # looping successor succ(t) = inv[D[t ^ 1] ^ 1]; the partner's
        # tag is one pair-flip of the flat layout away
        partner_tags = tags.reshape(-1, 2)[:, ::-1].ravel()
        succ = inv.take((partner_tags ^ 1) + offs)
        leader = _leaders(np, succ, base,
                          steps=max(1, order - level - 1))
        # serial walk starts each cycle at its smallest untouched
        # terminal with side 0 => side 0 iff my orbit's leader is the
        # smaller of the pair (matches the scalar states exactly).
        pairs = leader.reshape(-1, 2)
        side_even = pairs[:, 0] >= pairs[:, 1]  # side of even terminals
        states[:, level, :] = side_even.reshape(batch, half)
        # last column: side of the terminal feeding each even output;
        # side[t] = side_even[t >> 1] ^ (t & 1), t = inv at even slots
        sources = inv[0::2]
        states[:, 2 * order - 2 - level, :] = (
            side_even.take(sources >> 1) ^ (sources & 1)
        ).reshape(batch, half)

        even, odd = tags[0::2], tags[1::2]
        upper = (np.where(side_even, odd, even) >> 1).reshape(-1, m // 2)
        lower = (np.where(side_even, even, odd) >> 1).reshape(-1, m // 2)
        # stack (sub-problem-major) onto the batch axis: row r splits
        # into rows 2r (its upper half) and 2r + 1 (its lower half) —
        # exactly the recursion order of the serial algorithm, so each
        # level's columns concatenate into the stage rows above.
        tags = np.stack((upper, lower), axis=1).ravel()
    # base case m == 2: one switch per sub-problem, crossed iff the
    # upper terminal's tag is 1.
    states[:, order - 1, :] = tags[0::2].reshape(batch, half)
    return states


def peel_level_stream(np, order: int, arr, levels: int):
    """Generator core of the composed-block engine's **peel**: run the
    first ``levels`` levels of the batched looping algorithm
    (:func:`_setup_levels`, truncated) breadth-first, streaming each
    level's two finished switch columns out the moment they exist.

    Yields ``("entry", level, col)`` then ``("exit", level, col)`` per
    level — ``col`` a ``(B, N/2)`` int8 array holding global switch
    column ``level`` resp. ``2*order - 2 - level`` — and finally one
    ``("subs", -1, subs)`` item with the ``(B << levels, N >> levels)``
    array of sub-network permutations in recursion (block-major)
    order: row ``b * 2**levels + k`` is the local permutation of middle
    block ``k`` of instance ``b``, whose switch columns occupy slice
    ``[k*w, (k+1)*w)`` (``w = N >> (levels + 1)``) of the global
    columns ``levels .. 2*order-2-levels``.  Assembling the yielded
    pieces reproduces :func:`_setup_levels` byte for byte (pinned by
    ``tests/test_composed.py``).

    Peak working memory is ``O(B * N)`` machine words — never the
    ``O(B * N * order)`` full state tensor, which is the point: the
    composed engine forwards the columns/blocks downstream as chunks.
    """
    if not 1 <= levels <= order - 1:
        raise InvalidParameterError(
            f"peel depth must satisfy 1 <= levels <= order - 1; got "
            f"levels={levels} for order {order}"
        )
    n = 1 << order
    batch = arr.shape[0]
    half = n // 2
    total = batch * n
    tags = arr.astype(np.intp).ravel()
    base = np.arange(total, dtype=np.intp)
    inv = np.empty(total, dtype=np.intp)
    for level in range(levels):
        m = n >> level
        offs = base & ~(m - 1)
        inv[tags + offs] = base
        partner_tags = tags.reshape(-1, 2)[:, ::-1].ravel()
        succ = inv.take((partner_tags ^ 1) + offs)
        leader = _leaders(np, succ, base,
                          steps=max(1, order - level - 1))
        pairs = leader.reshape(-1, 2)
        side_even = pairs[:, 0] >= pairs[:, 1]
        yield ("entry", level,
               side_even.reshape(batch, half).astype(np.int8))
        sources = inv[0::2]
        yield ("exit", level,
               (side_even.take(sources >> 1) ^ (sources & 1))
               .reshape(batch, half).astype(np.int8))
        even, odd = tags[0::2], tags[1::2]
        upper = (np.where(side_even, odd, even) >> 1).reshape(-1, m // 2)
        lower = (np.where(side_even, even, odd) >> 1).reshape(-1, m // 2)
        tags = np.stack((upper, lower), axis=1).ravel()
    yield ("subs", -1, tags.reshape(batch << levels, n >> levels))


@_spanned("batch.setup")
def batch_setup_states(order: int, perms, *, parallel=False,
                       engine=None):
    """Switch states realizing a whole batch of **arbitrary**
    permutations on ``B(order)`` — the vectorized equivalent of
    ``[setup_states(p) for p in perms]``, byte-identical to the serial
    looping algorithm of :mod:`repro.core.waksman`.

    Args:
        perms: ``(B, N)`` array-like; every row must be a permutation.
        parallel: shard the batch across worker processes above the
            executor threshold (``True`` for ``os.cpu_count()`` workers,
            an int for an explicit worker count).
        engine: execution engine as in
            :func:`repro.accel.batch_self_route`.  The looping side
            assignment has no bit-sliced formulation, so
            ``"bitslice"`` here runs the scalar algorithm per instance
            (see :func:`repro.accel.bitslice.bitslice_setup_states`)
            and ``auto`` resolves to numpy-or-scalar.

    Returns:
        a ``(B, 2*order - 1, N/2)`` int8 array (a list of per-instance
        nested state lists on the pure-Python engines) that plugs
        straight into :func:`repro.accel.batch_route_with_states`.
    """
    np = numpy_or_none()
    enabled = _obs.enabled()
    t0 = _perf_counter() if enabled else 0.0
    try:
        b_hint = len(perms)
    except TypeError:
        b_hint = None
    engine = _resolve(engine, order=order, batch_size=b_hint,
                      kind="setup")
    if engine == "composed":
        from .composed import composed_setup_states

        result = composed_setup_states(order, perms, parallel=parallel)
        if enabled:
            _record_setup_metrics("setup", len(result),
                                  _perf_counter() - t0,
                                  scope=_metric_scope())
        return result
    if engine != "numpy":
        rows = perms if isinstance(perms, list) else list(perms)
        if _executor.wants_shards(parallel, len(rows)):
            result = _executor.dispatch(
                "setup_states", rows, extra=(order, engine),
                parallel=parallel
            )
            if enabled:
                if np is None:
                    _obs.inc("accel.fallback.calls")
                _record_setup_metrics("setup", len(rows),
                                      _perf_counter() - t0, scope="call")
            return result
        scope = _metric_scope()
        if engine == "bitslice":
            from .bitslice import bitslice_setup_states

            result = bitslice_setup_states(order, rows)
        else:
            from ..core.waksman import setup_states

            result = [setup_states(p) for p in rows]
        if enabled:
            if np is None and scope == "full":
                _obs.inc("accel.fallback.calls")
            _record_setup_metrics("setup", len(result),
                                  _perf_counter() - t0, scope=scope)
        return result
    arr = _as_perm_array(np, order, perms)
    if _executor.wants_shards(parallel, arr.shape[0]):
        result = _executor.dispatch(
            "setup_states", arr, extra=(order, "numpy"),
            parallel=parallel
        )
        if enabled:
            _record_setup_metrics("setup", int(arr.shape[0]),
                                  _perf_counter() - t0, scope="call")
        return result
    states = _setup_levels(np, setup_plan(order), arr)
    if enabled:
        _record_setup_metrics("setup", int(arr.shape[0]),
                              _perf_counter() - t0,
                              scope=_metric_scope())
    return states


def _first_half_maps(np, order: int, states):
    """Where each input of each instance sits after the first ``n``
    switch columns — the batched
    :func:`repro.core.twopass._first_half_map`: returns ``middle`` with
    ``middle[b, source] = row``."""
    plan = stage_plan(order)
    n = plan.n_terminals
    batch = states.shape[0]
    inv_links = plan.np_inv_links()
    dtype = np.int32 if order <= 31 else np.int64
    rows = np.repeat(np.arange(n, dtype=dtype)[:, None], batch, axis=1)
    for stage in range(order):
        cond = states[:, stage, :].T.astype(dtype)
        _swap_stage(rows, cond)
        if stage < order - 1:
            rows = rows[inv_links[stage]]
    # rows[row, b] = source occupying that row -> middle[b, source] = row
    sources = rows.T.astype(np.int64)
    middle = np.empty_like(sources)
    np.put_along_axis(
        middle, sources,
        np.broadcast_to(np.arange(n, dtype=np.int64), (batch, n)),
        axis=1,
    )
    return middle


@_spanned("batch.two_pass")
def batch_two_pass(order: int, perms, *, parallel=False, engine=None):
    """Factor a whole batch of arbitrary permutations for two-pass
    universal routing: returns ``(omega_1, omega_2)`` as ``(B, N)``
    arrays with ``omega_2[omega_1] == perms`` row-wise, ``omega_1``
    inverse-omega (self-routable) and ``omega_2`` omega (routable with
    the omega bit set) — the vectorized equivalent of
    ``[two_pass_decomposition(p) for p in perms]``, identical factors.

    On the pure-Python engines both factors are lists of tuples;
    ``engine="bitslice"`` pushes the first-half map through the switch
    columns lane-parallel (scalar side assignment, bit-sliced transit
    — see :func:`repro.accel.bitslice.bitslice_two_pass`).
    """
    np = numpy_or_none()
    enabled = _obs.enabled()
    t0 = _perf_counter() if enabled else 0.0
    try:
        b_hint = len(perms)
    except TypeError:
        b_hint = None
    engine = _resolve(engine, order=order, batch_size=b_hint,
                      kind="setup")
    if engine == "composed":
        # The two-pass factorization reads the *global* first-half map —
        # it does not block-decompose — so a composed request delegates
        # to the composed engine's own inner engine; the factors are
        # identical either way.
        engine = "numpy" if np is not None else "scalar"
    if engine != "numpy":
        rows = perms if isinstance(perms, list) else list(perms)
        if _executor.wants_shards(parallel, len(rows)):
            result = _executor.dispatch(
                "two_pass", rows, extra=(order, engine),
                parallel=parallel
            )
            if enabled:
                if np is None:
                    _obs.inc("accel.fallback.calls")
                _record_setup_metrics("two_pass", len(rows),
                                      _perf_counter() - t0, scope="call")
            return result
        scope = _metric_scope()
        if engine == "bitslice":
            from .bitslice import bitslice_two_pass

            firsts, seconds = bitslice_two_pass(order, rows)
        else:
            from ..core.twopass import two_pass_decomposition

            firsts, seconds = [], []
            for p in rows:
                first, second = two_pass_decomposition(p)
                firsts.append(first.as_tuple())
                seconds.append(second.as_tuple())
        if enabled:
            if np is None and scope == "full":
                _obs.inc("accel.fallback.calls")
            _record_setup_metrics("two_pass", len(firsts),
                                  _perf_counter() - t0, scope=scope)
        return firsts, seconds
    arr = _as_perm_array(np, order, perms)
    if _executor.wants_shards(parallel, arr.shape[0]):
        result = _executor.dispatch(
            "two_pass", arr, extra=(order, "numpy"), parallel=parallel
        )
        if enabled:
            _record_setup_metrics("two_pass", int(arr.shape[0]),
                                  _perf_counter() - t0, scope="call")
        return result
    plan = setup_plan(order)
    states = _setup_levels(np, plan, arr)
    middle = _first_half_maps(np, order, states)
    # omega_1 = M ∘ M_straight^{-1}  (gather), then
    # omega_2 = omega_1^{-1} ∘ D    (scatter: second[first[i]] = D[i]).
    first = plan.np_straight_inverse()[middle]
    second = np.empty_like(arr)
    np.put_along_axis(second, first, arr, axis=1)
    if enabled:
        _record_setup_metrics("two_pass", int(arr.shape[0]),
                              _perf_counter() - t0,
                              scope=_metric_scope())
    return first, second


@_spanned("batch.route_two_pass")
def batch_route_two_pass(order: int, perms, *, parallel=False,
                         engine=None) -> BatchRouteResult:
    """Route a batch of arbitrary permutations by two self-routed
    transits each — factor with :func:`batch_two_pass`, route pass 1
    through the ordinary vectorized engine and pass 2 with the omega
    bit set, and compose the delivered mappings.  ``engine`` forwards
    to both the factorization and the two transits.

    Returns a :class:`~repro.core.routing.BatchRouteResult` whose
    ``mappings`` row ``b`` is the composed input -> position-of-signal
    view (``mappings[b][o]`` = input whose signal reached output ``o``
    after both transits); ``success_mask`` is all-True for genuine
    permutations (two-pass universality, Section II).
    """
    first, second = batch_two_pass(order, perms, parallel=parallel,
                                   engine=engine)
    pass1 = batch_self_route(first, parallel=parallel, engine=engine)
    pass2 = batch_self_route(second, omega_mode=True, parallel=parallel,
                             engine=engine)
    # Compose by result *type*, not NumPy availability: a forced
    # pure-Python engine returns lists even with the accel extra
    # installed.
    if isinstance(pass1.mappings, list):
        success = [a and b for a, b in zip(pass1.success_mask,
                                           pass2.success_mask)]
        mappings = [
            tuple(m1[o] for o in m2)
            for m1, m2 in zip(pass1.mappings, pass2.mappings)
        ]
        return BatchRouteResult(success_mask=success, mappings=mappings)
    np = numpy_or_none()
    mappings = np.take_along_axis(
        np.asarray(pass1.mappings), np.asarray(pass2.mappings), axis=1
    )
    success = np.asarray(pass1.success_mask) \
        & np.asarray(pass2.success_mask)
    return BatchRouteResult(success_mask=success, mappings=mappings)


def scalar_setup_loop(order: int,
                      perms: Sequence) -> List[List[List[int]]]:
    """Reference loop used by benchmarks and the executor's fallback
    parity tests: the scalar looping algorithm applied per instance."""
    from ..core.waksman import setup_states

    return [setup_states(p) for p in perms]


def scalar_two_pass_loop(order: int, perms: Sequence
                         ) -> Tuple[List[tuple], List[tuple]]:
    """Reference loop: scalar two-pass decomposition per instance."""
    from ..core.twopass import two_pass_decomposition

    firsts, seconds = [], []
    for p in perms:
        first, second = two_pass_decomposition(p)
        firsts.append(first.as_tuple())
        seconds.append(second.as_tuple())
    return firsts, seconds
