"""Graceful optional import of NumPy.

NumPy is the ``accel`` extra (``pip install repro[accel]``), **not** a
hard dependency: every public entry point of :mod:`repro.accel` falls
back to the pure-Python scalar fast path when it is absent.  All
optional imports in the package go through this one module so

- the degraded mode is decided in exactly one place,
- error messages consistently name the extra to install,
- tests can force the no-NumPy path by monkeypatching
  :data:`FORCE_FALLBACK` (no uninstalling required).
"""

from __future__ import annotations

from ..errors import MissingDependencyError

__all__ = ["numpy_or_none", "require_numpy", "have_numpy",
           "FORCE_FALLBACK"]

#: Test hook: set to True (e.g. via monkeypatch) to behave as if NumPy
#: were not installed, exercising every pure-Python fallback path.
FORCE_FALLBACK = False

_UNRESOLVED = object()
_numpy = _UNRESOLVED


def numpy_or_none():
    """The ``numpy`` module, or ``None`` when it cannot be imported
    (or when :data:`FORCE_FALLBACK` is set).  The import is attempted
    once and memoized."""
    global _numpy
    if FORCE_FALLBACK:
        return None
    if _numpy is _UNRESOLVED:
        try:
            import numpy
        except ImportError:
            _numpy = None
        else:
            _numpy = numpy
    return _numpy


def have_numpy() -> bool:
    """True when the vectorized paths are available."""
    return numpy_or_none() is not None


def require_numpy(feature: str):
    """Return ``numpy`` or raise a :class:`MissingDependencyError`
    explaining that ``feature`` needs the ``accel`` extra."""
    np = numpy_or_none()
    if np is None:
        raise MissingDependencyError(
            f"{feature} requires NumPy, which is not installed; "
            "install the optional acceleration extra with "
            "`pip install repro[accel]` (or plain `pip install numpy`)"
        )
    return np
