"""Graceful optional import of NumPy, and the **engine seam**.

NumPy is the ``accel`` extra (``pip install repro[accel]``), **not** a
hard dependency: every public entry point of :mod:`repro.accel` falls
back to a pure-Python engine when it is absent.  All optional imports
in the package go through this one module so

- the degraded mode is decided in exactly one place,
- error messages consistently name the extra to install,
- tests can force the no-NumPy path by monkeypatching
  :data:`FORCE_FALLBACK` (no uninstalling required).

Since the bit-sliced big-int engine (:mod:`repro.accel.bitslice`)
joined the scalar loop and the NumPy kernels, "which engine runs this
batch" is a three-way choice resolved here by :func:`resolve_engine`,
in precedence order:

1. an explicit ``engine=`` keyword on the batch entry point;
2. the :data:`FORCE_ENGINE` test hook (monkeypatch seam);
3. the ``BENES_ENGINE`` environment variable;
4. ``auto`` — NumPy when importable (the batch entry points promise
   array results whenever the extra is active, so auto never silently
   changes result types underneath a NumPy caller), otherwise the
   measured scalar-vs-bitslice crossover of
   :mod:`repro.accel.autotune` decides per (order, batch size).
"""

from __future__ import annotations

import os

from ..errors import InvalidParameterError, MissingDependencyError

__all__ = ["numpy_or_none", "require_numpy", "have_numpy",
           "resolve_engine", "composed_order_threshold", "ENGINES",
           "DEFAULT_COMPOSED_ORDER", "FORCE_FALLBACK", "FORCE_ENGINE"]

#: Test hook: set to True (e.g. via monkeypatch) to behave as if NumPy
#: were not installed, exercising every pure-Python fallback path.
FORCE_FALLBACK = False

#: The concrete batch execution engines behind the accel entry points.
ENGINES = ("scalar", "numpy", "bitslice")

#: Test hook: set to an engine name (or ``"auto"``) to steer every
#: resolution that was not given an explicit ``engine=`` keyword —
#: the monkeypatch equivalent of exporting ``BENES_ENGINE``.
FORCE_ENGINE = None

#: Order at and above which ``auto`` resolution hands batches to the
#: block-composed engine (override: ``BENES_COMPOSED_ORDER``).  Below
#: this, one monolithic state tensor is cheap; at order 14+
#: (N >= 16,384) the O(N/blocks · log N) chunked form wins on both
#: memory and wall time.
DEFAULT_COMPOSED_ORDER = 14


def composed_order_threshold() -> int:
    """The auto-pick threshold for the composed engine — the
    ``BENES_COMPOSED_ORDER`` environment variable when set to a valid
    integer, else :data:`DEFAULT_COMPOSED_ORDER`."""
    raw = os.environ.get("BENES_COMPOSED_ORDER")
    if raw:
        try:
            return int(raw)
        except ValueError:
            pass
    return DEFAULT_COMPOSED_ORDER

_UNRESOLVED = object()
_numpy = _UNRESOLVED


def numpy_or_none():
    """The ``numpy`` module, or ``None`` when it cannot be imported
    (or when :data:`FORCE_FALLBACK` is set).  The import is attempted
    once and memoized."""
    global _numpy
    if FORCE_FALLBACK:
        return None
    if _numpy is _UNRESOLVED:
        try:
            import numpy
        except ImportError:
            _numpy = None
        else:
            _numpy = numpy
    return _numpy


def have_numpy() -> bool:
    """True when the vectorized paths are available."""
    return numpy_or_none() is not None


def require_numpy(feature: str):
    """Return ``numpy`` or raise a :class:`MissingDependencyError`
    explaining that ``feature`` needs the ``accel`` extra."""
    np = numpy_or_none()
    if np is None:
        raise MissingDependencyError(
            f"{feature} requires NumPy, which is not installed; "
            "install the optional acceleration extra with "
            "`pip install repro[accel]` (or plain `pip install numpy`)"
        )
    return np


def resolve_engine(engine=None, *, order=None, batch_size=None,
                   kind: str = "route") -> str:
    """Resolve a requested engine to a concrete member of
    :data:`ENGINES`.

    ``engine`` is the entry point's explicit keyword (``None`` means
    "not specified"); :data:`FORCE_ENGINE` and the ``BENES_ENGINE``
    environment variable fill in for an unspecified engine, and
    ``"auto"`` (the default default) picks by policy:

    - at or above :func:`composed_order_threshold` (default order 14,
      env ``BENES_COMPOSED_ORDER``): the block-composed engine, which
      bounds peak state memory by chunking — the only engine sized for
      orders 16–20;
    - ``kind="route"`` (self-routing, membership, external-state
      routing): NumPy when available, else the measured per-order
      scalar/bitslice crossover of :mod:`repro.accel.autotune` at the
      given ``order`` and ``batch_size``;
    - ``kind="setup"`` (Waksman looping, two-pass factorization):
      NumPy when available, else scalar — the side assignment is
      data-dependent cycle chasing with no bit-sliced formulation, so
      auto never routes it through the bitslice label.

    Requesting ``"numpy"`` without NumPy raises
    :class:`~repro.errors.MissingDependencyError`; an unknown name
    raises :class:`~repro.errors.InvalidParameterError`.

    Validation is delegated to the first-class registry
    (:func:`repro.engines.require_exec`): the accepted names are the
    registered exec-seam engines, so registering a new engine extends
    this seam without touching it.  :data:`ENGINES` stays as the
    built-in tuple for documentation and the registry bootstrap.
    """
    requested = engine
    if requested is None:
        requested = FORCE_ENGINE or os.environ.get("BENES_ENGINE") \
            or "auto"
    if requested != "auto":
        # Imported lazily: repro.engines builds its built-in specs on
        # top of this module, so the dependency must point one way at
        # import time.  The fallback keeps bootstrap uses (the
        # registry's own adapters) working before registration ends.
        try:
            from ..engines import require_exec
        except ImportError:
            require_exec = None
        if require_exec is not None:
            require_exec(requested)
            return requested
        if requested not in ENGINES:
            raise InvalidParameterError(
                f"unknown accel engine {requested!r}; choose one of "
                f"{', '.join(ENGINES)} or 'auto' (also settable via "
                "the BENES_ENGINE environment variable)"
            )
        if requested == "numpy":
            require_numpy("engine='numpy'")
        return requested
    if order is not None and order >= composed_order_threshold():
        return "composed"
    if have_numpy():
        return "numpy"
    if kind != "route":
        return "scalar"
    from .autotune import choose_engine

    return choose_engine(order, batch_size)
