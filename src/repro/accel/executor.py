"""Multicore **shard executor** for the batch engine.

One process can only push NumPy kernels through one core at a time; the
ROADMAP's bulk workloads (density sweeps over millions of candidates,
all-``N!`` setup batches) leave the other cores idle.  This module
splits a batch above a configurable threshold into contiguous shards
and runs each shard in a worker process, reassembling the results in
order — the answer is bit-identical to the single-process call for any
shard count (pinned by ``tests/test_accel_setup.py``).

Design notes:

- **Spawn-safe.**  Workers are created with the ``spawn`` start method
  (fork would duplicate the parent's locks and NumPy state); every task
  is a module-level function dispatched *by name* through
  :data:`_TASKS`, so nothing unpicklable crosses the process boundary
  — payloads are plain arrays/lists, results are the same frozen
  result types the inline path returns.
- **Plan-cache warmup.**  The pool initializer pre-builds the stage
  plan of the order that triggered pool creation in every worker, so
  the per-worker LRU (each process has its own) is warm before the
  first shard lands; other orders warm on first use and stay cached for
  the life of the pool, which persists across calls.
- **Bounded.**  ``parallel=True`` resolves to ``os.cpu_count()``
  workers; an explicit integer is honoured as given (useful to
  oversubscribe in tests or cap on shared boxes).  One worker — or a
  batch below :data:`SHARD_THRESHOLD` — runs inline: sharding a small
  batch costs more in pickling than it saves.
- **Pure-thread fallback.**  Without NumPy the scalar loops are
  GIL-bound, so processes would pay serialization for nothing; shards
  run on a thread pool instead — same shapes, same results, no worker
  processes to keep alive.  Process-pool creation failures (restricted
  environments) also degrade to threads.

When :mod:`repro.obs` is enabled the dispatcher records shard counts,
per-shard worker wall-time histograms, executor mode tallies
(``process`` / ``thread`` / ``inline``) and fallback events under the
``executor.*`` metric names.

**Distributed observability.**  Spawn workers have their own
``repro.obs`` registry; counters bumped there used to die with the
worker.  The dispatcher now ships an *observability context* with every
task — whether metrics are on, the parent's trace-file path, and the
dispatch span's ``(trace_id, span_id)`` — and each worker returns its
registry delta (:func:`repro.obs.snapshot_delta`) piggybacked on the
shard result; the parent merges it, so ``obs.snapshot()`` totals equal
the inline run exactly.  Deltas travel with *every* result, so worker
teardown has nothing left to flush — :func:`shutdown` still performs a
best-effort final sweep for completeness.  Shard executions are marked
via :func:`in_shard` so the batch entry points record work-level
metrics (items, successes, failures, per-stage crosses) but skip the
call-level ones (calls, batch-size, wall time) that the parent records
once per user-facing call.  Tracing workers re-root their spans under
the dispatch span (``executor.dispatch`` -> ``executor.shard``) and
append to the parent's trace file with atomic one-line writes.
"""

from __future__ import annotations

import atexit
import os
import threading
from time import perf_counter as _perf_counter
from typing import Any, Callable, Dict, List, Optional

from .. import obs as _obs
from ..errors import InvalidParameterError
from ..obs import spans as _spans
from ._np import have_numpy, numpy_or_none

__all__ = [
    "SHARD_THRESHOLD",
    "dispatch",
    "in_shard",
    "resolve_workers",
    "shutdown",
    "wants_shards",
]

#: Minimum batch size before sharding engages; overridable via the
#: ``BENES_SHARD_THRESHOLD`` environment variable (read at import).
SHARD_THRESHOLD = int(os.environ.get("BENES_SHARD_THRESHOLD", "2048"))

_POOL = None
_POOL_WORKERS = 0
_POOL_LOCK = threading.Lock()


# ----------------------------------------------------------------------
# Worker-side task table.  Every task takes one payload tuple and
# returns a picklable result; the batch entry points are imported
# lazily so a spawned worker pays the import once, and so this module
# never creates an import cycle with repro.accel.batch / .setup.
# ----------------------------------------------------------------------

def _task_self_route(payload):
    from .batch import batch_self_route

    (tags, omega_mode, stage_data, stuck_switches, stage_states,
     engine) = payload
    return batch_self_route(tags, omega_mode=omega_mode,
                            stage_data=stage_data,
                            stuck_switches=stuck_switches,
                            stage_states=stage_states, engine=engine)


def _task_in_class_f(payload):
    from .batch import batch_in_class_f

    perms = payload[0]
    engine = payload[1] if len(payload) > 1 else None
    return batch_in_class_f(perms, engine=engine)


def _task_route_with_states(payload):
    from .batch import batch_route_with_states

    states, order, stage_data, engine = payload
    return batch_route_with_states(states, order, stage_data=stage_data,
                                   engine=engine)


def _task_setup_states(payload):
    from .setup import batch_setup_states

    perms, order, engine = payload
    return batch_setup_states(order, perms, engine=engine)


def _task_two_pass(payload):
    from .setup import batch_two_pass

    perms, order, engine = payload
    return batch_two_pass(order, perms, engine=engine)


_TASKS: Dict[str, Callable[[tuple], Any]] = {
    "self_route": _task_self_route,
    "in_class_f": _task_in_class_f,
    "route_with_states": _task_route_with_states,
    "setup_states": _task_setup_states,
    "two_pass": _task_two_pass,
}


_SHARD_FLAG = threading.local()


def in_shard() -> bool:
    """True while the current thread is executing one shard of a
    dispatched batch (worker process or thread-fallback).  The batch
    entry points consult this to record work-level metrics only —
    call-level metrics are the dispatching call's to record, once."""
    return getattr(_SHARD_FLAG, "active", False)


def _sync_worker_obs(ctx: Dict) -> bool:
    """Process-worker side: mirror the parent's observability switches
    (carried in the task's obs context) onto this worker's module
    state.  Returns True when a registry delta should be shipped back."""
    if ctx["metrics"]:
        if not _obs.enabled():
            _obs.enable()
    elif _obs.enabled():
        _obs.disable()
    trace_path = ctx.get("trace_path")
    if _obs.trace_path() != trace_path:
        if trace_path:
            _obs.trace_to(trace_path)
        else:
            _obs.trace_off()
    return bool(ctx["metrics"])


def _run_task(task: str, payload: tuple, ctx: Optional[Dict] = None):
    """Worker entry point: execute one shard, returning ``(seconds,
    result, delta)`` — the worker-side wall time (fed to the
    ``executor.worker.seconds`` histogram by the parent), the shard
    result, and the worker registry's metrics delta (``None`` unless
    this is a process worker with metrics on).

    ``ctx`` is the dispatcher's observability context: ``"metrics"`` /
    ``"trace_path"`` are present only for process workers (thread
    shards share the parent's live registry and sink), ``"trace"``
    carries the dispatch span's ``(trace_id, span_id)`` and ``"shard"``
    the shard index.
    """
    ctx = ctx or {}
    collect_delta = "metrics" in ctx and _sync_worker_obs(ctx)
    trace_ref = ctx.get("trace")
    _SHARD_FLAG.active = True
    t0 = _perf_counter()
    try:
        if trace_ref is not None:
            with _spans.adopt(*trace_ref):
                with _spans.span("executor.shard", task=task,
                                 shard=ctx.get("shard")):
                    result = _TASKS[task](payload)
        else:
            result = _TASKS[task](payload)
    finally:
        _SHARD_FLAG.active = False
    seconds = _perf_counter() - t0
    delta = _obs.snapshot_delta() if collect_delta else None
    return seconds, result, delta


def _flush_worker_obs():
    """Teardown sweep: any unshipped worker-registry delta (normally
    empty — every task ships its own)."""
    return _obs.snapshot_delta() if _obs.enabled() else None


def _warm_worker(orders: tuple) -> None:
    """Pool initializer: pre-build the stage plans the triggering call
    needs, so the first real shard finds a warm per-worker cache."""
    from .plans import stage_plan

    for order in orders:
        stage_plan(order)


# ----------------------------------------------------------------------
# Shard-count policy
# ----------------------------------------------------------------------

def resolve_workers(parallel) -> int:
    """Worker count for a ``parallel=`` value: ``False``/``None`` -> 1,
    ``True`` -> ``os.cpu_count()``, an explicit positive int -> itself."""
    if parallel is None or parallel is False:
        return 1
    if parallel is True:
        return max(1, os.cpu_count() or 1)
    workers = int(parallel)
    if workers < 1:
        raise InvalidParameterError(
            f"parallel= must be a bool or a positive worker count, "
            f"got {parallel!r}"
        )
    return workers


def wants_shards(parallel, batch_size: int) -> bool:
    """True when a batch of ``batch_size`` should take the executor
    path: parallelism requested, more than one worker resolved, and the
    batch above the sharding threshold."""
    return (bool(parallel)
            and batch_size >= max(2, SHARD_THRESHOLD)
            and resolve_workers(parallel) > 1)


# ----------------------------------------------------------------------
# Pool management
# ----------------------------------------------------------------------

def _get_process_pool(workers: int, orders: tuple):
    """The persistent spawn pool, (re)created when more workers are
    requested than the current pool holds."""
    global _POOL, _POOL_WORKERS
    from concurrent.futures import ProcessPoolExecutor
    from multiprocessing import get_context

    with _POOL_LOCK:
        if _POOL is not None and _POOL_WORKERS >= workers:
            return _POOL
        old = _POOL
        _POOL = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=get_context("spawn"),
            initializer=_warm_worker,
            initargs=(orders,),
        )
        _POOL_WORKERS = workers
    if old is not None:
        old.shutdown(wait=False)
    return _POOL


def shutdown(wait: bool = True) -> None:
    """Tear down the worker pool (tests, end of process).  The next
    sharded call lazily builds a fresh one.

    When metrics are on, a best-effort flush task is submitted per
    worker first so any unshipped registry delta is merged before the
    processes die (normally a no-op: every shard result already
    carries its delta)."""
    global _POOL, _POOL_WORKERS
    with _POOL_LOCK:
        pool, workers = _POOL, _POOL_WORKERS
        _POOL, _POOL_WORKERS = None, 0
    if pool is None:
        return
    if wait and _obs.enabled():
        try:
            for future in [pool.submit(_flush_worker_obs)
                           for _ in range(workers)]:
                delta = future.result(timeout=5.0)
                if delta is not None:
                    _obs.merge(delta)
        except Exception:  # noqa: BLE001 - shutdown must not raise
            # A dying/broken pool must never fail the shutdown path,
            # but a lost delta is invisible data loss for whoever is
            # reading the merged registry — count it.
            _obs.inc("executor.delta_flush_failed")
    pool.shutdown(wait=wait)


#: Name under which :func:`shutdown` is re-exported from ``repro.accel``.
executor_shutdown = shutdown

atexit.register(shutdown, wait=False)


def _thread_map(task: str, payloads: List[tuple],
                contexts: Optional[List[Dict]] = None):
    """Shard runner of last resort: a transient thread pool (shared
    caches, no pickling).  GIL-bound for the pure-Python fallback, but
    shape- and value-identical to the process path.  Thread shards
    share the parent's live registry and trace sink, so their contexts
    carry only the span linkage — no metrics flag, no delta."""
    from concurrent.futures import ThreadPoolExecutor

    if contexts is None:
        contexts = [None] * len(payloads)
    with ThreadPoolExecutor(max_workers=len(payloads)) as pool:
        futures = [pool.submit(_run_task, task, p, c)
                   for p, c in zip(payloads, contexts)]
        # A shard that raises mid-batch fails the whole call with its
        # original traceback: the first failing result re-raises here
        # (before any merge), and the pool's __exit__ still waits for
        # the remaining shards, so nothing partial ever escapes.
        return [f.result() for f in futures]


# ----------------------------------------------------------------------
# Dispatch
# ----------------------------------------------------------------------

def _shard_bounds(n_items: int, n_shards: int) -> List[tuple]:
    """Contiguous, order-preserving shard slices covering ``n_items``."""
    base, extra = divmod(n_items, n_shards)
    bounds, start = [], 0
    for i in range(n_shards):
        stop = start + base + (1 if i < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


def _merge(task: str, parts: List[Any]):
    """Reassemble shard results in submission order."""
    np = numpy_or_none()
    if task in ("self_route", "route_with_states"):
        from ..core.routing import BatchRouteResult

        masks = [p.success_mask for p in parts]
        maps = [p.mappings for p in parts]
        stages = [p.per_stage for p in parts]
        states = [p.stage_states for p in parts]
        if np is not None and not isinstance(masks[0], list):
            per_stage = (np.concatenate(stages, axis=1)
                         if all(s is not None for s in stages) else None)
            stage_states = (np.concatenate(states, axis=0)
                            if all(s is not None for s in states)
                            else None)
            return BatchRouteResult(
                success_mask=np.concatenate(masks),
                mappings=np.concatenate(maps, axis=0),
                per_stage=per_stage,
                stage_states=stage_states,
            )
        return BatchRouteResult(
            success_mask=[ok for part in masks for ok in part],
            mappings=[row for part in maps for row in part],
            stage_states=(
                [st for part in states for st in part]
                if all(s is not None for s in states) else None
            ),
        )
    if task == "in_class_f":
        if np is not None and not isinstance(parts[0], list):
            return np.concatenate(parts)
        return [ok for part in parts for ok in part]
    if task == "setup_states":
        if np is not None and not isinstance(parts[0], list):
            return np.concatenate(parts, axis=0)
        return [states for part in parts for states in part]
    if task == "two_pass":
        firsts = [p[0] for p in parts]
        seconds = [p[1] for p in parts]
        if np is not None and not isinstance(firsts[0], list):
            return (np.concatenate(firsts, axis=0),
                    np.concatenate(seconds, axis=0))
        return ([row for part in firsts for row in part],
                [row for part in seconds for row in part])
    raise InvalidParameterError(f"unknown executor task {task!r}")


def dispatch(task: str, items, *, extra: tuple = (), parallel=True,
             order_hint: Optional[int] = None):
    """Run ``task`` over ``items`` (an array or list sliced along axis
    0) in shards, merging the results in order.

    ``extra`` is appended to every shard's payload after the item
    slice.  Caller guarantees :func:`wants_shards` returned True; the
    result is identical to the corresponding inline call.
    """
    n_items = len(items)
    workers = resolve_workers(parallel)
    n_shards = min(workers, n_items)
    bounds = _shard_bounds(n_items, n_shards)
    payloads = [(items[start:stop],) + extra for start, stop in bounds]

    enabled = _obs.enabled()
    t0 = _perf_counter() if enabled else 0.0
    orders = (order_hint,) if order_hint is not None else ()
    with _spans.span("executor.dispatch", task=task, items=n_items,
                     shards=n_shards) as dispatch_span:
        trace_ref = None
        if dispatch_span is not None:
            trace_ref = (dispatch_span.context.trace_id,
                         dispatch_span.context.span_id)
        thread_ctxs = (
            [{"trace": trace_ref, "shard": i} for i in range(n_shards)]
            if trace_ref is not None else None
        )
        mode = "process"
        if have_numpy():
            # Spawn workers run with their own registry and sink:
            # ship the parent's observability switches with every task
            # and take a registry delta back with every result.
            process_ctxs = [
                {"metrics": enabled, "trace_path": _obs.trace_path(),
                 "trace": trace_ref, "shard": i}
                for i in range(n_shards)
            ]
            from concurrent.futures.process import BrokenProcessPool

            try:
                pool = _get_process_pool(workers, orders)
                futures = [pool.submit(_run_task, task, p, c)
                           for p, c in zip(payloads, process_ctxs)]
            except (OSError, RuntimeError, ImportError):
                # Restricted environments (no /dev/shm, sandboxed
                # spawn): degrade to threads rather than fail the batch.
                mode = "thread"
                if enabled:
                    _obs.inc("executor.fallback.calls")
                timed = _thread_map(task, payloads, thread_ctxs)
            else:
                try:
                    timed = [f.result() for f in futures]
                except BrokenProcessPool:
                    # The pool itself died (worker OOM-killed, sandbox
                    # teardown) — an environment failure, not a task
                    # failure: retry the shards on threads.
                    mode = "thread"
                    if enabled:
                        _obs.inc("executor.fallback.calls")
                    timed = _thread_map(task, payloads, thread_ctxs)
                # Any other exception is a *shard* failure: a task that
                # raised mid-batch.  It propagates here with its
                # original traceback and the whole dispatch fails —
                # never a silent thread-pool re-execution (the pre-fix
                # behavior for RuntimeError/OSError subclasses), never
                # a partially merged result (_merge only ever sees the
                # full shard list).
        else:
            mode = "thread"
            timed = _thread_map(task, payloads, thread_ctxs)

        results = []
        n_deltas = 0
        for _, result, delta in timed:
            results.append(result)
            if delta is not None and enabled:
                _obs.merge(delta)
                n_deltas += 1
        if enabled:
            _obs.inc("executor.calls")
            _obs.inc(f"executor.mode.{mode}")
            _obs.inc("executor.items", n_items)
            _obs.inc("executor.worker.deltas", n_deltas)
            _obs.observe("executor.shards", n_shards,
                         bounds=_obs.POW2_BOUNDS)
            for seconds, _, _ in timed:
                _obs.observe("executor.worker.seconds", seconds)
            _obs.observe("executor.dispatch.seconds",
                         _perf_counter() - t0)
    return _merge(task, results)
