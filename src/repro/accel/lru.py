"""A small, lock-guarded, bounded LRU cache.

The seed code kept per-order :class:`~repro.core.topology.BenesTopology`
objects in a bare module-level dict (``_TOPO_CACHE``) — unbounded and
racy under threads.  This class replaces it and also backs the stage-plan
cache of :mod:`repro.accel.plans`.  Its only ``repro``-internal import
is the leaf :mod:`repro.errors` module, so it can be pulled in from
anywhere (in particular from :mod:`repro.core.fastpath`) without
import cycles.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, Generic, Hashable, TypeVar

from ..errors import InvalidParameterError

__all__ = ["LRUCache"]

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class LRUCache(Generic[K, V]):
    """Bounded mapping with least-recently-used eviction.

    All bookkeeping happens under a lock; the value *factory* runs
    outside it, so a slow build never blocks readers of other keys.
    Two threads may therefore race to build the same key — both builds
    succeed and one result wins, which is harmless as long as the
    factory is pure (true for topologies and stage plans).
    """

    def __init__(self, maxsize: int = 32):
        if maxsize < 1:
            raise InvalidParameterError(
                f"maxsize must be >= 1, got {maxsize}"
            )
        self._maxsize = maxsize
        self._lock = threading.Lock()
        self._data: "OrderedDict[K, V]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._building = 0
        self._generation = 0

    @property
    def maxsize(self) -> int:
        return self._maxsize

    @property
    def hits(self) -> int:
        with self._lock:
            return self._hits

    @property
    def misses(self) -> int:
        with self._lock:
            return self._misses

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: K) -> bool:
        with self._lock:
            return key in self._data

    def get_or_build(self, key: K, factory: Callable[[], V]) -> V:
        """Return the cached value for ``key``, building it with
        ``factory()`` (and caching the result) on a miss.

        A :meth:`clear` that lands while a build is in flight wins: the
        finished build is returned to its caller but **not** inserted
        (the generation check below), so a cleared cache stays empty —
        without it, a worker warming the cache concurrently with a
        test's ``cache_clear()`` resurrected stale entries and made
        ``cache_stats()`` read nonzero sizes after a clear."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self._hits += 1
                return self._data[key]
            self._misses += 1
            self._building += 1
            generation = self._generation
        try:
            value = factory()
        finally:
            with self._lock:
                self._building -= 1
        with self._lock:
            if self._generation != generation:
                return value               # cleared mid-build: don't cache
            if key in self._data:          # lost a build race: keep winner
                self._data.move_to_end(key)
                return self._data[key]
            self._data[key] = value
            while len(self._data) > self._maxsize:
                self._data.popitem(last=False)
        return value

    def stats(self) -> Dict[str, int]:
        """One consistent reading of the cache's counters — the shape
        consumed by :func:`repro.accel.cache_stats` and the metrics
        registry's ``accel.cache`` provider.

        Every field is read under a single lock acquisition, so the
        snapshot is internally consistent: ``hits + misses`` equals the
        number of completed lookups, and ``building`` accounts for
        lookups whose factory is still running (a stats read taken
        while an executor worker warms the cache used to show a missed
        lookup with no matching entry and no way to tell the two
        apart)."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "size": len(self._data),
                "maxsize": self._maxsize,
                "building": self._building,
            }

    def clear(self) -> None:
        """Empty the cache and zero its counters.  In-flight builds
        (lookups that already missed) complete for their callers but do
        not repopulate the cleared cache."""
        with self._lock:
            self._data.clear()
            self._hits = 0
            self._misses = 0
            self._generation += 1

    def keys(self):
        """Snapshot of the cached keys, oldest first (for tests)."""
        with self._lock:
            return list(self._data.keys())
