"""Masked batch kernels for **partial** permutations (k of N lanes).

The packet workload class ("A Benes Packet Network", Huang & Walrand)
routes *calls*: only ``k`` of the ``N`` inputs carry a request at any
instant.  The engines in this repository all speak full ``(B, N)`` tag
batches, so partial inputs reduce to full ones by **canonical
completion**:

- a partial row is a dense length-``N`` vector whose idle lanes hold
  the sentinel :data:`IDLE` (``-1``) and whose active lanes hold
  *distinct* destinations (a partial permutation — the call model, not
  the duplicate-destination tag-vector model);
- completion assigns the unused destinations to the idle inputs in
  increasing order (smallest idle input takes the smallest free
  output), yielding a full permutation that agrees with every active
  lane;
- the completed batch routes through any registered engine
  (scalar/NumPy/bitslice/composed — the ``engine=`` seam of
  :func:`repro.accel.batch_self_route` is passed straight through);
- the result is **masked back**: an active pair ``(src, dst)``
  succeeded iff the engine delivered ``src``'s signal at output
  ``dst``, and its arrival port is wherever the signal actually
  landed.

Completion is deterministic, so every engine generation sees the same
full permutation and the masked, active-lane view is byte-identical
across engines by construction — the property the ``partial`` verify
family pins.  Note the flip side: a *different* completion might
self-route where the canonical one collides, so per-lane success means
"the canonical completion delivered this call", not "no completion
could".

The completion kernel itself is masked and vectorized on the NumPy
path (two ``nonzero`` gathers — both row-major sorted with equal
per-row counts, so idle inputs and free outputs align rank-for-rank)
and a plain loop on the fallback path, with identical results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .. import obs as _obs
from ..core.bits import log2_exact
from ..errors import InvalidParameterError
from ._np import numpy_or_none
from .batch import batch_self_route

__all__ = [
    "IDLE",
    "PartialBatchResult",
    "batch_complete_partial",
    "batch_route_partial",
    "complete_partial_row",
]

#: The idle-lane sentinel in dense partial rows.
IDLE = -1

Row = Tuple[int, ...]


@dataclass(frozen=True)
class PartialBatchResult:
    """Outcome of routing a batch of partial permutations.

    Attributes:
        success_mask: per-instance success — every active lane
            delivered (vacuously true for ``k = 0``).
        lane_ok: per-instance tuple of per-active-lane verdicts, in
            increasing source order.
        arrivals: per-instance tuple of ``(src, out)`` pairs, in
            increasing source order — the output where each active
            source's signal actually landed (``out == dst`` iff the
            lane succeeded).
        delivered: per-instance full delivered mapping of the
            *completed* route — ``delivered[b][o]`` is the input whose
            signal arrived at output ``o`` (idle completion lanes
            included; the serve protocol ships this row).
        completed: per-instance canonical completion actually routed.
        active: per-instance tuple of per-input activity flags.
    """

    success_mask: Tuple[bool, ...]
    lane_ok: Tuple[Tuple[bool, ...], ...]
    arrivals: Tuple[Tuple[Tuple[int, int], ...], ...]
    delivered: Tuple[Row, ...]
    completed: Tuple[Row, ...]
    active: Tuple[Tuple[bool, ...], ...]

    @property
    def batch_size(self) -> int:
        return len(self.success_mask)


def _validate_row(row: Sequence[int], n: int, index: int) -> Row:
    out = []
    seen = set()
    for value in row:
        value = int(value)
        if value == IDLE:
            out.append(IDLE)
            continue
        if not 0 <= value < n:
            raise InvalidParameterError(
                f"partial row {index}: destination {value} out of "
                f"range [0, {n}) (idle lanes are {IDLE})")
        if value in seen:
            raise InvalidParameterError(
                f"partial row {index}: destination {value} appears "
                "twice; partial permutations need distinct "
                "destinations")
        seen.add(value)
        out.append(value)
    return tuple(out)


def complete_partial_row(row: Sequence[int]) -> Row:
    """The canonical completion of one dense partial row: active lanes
    kept, idle inputs given the unused destinations in increasing
    order."""
    n = len(row)
    log2_exact(n)  # width must be a power of two
    row = _validate_row(row, n, 0)
    used = set(v for v in row if v != IDLE)
    free = iter(sorted(set(range(n)) - used))
    return tuple(v if v != IDLE else next(free) for v in row)


def _complete_numpy(np, rows):
    arr = np.asarray(rows, dtype=np.int64)
    if arr.ndim != 2:
        raise InvalidParameterError(
            "partial batch must be a (B, N) array of destinations "
            f"with {IDLE} idle lanes; got ndim={arr.ndim}")
    b, n = arr.shape
    log2_exact(n)
    active = arr != IDLE
    if int(arr.min(initial=IDLE)) < IDLE or \
            int(arr.max(initial=IDLE)) >= n:
        raise InvalidParameterError(
            f"partial batch values must be {IDLE} (idle) or in "
            f"[0, {n})")
    # duplicate active destinations per row → that row is not a
    # partial permutation
    used = np.zeros((b, n), dtype=np.int64)
    rows_idx, cols_idx = np.nonzero(active)
    np.add.at(used, (rows_idx, arr[rows_idx, cols_idx]), 1)
    if int(used.max(initial=0)) > 1:
        bad = int(np.nonzero(used.max(axis=1) > 1)[0][0])
        raise InvalidParameterError(
            f"partial row {bad}: duplicate destinations; partial "
            "permutations need distinct destinations")
    completed = arr.copy()
    # Both nonzero scans are row-major sorted and the per-row counts
    # match (n - k idle inputs, n - k free outputs), so rank j of one
    # pairs with rank j of the other within every row.
    idle_rows, idle_cols = np.nonzero(~active)
    free_rows, free_cols = np.nonzero(used == 0)
    completed[idle_rows, idle_cols] = free_cols
    return completed, active


def _complete_fallback(rows):
    completed: List[Row] = []
    active: List[Tuple[bool, ...]] = []
    width = None
    for index, row in enumerate(rows):
        n = len(row)
        if width is None:
            log2_exact(n)
            width = n
        elif n != width:
            raise InvalidParameterError(
                f"partial row {index} has width {n}, expected {width}")
        checked = _validate_row(row, n, index)
        used = set(v for v in checked if v != IDLE)
        free = iter(sorted(set(range(n)) - used))
        completed.append(tuple(
            v if v != IDLE else next(free) for v in checked))
        active.append(tuple(v != IDLE for v in checked))
    return completed, active


def batch_complete_partial(rows):
    """Canonically complete a ``(B, N)`` dense partial batch.

    Returns ``(completed, active)``: the full tag batch every engine
    can route, and the per-lane activity mask to fold results back
    through — a ``(B, N)`` int array plus bool array on the NumPy
    path, lists of tuples on the fallback path (same values)."""
    if len(rows) == 0:
        raise InvalidParameterError("partial batch must be non-empty")
    np = numpy_or_none()
    if np is not None:
        return _complete_numpy(np, rows)
    return _complete_fallback(rows)


def batch_route_partial(rows, *, omega_mode: bool = False,
                        stuck_switches: Optional[dict] = None,
                        parallel: object = False,
                        engine: Optional[str] = None
                        ) -> PartialBatchResult:
    """Route a batch of partial permutations through any engine.

    ``rows`` is a ``(B, N)`` dense batch with :data:`IDLE` idle lanes.
    The canonical completion routes through
    :func:`repro.accel.batch_self_route` (``engine=`` / ``parallel=`` /
    ``omega_mode`` / ``stuck_switches`` passed straight through), and
    the answer is masked back to the active lanes."""
    completed, active = batch_complete_partial(rows)
    if _obs.enabled():
        _obs.inc("partial.calls")
        _obs.inc("partial.instances", len(completed))
    result = batch_self_route(completed, omega_mode=omega_mode,
                              stuck_switches=stuck_switches,
                              parallel=parallel, engine=engine)
    success: List[bool] = []
    lane_ok: List[Tuple[bool, ...]] = []
    arrivals: List[Tuple[Tuple[int, int], ...]] = []
    delivered_rows: List[Row] = []
    completed_rows: List[Row] = []
    active_rows: List[Tuple[bool, ...]] = []
    for b in range(len(completed)):
        row = tuple(int(v) for v in completed[b])
        mask = tuple(bool(v) for v in active[b])
        delivered = tuple(int(v) for v in result.mappings[b])
        inverse = {src: out for out, src in enumerate(delivered)}
        oks: List[bool] = []
        arr: List[Tuple[int, int]] = []
        n_active = 0
        for src in range(len(row)):
            if not mask[src]:
                continue
            n_active += 1
            dst = row[src]
            oks.append(delivered[dst] == src)
            arr.append((src, inverse[src]))
        success.append(all(oks))
        lane_ok.append(tuple(oks))
        arrivals.append(tuple(arr))
        delivered_rows.append(delivered)
        completed_rows.append(row)
        active_rows.append(mask)
        if _obs.enabled():
            _obs.observe("partial.active_lanes", n_active)
    if _obs.enabled():
        _obs.inc("partial.delivered",
                 sum(sum(oks) for oks in lane_ok))
    return PartialBatchResult(
        success_mask=tuple(success),
        lane_ok=tuple(lane_ok),
        arrivals=tuple(arrivals),
        delivered=tuple(delivered_rows),
        completed=tuple(completed_rows),
        active=tuple(active_rows),
    )
