"""``repro.accel`` — the NumPy-vectorized batch-routing engine.

Bulk analysis primitives (batched self-routing, batched external-state
routing, batched F(n) membership) built on precompiled per-order
**stage plans** held in a bounded, lock-guarded LRU cache — see
:mod:`repro.accel.batch` and :mod:`repro.accel.plans`.

NumPy is an *optional* ``accel`` extra: without it every primitive
falls back to a pure-Python engine with identical results — the scalar
fast-path loop, or the bit-sliced big-int kernel of
:mod:`repro.accel.bitslice` that packs every batch lane into one big
integer per network row and routes the whole batch with bitwise
operations.  :func:`resolve_engine` decides which engine serves a call
(explicit ``engine=`` keyword > ``BENES_ENGINE`` env var > measured
auto crossover); use :func:`repro.accel.have_numpy` to check whether
the vectorized paths are available.

Submodules are imported lazily so that leaf utilities (the LRU cache,
the optional-import helper) can be pulled in from ``repro.core``
without import cycles.
"""

from __future__ import annotations

__all__ = [
    "BatchRouteResult",
    "BitslicePlan",
    "PartialBatchResult",
    "ComposedPlan",
    "ENGINES",
    "LRUCache",
    "SetupPlan",
    "StagePlan",
    "StateChunk",
    "autotune_cache_path",
    "autotune_clear",
    "batch_complete_partial",
    "batch_in_class_f",
    "batch_route_partial",
    "batch_route_two_pass",
    "batch_route_with_states",
    "batch_self_route",
    "batch_setup_states",
    "batch_two_pass",
    "bitslice_in_class_f",
    "bitslice_plan",
    "bitslice_plan_cache",
    "bitslice_route_with_states",
    "bitslice_self_route",
    "bitslice_setup_states",
    "bitslice_two_pass",
    "cache_clear",
    "cache_stats",
    "cached_topology",
    "choose_engine",
    "complete_partial_row",
    "composed_in_class_f",
    "composed_order_threshold",
    "composed_plan",
    "composed_plan_cache",
    "composed_route_with_states",
    "composed_self_route",
    "composed_setup_states",
    "composed_stats",
    "composed_stats_clear",
    "crossover_table",
    "executor_shutdown",
    "have_numpy",
    "iter_composed_states",
    "numpy_or_none",
    "peel_level_stream",
    "plan_cache",
    "require_numpy",
    "resolve_engine",
    "run_benchmark",
    "run_setup_benchmark",
    "setup_plan",
    "setup_plan_cache",
    "stage_plan",
    "topology_cache",
]

_EXPORTS = {
    "BatchRouteResult": "batch",
    "BitslicePlan": "bitslice",
    "PartialBatchResult": "partial",
    "ComposedPlan": "composed",
    "ENGINES": "_np",
    "LRUCache": "lru",
    "SetupPlan": "setup",
    "StagePlan": "plans",
    "StateChunk": "composed",
    "autotune_cache_path": "autotune",
    "autotune_clear": "autotune",
    "batch_complete_partial": "partial",
    "batch_in_class_f": "batch",
    "batch_route_partial": "partial",
    "batch_route_two_pass": "setup",
    "batch_route_with_states": "batch",
    "batch_self_route": "batch",
    "batch_setup_states": "setup",
    "batch_two_pass": "setup",
    "bitslice_in_class_f": "bitslice",
    "bitslice_plan": "bitslice",
    "bitslice_plan_cache": "plans",
    "bitslice_route_with_states": "bitslice",
    "bitslice_self_route": "bitslice",
    "bitslice_setup_states": "bitslice",
    "bitslice_two_pass": "bitslice",
    "cache_clear": "plans",
    "cache_stats": "plans",
    "cached_topology": "plans",
    "choose_engine": "autotune",
    "complete_partial_row": "partial",
    "composed_in_class_f": "composed",
    "composed_order_threshold": "_np",
    "composed_plan": "composed",
    "composed_plan_cache": "plans",
    "composed_route_with_states": "composed",
    "composed_self_route": "composed",
    "composed_setup_states": "composed",
    "composed_stats": "composed",
    "composed_stats_clear": "composed",
    "crossover_table": "autotune",
    "executor_shutdown": "executor",
    "have_numpy": "_np",
    "iter_composed_states": "composed",
    "numpy_or_none": "_np",
    "peel_level_stream": "setup",
    "plan_cache": "plans",
    "require_numpy": "_np",
    "resolve_engine": "_np",
    "run_benchmark": "benchmark",
    "run_setup_benchmark": "benchmark",
    "setup_plan": "setup",
    "setup_plan_cache": "plans",
    "stage_plan": "plans",
    "topology_cache": "plans",
}


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    from importlib import import_module

    module = import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))
