"""``repro.accel.composed`` — the block-composed sub-network engine.

The paper's Theorems 4–6 show that J-partition block composites stay
routable because the Benes recursion *is* a block structure: after the
outermost ``levels`` recursion levels, the middle columns
``levels .. 2n-2-levels`` of ``B(n)`` are ``2^levels`` **independent**
``B(r)`` sub-networks (``r = n - levels``) on contiguous row blocks
``[k * 2^r, (k+1) * 2^r)``, with link permutations and control bits
that match ``stage_plan(r)`` locally (local control bit = global
control bit − ``levels``; local tag = global tag ``>> levels``).  This
module exploits that structure to route orders 16–20 (N = 65k–1M),
where every other engine would materialize the full ``O(N log N)``
state tensor at once:

- **peel** — the first ``levels`` levels of the batched Waksman
  looping setup run breadth-first
  (:func:`repro.accel.setup.peel_level_stream`), emitting the entry
  column of global stage ``d`` and the exit column of stage
  ``2n-2-d`` per level ``d`` plus the ``2^levels`` sub-network
  permutations, in ``O(N)`` working memory;
- **per-block dispatch** — each middle block is an ordinary
  ``B(r)``-sized problem handed to the existing batch engines
  (:func:`repro.accel.batch_self_route` /
  :func:`repro.accel.batch_setup_states`) as one more ``(B', 2^r)``
  batch, in bounded **chunks** of blocks, optionally sharded across
  the spawn-pool executor via ``parallel=``;
- **streaming state** — :func:`iter_composed_states` yields finished
  switch columns and per-block state chunks as they are produced, so
  peak memory stays ``O(N / blocks * log N)`` per chunk plus ``O(N)``
  transit arrays — never the full tensor.

Self-routing composes the same way (pinned byte-identical to
:func:`repro.core.fastpath.fast_self_route_states` by
``tests/test_composed.py``): transit the entry columns with the global
self-routing rule, self-route every block locally on tags ``>> levels``
(local omega mode = global omega mode: the global omega forcing covers
exactly the local forced stages), reconstruct each block's rows from
its delivered mapping, then transit the exit columns.  Stuck-switch
faults split by column: entry/exit faults apply during transit, middle
faults map to per-block local coordinates and route their blocks as
separate fault groups.

Every entry point works without NumPy (pure-Python peel over
:func:`repro.core.waksman.looping_assignment`, per-block dispatch to
the scalar or bit-sliced engines) — identical values, element for
element.  The engine registers as ``"composed"`` in
:mod:`repro.engines` and is auto-picked by
:func:`repro.accel.resolve_engine` above the
``BENES_COMPOSED_ORDER`` threshold (default 14).

Tunables (environment):

- ``BENES_COMPOSED_SUB_ORDER`` — target sub-network order ``r``
  (default 10, clamped to ``order - 1``);
- ``BENES_COMPOSED_CHUNK`` — blocks per dispatch chunk (default 16);
- ``BENES_COMPOSED_ORDER`` — auto-pick threshold (see
  :mod:`repro.accel._np`).

Observability: ``accel.composed.*`` counters (blocks dispatched, chunk
flushes, chunk-size histogram, calls/seconds) plus the pull-style
``accel.composed`` provider (:func:`composed_stats`) and the
``composed`` entry of :func:`repro.accel.cache_stats` — all flattened
into the OpenMetrics exporter catalogue automatically.
"""

from __future__ import annotations

import os
from threading import Lock
from time import perf_counter as _perf_counter
from typing import NamedTuple, Optional

from .. import obs as _obs
from ..core.routing import BatchRouteResult
from ..core.switch import validate_stuck_switches
from ..errors import InvalidParameterError, SizeMismatchError
from ..obs.spans import spanned as _spanned
from ._np import have_numpy, numpy_or_none
from .batch import (
    _as_tag_array,
    _batch_dims,
    _order_hint,
    _reject_scalar_options,
    _stuck_plan,
    _swap_stage,
    _working_block,
    batch_route_with_states,
    batch_self_route,
)
from .plans import composed_plan_cache, stage_plan

__all__ = [
    "ComposedPlan",
    "DEFAULT_CHUNK_BLOCKS",
    "DEFAULT_SUB_ORDER",
    "StateChunk",
    "composed_in_class_f",
    "composed_plan",
    "composed_route_with_states",
    "composed_self_route",
    "composed_setup_states",
    "composed_stats",
    "composed_stats_clear",
    "iter_composed_states",
]

#: Target middle sub-network order ``r`` (override:
#: ``BENES_COMPOSED_SUB_ORDER``).  2^10-terminal blocks keep every
#: per-block problem comfortably inside the batch engines' sweet spot.
DEFAULT_SUB_ORDER = 10

#: Blocks dispatched per chunk flush (override:
#: ``BENES_COMPOSED_CHUNK``) — the knob bounding peak state memory.
DEFAULT_CHUNK_BLOCKS = 16


def _env_int(name: str, default: int, minimum: int = 1) -> int:
    raw = os.environ.get(name)
    if raw:
        try:
            return max(minimum, int(raw))
        except ValueError:
            pass
    return default


class ComposedPlan:
    """Per-(order, sub-order) constants of the block decomposition.

    Attributes:
        order: the paper's ``n``.
        n_terminals: ``N = 2^n``.
        sub_order: the middle sub-network order ``r``.
        levels: peel depth ``n - r`` (always >= 1).
        n_blocks: ``2^levels`` independent middle blocks.
        block_size: ``2^r`` terminals per block.
        block_half: ``2^(r-1)`` switches per block column.
        n_stages: ``2n - 1`` global switch columns.
        mid_stages: ``2r - 1`` columns owned by the middle blocks.
    """

    __slots__ = ("order", "n_terminals", "sub_order", "levels",
                 "n_blocks", "block_size", "block_half", "n_stages",
                 "mid_stages")

    def __init__(self, order: int, sub_order: int):
        self.order = order
        self.n_terminals = 1 << order
        self.sub_order = sub_order
        self.levels = order - sub_order
        self.n_blocks = 1 << self.levels
        self.block_size = 1 << sub_order
        self.block_half = self.block_size // 2
        self.n_stages = 2 * order - 1
        self.mid_stages = 2 * sub_order - 1


def composed_plan(order: int,
                  sub_order: Optional[int] = None) -> ComposedPlan:
    """The (cached) :class:`ComposedPlan` for ``B(order)``.

    ``sub_order`` defaults to ``BENES_COMPOSED_SUB_ORDER`` (or
    :data:`DEFAULT_SUB_ORDER`), clamped to ``[1, order - 1]`` so the
    peel is always at least one level deep; ``order`` must be >= 2
    (a single-switch network has nothing to decompose — callers
    delegate those to the inner engine directly).
    """
    if order < 2:
        raise InvalidParameterError(
            f"the composed engine decomposes B(order >= 2); got order "
            f"{order} — route it through the inner engine directly"
        )
    if sub_order is None:
        sub_order = _env_int("BENES_COMPOSED_SUB_ORDER",
                             DEFAULT_SUB_ORDER)
    sub_order = max(1, min(int(sub_order), order - 1))
    return composed_plan_cache().get_or_build(
        (order, sub_order), lambda: ComposedPlan(order, sub_order)
    )


def _resolve_chunk(chunk_blocks) -> int:
    if chunk_blocks is not None:
        chunk = int(chunk_blocks)
        if chunk < 1:
            raise InvalidParameterError(
                f"chunk_blocks must be >= 1, got {chunk_blocks!r}"
            )
        return chunk
    return _env_int("BENES_COMPOSED_CHUNK", DEFAULT_CHUNK_BLOCKS)


def _inner_engine(sub_order, batch_size, kind: str = "route") -> str:
    """The engine composed hands its sub-network batches to.

    Computed directly — never through
    :func:`repro.accel.resolve_engine` — so ``BENES_ENGINE=composed``
    (or the ``FORCE_ENGINE`` hook) can steer callers *into* this module
    without recursing back into it.
    """
    if have_numpy():
        return "numpy"
    if kind != "route":
        return "scalar"
    from .autotune import choose_engine

    return choose_engine(sub_order, batch_size)


# ----------------------------------------------------------------------
# Observability: push counters + one pull-style provider
# ----------------------------------------------------------------------

_STATS_LOCK = Lock()
_STATS = {"blocks": 0, "chunks": 0, "peak_chunk_bytes": 0}


def _note_chunk(n_blocks: int, nbytes: int) -> None:
    """Record one chunk flush: ``n_blocks`` sub-network problems
    dispatched, ``nbytes`` of state/tag payload in flight at once."""
    with _STATS_LOCK:
        _STATS["blocks"] += n_blocks
        _STATS["chunks"] += 1
        if nbytes > _STATS["peak_chunk_bytes"]:
            _STATS["peak_chunk_bytes"] = nbytes
    if _obs.enabled():
        _obs.inc("accel.composed.blocks", n_blocks)
        _obs.inc("accel.composed.chunks")
        _obs.observe("accel.composed.chunk_bytes", nbytes,
                     bounds=_obs.POW2_BOUNDS)


def composed_stats():
    """Lifetime chunking counters of the composed engine — blocks
    dispatched, chunk flushes, peak chunk payload bytes — the payload
    of the metrics registry's ``accel.composed`` provider (and the
    memory-model evidence the scaling bench reports)."""
    with _STATS_LOCK:
        return dict(_STATS)


def composed_stats_clear() -> None:
    """Zero the chunking counters (tests, bench isolation)."""
    with _STATS_LOCK:
        for key in _STATS:
            _STATS[key] = 0


# "composed_stats" (not "composed"): the flattened provider gauges must
# not collide with the accel.composed.{blocks,chunks} counters in the
# OpenMetrics exposition (one # TYPE per family name).
_obs.registry().register_provider("accel.composed_stats", composed_stats)


# ----------------------------------------------------------------------
# Fault splitting
# ----------------------------------------------------------------------

def _split_stuck(plan: ComposedPlan, stuck_switches):
    """Split a global ``{(stage, switch): state}`` fault map into the
    entry/exit part (applied during transit) and per-middle-block local
    maps ``{block: {(local_stage, local_switch): state}}`` — block
    ``k`` owns switch slice ``[k*w, (k+1)*w)`` of every middle column.
    """
    if not stuck_switches:
        return None, None
    half = plan.n_terminals // 2
    validate_stuck_switches(stuck_switches, plan.n_stages, half)
    first_exit = plan.n_stages - plan.levels
    outer, blocks = {}, {}
    for (stage, index), state in stuck_switches.items():
        if stage < plan.levels or stage >= first_exit:
            outer[(stage, index)] = 1 if state else 0
        else:
            k, loc = divmod(index, plan.block_half)
            blocks.setdefault(k, {})[(stage - plan.levels, loc)] = \
                1 if state else 0
    return (outer or None), (blocks or None)


def _block_groups(np, batch: int, n_blocks: int, stuck_blocks, chunk):
    """Yield ``(block_row_indices, local_stuck_map)`` dispatch groups
    over the flat ``batch * n_blocks`` block-row axis: fault-free
    blocks in contiguous chunks, each faulted block as its own group
    (its local map applies to that block across every instance)."""
    total = batch * n_blocks
    if not stuck_blocks:
        for start in range(0, total, chunk):
            yield np.arange(start, min(start + chunk, total),
                            dtype=np.intp), None
        return
    clean = np.array(
        [i for i in range(total) if i % n_blocks not in stuck_blocks],
        dtype=np.intp,
    )
    for start in range(0, len(clean), chunk):
        yield clean[start:start + chunk], None
    for k in sorted(stuck_blocks):
        idx = np.arange(batch, dtype=np.intp) * n_blocks + k
        for start in range(0, batch, chunk):
            yield idx[start:start + chunk], stuck_blocks[k]


# ----------------------------------------------------------------------
# Self-routing — NumPy path
# ----------------------------------------------------------------------

def _np_self_route(np, plan, arr, *, omega_mode, stage_data,
                   stage_states, stuck_outer, stuck_blocks, inner,
                   chunk, parallel):
    order = plan.order
    n = plan.n_terminals
    levels = plan.levels
    nb = plan.n_blocks
    m = plan.block_size
    w = plan.block_half
    half = n // 2
    batch = arr.shape[0]
    sp = stage_plan(order)
    inv_links = sp.np_inv_links()
    outer_plan = _stuck_plan(np, order, stuck_outer) if stuck_outer \
        else None
    omega_stages = order - 1 if omega_mode else 0

    rows = _working_block(np, arr, n_value_bits=2 * order)
    rows |= np.arange(n, dtype=rows.dtype)[:, None] << order
    entry_cross, exit_cross = [], []
    entry_cols, exit_cols = [], []
    # Entry transit: every entry stage is < order - 1, so global omega
    # forcing covers all of them (matching the local forcing the middle
    # blocks apply for themselves).
    for stage in range(levels):
        stuck_here = outer_plan.get(stage) if outer_plan else None
        if stage < omega_stages:
            cond = np.zeros((half, batch), dtype=rows.dtype)
        else:
            cond = (rows[0::2, :] >> sp.ctrl_bits[stage]) & 1
        if stuck_here is not None:
            indices, vals = stuck_here
            cond[indices, :] = vals.astype(rows.dtype)[:, None]
        if stage_data:
            entry_cross.append(cond.sum(axis=0, dtype=np.int64))
        if stage_states:
            entry_cols.append(cond.astype(np.int8))
        _swap_stage(rows, cond)
        rows = rows[inv_links[stage]]

    # Middle blocks: local tags are global tags >> levels; each block
    # is one row of a (B * n_blocks, 2^r) batch routed by the inner
    # engine in bounded chunks.
    blocks_vals = np.ascontiguousarray(rows.T).reshape(batch * nb, m)
    local_tags = (blocks_vals & (n - 1)) >> levels
    mid_states = (np.empty((batch * nb, plan.mid_stages, w),
                           dtype=np.int8) if stage_states else None)
    mid_cross = (np.zeros((batch, plan.mid_stages), dtype=np.int64)
                 if stage_data else None)
    for sel, local_stuck in _block_groups(np, batch, nb, stuck_blocks,
                                          chunk):
        if not len(sel):
            continue
        chunk_tags = local_tags[sel]
        sub = batch_self_route(
            chunk_tags, omega_mode=omega_mode, stage_data=stage_data,
            stage_states=stage_states, stuck_switches=local_stuck,
            engine=inner, parallel=parallel,
        )
        _note_chunk(int(len(sel)), int(chunk_tags.nbytes))
        mapp = np.asarray(sub.mappings)
        blocks_vals[sel] = np.take_along_axis(blocks_vals[sel], mapp,
                                              axis=1)
        if stage_states:
            mid_states[sel] = np.asarray(sub.stage_states,
                                         dtype=np.int8)
        if stage_data and sub.per_stage is not None:
            np.add.at(mid_cross, sel // nb,
                      np.asarray(sub.per_stage, dtype=np.int64).T)
    rows = np.ascontiguousarray(blocks_vals.reshape(batch, n).T)

    # Exit transit: the link INTO stage s is links[s - 1]; no omega
    # forcing ever applies here (every exit stage is >= order).
    for stage in range(plan.n_stages - levels, plan.n_stages):
        rows = rows[inv_links[stage - 1]]
        stuck_here = outer_plan.get(stage) if outer_plan else None
        cond = (rows[0::2, :] >> sp.ctrl_bits[stage]) & 1
        if stuck_here is not None:
            indices, vals = stuck_here
            cond[indices, :] = vals.astype(rows.dtype)[:, None]
        if stage_data:
            exit_cross.append(cond.sum(axis=0, dtype=np.int64))
        if stage_states:
            exit_cols.append(cond.astype(np.int8))
        _swap_stage(rows, cond)

    tags = rows & (n - 1)
    success = (tags == np.arange(n, dtype=rows.dtype)[:, None]) \
        .all(axis=0)
    mappings = (rows >> order).T.astype(np.int64)
    states_out = None
    if stage_states:
        mid_full = mid_states.reshape(batch, nb, plan.mid_stages, w) \
            .transpose(0, 2, 1, 3).reshape(batch, plan.mid_stages, half)
        entry_arr = np.transpose(np.array(entry_cols), (2, 0, 1))
        exit_arr = np.transpose(np.array(exit_cols), (2, 0, 1))
        states_out = np.concatenate([entry_arr, mid_full, exit_arr],
                                    axis=1)
    per_stage = None
    if stage_data:
        per_stage = np.concatenate([
            np.array(entry_cross, dtype=np.int64),
            mid_cross.T,
            np.array(exit_cross, dtype=np.int64),
        ], axis=0)
    return BatchRouteResult(success_mask=success, mappings=mappings,
                            per_stage=per_stage,
                            stage_states=states_out)


# ----------------------------------------------------------------------
# Self-routing — pure-Python path (no NumPy)
# ----------------------------------------------------------------------

def _scalar_transit_stage(n, link, tags, srcs):
    """One link crossing of the scalar transit: scatter both carried
    arrays through ``link`` (``new[link[r]] = old[r]``)."""
    nt = [0] * n
    ns = [0] * n
    for r in range(n):
        target = link[r]
        nt[target] = tags[r]
        ns[target] = srcs[r]
    return nt, ns


def _scalar_column(n, ctrl, tags, forced, stuck_outer, stage):
    """The 0/1 decision column of one transit stage: the self-routing
    rule on the upper input's tag (all-straight when omega-``forced``),
    then stuck overrides."""
    col = [0] * (n // 2)
    if not forced:
        for i in range(0, n, 2):
            if (tags[i] >> ctrl) & 1:
                col[i >> 1] = 1
    if stuck_outer:
        for (st, idx), state in stuck_outer.items():
            if st == stage:
                col[idx] = state
    return col


def _scalar_apply_column(col, tags, srcs):
    for i2, crossed in enumerate(col):
        if crossed:
            i = 2 * i2
            tags[i], tags[i + 1] = tags[i + 1], tags[i]
            srcs[i], srcs[i + 1] = srcs[i + 1], srcs[i]


def _scalar_self_route(plan, rows_batch, *, omega_mode, stage_states,
                       stuck_outer, stuck_blocks, inner, chunk,
                       parallel):
    order = plan.order
    n = plan.n_terminals
    levels = plan.levels
    nb = plan.n_blocks
    m = plan.block_size
    sp = stage_plan(order)
    omega_stages = order - 1 if omega_mode else 0
    batch = len(rows_batch)

    all_tags, all_srcs = [], []
    entry_cols = [None] * batch if stage_states else None
    for b, row in enumerate(rows_batch):
        tags = [int(t) for t in row]
        if len(tags) != n:
            raise SizeMismatchError(
                f"expected rows of {n} tags for order {order}, got "
                f"{len(tags)}"
            )
        for t in tags:
            if not 0 <= t < n:
                raise InvalidParameterError(
                    f"destination tags must lie in [0, {n}) — "
                    "out-of-range values cannot address any output"
                )
        srcs = list(range(n))
        cols = [] if stage_states else None
        for stage in range(levels):
            col = _scalar_column(n, sp.ctrl_bits[stage], tags,
                                 stage < omega_stages, stuck_outer,
                                 stage)
            _scalar_apply_column(col, tags, srcs)
            if stage_states:
                cols.append(tuple(col))
            tags, srcs = _scalar_transit_stage(n, sp.links[stage],
                                               tags, srcs)
        all_tags.append(tags)
        all_srcs.append(srcs)
        if stage_states:
            entry_cols[b] = cols

    mid_states = [[None] * nb for _ in range(batch)] if stage_states \
        else None

    def flush(items, local_stuck):
        if not items:
            return
        chunk_rows = [
            [all_tags[b][k * m + j] >> levels for j in range(m)]
            for (b, k) in items
        ]
        sub = batch_self_route(
            chunk_rows, omega_mode=omega_mode,
            stage_states=stage_states, stuck_switches=local_stuck,
            engine=inner, parallel=parallel,
        )
        _note_chunk(len(items), len(items) * m)
        for i, (b, k) in enumerate(items):
            mapping = sub.mappings[i]
            base = k * m
            tags_b, srcs_b = all_tags[b], all_srcs[b]
            new_t = [tags_b[base + mapping[o]] for o in range(m)]
            new_s = [srcs_b[base + mapping[o]] for o in range(m)]
            tags_b[base:base + m] = new_t
            srcs_b[base:base + m] = new_s
            if stage_states:
                mid_states[b][k] = sub.stage_states[i]

    clean = [(b, k) for b in range(batch) for k in range(nb)
             if not (stuck_blocks and k in stuck_blocks)]
    for start in range(0, len(clean), chunk):
        flush(clean[start:start + chunk], None)
    if stuck_blocks:
        for k in sorted(stuck_blocks):
            items = [(b, k) for b in range(batch)]
            for start in range(0, len(items), chunk):
                flush(items[start:start + chunk], stuck_blocks[k])

    success, mappings = [], []
    states_out = [] if stage_states else None
    first_exit = plan.n_stages - levels
    for b in range(batch):
        tags, srcs = all_tags[b], all_srcs[b]
        exit_cols = [] if stage_states else None
        for stage in range(first_exit, plan.n_stages):
            tags, srcs = _scalar_transit_stage(n, sp.links[stage - 1],
                                               tags, srcs)
            col = _scalar_column(n, sp.ctrl_bits[stage], tags, False,
                                 stuck_outer, stage)
            _scalar_apply_column(col, tags, srcs)
            if stage_states:
                exit_cols.append(tuple(col))
        success.append(all(tags[i] == i for i in range(n)))
        mappings.append(tuple(srcs))
        if stage_states:
            mid_cols = []
            for s_local in range(plan.mid_stages):
                col = []
                for k in range(nb):
                    col.extend(mid_states[b][k][s_local])
                mid_cols.append(tuple(col))
            states_out.append(tuple(entry_cols[b]) + tuple(mid_cols)
                              + tuple(exit_cols))
    return BatchRouteResult(success_mask=success, mappings=mappings,
                            stage_states=states_out)


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------

@_spanned("composed.self_route")
def composed_self_route(tags_batch, *, omega_mode=False,
                        stage_data=False, stage_states=False,
                        stuck_switches=None, parallel=False,
                        engine=None, sub_order=None, chunk_blocks=None,
                        **scalar_options) -> BatchRouteResult:
    """Self-route a batch of tag vectors by block decomposition —
    value-identical to :func:`repro.accel.batch_self_route` for every
    option combination, but the middle ``2(n - levels) - 1`` stages are
    routed as ``2^levels`` independent sub-network problems in bounded
    chunks.

    Beyond the :func:`~repro.accel.batch_self_route` keywords:

    Args:
        engine: the **inner** engine the sub-network batches run on
            (default: NumPy when available, else the measured
            scalar/bitslice crossover).  The outer decomposition is
            always this module.
        sub_order: middle sub-network order ``r`` (default:
            ``BENES_COMPOSED_SUB_ORDER`` clamped to ``order - 1``).
        chunk_blocks: blocks per dispatch chunk (default:
            ``BENES_COMPOSED_CHUNK``).

    ``stage_states=True`` assembles the full state tensor (that is its
    contract) — stream via :func:`iter_composed_states` instead when
    memory is the point.  ``stage_data`` is served on the NumPy path
    and ``None`` otherwise, exactly like the batch engine's fallback.
    """
    _reject_scalar_options("composed_self_route", scalar_options)
    np = numpy_or_none()
    enabled = _obs.enabled()
    t0 = _perf_counter() if enabled else 0.0
    b_hint, n_hint = _batch_dims(tags_batch)
    order = _order_hint(n_hint)
    if order is None:
        raise SizeMismatchError(
            "expected a (B, N) batch of tag vectors with N a positive "
            f"power of two, got row width {n_hint!r}"
        )
    if order < 2:
        return batch_self_route(
            tags_batch, omega_mode=omega_mode, stage_data=stage_data,
            stage_states=stage_states, stuck_switches=stuck_switches,
            parallel=parallel, engine=_inner_engine(order, b_hint),
        )
    plan = composed_plan(order, sub_order)
    inner = engine or _inner_engine(plan.sub_order, b_hint)
    chunk = _resolve_chunk(chunk_blocks)
    stuck_outer, stuck_blocks = _split_stuck(plan, stuck_switches)
    if np is not None:
        arr = _as_tag_array(np, tags_batch)
        result = _np_self_route(
            np, plan, arr, omega_mode=omega_mode,
            stage_data=stage_data, stage_states=stage_states,
            stuck_outer=stuck_outer, stuck_blocks=stuck_blocks,
            inner=inner, chunk=chunk, parallel=parallel,
        )
    else:
        rows = tags_batch if isinstance(tags_batch, list) \
            else list(tags_batch)
        result = _scalar_self_route(
            plan, rows, omega_mode=omega_mode,
            stage_states=stage_states, stuck_outer=stuck_outer,
            stuck_blocks=stuck_blocks, inner=inner, chunk=chunk,
            parallel=parallel,
        )
    if enabled:
        _obs.inc("accel.composed.calls")
        _obs.observe("accel.composed.seconds", _perf_counter() - t0)
    return result


def composed_in_class_f(perms_batch, *, parallel=False, engine=None,
                        sub_order=None, chunk_blocks=None,
                        **scalar_options):
    """F(n) membership mask by composed routing — Theorem 1 success of
    :func:`composed_self_route` (the per-block successes *and* the
    entry/exit transits must all deliver)."""
    _reject_scalar_options("composed_in_class_f", scalar_options)
    result = composed_self_route(
        perms_batch, parallel=parallel, engine=engine,
        sub_order=sub_order, chunk_blocks=chunk_blocks,
    )
    return result.success_mask


def _np_route_with_states(np, plan, states, *, stage_data, inner,
                          chunk, parallel):
    order = plan.order
    n = plan.n_terminals
    levels = plan.levels
    nb = plan.n_blocks
    m = plan.block_size
    w = plan.block_half
    batch = states.shape[0]
    sp = stage_plan(order)
    inv_links = sp.np_inv_links()
    dtype = np.int32 if order <= 31 else np.int64
    rows = np.repeat(np.arange(n, dtype=dtype)[:, None], batch, axis=1)
    for stage in range(levels):
        cond = (states[:, stage, :].T != 0).astype(dtype)
        _swap_stage(rows, cond)
        rows = rows[inv_links[stage]]
    blocks_vals = np.ascontiguousarray(rows.T).reshape(batch * nb, m)
    local_states = np.ascontiguousarray(
        states[:, levels:plan.n_stages - levels, :]
        .reshape(batch, plan.mid_stages, nb, w).transpose(0, 2, 1, 3)
    ).reshape(batch * nb, plan.mid_stages, w)
    out_idx = np.arange(m)
    for start in range(0, batch * nb, chunk):
        stop = min(start + chunk, batch * nb)
        chunk_states = local_states[start:stop]
        sub = batch_route_with_states(chunk_states, plan.sub_order,
                                      engine=inner, parallel=parallel)
        _note_chunk(stop - start, int(chunk_states.nbytes))
        # sub.mappings[j][input] = output; reconstruction needs the
        # inverse view delivered[output] = input.
        mapp = np.asarray(sub.mappings)
        delivered = np.empty_like(mapp)
        np.put_along_axis(delivered, mapp,
                          np.broadcast_to(out_idx, mapp.shape), axis=1)
        blocks_vals[start:stop] = np.take_along_axis(
            blocks_vals[start:stop], delivered, axis=1
        )
    rows = np.ascontiguousarray(blocks_vals.reshape(batch, n).T)
    for stage in range(plan.n_stages - levels, plan.n_stages):
        rows = rows[inv_links[stage - 1]]
        cond = (states[:, stage, :].T != 0).astype(rows.dtype)
        _swap_stage(rows, cond)
    rows = rows.T.astype(np.int64)
    dest = np.empty_like(rows)
    np.put_along_axis(
        dest, rows,
        np.broadcast_to(np.arange(n, dtype=np.int64), (batch, n)),
        axis=1,
    )
    return BatchRouteResult(
        success_mask=np.ones(batch, dtype=bool),
        mappings=dest,
        per_stage=((states != 0).sum(axis=2).T if stage_data else None),
    )


def _scalar_route_with_states(plan, states_batch, *, inner, chunk,
                              parallel):
    order = plan.order
    n = plan.n_terminals
    levels = plan.levels
    nb = plan.n_blocks
    m = plan.block_size
    w = plan.block_half
    sp = stage_plan(order)
    mappings = []
    for inst in states_batch:
        srcs = list(range(n))
        tags = [0] * n  # unused by external-state transit
        for stage in range(levels):
            col = [1 if s else 0 for s in inst[stage]]
            _scalar_apply_column(col, tags, srcs)
            tags, srcs = _scalar_transit_stage(n, sp.links[stage],
                                               tags, srcs)
        for start in range(0, nb, chunk):
            stop = min(start + chunk, nb)
            chunk_states = [
                [list(inst[levels + s][k * w:(k + 1) * w])
                 for s in range(plan.mid_stages)]
                for k in range(start, stop)
            ]
            sub = batch_route_with_states(chunk_states, plan.sub_order,
                                          engine=inner,
                                          parallel=parallel)
            _note_chunk(stop - start,
                        (stop - start) * plan.mid_stages * w)
            for i, k in enumerate(range(start, stop)):
                realized = sub.mappings[i]  # input -> output
                delivered = [0] * m
                for src, out in enumerate(realized):
                    delivered[out] = src
                base = k * m
                srcs[base:base + m] = [srcs[base + delivered[o]]
                                       for o in range(m)]
        for stage in range(plan.n_stages - levels, plan.n_stages):
            tags, srcs = _scalar_transit_stage(n, sp.links[stage - 1],
                                               tags, srcs)
            col = [1 if s else 0 for s in inst[stage]]
            _scalar_apply_column(col, tags, srcs)
        dest = [0] * n
        for out, src in enumerate(srcs):
            dest[src] = out
        mappings.append(tuple(dest))
    return BatchRouteResult(success_mask=[True] * len(mappings),
                            mappings=mappings)


@_spanned("composed.route_with_states")
def composed_route_with_states(states_batch, order: int, *,
                               stage_data=False, parallel=False,
                               engine=None, sub_order=None,
                               chunk_blocks=None,
                               **scalar_options) -> BatchRouteResult:
    """Realized permutations under external switch states, routed by
    block decomposition — the topology split is state-independent, so
    each middle block's columns slice straight out of the global state
    tensor and route as a ``B(r)`` external-state problem.  Value-
    identical to :func:`repro.accel.batch_route_with_states`."""
    _reject_scalar_options("composed_route_with_states",
                           scalar_options)
    np = numpy_or_none()
    enabled = _obs.enabled()
    t0 = _perf_counter() if enabled else 0.0
    try:
        b_hint = len(states_batch)
    except TypeError:
        b_hint = None
    if order < 2:
        return batch_route_with_states(
            states_batch, order, stage_data=stage_data,
            parallel=parallel, engine=_inner_engine(order, b_hint),
        )
    plan = composed_plan(order, sub_order)
    inner = engine or _inner_engine(plan.sub_order, b_hint)
    chunk = _resolve_chunk(chunk_blocks)
    if np is not None:
        states = np.asarray(states_batch, dtype=np.int64)
        expected = (plan.n_stages, plan.n_terminals // 2)
        if states.ndim != 3 or states.shape[1:] != expected:
            raise SizeMismatchError(
                f"expected a (B, {expected[0]}, {expected[1]}) batch "
                f"of switch states for order {order}, got shape "
                f"{states.shape}"
            )
        result = _np_route_with_states(
            np, plan, states, stage_data=stage_data, inner=inner,
            chunk=chunk, parallel=parallel,
        )
    else:
        rows = states_batch if isinstance(states_batch, list) \
            else list(states_batch)
        result = _scalar_route_with_states(
            plan, rows, inner=inner, chunk=chunk, parallel=parallel,
        )
    if enabled:
        _obs.inc("accel.composed.calls")
        _obs.observe("accel.composed.seconds", _perf_counter() - t0)
    return result


# ----------------------------------------------------------------------
# Universal setup: assembled and streaming forms
# ----------------------------------------------------------------------

def _as_row(perm):
    as_tuple = getattr(perm, "as_tuple", None)
    return list(as_tuple()) if callable(as_tuple) else list(perm)


def _scalar_peel_stream(row, levels: int):
    """Pure-Python twin of
    :func:`repro.accel.setup.peel_level_stream` for one permutation:
    breadth-first truncation of the serial Waksman recursion
    (:func:`repro.core.waksman.looping_assignment` per sub-problem),
    yielding single-instance columns/sub-permutation lists."""
    from ..core.waksman import looping_assignment

    subs = [list(row)]
    for level in range(levels):
        first_col, last_col, nxt = [], [], []
        for tags in subs:
            half = len(tags) // 2
            side = looping_assignment(tags)
            first_col.extend(side[2 * i] for i in range(half))
            inverse = [0] * len(tags)
            for t, d in enumerate(tags):
                inverse[d] = t
            last_col.extend(side[inverse[2 * j]] for j in range(half))
            upper = [0] * half
            lower = [0] * half
            for t, d in enumerate(tags):
                (upper if side[t] == 0 else lower)[t >> 1] = d >> 1
            nxt.append(upper)
            nxt.append(lower)
        yield ("entry", level, first_col)
        yield ("exit", level, last_col)
        subs = nxt
    yield ("subs", -1, subs)


@_spanned("composed.setup")
def composed_setup_states(order: int, perms, *, parallel=False,
                          engine=None, sub_order=None,
                          chunk_blocks=None):
    """Assembled switch states for a batch of **arbitrary**
    permutations via peel + per-block setup — byte-identical to
    :func:`repro.accel.batch_setup_states` (pinned by
    ``tests/test_composed.py`` / the ``composed`` verify family).

    This materializes the full ``(B, 2n-1, N/2)`` tensor because that
    is its contract (the verify adapters compare it whole); the
    memory-bounded form is :func:`iter_composed_states`.
    """
    np = numpy_or_none()
    enabled = _obs.enabled()
    t0 = _perf_counter() if enabled else 0.0
    if order < 2:
        from .setup import batch_setup_states

        return batch_setup_states(
            order, perms, parallel=parallel,
            engine=_inner_engine(order, None, kind="setup"),
        )
    plan = composed_plan(order, sub_order)
    inner = engine or _inner_engine(plan.sub_order, None, kind="setup")
    chunk = _resolve_chunk(chunk_blocks)
    levels = plan.levels
    w = plan.block_half
    from .setup import _as_perm_array, batch_setup_states, \
        peel_level_stream

    if np is not None:
        arr = _as_perm_array(np, order, perms)
        batch = arr.shape[0]
        states = np.empty((batch, plan.n_stages,
                           plan.n_terminals // 2), dtype=np.int8)
        subs = None
        for kind, level, payload in peel_level_stream(np, order, arr,
                                                      levels):
            if kind == "entry":
                states[:, level, :] = payload
            elif kind == "exit":
                states[:, 2 * order - 2 - level, :] = payload
            else:
                subs = payload
        mid = states[:, levels:plan.n_stages - levels, :]
        total = batch * plan.n_blocks
        for start in range(0, total, chunk):
            stop = min(start + chunk, total)
            st = np.asarray(
                batch_setup_states(plan.sub_order, subs[start:stop],
                                   engine=inner, parallel=parallel),
                dtype=np.int8,
            )
            _note_chunk(stop - start, int(st.nbytes))
            for i in range(start, stop):
                b, k = divmod(i, plan.n_blocks)
                mid[b, :, k * w:(k + 1) * w] = st[i - start]
        result = states
    else:
        from ..core.permutation import Permutation

        out = []
        for row in (perms if isinstance(perms, list) else list(perms)):
            row = _as_row(Permutation(_as_row(row)))  # validates
            if len(row) != plan.n_terminals:
                raise SizeMismatchError(
                    f"expected permutations of {plan.n_terminals} "
                    f"elements for order {order}, got {len(row)}"
                )
            cols = [None] * plan.n_stages
            subs = None
            for kind, level, payload in _scalar_peel_stream(row,
                                                            levels):
                if kind == "entry":
                    cols[level] = list(payload)
                elif kind == "exit":
                    cols[2 * order - 2 - level] = list(payload)
                else:
                    subs = payload
            for s in range(levels, plan.n_stages - levels):
                cols[s] = []
            for start in range(0, len(subs), chunk):
                chunk_subs = subs[start:start + chunk]
                sub_states = batch_setup_states(
                    plan.sub_order, chunk_subs, engine=inner,
                    parallel=parallel,
                )
                _note_chunk(len(chunk_subs),
                            len(chunk_subs) * plan.mid_stages * w)
                for st in sub_states:
                    for s_local in range(plan.mid_stages):
                        cols[levels + s_local].extend(st[s_local])
            out.append(cols)
        result = out
    if enabled:
        _obs.inc("accel.composed.calls")
        _obs.observe("accel.composed.seconds", _perf_counter() - t0)
    return result


class StateChunk(NamedTuple):
    """One streamed piece of a composed universal setup.

    Attributes:
        kind: ``"column"`` — one finished global switch column from the
            peel — or ``"blocks"`` — the middle states of a chunk of
            sub-network blocks.
        stage: the global switch column index for ``"column"`` chunks
            (entry columns ``0..levels-1``, exit columns
            ``2n-2 .. 2n-1-levels`` interleaved), ``-1`` otherwise.
        block_start: first block index covered by a ``"blocks"`` chunk.
        states: the ``(N/2,)`` column, or the
            ``(chunk, 2r-1, 2^(r-1))`` per-block state tensor.
        perms: the ``(chunk, 2^r)`` local sub-permutations of a
            ``"blocks"`` chunk (``None`` for columns) — what a sampled
            parity check feeds the scalar oracle.
    """

    kind: str
    stage: int
    block_start: int
    states: object
    perms: object = None


def iter_composed_states(order: int, perm, *, engine=None,
                         sub_order=None, chunk_blocks=None):
    """Stream the composed universal setup of one permutation as
    :class:`StateChunk` items — the memory-bounded form of
    :func:`composed_setup_states` (``B(order)`` routes a million ports
    without ever holding its ``N log N`` state tensor).

    Entry/exit columns are yielded the moment the peel finishes them
    (``O(N)`` live working set); middle blocks follow in chunks of
    ``chunk_blocks`` sub-networks, each with its local permutations
    attached so consumers can spot-check any chunk against the scalar
    oracle (``setup_states(chunk.perms[i])``) byte for byte.
    """
    np = numpy_or_none()
    plan = composed_plan(order, sub_order)
    chunk = _resolve_chunk(chunk_blocks)
    inner = engine or _inner_engine(plan.sub_order, chunk, kind="setup")
    levels = plan.levels
    from .setup import batch_setup_states

    if np is not None:
        from .setup import _as_perm_array, peel_level_stream

        arr = _as_perm_array(np, order, [_as_row(perm)])
        subs = None
        for kind, level, payload in peel_level_stream(np, order, arr,
                                                      levels):
            if kind == "entry":
                yield StateChunk("column", level, 0, payload[0])
            elif kind == "exit":
                yield StateChunk("column", 2 * order - 2 - level, 0,
                                 payload[0])
            else:
                subs = payload
        for start in range(0, plan.n_blocks, chunk):
            sel = subs[start:start + chunk]
            st = np.asarray(
                batch_setup_states(plan.sub_order, sel, engine=inner),
                dtype=np.int8,
            )
            _note_chunk(int(sel.shape[0]), int(st.nbytes))
            yield StateChunk("blocks", -1, start, st, sel)
    else:
        from ..core.permutation import Permutation

        row = _as_row(Permutation(_as_row(perm)))  # validates
        if len(row) != plan.n_terminals:
            raise SizeMismatchError(
                f"expected a permutation of {plan.n_terminals} "
                f"elements for order {order}, got {len(row)}"
            )
        subs = None
        for kind, level, payload in _scalar_peel_stream(row, levels):
            if kind == "entry":
                yield StateChunk("column", level, 0, payload)
            elif kind == "exit":
                yield StateChunk("column", 2 * order - 2 - level, 0,
                                 payload)
            else:
                subs = payload
        for start in range(0, len(subs), chunk):
            sel = subs[start:start + chunk]
            st = batch_setup_states(plan.sub_order, sel, engine=inner)
            _note_chunk(len(sel),
                        len(sel) * plan.mid_stages * plan.block_half)
            yield StateChunk("blocks", -1, start, st, sel)
