"""Scalar-vs-batch throughput measurement for the accel engines.

Shared by the ``benes bench`` CLI subcommand and
``benchmarks/bench_accel.py`` so both emit the same machine-readable
shape (``BENCH_accel.json``): one record per (order, batch size,
engine) with items/second for the scalar fast path and the batch
engine, and their ratio.  Cells carry an ``engine`` column naming the
concrete engine that served the batch call (``numpy``, ``bitslice`` or
``scalar`` — resolved through :func:`repro.accel.resolve_engine`), and
an ``engine="auto"`` sweep additionally times the bit-sliced big-int
kernel wherever auto resolved to something else, so the report always
records the no-NumPy fast path.

To keep the sweep affordable at large orders the scalar side may be
timed on a capped subsample of the batch (``scalar_cap``) — per-item
cost is flat across a batch of i.i.d. vectors, so the throughput
extrapolation is sound; the number actually timed is recorded in the
result for honesty.
"""

from __future__ import annotations

import json
import random
import time
from typing import Dict, List, Optional, Sequence

from .. import obs as _obs
from ..core.fastpath import fast_self_route
from ..core.permutation import random_permutation
from ..errors import InvalidParameterError
from ._np import have_numpy, resolve_engine
from .batch import batch_self_route

__all__ = ["measure_cell", "run_benchmark", "format_table",
           "write_json", "best_speedup", "measure_setup_cell",
           "run_setup_benchmark", "format_setup_table",
           "best_setup_speedup", "measure_scaling_cell",
           "run_scaling_benchmark", "format_scaling_table",
           "scaling_speedup"]

DEFAULT_ORDERS = (4, 6, 8)
DEFAULT_BATCH_SIZES = (64, 256, 1024)
DEFAULT_SETUP_ORDERS = (3, 4, 5, 6, 7, 8)
DEFAULT_SETUP_BATCH_SIZES = (64, 256)
DEFAULT_SCALING_ORDERS = (10, 12, 14)
SCALING_MODES = ("serial", "batch", "composed")


def _random_tag_batch(order: int, batch_size: int,
                      rng: random.Random) -> List[tuple]:
    """Uniform random permutations — the Monte-Carlo density workload
    (a mix of F and non-F members; the engine's cost is input-
    independent either way)."""
    n = 1 << order
    return [random_permutation(n, rng).as_tuple()
            for _ in range(batch_size)]


def measure_cell(order: int, batch_size: int, rng: random.Random,
                 repeats: int = 3, scalar_cap: int = 256,
                 parallel=False, engine=None) -> Dict:
    """Time one (order, batch_size) cell; return a JSON-ready record.
    ``parallel`` is forwarded to the batch call, so the same cell shape
    measures the shard executor; ``engine`` pins a concrete engine
    (``None``/``"auto"`` resolves through the seam), and the resolved
    name is recorded in the cell's ``engine`` column."""
    tags = _random_tag_batch(order, batch_size, rng)
    resolved = resolve_engine(None if engine == "auto" else engine,
                              order=order, batch_size=batch_size)

    scalar_items = min(batch_size, scalar_cap)
    best_scalar = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for row in tags[:scalar_items]:
            fast_self_route(row)
        best_scalar = min(best_scalar, time.perf_counter() - t0)

    # warm the plan cache (and, in parallel mode, the pool) untimed
    batch_self_route(tags[:2], parallel=parallel, engine=resolved)
    best_batch = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        batch_self_route(tags, parallel=parallel, engine=resolved)
        best_batch = min(best_batch, time.perf_counter() - t0)

    scalar_rate = scalar_items / best_scalar if best_scalar > 0 else 0.0
    batch_rate = batch_size / best_batch if best_batch > 0 else 0.0
    return {
        "order": order,
        "n_terminals": 1 << order,
        "batch_size": batch_size,
        "parallel": bool(parallel),
        "engine": resolved,
        "scalar_items_timed": scalar_items,
        "scalar_seconds": best_scalar,
        "batch_seconds": best_batch,
        "scalar_items_per_s": scalar_rate,
        "batch_items_per_s": batch_rate,
        "speedup": batch_rate / scalar_rate if scalar_rate else 0.0,
    }


def run_benchmark(orders: Sequence[int] = DEFAULT_ORDERS,
                  batch_sizes: Sequence[int] = DEFAULT_BATCH_SIZES,
                  seed: int = 1980, repeats: int = 3,
                  scalar_cap: int = 256,
                  include_parallel: bool = False,
                  engine: str = "auto") -> Dict:
    """Sweep the (order, batch_size) grid; return the full report.
    With ``include_parallel`` an extra shard-executor cell is timed at
    the largest (order, batch size) of the grid, mirroring
    :func:`run_setup_benchmark`.  ``engine`` pins every cell to one
    engine; the default ``"auto"`` lets the seam resolve per cell and
    then times the bitslice kernel too wherever auto picked something
    else, so the report always carries the no-NumPy fast-path column."""
    import os

    rng = random.Random(seed)
    cells = [
        measure_cell(order, batch_size, rng, repeats=repeats,
                     scalar_cap=scalar_cap, engine=engine)
        for order in orders
        for batch_size in batch_sizes
    ]
    if engine == "auto":
        auto_cells = list(cells)
        cells.extend(
            measure_cell(cell["order"], cell["batch_size"], rng,
                         repeats=repeats, scalar_cap=scalar_cap,
                         engine="bitslice")
            for cell in auto_cells
            if cell["engine"] != "bitslice"
        )
    if include_parallel:
        cells.append(measure_cell(
            max(orders), max(batch_sizes), rng, repeats=repeats,
            scalar_cap=scalar_cap, parallel=True, engine=engine,
        ))
    report = {
        "benchmark": "accel.batch_self_route vs core.fast_self_route",
        "numpy": have_numpy(),
        "engine": engine,
        "cpu_count": os.cpu_count(),
        "seed": seed,
        "repeats": repeats,
        "cells": cells,
    }
    if _obs.enabled():
        # The sweep itself is the workload: counters/histograms for
        # every cell routed above travel with the perf numbers.
        report["metrics"] = _obs.snapshot()
    return report


def measure_setup_cell(order: int, batch_size: int, rng: random.Random,
                       *, kind: str = "setup", repeats: int = 3,
                       scalar_cap: int = 64, parallel=False,
                       engine=None) -> Dict:
    """Time one universal-setup cell; ``kind`` selects the batched
    looping setup (``"setup"``) or the full two-pass factorization
    (``"two_pass"``).  ``parallel`` is forwarded to the batch call, so
    the same cell shape measures the shard executor; ``engine`` pins a
    concrete engine (resolved with ``kind="setup"`` semantics — auto
    never picks bitslice for the data-dependent side assignment)."""
    from .setup import (batch_setup_states, batch_two_pass,
                        scalar_setup_loop, scalar_two_pass_loop)

    if kind == "setup":
        scalar_fn, batch_fn = scalar_setup_loop, batch_setup_states
    elif kind == "two_pass":
        scalar_fn, batch_fn = scalar_two_pass_loop, batch_two_pass
    else:
        raise InvalidParameterError(
            f"unknown setup benchmark kind {kind!r}"
        )
    perms = _random_tag_batch(order, batch_size, rng)
    resolved = resolve_engine(None if engine == "auto" else engine,
                              order=order, batch_size=batch_size,
                              kind="setup")

    scalar_items = min(batch_size, scalar_cap)
    best_scalar = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        scalar_fn(order, perms[:scalar_items])
        best_scalar = min(best_scalar, time.perf_counter() - t0)

    # warm caches / pool untimed
    batch_fn(order, perms[:2], parallel=parallel, engine=resolved)
    best_batch = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        batch_fn(order, perms, parallel=parallel, engine=resolved)
        best_batch = min(best_batch, time.perf_counter() - t0)

    scalar_rate = scalar_items / best_scalar if best_scalar > 0 else 0.0
    batch_rate = batch_size / best_batch if best_batch > 0 else 0.0
    return {
        "kind": kind,
        "order": order,
        "n_terminals": 1 << order,
        "batch_size": batch_size,
        "parallel": bool(parallel),
        "engine": resolved,
        "scalar_items_timed": scalar_items,
        "scalar_seconds": best_scalar,
        "batch_seconds": best_batch,
        "scalar_items_per_s": scalar_rate,
        "batch_items_per_s": batch_rate,
        "speedup": batch_rate / scalar_rate if scalar_rate else 0.0,
    }


def run_setup_benchmark(orders: Sequence[int] = DEFAULT_SETUP_ORDERS,
                        batch_sizes: Sequence[int] =
                        DEFAULT_SETUP_BATCH_SIZES,
                        seed: int = 1968, repeats: int = 3,
                        scalar_cap: int = 64,
                        include_parallel: bool = True,
                        engine: str = "auto") -> Dict:
    """Sweep the universal-setup grid (looping setup and two-pass
    factorization, scalar vs batch); with ``include_parallel`` an extra
    executor cell is timed at the largest batch size of the largest
    order, so BENCH_setup.json records both single-process and sharded
    throughput on the same machine.  ``engine`` pins every cell to one
    engine (setup-kind resolution semantics)."""
    import os

    rng = random.Random(seed)
    cells = [
        measure_setup_cell(order, batch_size, rng, kind=kind,
                           repeats=repeats, scalar_cap=scalar_cap,
                           engine=engine)
        for kind in ("setup", "two_pass")
        for order in orders
        for batch_size in batch_sizes
    ]
    if include_parallel:
        for kind in ("setup", "two_pass"):
            cells.append(measure_setup_cell(
                max(orders), max(batch_sizes), rng, kind=kind,
                repeats=repeats, scalar_cap=scalar_cap, parallel=True,
                engine=engine,
            ))
    report = {
        "benchmark": "accel.batch_setup_states / batch_two_pass vs "
                     "scalar looping",
        "numpy": have_numpy(),
        "engine": engine,
        "cpu_count": os.cpu_count(),
        "seed": seed,
        "repeats": repeats,
        "cells": cells,
    }
    if _obs.enabled():
        report["metrics"] = _obs.snapshot()
    return report


def format_setup_table(report: Dict) -> str:
    """Human-readable view of :func:`run_setup_benchmark`'s report."""
    mode = "NumPy available" if report["numpy"] else "no NumPy"
    lines = [
        f"universal setup: {mode}",
        f"{'kind':>8} {'n':>3} {'batch':>6} {'engine':>9} {'par':>4} "
        f"{'scalar/s':>12} {'batch/s':>12} {'speedup':>8}",
    ]
    for cell in report["cells"]:
        lines.append(
            f"{cell['kind']:>8} {cell['order']:>3} "
            f"{cell['batch_size']:>6} "
            f"{cell.get('engine', '?'):>9} "
            f"{'yes' if cell['parallel'] else 'no':>4} "
            f"{cell['scalar_items_per_s']:>12.0f} "
            f"{cell['batch_items_per_s']:>12.0f} "
            f"{cell['speedup']:>7.1f}x"
        )
    return "\n".join(lines)


def best_setup_speedup(report: Dict, kind: str = "setup",
                       min_order: int = 0, min_batch: int = 0,
                       parallel: Optional[bool] = False,
                       engine: Optional[str] = None
                       ) -> Optional[float]:
    """Largest measured speedup among matching setup cells (used by the
    benchmark assertions); ``parallel=None`` matches both modes,
    ``engine=None`` matches every engine column."""
    eligible = [
        cell["speedup"] for cell in report["cells"]
        if cell["kind"] == kind
        and cell["order"] >= min_order
        and cell["batch_size"] >= min_batch
        and (parallel is None or cell["parallel"] == parallel)
        and (engine is None or cell.get("engine") == engine)
    ]
    return max(eligible) if eligible else None


def measure_scaling_cell(order: int, mode: str, *, seed: int = 2026,
                         repeats: int = 2) -> Dict:
    """Time one universal setup of a single random permutation of
    ``2^order`` terminals under one execution ``mode`` — the cell shape
    of the scaling benchmark (``BENCH_scaling.json``):

    - ``"serial"`` — the scalar Waksman looping recursion
      (:func:`repro.core.waksman.setup_states`), the paper's baseline;
    - ``"batch"`` — the monolithic batch engine (one ``(1, N)`` call,
      full state tensor in memory);
    - ``"composed"`` — the block-composed engine with chunked per-block
      dispatch (``parallel=True``, so multicore hosts also shard).

    The record carries the wall time, the process's ``ru_maxrss``
    *after* the cell (honest peak only when the cell runs in a fresh
    subprocess — ``benchmarks/bench_scaling.py`` isolates each cell
    that way; in-process sweeps mark ``rss_isolated`` false in the
    report), and for composed cells the peak chunk payload from
    :func:`repro.accel.composed_stats`.
    """
    import resource

    from ..core.waksman import setup_states
    from .composed import composed_stats, composed_stats_clear
    from .setup import batch_setup_states

    if mode not in SCALING_MODES:
        raise InvalidParameterError(
            f"unknown scaling mode {mode!r}; choose one of "
            f"{', '.join(SCALING_MODES)}"
        )
    rng = random.Random(seed + order)
    perm = random_permutation(1 << order, rng).as_tuple()
    peak_chunk = None
    if mode == "serial":
        def run():
            setup_states(perm)
    elif mode == "batch":
        engine = "numpy" if have_numpy() else "scalar"

        def run():
            batch_setup_states(order, [perm], engine=engine)
    else:
        composed_stats_clear()

        def run():
            batch_setup_states(order, [perm], engine="composed",
                               parallel=True)
    run()  # warm plan caches (and the pool in composed mode) untimed
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - t0)
    if mode == "composed":
        peak_chunk = composed_stats()["peak_chunk_bytes"]
    cell = {
        "order": order,
        "n_terminals": 1 << order,
        "mode": mode,
        "engine": mode,
        "seconds": best,
        "peak_rss_kb": resource.getrusage(
            resource.RUSAGE_SELF).ru_maxrss,
    }
    if peak_chunk is not None:
        cell["peak_chunk_bytes"] = peak_chunk
    return cell


def run_scaling_benchmark(orders: Sequence[int] =
                          DEFAULT_SCALING_ORDERS,
                          seed: int = 2026, repeats: int = 2,
                          serial_max_order: int = 14,
                          modes: Sequence[str] = SCALING_MODES) -> Dict:
    """Sweep setup time (and best-effort RSS) across ``orders`` for
    every mode in ``modes`` — the in-process form behind ``benes bench
    --suite scaling``.  The serial baseline is capped at
    ``serial_max_order`` (the recursion is O(N log N) pure Python;
    beyond ~N=16k it only proves the point more slowly); each
    batch/composed cell at a serial-covered order gets a
    ``speedup_vs_serial`` column.

    For the *committed* ``BENCH_scaling.json`` use
    ``benchmarks/bench_scaling.py``, which runs every cell in a fresh
    subprocess so ``peak_rss_kb`` is a true per-cell peak
    (``rss_isolated: true``)."""
    import os

    cells = []
    for order in orders:
        for mode in modes:
            if mode == "serial" and order > serial_max_order:
                continue
            cells.append(measure_scaling_cell(order, mode, seed=seed,
                                              repeats=repeats))
    _annotate_scaling_speedups(cells)
    report = {
        "benchmark": "scaling: serial Waksman vs batch vs composed "
                     "universal setup",
        "numpy": have_numpy(),
        "cpu_count": os.cpu_count(),
        "seed": seed,
        "repeats": repeats,
        "serial_max_order": serial_max_order,
        "rss_isolated": False,
        "cells": cells,
    }
    if _obs.enabled():
        report["metrics"] = _obs.snapshot()
    return report


def _annotate_scaling_speedups(cells: List[Dict]) -> None:
    """Attach ``speedup_vs_serial`` to every non-serial cell whose
    order also has a serial baseline cell."""
    serial = {cell["order"]: cell["seconds"] for cell in cells
              if cell["mode"] == "serial"}
    for cell in cells:
        if cell["mode"] != "serial" and cell["order"] in serial:
            base, mine = serial[cell["order"]], cell["seconds"]
            cell["speedup_vs_serial"] = base / mine if mine > 0 else 0.0


def format_scaling_table(report: Dict) -> str:
    """Human-readable view of :func:`run_scaling_benchmark`'s report."""
    mode = "NumPy available" if report["numpy"] else "no NumPy"
    rss = "per-cell subprocess" if report.get("rss_isolated") \
        else "in-process (monotonic)"
    lines = [
        f"scaling sweep: {mode}; RSS {rss}",
        f"{'n':>3} {'N':>8} {'mode':>9} {'seconds':>10} "
        f"{'rss kB':>10} {'chunk B':>10} {'vs serial':>10}",
    ]
    for cell in report["cells"]:
        speedup = cell.get("speedup_vs_serial")
        chunk = cell.get("peak_chunk_bytes")
        lines.append(
            f"{cell['order']:>3} {cell['n_terminals']:>8} "
            f"{cell['mode']:>9} {cell['seconds']:>10.4f} "
            f"{cell['peak_rss_kb']:>10} "
            f"{chunk if chunk is not None else '-':>10} "
            f"{f'{speedup:.1f}x' if speedup is not None else '-':>10}"
        )
    return "\n".join(lines)


def scaling_speedup(report: Dict, mode: str = "composed",
                    min_order: int = 0) -> Optional[float]:
    """Largest ``speedup_vs_serial`` among ``mode`` cells at or above
    ``min_order`` (the benchmark assertion / regression-guard hook)."""
    eligible = [
        cell["speedup_vs_serial"] for cell in report["cells"]
        if cell["mode"] == mode and cell["order"] >= min_order
        and "speedup_vs_serial" in cell
    ]
    return max(eligible) if eligible else None


def format_table(report: Dict) -> str:
    """Human-readable view of :func:`run_benchmark`'s report."""
    mode = "NumPy available" if report["numpy"] else "no NumPy"
    lines = [
        f"batch engine: {mode}",
        f"{'n':>3} {'N':>5} {'batch':>6} {'engine':>9} {'par':>4} "
        f"{'scalar/s':>12} {'batch/s':>12} {'speedup':>8}",
    ]
    for cell in report["cells"]:
        lines.append(
            f"{cell['order']:>3} {cell['n_terminals']:>5} "
            f"{cell['batch_size']:>6} "
            f"{cell.get('engine', '?'):>9} "
            f"{'yes' if cell.get('parallel') else 'no':>4} "
            f"{cell['scalar_items_per_s']:>12.0f} "
            f"{cell['batch_items_per_s']:>12.0f} "
            f"{cell['speedup']:>7.1f}x"
        )
    return "\n".join(lines)


def write_json(report: Dict, path: str) -> None:
    """Emit the machine-readable perf trajectory."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")


def best_speedup(report: Dict, min_order: int = 0,
                 min_batch: int = 0,
                 parallel: Optional[bool] = False,
                 engine: Optional[str] = None) -> Optional[float]:
    """Largest measured speedup among cells meeting the floor (used by
    benchmark assertions); ``parallel=None`` matches both modes, the
    default ``False`` keeps executor cells out of single-process
    guards (older reports without the key count as non-parallel), and
    ``engine=None`` matches every engine column."""
    eligible = [
        cell["speedup"] for cell in report["cells"]
        if cell["order"] >= min_order and cell["batch_size"] >= min_batch
        and (parallel is None
             or bool(cell.get("parallel", False)) == parallel)
        and (engine is None or cell.get("engine") == engine)
    ]
    return max(eligible) if eligible else None
