"""Measured scalar/bitslice crossover data for ``engine="auto"``.

On the no-NumPy leg two pure-Python engines compete: the scalar
per-instance loop (cheap entry, per-item cost grows with ``N log N``
bytecode) and the bit-sliced big-int kernel (a packing/unpacking
overhead amortized across lanes, then a per-stage cost nearly flat in
the batch width).  Which one wins is a classic crossover: scalar for a
handful of rows, bitslice from a few dozen on — and where exactly the
lines cross depends on the order and the interpreter, so the planner's
auto engine choice is driven by *measured* per-order probe data rather
than a guessed constant (the same cost-driven-selection shape as the
KR-Benes control-cost argument for realizer choice).

The first ``auto`` resolution at a given order times two silent probes
— the raw scalar routing pass and the bitslice kernel at two batch
widths — fits a linear ``overhead + per_item * B`` model to the
bitslice side, and caches the resulting crossover batch size under a
lock.  Probes call the engines' *internal* kernels directly
(:func:`repro.core.fastpath._self_route_pass`,
:func:`repro.accel.bitslice.bitslice_self_route`), so they record no
metrics and perturb no counters a parity test might pin.  Everything
is process-local and costs a few milliseconds once per order; orders
above :data:`MAX_PROBE_ORDER` skip probing for a batch-width
heuristic.

``BENES_ENGINE`` (or an explicit ``engine=`` keyword) overrides the
whole mechanism — see :func:`repro.accel._np.resolve_engine`.
"""

from __future__ import annotations

import random
import threading
from time import perf_counter as _perf_counter
from typing import Dict, Optional

from ._np import have_numpy

__all__ = ["choose_engine", "crossover_table", "autotune_clear",
           "MAX_PROBE_ORDER"]

#: Probe batch widths for the bitslice linear cost model.
PROBE_BATCHES = (4, 64)
#: Scalar probe row count (per-item cost is flat across i.i.d. rows).
SCALAR_PROBE_ROWS = 8
#: Largest order probed; above it a (2^n)-row probe would cost more
#: than it saves, so a batch-width heuristic stands in.
MAX_PROBE_ORDER = 10
#: Heuristic crossover for unprobed orders: the measured crossover
#: shrinks as the order grows (scalar cost is N log N per item, the
#: bitslice overhead is one pack/unpack), so a small constant is safe.
HEURISTIC_CROSSOVER = 8

_LOCK = threading.Lock()
_TABLE: Dict[int, Dict[str, float]] = {}


def _probe_rows(order: int, count: int) -> list:
    rng = random.Random(1980 * 1000003 + order)
    n = 1 << order
    rows = []
    for _ in range(count):
        row = list(range(n))
        rng.shuffle(row)
        rows.append(row)
    return rows


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = _perf_counter()
        fn()
        best = min(best, _perf_counter() - t0)
    return best


def _measure(order: int) -> Dict[str, float]:
    """Time the silent probes and fit the crossover for one order."""
    from ..core.fastpath import _self_route_pass
    from .bitslice import bitslice_self_route

    rows = _probe_rows(order, max(SCALAR_PROBE_ROWS,
                                  max(PROBE_BATCHES)))
    scalar_rows = rows[:SCALAR_PROBE_ROWS]
    scalar_per_item = _best_of(
        lambda: [_self_route_pass(r, False, None, False)
                 for r in scalar_rows]
    ) / len(scalar_rows)

    small, large = PROBE_BATCHES
    bitslice_self_route(rows[:2])  # warm the plan caches untimed
    t_small = _best_of(lambda: bitslice_self_route(rows[:small]))
    t_large = _best_of(lambda: bitslice_self_route(rows[:large]))
    per_item = max(0.0, (t_large - t_small) / (large - small))
    overhead = max(0.0, t_small - per_item * small)

    if scalar_per_item > per_item:
        crossover = overhead / (scalar_per_item - per_item)
        crossover = max(1, int(crossover) + 1)
    else:  # bitslice never catches up at this order
        crossover = float("inf")
    return {
        "scalar_per_item": scalar_per_item,
        "bitslice_overhead": overhead,
        "bitslice_per_item": per_item,
        "crossover": crossover,
    }


def _table_entry(order: int) -> Dict[str, float]:
    with _LOCK:
        entry = _TABLE.get(order)
        if entry is None:
            entry = _measure(order)
            _TABLE[order] = entry
        return entry


def choose_engine(order: Optional[int],
                  batch_size: Optional[int]) -> str:
    """The auto engine for one batch shape: NumPy when importable
    (type-stable results for the accel extra), else bitslice iff the
    batch is at or past the measured per-order crossover."""
    if have_numpy():
        return "numpy"
    if order is None or batch_size is None or batch_size <= 1:
        return "scalar"
    if order > MAX_PROBE_ORDER:
        return "bitslice" if batch_size >= HEURISTIC_CROSSOVER \
            else "scalar"
    entry = _table_entry(order)
    return "bitslice" if batch_size >= entry["crossover"] else "scalar"


def crossover_table() -> Dict[int, Dict[str, float]]:
    """A copy of the per-order probe data measured so far (diagnostic
    surface for DESIGN.md's crossover guidance and tests)."""
    with _LOCK:
        return {order: dict(entry) for order, entry in _TABLE.items()}


def autotune_clear() -> None:
    """Drop all cached probe data (tests, CPU migration)."""
    with _LOCK:
        _TABLE.clear()
