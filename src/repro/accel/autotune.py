"""Measured scalar/bitslice crossover data for ``engine="auto"``.

On the no-NumPy leg two pure-Python engines compete: the scalar
per-instance loop (cheap entry, per-item cost grows with ``N log N``
bytecode) and the bit-sliced big-int kernel (a packing/unpacking
overhead amortized across lanes, then a per-stage cost nearly flat in
the batch width).  Which one wins is a classic crossover: scalar for a
handful of rows, bitslice from a few dozen on — and where exactly the
lines cross depends on the order and the interpreter, so the planner's
auto engine choice is driven by *measured* per-order probe data rather
than a guessed constant (the same cost-driven-selection shape as the
KR-Benes control-cost argument for realizer choice).

The first ``auto`` resolution at a given order times two silent probes
— the raw scalar routing pass and the bitslice kernel at two batch
widths — fits a linear ``overhead + per_item * B`` model to the
bitslice side, and caches the resulting crossover batch size under a
lock.  Probes call the engines' *internal* kernels directly
(:func:`repro.core.fastpath._self_route_pass`,
:func:`repro.accel.bitslice.bitslice_self_route`), so they record no
metrics and perturb no counters a parity test might pin.  Everything
costs a few milliseconds once per order; orders above
:data:`MAX_PROBE_ORDER` skip probing for a batch-width heuristic.

Probe results additionally **persist across processes** in a per-host
cache file keyed by interpreter version and CPU count (the two
machine facts the timings depend on) — by default
``~/.cache/benes/autotune-py{major}.{minor}-cpu{count}.json``
(honoring ``XDG_CACHE_HOME``).  Spawn-pool workers re-import this
module on every pool warmup; without the file each worker would
re-time the probes from scratch, so the first process pays once and
every later worker loads the table in one read.  ``BENES_AUTOTUNE_CACHE``
overrides the path, and the value ``off`` disables persistence
entirely (tests, read-only homes).  Writes are atomic
(tmp + ``os.replace``) and best-effort: an unwritable or corrupt cache
degrades to the process-local behavior, never to an error.

``BENES_ENGINE`` (or an explicit ``engine=`` keyword) overrides the
whole mechanism — see :func:`repro.accel._np.resolve_engine`.
"""

from __future__ import annotations

import json
import os
import pathlib
import random
import sys
import threading
from time import perf_counter as _perf_counter
from typing import Dict, Optional

from ._np import have_numpy
from .. import obs as _obs

__all__ = ["choose_engine", "crossover_table", "autotune_clear",
           "autotune_cache_path", "MAX_PROBE_ORDER"]

#: Probe batch widths for the bitslice linear cost model.
PROBE_BATCHES = (4, 64)
#: Scalar probe row count (per-item cost is flat across i.i.d. rows).
SCALAR_PROBE_ROWS = 8
#: Largest order probed; above it a (2^n)-row probe would cost more
#: than it saves, so a batch-width heuristic stands in.
MAX_PROBE_ORDER = 10
#: Heuristic crossover for unprobed orders: the measured crossover
#: shrinks as the order grows (scalar cost is N log N per item, the
#: bitslice overhead is one pack/unpack), so a small constant is safe.
HEURISTIC_CROSSOVER = 8

#: Persisted-cache schema version (bump on incompatible change).
CACHE_VERSION = 1

_LOCK = threading.Lock()
_TABLE: Dict[int, Dict[str, float]] = {}
_DISK_LOADED = False


def autotune_cache_path() -> Optional[pathlib.Path]:
    """Where this host persists probe results, or ``None`` when
    persistence is disabled (``BENES_AUTOTUNE_CACHE=off``).  The
    default name carries the interpreter version and CPU count — the
    machine facts the timings depend on — so an upgrade or a container
    with a different CPU budget gets a fresh file instead of stale
    numbers."""
    override = os.environ.get("BENES_AUTOTUNE_CACHE")
    if override:
        if override.strip().lower() == "off":
            return None
        return pathlib.Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    root = pathlib.Path(xdg) if xdg else \
        pathlib.Path.home() / ".cache"
    name = (f"autotune-py{sys.version_info[0]}."
            f"{sys.version_info[1]}-cpu{os.cpu_count() or 1}.json")
    return root / "benes" / name


def _load_disk_locked() -> None:
    """Merge the per-host cache file into the in-process table (once
    per process; caller holds ``_LOCK``).  A missing, corrupt, or
    wrong-version file is silently ignored — the cache is an
    optimization, not a source of truth."""
    global _DISK_LOADED
    if _DISK_LOADED:
        return
    _DISK_LOADED = True
    path = autotune_cache_path()
    if path is None:
        return
    try:
        raw = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return
    if not isinstance(raw, dict) or \
            raw.get("version") != CACHE_VERSION:
        return
    orders = raw.get("orders")
    if not isinstance(orders, dict):
        return
    for key, entry in orders.items():
        try:
            order = int(key)
        except (TypeError, ValueError):
            continue
        if not isinstance(entry, dict) or \
                "crossover" not in entry:
            continue
        entry = dict(entry)
        if entry["crossover"] is None:
            # JSON has no Infinity; None round-trips the
            # bitslice-never-wins verdict
            entry["crossover"] = float("inf")
        _TABLE.setdefault(order, entry)


def _persist_locked() -> None:
    """Write the current table to the per-host cache file atomically
    (tmp + rename; caller holds ``_LOCK``).  Best-effort: a read-only
    cache directory must never break engine resolution."""
    path = autotune_cache_path()
    if path is None:
        return
    orders = {}
    for order, entry in _TABLE.items():
        out = dict(entry)
        if out.get("crossover") == float("inf"):
            out["crossover"] = None
        orders[str(order)] = out
    body = json.dumps({
        "version": CACHE_VERSION,
        "python": f"{sys.version_info[0]}.{sys.version_info[1]}",
        "cpu_count": os.cpu_count() or 1,
        "orders": orders,
    }, indent=2, sort_keys=True)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
        tmp.write_text(body + "\n", encoding="utf-8")
        os.replace(tmp, path)
    except OSError:
        # Still best-effort (read-only homes are a supported
        # configuration), but no longer invisible: every later worker
        # re-probing from scratch traces back to this counter.
        _obs.inc("accel.autotune.cache_io_failed")


def _probe_rows(order: int, count: int) -> list:
    rng = random.Random(1980 * 1000003 + order)
    n = 1 << order
    rows = []
    for _ in range(count):
        row = list(range(n))
        rng.shuffle(row)
        rows.append(row)
    return rows


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = _perf_counter()
        fn()
        best = min(best, _perf_counter() - t0)
    return best


def _measure(order: int) -> Dict[str, float]:
    """Time the silent probes and fit the crossover for one order."""
    from ..core.fastpath import _self_route_pass
    from .bitslice import bitslice_self_route

    rows = _probe_rows(order, max(SCALAR_PROBE_ROWS,
                                  max(PROBE_BATCHES)))
    scalar_rows = rows[:SCALAR_PROBE_ROWS]
    scalar_per_item = _best_of(
        lambda: [_self_route_pass(r, False, None, False)
                 for r in scalar_rows]
    ) / len(scalar_rows)

    small, large = PROBE_BATCHES
    bitslice_self_route(rows[:2])  # warm the plan caches untimed
    t_small = _best_of(lambda: bitslice_self_route(rows[:small]))
    t_large = _best_of(lambda: bitslice_self_route(rows[:large]))
    per_item = max(0.0, (t_large - t_small) / (large - small))
    overhead = max(0.0, t_small - per_item * small)

    if scalar_per_item > per_item:
        crossover = overhead / (scalar_per_item - per_item)
        crossover = max(1, int(crossover) + 1)
    else:  # bitslice never catches up at this order
        crossover = float("inf")
    return {
        "scalar_per_item": scalar_per_item,
        "bitslice_overhead": overhead,
        "bitslice_per_item": per_item,
        "crossover": crossover,
    }


def _table_entry(order: int) -> Dict[str, float]:
    with _LOCK:
        _load_disk_locked()
        entry = _TABLE.get(order)
        if entry is None:
            entry = _measure(order)
            _TABLE[order] = entry
            _persist_locked()
        return entry


def choose_engine(order: Optional[int],
                  batch_size: Optional[int]) -> str:
    """The auto engine for one batch shape: NumPy when importable
    (type-stable results for the accel extra), else bitslice iff the
    batch is at or past the measured per-order crossover."""
    if have_numpy():
        return "numpy"
    if order is None or batch_size is None or batch_size <= 1:
        return "scalar"
    if order > MAX_PROBE_ORDER:
        return "bitslice" if batch_size >= HEURISTIC_CROSSOVER \
            else "scalar"
    entry = _table_entry(order)
    return "bitslice" if batch_size >= entry["crossover"] else "scalar"


def crossover_table() -> Dict[int, Dict[str, float]]:
    """A copy of the per-order probe data measured so far (diagnostic
    surface for DESIGN.md's crossover guidance and tests)."""
    with _LOCK:
        return {order: dict(entry) for order, entry in _TABLE.items()}


def autotune_clear(*, persistent: bool = False) -> None:
    """Drop all in-process probe data (tests, CPU migration); the next
    lookup reloads from the per-host cache file when one exists.  With
    ``persistent=True`` the cache file itself is removed too, forcing
    a genuine re-probe."""
    global _DISK_LOADED
    with _LOCK:
        _TABLE.clear()
        _DISK_LOADED = False
        if persistent:
            path = autotune_cache_path()
            if path is not None:
                try:
                    path.unlink()
                except FileNotFoundError:
                    pass  # nothing persisted yet — not a fault
                except OSError:
                    _obs.inc("accel.autotune.cache_io_failed")
