"""Bit-sliced big-int routing engine: lane-parallel batches without
NumPy.

The paper's whole control story is *bitwise* — bit ``min(s, 2n-2-s)``
of the upper input's destination tag sets the switch — which makes a
batch of routing instances a natural fit for **SIMD-within-a-bigint**
evaluation.  This module packs the batch dimension into Python
arbitrary-precision ints: each network row is ONE int spanning every
batch lane, with lane ``b`` occupying a ``w``-bit field at bit offset
``b * w`` (``w`` the smallest of 8/16/32/64 bits that holds a routed
value; byte alignment keeps the pack/unpack boundary on
:mod:`struct`).  One stage of the whole batch is then a handful of
bitwise expressions per switch, each operating on all ``B`` lanes at
once:

- the control decision of switch ``i`` is
  ``cond = (row[2i] >> ctrl) & BASE`` where ``BASE`` has one bit set at
  every field base — a 0/1 verdict per lane in one shift-and-mask;
- the conditional pair exchange is branch-free big-int XOR swapping:
  ``mask = (cond << w) - cond`` smears each verdict over its whole
  field (the per-field values ``(2^w - 1) * cond_bit`` occupy disjoint
  bit ranges, so the single subtraction is carry-free), then
  ``diff = (row[2i] ^ row[2i+1]) & mask`` flips exactly the crossing
  lanes of both rows;
- a link crossing is a plain list re-index through the stage plan's
  inverse links — ``N`` pointer moves regardless of batch width;
- stuck-at faults force ``cond`` to ``BASE`` or ``0`` (all lanes share
  one fault map, exactly like the vectorized engine), and omega mode
  forces the first ``n - 1`` columns straight.

The ``(B, N)`` boundary transposition runs at C speed: ``zip(*rows)``
turns lane-major input into terminal-major columns and one
``struct.Struct("<{B}{code}").pack`` per terminal produces the little-
endian byte image of its packed int (``int.from_bytes``/``to_bytes``
complete the round trip).  Self-routing additionally packs each lane's
source row into the high bits of its field (``source << order | tag``,
the same trick as :mod:`repro.accel.batch`), so success checks and
delivered mappings decode from the final rows without a second routing
state.

What is and is not bit-sliced:

- **self-routing / membership / external-state routing** — fully
  bit-sliced stage loops (:func:`bitslice_self_route`,
  :func:`bitslice_in_class_f`, :func:`bitslice_route_with_states`);
- **two-pass factorization** (:func:`bitslice_two_pass`) — the
  first-half map is pushed through the first ``n`` columns with the
  bit-sliced kernel, but the Waksman *side assignment* itself
  (:func:`bitslice_setup_states`) delegates to the scalar looping
  algorithm per instance: cycle chasing is data-dependent pointer
  traversal with no lane-parallel formulation in this representation,
  and pretending otherwise would just hide a scalar loop behind a
  bit-sliced name.

These kernels are the ``engine="bitslice"`` leg behind the
:mod:`repro.accel._np` seam; callers normally reach them through
:func:`repro.accel.batch_self_route` and friends, which add metrics,
sharding, and engine resolution.  Results carry the exact fallback
shapes (lists of bools, tuples of ints, nested tuple states), so the
differential verifier compares them byte-for-byte against the scalar
oracle.  Per-(order, lanes, width) packing constants live in
:class:`BitslicePlan` objects cached in the bounded LRU exposed through
:func:`repro.accel.cache_stats` as the ``bitslice`` section.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.bits import log2_exact, popcount
from ..core.routing import BatchRouteResult
from ..core.switch import validate_stuck_switches
from ..errors import InvalidParameterError, SizeMismatchError
from .plans import bitslice_plan_cache, stage_plan

__all__ = [
    "BitslicePlan",
    "bitslice_plan",
    "bitslice_self_route",
    "bitslice_in_class_f",
    "bitslice_route_with_states",
    "bitslice_setup_states",
    "bitslice_two_pass",
]

#: struct format code per field width (bits) — all unsigned, little
#: endian, so field ``b`` of a packed int is bytes ``[b*w/8, (b+1)*w/8)``
#: of its ``to_bytes(..., "little")`` image.
_FIELD_CODES = {8: "B", 16: "H", 32: "I", 64: "Q"}


class BitslicePlan:
    """Packing constants for one (order, lanes, value-width) shape.

    Attributes:
        order: the paper's ``n``.
        n_terminals: ``N = 2^n`` rows.
        lanes: batch width ``B`` (fields per packed int).
        width: field width ``w`` in bits (8/16/32/64 — the smallest
            byte-aligned width holding ``value_bits``).
        base: the lane-base mask — one bit set at every field base
            (``sum(1 << (b*w) for b in range(B))``); ANDing a shifted
            row against it extracts a 0/1 verdict per lane.
        tag_mask: ``base * (N - 1)`` — the tag bits of every field.
        range_mask: high bits of every field beyond the tag range;
            a packed input row intersecting it carries an out-of-range
            tag.
        packer: the ``struct.Struct`` transposing one terminal's ``B``
            lane values to/from the packed int's byte image.
        nbytes: byte length of one packed row (``B * w / 8``).
    """

    __slots__ = ("order", "n_terminals", "lanes", "width", "base",
                 "tag_mask", "range_mask", "packer", "nbytes")

    def __init__(self, order: int, lanes: int, value_bits: int):
        for width, code in sorted(_FIELD_CODES.items()):
            if value_bits <= width:
                break
        else:
            raise InvalidParameterError(
                f"bitslice engine fields cap at 64 bits; order {order} "
                f"needs {value_bits}-bit values"
            )
        self.order = order
        self.n_terminals = 1 << order
        self.lanes = lanes
        self.width = width
        self.base = ((1 << (lanes * width)) - 1) // ((1 << width) - 1) \
            if lanes else 0
        self.tag_mask = self.base * (self.n_terminals - 1)
        self.range_mask = self.base * (
            ((1 << width) - 1) ^ (self.n_terminals - 1)
        )
        self.packer = struct.Struct(f"<{lanes}{code}")
        self.nbytes = lanes * (width // 8)


def bitslice_plan(order: int, lanes: int, value_bits: int
                  ) -> BitslicePlan:
    """The (cached) :class:`BitslicePlan` for one packing shape."""
    return bitslice_plan_cache().get_or_build(
        (order, lanes, value_bits),
        lambda: BitslicePlan(order, lanes, value_bits),
    )


def _as_row_lists(batch, kind: str) -> List[Sequence[int]]:
    """Materialize a lane-major batch and validate it is rectangular
    (``zip(*rows)`` would silently truncate a ragged batch)."""
    rows = batch if isinstance(batch, list) else list(batch)
    if rows:
        n = len(rows[0])
        for row in rows:
            if len(row) != n:
                raise SizeMismatchError(
                    f"expected a rectangular (B, N) batch of {kind}, "
                    f"got rows of length {n} and {len(row)}"
                )
    return rows


def _pack_columns(plan: BitslicePlan, columns) -> List[int]:
    """One packed int per terminal from terminal-major lane columns."""
    pack = plan.packer.pack
    from_bytes = int.from_bytes
    try:
        return [from_bytes(pack(*column), "little") for column in columns]
    except struct.error:
        raise InvalidParameterError(
            f"destination tags must lie in [0, {plan.n_terminals}) — "
            "out-of-range values cannot address any output"
        ) from None


def _pack_tags(plan: BitslicePlan, rows) -> List[int]:
    """Pack a validated rectangular ``(B, N)`` tag batch into ``N``
    lane-packed ints, rejecting tags outside ``[0, N)`` exactly like
    the vectorized engine's input validation."""
    packed = _pack_columns(plan, zip(*rows))
    range_mask = plan.range_mask
    for row in packed:
        if row & range_mask:
            raise InvalidParameterError(
                f"destination tags must lie in [0, {plan.n_terminals})"
                " — out-of-range values cannot address any output"
            )
    return packed


def _unpack_row(plan: BitslicePlan, row: int) -> tuple:
    """One packed int back to its per-lane value tuple."""
    return plan.packer.unpack(row.to_bytes(plan.nbytes, "little"))


def _stuck_by_stage(order: int, stuck_switches
                    ) -> Optional[Dict[int, Dict[int, int]]]:
    """Validate a ``{(stage, switch): state}`` fault map and regroup it
    per stage (same normalization as the scalar fast path)."""
    if not stuck_switches:
        return None
    n_stages = 2 * order - 1
    half = (1 << order) // 2
    validate_stuck_switches(stuck_switches, n_stages, half)
    by_stage: Dict[int, Dict[int, int]] = {}
    for (stage, index), state in stuck_switches.items():
        by_stage.setdefault(stage, {})[index] = 1 if state else 0
    return by_stage


def _route_packed(plan: BitslicePlan, rows: List[int], *,
                  omega_stages: int = 0,
                  stuck: Optional[Dict[int, Dict[int, int]]] = None,
                  conds_out: Optional[List[List[int]]] = None
                  ) -> List[int]:
    """Push ``N`` packed rows through every switch column of
    ``B(order)``, reading the self-routing control from the tag bits
    (the low ``order`` bits of each field).  Returns the final rows.

    When ``conds_out`` is a list, the per-stage packed decision ints
    (one 0/1-per-lane int per switch) are appended to it — the raw
    material for stage states, per-stage cross counts, and metrics.
    """
    splan = stage_plan(plan.order)
    base = plan.base
    w = plan.width
    ctrl_bits = splan.ctrl_bits
    inv_links = splan.inv_links
    last_stage = splan.n_stages - 1
    half = len(rows) // 2
    for stage in range(splan.n_stages):
        stuck_here = stuck.get(stage) if stuck else None
        forced = stage < omega_stages
        ctrl = ctrl_bits[stage]
        conds = [] if conds_out is not None else None
        if forced and stuck_here is None and conds is None:
            pass  # every switch straight, nothing to record
        else:
            for i in range(half):
                even = rows[2 * i]
                if stuck_here is not None and i in stuck_here:
                    # stuck control overrides tag rule AND omega forcing
                    cond = base if stuck_here[i] else 0
                elif forced:
                    cond = 0
                else:
                    cond = (even >> ctrl) & base
                if cond:
                    odd = rows[2 * i + 1]
                    diff = (even ^ odd) & ((cond << w) - cond)
                    rows[2 * i] = even ^ diff
                    rows[2 * i + 1] = odd ^ diff
                if conds is not None:
                    conds.append(cond)
        if conds_out is not None:
            conds_out.append(conds if conds is not None
                             else [0] * half)
        if stage < last_stage:
            link = inv_links[stage]
            rows = [rows[j] for j in link]
    return rows


def _success_list(plan: BitslicePlan, rows: List[int]) -> List[bool]:
    """Per-lane routing verdicts: lane ``b`` succeeded iff every
    terminal's delivered tag equals its row index.  Mismatched bits are
    OR-accumulated into one ``bad`` int and decoded once."""
    base = plan.base
    tag_mask = plan.tag_mask
    bad = 0
    for r, row in enumerate(rows):
        bad |= (row & tag_mask) ^ (base * r)
    return [field == 0 for field in _unpack_row(plan, bad)]


def _decode_states(plan: BitslicePlan,
                   conds_out: List[List[int]]) -> List[tuple]:
    """Packed per-stage decision ints -> per-instance nested state
    tuples, value-identical to ``fast_self_route_states``."""
    unpack = plan.packer.unpack
    nbytes = plan.nbytes
    per_stage_lanes = [
        tuple(zip(*(unpack(cond.to_bytes(nbytes, "little"))
                    for cond in conds)))
        for conds in conds_out
    ]
    return [
        tuple(per_stage_lanes[stage][b]
              for stage in range(len(per_stage_lanes)))
        for b in range(plan.lanes)
    ]


def stage_cross_totals(conds_out: List[List[int]]) -> List[int]:
    """Whole-batch crossed-switch count per stage (each decision int
    carries at most one bit per lane, so a popcount per switch sums
    them)."""
    return [sum(popcount(cond) for cond in conds)
            for conds in conds_out]


def _stage_cross_lanes(plan: BitslicePlan,
                       conds_out: List[List[int]]) -> List[list]:
    """Per-lane crossed-switch count per stage: summing a stage's
    decision ints accumulates lane counts in the fields (no carries —
    ``N/2`` fits any field), decoded with one unpack per stage."""
    per_stage = []
    for conds in conds_out:
        acc = 0
        for cond in conds:
            acc += cond
        per_stage.append(list(_unpack_row(plan, acc)))
    return per_stage


def bitslice_self_route(tags_batch, *, omega_mode: bool = False,
                        stage_data: bool = False,
                        stage_states: bool = False,
                        stuck_switches: Optional[dict] = None,
                        _stage_totals: Optional[list] = None
                        ) -> BatchRouteResult:
    """Self-route a ``(B, N)`` batch of tag vectors lane-parallel;
    bit-sliced equivalent of ``[fast_self_route(t) for t in batch]``
    with the exact no-NumPy result shapes (success as a list of bools,
    mappings as tuples, states as nested tuples).

    ``_stage_totals`` is the metrics tap used by
    :func:`repro.accel.batch_self_route`: when a list is passed, the
    whole-batch crossed-switch total of every stage is appended to it.
    """
    rows_in = _as_row_lists(tags_batch, "tag vectors")
    lanes = len(rows_in)
    if lanes == 0:
        return BatchRouteResult(
            success_mask=[], mappings=[],
            per_stage=([] if stage_data else None),
            stage_states=([] if stage_states else None),
        )
    n = len(rows_in[0])
    order = log2_exact(n)
    stuck = _stuck_by_stage(order, stuck_switches)
    plan = bitslice_plan(order, lanes, 2 * order)
    rows = _pack_tags(plan, rows_in)
    # Source row in the high bits of every field: the control rule only
    # reads tag bits < order, so one packed row routes both.
    base = plan.base
    for r in range(n):
        rows[r] |= base * (r << order)
    want_conds = stage_data or stage_states or _stage_totals is not None
    conds_out: Optional[List[List[int]]] = [] if want_conds else None
    rows = _route_packed(
        plan, rows,
        omega_stages=(order - 1 if omega_mode else 0),
        stuck=stuck, conds_out=conds_out,
    )
    if _stage_totals is not None:
        _stage_totals.extend(stage_cross_totals(conds_out))
    success = _success_list(plan, rows)
    # Field f's source bits land on its own tag range after the shift
    # (w >= 2*order keeps neighbours' bits above the mask).
    sources = [_unpack_row(plan, (row >> order) & plan.tag_mask)
               for row in rows]
    mappings = [tuple(column) for column in zip(*sources)]
    return BatchRouteResult(
        success_mask=success,
        mappings=mappings,
        per_stage=(_stage_cross_lanes(plan, conds_out)
                   if stage_data else None),
        stage_states=(_decode_states(plan, conds_out)
                      if stage_states else None),
    )


def bitslice_in_class_f(perms_batch,
                        _stage_totals: Optional[list] = None
                        ) -> List[bool]:
    """F(n)-membership verdicts for a ``(B, N)`` batch: membership ==
    self-routing success (Theorem 1), evaluated lane-parallel without
    source tracking — the cheapest bit-sliced kernel."""
    rows_in = _as_row_lists(perms_batch, "permutations")
    lanes = len(rows_in)
    if lanes == 0:
        return []
    n = len(rows_in[0])
    order = log2_exact(n)
    plan = bitslice_plan(order, lanes, order)
    rows = _route_packed(plan, _pack_tags(plan, rows_in))
    return _success_list(plan, rows)


def _pack_state_conds(plan: BitslicePlan, states_batch,
                      n_stages: int) -> List[List[int]]:
    """Per-stage packed decision ints from a ``(B, 2n-1, N/2)``
    external state batch (any truthy value counts as crossed, like the
    vectorized engine's ``!= 0``)."""
    conds_out = []
    for stage in range(n_stages):
        columns = zip(*(instance[stage] for instance in states_batch))
        conds_out.append(_pack_columns(
            plan, ([1 if v else 0 for v in col] for col in columns)
        ))
    return conds_out


def _validate_states_batch(states_batch, order: int) -> List:
    """Shape-check an external state batch (mirrors the vectorized
    engine's ``(B, 2n-1, N/2)`` validation)."""
    rows_in = states_batch if isinstance(states_batch, list) \
        else list(states_batch)
    n_stages = 2 * order - 1
    half = (1 << order) // 2
    for instance in rows_in:
        if len(instance) != n_stages or \
                any(len(column) != half for column in instance):
            raise SizeMismatchError(
                f"expected a (B, {n_stages}, {half}) batch of switch "
                f"states for order {order}"
            )
    return rows_in


def bitslice_route_with_states(states_batch, order: int, *,
                               stage_data: bool = False
                               ) -> BatchRouteResult:
    """Realized permutations of ``B(order)`` under a batch of external
    state assignments, lane-parallel: identity rows are pushed through
    every column with the packed decisions of each instance driving the
    XOR swaps.  Mirrors ``[fast_route_with_states(s, order) for s in
    batch]`` — mappings are input -> output, success all-True."""
    rows_in = _validate_states_batch(states_batch, order)
    lanes = len(rows_in)
    if lanes == 0:
        return BatchRouteResult(success_mask=[], mappings=[])
    plan = bitslice_plan(order, lanes, order)
    splan = stage_plan(order)
    conds_by_stage = _pack_state_conds(plan, rows_in, splan.n_stages)
    base = plan.base
    w = plan.width
    n = plan.n_terminals
    rows = [base * r for r in range(n)]  # identity in every lane
    inv_links = splan.inv_links
    last_stage = splan.n_stages - 1
    for stage in range(splan.n_stages):
        conds = conds_by_stage[stage]
        for i, cond in enumerate(conds):
            if cond:
                even = rows[2 * i]
                odd = rows[2 * i + 1]
                diff = (even ^ odd) & ((cond << w) - cond)
                rows[2 * i] = even ^ diff
                rows[2 * i + 1] = odd ^ diff
        if stage < last_stage:
            link = inv_links[stage]
            rows = [rows[j] for j in link]
    # rows[output] fields carry the source -> invert per lane to the
    # input -> output convention of fast_route_with_states.
    sources = [_unpack_row(plan, row) for row in rows]
    mappings = []
    for b in range(lanes):
        dest = [0] * n
        for output in range(n):
            dest[sources[output][b]] = output
        mappings.append(tuple(dest))
    per_stage = None
    if stage_data:
        per_stage = _stage_cross_lanes(plan, conds_by_stage)
    return BatchRouteResult(success_mask=[True] * lanes,
                            mappings=mappings, per_stage=per_stage)


def bitslice_setup_states(order: int, perms) -> List:
    """Waksman looping setup under ``engine="bitslice"``: delegates to
    the scalar algorithm per instance.  The side assignment is
    data-dependent cycle chasing — there is no lane-parallel
    formulation of it in this representation, so the honest bitslice
    story for universal setup is "scalar states, bit-sliced transit"
    (see :func:`bitslice_two_pass`)."""
    from ..core.waksman import setup_states

    rows = perms if isinstance(perms, list) else list(perms)
    return [setup_states(p) for p in rows]


def bitslice_two_pass(order: int, perms
                      ) -> Tuple[List[tuple], List[tuple]]:
    """Two-pass factorization ``(omega_1, omega_2)`` of a permutation
    batch with the first-half map pushed through the first ``n`` switch
    columns lane-parallel: the scalar looping setup assigns sides per
    instance, then one bit-sliced half-transit reads every instance's
    half-way map ``M`` at once, and the fixed-wire composition
    (``omega_1 = straight^-1[M]``, ``omega_2[omega_1] = D``) decodes
    per lane.  Factors are identical to
    ``[two_pass_decomposition(p) for p in perms]`` (lists of tuples,
    the fallback shapes)."""
    from .setup import setup_plan

    rows_in = _as_row_lists(perms, "permutations")
    lanes = len(rows_in)
    if lanes == 0:
        return [], []
    n = 1 << order
    if len(rows_in[0]) != n:
        raise SizeMismatchError(
            f"expected (B, {n}) permutations for order {order}, got "
            f"rows of length {len(rows_in[0])}"
        )
    states = bitslice_setup_states(order, rows_in)
    plan = bitslice_plan(order, lanes, order)
    splan = stage_plan(order)
    conds_by_stage = _pack_state_conds(plan, states, order)
    base = plan.base
    w = plan.width
    rows = [base * r for r in range(n)]
    inv_links = splan.inv_links
    for stage in range(order):
        for i, cond in enumerate(conds_by_stage[stage]):
            if cond:
                even = rows[2 * i]
                odd = rows[2 * i + 1]
                diff = (even ^ odd) & ((cond << w) - cond)
                rows[2 * i] = even ^ diff
                rows[2 * i + 1] = odd ^ diff
        if stage < order - 1:
            rows = [rows[j] for j in inv_links[stage]]
    # rows[row] fields = source at that row after the first n columns.
    sources = [_unpack_row(plan, row) for row in rows]
    straight_inverse = setup_plan(order).straight_inverse
    firsts, seconds = [], []
    for b in range(lanes):
        middle = [0] * n  # middle[source] = row
        for row in range(n):
            middle[sources[row][b]] = row
        first = [straight_inverse[middle[i]] for i in range(n)]
        second = [0] * n
        perm = rows_in[b]
        for i in range(n):
            second[first[i]] = perm[i]
        firsts.append(tuple(first))
        seconds.append(tuple(second))
    return firsts, seconds
