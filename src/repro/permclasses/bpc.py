"""Bit-permute-complement (BPC) permutations — Section II, Theorem 2.

A permutation in ``BPC(n)`` is specified by a vector
``A = (A_{n-1}, ..., A_0)`` whose magnitudes form a permutation of
``(0, ..., n-1)``: bit ``j`` of the source index ``i`` — complemented
when ``A_j`` is negative — becomes bit ``|A_j|`` of the destination
``D_i`` (equation (3)).  The paper distinguishes ``+0`` from ``-0``;
internally we avoid signed zeros entirely by carrying an explicit
complement flag per source bit.

``BPC(n)`` contains ``2^n * n!`` of the ``N!`` permutations, including
every entry of the paper's Table I (matrix transpose, bit reversal,
vector reversal, perfect shuffle, unshuffle, shuffled row-major, bit
shuffle).  Theorem 2 proves ``BPC(n) ⊆ F(n)``; the inductive step rests
on Lemma 1, implemented here as :meth:`BPCSpec.lemma1_decompose`.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from ..core import bits as _bits
from ..core.permutation import Permutation
from ..errors import SpecificationError

__all__ = [
    "BPCSpec",
    "matrix_transpose",
    "bit_reversal",
    "vector_reversal",
    "perfect_shuffle",
    "unshuffle",
    "shuffled_row_major",
    "bit_shuffle",
    "is_bpc",
    "TABLE_I",
    "table_i_specs",
]

SignedEntry = Union[int, str, Tuple[int, bool]]


def _parse_entry(entry: SignedEntry) -> Tuple[int, bool]:
    """Normalize one A-vector entry to ``(position, complemented)``.

    Accepted forms:
    - ``(position, complemented)`` tuples — the canonical form;
    - plain ints — sign gives the complement (note ``-0`` cannot be
      expressed this way; use a string);
    - strings like ``"3"``, ``"+2"``, ``"-0"`` — the paper's notation,
      including the signed zero.
    """
    if isinstance(entry, tuple):
        position, complemented = entry
        if not isinstance(position, int) or position < 0:
            raise SpecificationError(
                f"entry position must be a non-negative int, got {entry!r}"
            )
        return position, bool(complemented)
    if isinstance(entry, bool):
        raise SpecificationError(f"bool is not a valid A-vector entry: {entry!r}")
    if isinstance(entry, int):
        return abs(entry), entry < 0
    if isinstance(entry, str):
        text = entry.strip().replace("−", "-")  # unicode minus
        if not text:
            raise SpecificationError("empty A-vector entry")
        complemented = text[0] == "-"
        magnitude = text[1:] if text[0] in "+-" else text
        if not magnitude.isdigit():
            raise SpecificationError(f"cannot parse A-vector entry {entry!r}")
        return int(magnitude), complemented
    raise SpecificationError(f"cannot parse A-vector entry {entry!r}")


@dataclass(frozen=True)
class BPCSpec:
    """A BPC permutation in ``(position, complement)`` form.

    Attributes:
        positions: ``positions[j]`` is ``|A_j|`` — the destination bit
            receiving source bit ``j``.
        complemented: ``complemented[j]`` is True when source bit ``j``
            is complemented on the way (the paper's ``A_j < 0``,
            including ``-0``).
    """

    positions: Tuple[int, ...]
    complemented: Tuple[bool, ...]

    def __post_init__(self) -> None:
        n = len(self.positions)
        if len(self.complemented) != n:
            raise SpecificationError(
                "positions and complemented must have equal length"
            )
        if sorted(self.positions) != list(range(n)):
            raise SpecificationError(
                f"positions {self.positions} are not a permutation of "
                f"0..{n - 1}"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_signed(cls, entries: Sequence[SignedEntry]) -> "BPCSpec":
        """Build from the paper's ``A = (A_{n-1}, ..., A_0)`` written in
        *paper order* (entry for the most significant bit first).

        >>> spec = BPCSpec.from_signed(["0", "-1", "-2"])   # paper example
        >>> spec.to_permutation().as_tuple()
        (6, 2, 4, 0, 7, 3, 5, 1)
        """
        parsed = [_parse_entry(e) for e in entries]
        parsed.reverse()  # store indexed by source bit j = 0..n-1
        return cls(
            positions=tuple(p for p, _ in parsed),
            complemented=tuple(c for _, c in parsed),
        )

    @classmethod
    def identity(cls, order: int) -> "BPCSpec":
        """The identity permutation as a BPC spec."""
        return cls(tuple(range(order)), (False,) * order)

    @classmethod
    def random(cls, order: int,
               rng: "_random.Random | None" = None) -> "BPCSpec":
        """A uniformly random BPC(order) spec (|BPC| = 2^n n!)."""
        rng = rng if rng is not None else _random
        positions = list(range(order))
        rng.shuffle(positions)
        complemented = tuple(bool(rng.getrandbits(1)) for _ in range(order))
        return cls(tuple(positions), complemented)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    @property
    def order(self) -> int:
        """Number of index bits ``n``."""
        return len(self.positions)

    @property
    def size(self) -> int:
        """``N = 2^n``."""
        return 1 << self.order

    def signed_tokens(self) -> Tuple[str, ...]:
        """The A-vector in the paper's notation, most significant entry
        first, with explicit ``-0`` when needed.

        >>> bit_reversal(3).signed_tokens()
        ('0', '1', '2')
        """
        tokens = []
        for j in range(self.order - 1, -1, -1):
            sign = "-" if self.complemented[j] else ""
            tokens.append(f"{sign}{self.positions[j]}")
        return tuple(tokens)

    def __str__(self) -> str:
        return "A = (" + ", ".join(self.signed_tokens()) + ")"

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------

    def destination(self, i: int) -> int:
        """``D_i`` per equation (3): bit ``j`` of ``i`` (complemented if
        flagged) becomes bit ``positions[j]`` of the result."""
        dest = 0
        for j in range(self.order):
            source_bit = _bits.bit(i, j)
            if self.complemented[j]:
                source_bit ^= 1
            dest |= source_bit << self.positions[j]
        return dest

    def to_permutation(self) -> Permutation:
        """Expand to the full destination-tag vector
        ``(D_0, ..., D_{N-1})``."""
        return Permutation(self.destination(i) for i in range(self.size))

    # ------------------------------------------------------------------
    # Algebra (BPC is a group: closed under composition and inverse)
    # ------------------------------------------------------------------

    def inverse(self) -> "BPCSpec":
        """The BPC spec of the inverse permutation."""
        positions = [0] * self.order
        complemented = [False] * self.order
        for j in range(self.order):
            positions[self.positions[j]] = j
            complemented[self.positions[j]] = self.complemented[j]
        return BPCSpec(tuple(positions), tuple(complemented))

    def then(self, other: "BPCSpec") -> "BPCSpec":
        """Sequential composition *self first, then other* — matches
        :meth:`repro.core.permutation.Permutation.then`."""
        if other.order != self.order:
            raise SpecificationError(
                f"cannot compose BPC orders {self.order} and {other.order}"
            )
        positions = [0] * self.order
        complemented = [False] * self.order
        for j in range(self.order):
            mid = self.positions[j]
            positions[j] = other.positions[mid]
            complemented[j] = self.complemented[j] ^ other.complemented[mid]
        return BPCSpec(tuple(positions), tuple(complemented))

    # ------------------------------------------------------------------
    # Lemma 1 and LMAG
    # ------------------------------------------------------------------

    def lmag(self, j: int) -> Tuple[int, bool]:
        """``LMAG(A_j) = SIGN(A_j) * (|A_j| - 1)`` (equation (4)) in
        ``(position, complement)`` form; requires ``positions[j] >= 1``."""
        if self.positions[j] < 1:
            raise SpecificationError(
                f"LMAG undefined for entry at source bit {j}: position 0"
            )
        return self.positions[j] - 1, self.complemented[j]

    def source_of_bit0(self) -> int:
        """The paper's ``k``: the source bit with ``|A_k| = 0``."""
        return self.positions.index(0)

    def lemma1_decompose(self) -> Tuple["BPCSpec", "BPCSpec"]:
        """Lemma 1: when ``|A_0| != 0`` (bit 0 does not map to
        position 0), the two half-size permutations ``F1`` (vector B)
        and ``F2`` (vector C) in ``BPC(n-1)``.

        ``B_j = LMAG(A_{j+1})`` for ``j != k-1`` and
        ``B_{k-1} = LMAG(A_0)``; ``C`` equals ``B`` except
        ``C_{k-1}`` carries the opposite complement.
        """
        k = self.source_of_bit0()
        if k == 0:
            raise SpecificationError(
                "Lemma 1 decomposition requires |A_0| != 0; "
                "use reduce_trailing() for the |A_0| = 0 case"
            )
        n = self.order
        positions: List[int] = [0] * (n - 1)
        complemented: List[bool] = [False] * (n - 1)
        for j in range(n - 1):
            if j == k - 1:
                pos, comp = self.lmag(0)
            else:
                pos, comp = self.lmag(j + 1)
            positions[j] = pos
            complemented[j] = comp
        f1 = BPCSpec(tuple(positions), tuple(complemented))
        c_complemented = list(complemented)
        c_complemented[k - 1] = not c_complemented[k - 1]
        f2 = BPCSpec(tuple(positions), tuple(c_complemented))
        return f1, f2

    def reduce_trailing(self) -> "BPCSpec":
        """Theorem 2, case 1 (``|A_0| = 0``): both sub-networks perform
        the same BPC(n-1) permutation ``A'`` with
        ``A'_j = LMAG(A_{j+1})``."""
        if self.positions[0] != 0:
            raise SpecificationError(
                "reduce_trailing requires |A_0| = 0; "
                "use lemma1_decompose() for the |A_0| != 0 case"
            )
        positions = []
        complemented = []
        for j in range(1, self.order):
            pos, comp = self.lmag(j)
            positions.append(pos)
            complemented.append(comp)
        return BPCSpec(tuple(positions), tuple(complemented))

    # ------------------------------------------------------------------
    # Section III: CCC skip rule
    # ------------------------------------------------------------------

    def fixed_dimensions(self) -> Tuple[int, ...]:
        """Bits ``j`` with ``A_j = +j`` (unmoved, uncomplemented).

        The Section III CCC algorithm may skip the loop iterations for
        these dimensions: ``(D(i))_j == (i)_j`` for all ``i``, so no
        routing across cube dimension ``j`` is needed.
        """
        return tuple(
            j for j in range(self.order)
            if self.positions[j] == j and not self.complemented[j]
        )


# ----------------------------------------------------------------------
# Table I — the paper's named BPC permutations
# ----------------------------------------------------------------------

def matrix_transpose(order: int) -> BPCSpec:
    """Table I *matrix transpose*: view ``i`` as ``(row, column)`` of a
    ``2^q x 2^q`` array (``q = order/2``) stored row-major; swap them.
    As a bit map: bit ``j -> (j + q) mod order``."""
    if order % 2:
        raise SpecificationError(
            f"matrix transpose needs an even order, got {order}"
        )
    q = order // 2
    return BPCSpec(
        positions=tuple((j + q) % order for j in range(order)),
        complemented=(False,) * order,
    )


def bit_reversal(order: int) -> BPCSpec:
    """Table I *bit reversal* (the Fig. 4 permutation):
    bit ``j -> order-1-j``."""
    return BPCSpec(
        positions=tuple(order - 1 - j for j in range(order)),
        complemented=(False,) * order,
    )


def vector_reversal(order: int) -> BPCSpec:
    """Table I *vector reversal*: ``D_i = N - 1 - i`` — every bit stays
    put but is complemented."""
    return BPCSpec(
        positions=tuple(range(order)),
        complemented=(True,) * order,
    )


def perfect_shuffle(order: int) -> BPCSpec:
    """Table I *perfect shuffle*: left-rotate the index bits
    (``D_i = rotate_left(i)``), i.e. bit ``j -> (j + 1) mod order``."""
    return BPCSpec(
        positions=tuple((j + 1) % order for j in range(order)),
        complemented=(False,) * order,
    )


def unshuffle(order: int) -> BPCSpec:
    """Table I *unshuffle*: right-rotate the index bits — the inverse
    of the perfect shuffle."""
    return BPCSpec(
        positions=tuple((j - 1) % order for j in range(order)),
        complemented=(False,) * order,
    )


def shuffled_row_major(order: int) -> BPCSpec:
    """Table I *shuffled row major*: map the row-major index
    ``(r_{q-1}..r_0 c_{q-1}..c_0)`` to the bit-interleaved index
    ``(r_{q-1} c_{q-1} ... r_0 c_0)``.

    Source column bit ``j`` (``j < q``) goes to position ``2j``; source
    row bit ``q + j`` goes to position ``2j + 1``.
    """
    if order % 2:
        raise SpecificationError(
            f"shuffled row major needs an even order, got {order}"
        )
    q = order // 2
    positions = [0] * order
    for j in range(q):
        positions[j] = 2 * j
        positions[q + j] = 2 * j + 1
    return BPCSpec(tuple(positions), (False,) * order)


def bit_shuffle(order: int) -> BPCSpec:
    """Table I *bit shuffle*: the inverse of shuffled row major —
    de-interleave the index bits (even-position bits become the low
    half, odd-position bits the high half)."""
    return shuffled_row_major(order).inverse()


#: Table I as (name, constructor) pairs, in the paper's row order.
TABLE_I = (
    ("matrix transpose", matrix_transpose),
    ("bit reversal", bit_reversal),
    ("vector reversal", vector_reversal),
    ("perfect shuffle", perfect_shuffle),
    ("unshuffle", unshuffle),
    ("shuffled row major", shuffled_row_major),
    ("bit shuffle", bit_shuffle),
)


def table_i_specs(order: int) -> List[Tuple[str, BPCSpec]]:
    """Instantiate every Table I permutation at the given order
    (rows needing an even order are skipped for odd orders)."""
    out = []
    for name, make in TABLE_I:
        try:
            out.append((name, make(order)))
        except SpecificationError:
            continue
    return out


# ----------------------------------------------------------------------
# Recognition
# ----------------------------------------------------------------------

def is_bpc(perm: Union[Permutation, Sequence[int]]
           ) -> Optional[BPCSpec]:
    """Recover the A-vector of ``perm`` if it is a BPC permutation,
    else return ``None``.

    For each source bit ``j`` the destination bit that tracks it (or
    its complement) across **all** indices is located; the permutation
    is BPC iff every source bit has exactly one tracker and the
    trackers form a bijection.

    >>> is_bpc([0, 1, 2, 3]) == BPCSpec.identity(2)
    True
    >>> is_bpc([1, 2, 3, 0]) is None      # cyclic shift is not BPC
    True
    """
    perm = perm if isinstance(perm, Permutation) else Permutation(perm)
    order = perm.order
    n_elements = perm.size
    positions: List[int] = [-1] * order
    complemented: List[bool] = [False] * order
    used = set()
    for j in range(order):
        found = False
        for p in range(order):
            if p in used:
                continue
            direct = all(
                _bits.bit(perm[i], p) == _bits.bit(i, j)
                for i in range(n_elements)
            )
            if direct:
                positions[j], complemented[j] = p, False
                used.add(p)
                found = True
                break
            inverted = all(
                _bits.bit(perm[i], p) == 1 - _bits.bit(i, j)
                for i in range(n_elements)
            )
            if inverted:
                positions[j], complemented[j] = p, True
                used.add(p)
                found = True
                break
        if not found:
            return None
    return BPCSpec(tuple(positions), tuple(complemented))
