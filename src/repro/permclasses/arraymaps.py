"""Array re-alignment permutations (Section II, after Theorem 4).

Interpreting the ``N = 2^{2q}`` inputs of ``B(2q)`` as a
``2^q x 2^q`` array ``A`` stored row-major, Theorem 4 (and its
generalizations) show that the data-alignment permutations of Cannon's
matrix-multiplication algorithm and of Dekel, Nassimi & Sahni are in
``F``:

- ``A(i, j) -> A(i, (i + j) mod m)``   (skew rows by row index)
- ``A(i, j) -> A((i + j) mod m, j)``   (skew columns by column index)
- ``A(i, j) -> A(i, phi(j))``          (same column permutation per row)
- ``A(i, j) -> A(i XOR j, j)`` / ``A(i, j) -> A(i, i XOR j)``
- ``A(i, j) -> A(i^R, j)``             (bit-reverse the row index)

plus the three-dimensional example following Theorem 6.  All
constructors return full :class:`~repro.core.permutation.Permutation`
objects on ``2^{2q}`` (or ``2^{r+s+t}``) elements.
"""

from __future__ import annotations

from typing import Callable

from ..core import bits as _bits
from ..core.permutation import Permutation
from ..errors import SpecificationError

__all__ = [
    "row_major_index",
    "skew_rows",
    "skew_columns",
    "per_row_column_map",
    "per_column_row_map",
    "xor_rows",
    "xor_columns",
    "bit_reverse_rows",
    "three_d_example",
]


def row_major_index(row: int, col: int, q: int) -> int:
    """Index of ``A(row, col)`` in the row-major layout of a
    ``2^q x 2^q`` array."""
    return (row << q) | col


def _array_permutation(q: int, dest_cell: Callable[[int, int], tuple]
                       ) -> Permutation:
    side = 1 << q
    dest = [0] * (side * side)
    for row in range(side):
        for col in range(side):
            new_row, new_col = dest_cell(row, col)
            dest[row_major_index(row, col, q)] = (
                row_major_index(new_row % side, new_col % side, q)
            )
    return Permutation(dest)


def skew_rows(q: int) -> Permutation:
    """``A(i, j) -> A(i, (i + j) mod m)`` — Cannon's initial row
    alignment; Theorem 4 with J = the row bits."""
    return _array_permutation(q, lambda i, j: (i, i + j))


def skew_columns(q: int) -> Permutation:
    """``A(i, j) -> A((i + j) mod m, j)`` — Cannon's initial column
    alignment; Theorem 4 with J = the column bits."""
    return _array_permutation(q, lambda i, j: (i + j, j))


def per_row_column_map(q: int, phi: Permutation) -> Permutation:
    """``A(i, j) -> A(i, phi(j))`` for a single ``phi`` on ``2^q``
    columns applied in every row; in ``F(2q)`` whenever
    ``phi ∈ F(q)``."""
    if phi.size != 1 << q:
        raise SpecificationError(
            f"phi has size {phi.size}, expected {1 << q}"
        )
    return _array_permutation(q, lambda i, j: (i, phi[j]))


def per_column_row_map(q: int, phi: Permutation) -> Permutation:
    """``A(i, j) -> A(phi(i), j)`` — the column-wise analogue."""
    if phi.size != 1 << q:
        raise SpecificationError(
            f"phi has size {phi.size}, expected {1 << q}"
        )
    return _array_permutation(q, lambda i, j: (phi[i], j))


def xor_rows(q: int) -> Permutation:
    """``A(i, j) -> A(i XOR j, j)`` — the row re-alignment used by
    Dekel, Nassimi & Sahni's matrix algorithms."""
    return _array_permutation(q, lambda i, j: (i ^ j, j))


def xor_columns(q: int) -> Permutation:
    """``A(i, j) -> A(i, i XOR j)`` — the column-wise analogue."""
    return _array_permutation(q, lambda i, j: (i, i ^ j))


def bit_reverse_rows(q: int) -> Permutation:
    """``A(i, j) -> A(i^R, j)``: bit-reverse the row index (item (7))."""
    return _array_permutation(
        q, lambda i, j: (_bits.reverse_bits(i, q), j)
    )


def three_d_example(r: int, s: int, t: int, p: int,
                    shift: int = 0) -> Permutation:
    """The three-dimensional mapping following Theorem 6.

    On the row-major ``2^r x 2^s x 2^t`` array, map
    ``A(i, j, k) -> A(i', j', k')`` with

    - ``i' = (i + j + k) mod 2^r``   (cyclic shift parameterized by the
      outer fields),
    - ``j' = (p * j + shift) mod 2^s``  (p-ordering + cyclic shift,
      ``p`` odd),
    - ``k' = j XOR k``               (conditional exchanges
      parameterized by ``j``).

    Theorem 6 (with the J-chain ``J_1`` = j-bits, ``J_2`` = k-bits,
    ``J_3`` = i-bits) places this in ``F(r + s + t)``.
    """
    if p % 2 == 0:
        raise SpecificationError(f"p must be odd, got {p}")
    order = r + s + t
    dest = [0] * (1 << order)
    for i in range(1 << r):
        for j in range(1 << s):
            for k in range(1 << t):
                src = (i << (s + t)) | (j << t) | k
                i2 = (i + j + k) % (1 << r)
                j2 = (p * j + shift) % (1 << s)
                k2 = (j ^ k) & ((1 << t) - 1)
                dest[src] = (i2 << (s + t)) | (j2 << t) | k2
    return Permutation(dest)
