"""Lenfant's five families of "frequently used bijections" (FUB).

Lenfant [5] gave five per-family Benes setup algorithms; this paper
subsumes all five with the single self-routing rule because (Section II)

- three of the FUB families — called α(n), β(n), γ(n) here — are
  sub-families of BPC(n), and
- the remaining two are λ(n) = "p-ordering and cyclic shift" and
  δ(n) = "cyclic shifts within segments", both members of
  InverseOmega(n); the conditional-exchange permutations are Lenfant's
  η^{(k)}.

The paper uses α/β/γ only through the containment "three of his FUB
families are in our BPC(n)"; Lenfant's own parameterizations are not
reproduced in this paper's text, so — as recorded in DESIGN.md — we
expose documented BPC sub-families under those names whose union
exercises the same containment:

- ``alpha(n, k)``: exchange of the top ``k``-bit field with the bottom
  ``k``-bit field (generalized matrix transpose; ``k = n/2`` is
  Table I's matrix transpose);
- ``beta(n, k)``: reversal of the low ``k`` index bits (``k = n`` is
  Table I's bit reversal);
- ``gamma(n, k)``: complement of the low ``k`` index bits (``k = n`` is
  Table I's vector reversal).

λ, δ and η re-export the full-permutation constructors from
:mod:`repro.permclasses.families`.
"""

from __future__ import annotations

from ..errors import SpecificationError
from .bpc import BPCSpec
from .families import (
    conditional_exchange as eta,
    p_ordering_with_shift as lam,
    segment_cyclic_shift as delta,
)

__all__ = ["alpha", "beta", "gamma", "lam", "delta", "eta"]


def alpha(order: int, field: int) -> BPCSpec:
    """Swap the top ``field`` bits with the bottom ``field`` bits
    (requires ``2*field <= order``); middle bits stay put.

    In array terms this exchanges the roles of a ``2^field``-row block
    index and a ``2^field``-column index — the access pattern of a
    blocked transpose.
    """
    if not 1 <= 2 * field <= order:
        raise SpecificationError(
            f"need 1 <= 2*field <= order, got field={field}, order={order}"
        )
    positions = list(range(order))
    for j in range(field):
        high = order - field + j
        positions[j], positions[high] = high, j
    return BPCSpec(tuple(positions), (False,) * order)


def beta(order: int, width: int) -> BPCSpec:
    """Reverse the low ``width`` index bits; ``width = order`` is the
    full bit reversal used by FFT data reordering."""
    if not 1 <= width <= order:
        raise SpecificationError(
            f"need 1 <= width <= order, got width={width}"
        )
    positions = list(range(order))
    for j in range(width):
        positions[j] = width - 1 - j
    return BPCSpec(tuple(positions), (False,) * order)


def gamma(order: int, width: int) -> BPCSpec:
    """Complement the low ``width`` index bits — a vector reversal
    within each aligned segment of ``2^width`` elements."""
    if not 1 <= width <= order:
        raise SpecificationError(
            f"need 1 <= width <= order, got width={width}"
        )
    complemented = tuple(j < width for j in range(order))
    return BPCSpec(tuple(range(order)), complemented)
