"""J-partitions and the composite closure theorems (Theorems 4-6).

A subset ``J`` of the bit positions ``{n-1, ..., 0}`` partitions the
indices ``0 .. N-1`` into ``2^{|J|}`` *blocks*: two indices share a
block iff they agree on every bit in ``J``.  Within a block, elements
are ordered (and locally re-indexed ``0 .. 2^r - 1``) by their *free*
bits — the positions outside ``J`` — read as a packed integer.

Theorem 4: permuting each block internally by a member of ``F(r)``
yields a member of ``F(n)``.
Theorem 5: additionally moving block ``i``'s contents into block
``B_i`` (relabelled by an ``F(n-r)`` block permutation) stays in
``F(n)``.
Theorem 6: the hierarchical version over a chain of disjoint
``J_1 x J_2 x ... x J_k`` partitions.

The constructors here build those composite permutations; the test
suite verifies each construction lands in ``F`` via both the Theorem 1
recursion and the structural network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Mapping, Sequence, Tuple, Union

from ..core import bits as _bits
from ..core.permutation import Permutation
from ..errors import SpecificationError

__all__ = [
    "JPartition",
    "within_blocks",
    "blocks_and_within",
    "hierarchical",
]

PermSource = Union[
    Permutation,
    Sequence[Permutation],
    Mapping[int, Permutation],
    Callable[[int], Permutation],
]


def _scatter(value: int, positions: Sequence[int]) -> int:
    """Place bit ``t`` of ``value`` at ``positions[t]`` (positions in
    increasing order)."""
    out = 0
    for t, pos in enumerate(positions):
        out |= _bits.bit(value, t) << pos
    return out


def _gather(i: int, positions: Sequence[int]) -> int:
    """Pack the bits of ``i`` found at ``positions`` (increasing order)
    into a contiguous integer."""
    out = 0
    for t, pos in enumerate(positions):
        out |= _bits.bit(i, pos) << t
    return out


@dataclass(frozen=True)
class JPartition:
    """The J-partition of ``0 .. 2^order - 1`` (Section II).

    >>> jp = JPartition(3, (1,))
    >>> jp.blocks()
    [(0, 1, 4, 5), (2, 3, 6, 7)]
    """

    order: int
    j_bits: Tuple[int, ...]

    def __post_init__(self) -> None:
        bits_sorted = tuple(sorted(set(self.j_bits)))
        if bits_sorted != tuple(sorted(self.j_bits)) or \
                len(bits_sorted) != len(self.j_bits):
            raise SpecificationError(
                f"J must be a set of distinct bit positions, got {self.j_bits}"
            )
        object.__setattr__(self, "j_bits", bits_sorted)
        if any(not 0 <= b < self.order for b in bits_sorted):
            raise SpecificationError(
                f"J positions {bits_sorted} out of range for order "
                f"{self.order}"
            )

    @property
    def free_bits(self) -> Tuple[int, ...]:
        """Bit positions outside J, increasing — they index elements
        within a block."""
        member = set(self.j_bits)
        return tuple(b for b in range(self.order) if b not in member)

    @property
    def n_blocks(self) -> int:
        """``2^{|J|}`` blocks."""
        return 1 << len(self.j_bits)

    @property
    def block_size(self) -> int:
        """``2^r`` elements per block, ``r = order - |J|``."""
        return 1 << len(self.free_bits)

    @property
    def block_order(self) -> int:
        """``r = order - |J|`` — blocks hold ``2^r`` elements."""
        return len(self.free_bits)

    def block_of(self, i: int) -> int:
        """Block index of element ``i`` (its packed J-bits)."""
        return _gather(i, self.j_bits)

    def local_index(self, i: int) -> int:
        """Position of element ``i`` within its block (packed free
        bits) — the "relative order" of Theorems 4-6."""
        return _gather(i, self.free_bits)

    def element(self, block: int, local: int) -> int:
        """The element at ``local`` position of ``block``."""
        return _scatter(block, self.j_bits) | _scatter(local, self.free_bits)

    def blocks(self) -> List[Tuple[int, ...]]:
        """All blocks, each as its elements in relative order."""
        return [
            tuple(self.element(b, x) for x in range(self.block_size))
            for b in range(self.n_blocks)
        ]


def _per_block(source: PermSource, block: int,
               expected_size: int) -> Permutation:
    if isinstance(source, Permutation):
        perm = source
    elif callable(source):
        perm = source(block)
    elif isinstance(source, Mapping):
        perm = source[block]
    else:
        perm = source[block]
    if perm.size != expected_size:
        raise SpecificationError(
            f"block permutation for block {block} has size {perm.size}, "
            f"expected {expected_size}"
        )
    return perm


def within_blocks(partition: JPartition,
                  block_perms: PermSource) -> Permutation:
    """Theorem 4 constructor: permute each block internally.

    ``block_perms`` may be a single :class:`Permutation` (applied to
    every block), a sequence/mapping indexed by block, or a callable
    ``block -> Permutation``.  If every supplied permutation is in
    ``F(r)`` the result is in ``F(order)``.
    """
    dest = [0] * (1 << partition.order)
    for block in range(partition.n_blocks):
        perm = _per_block(block_perms, block, partition.block_size)
        for local in range(partition.block_size):
            src = partition.element(block, local)
            dest[src] = partition.element(block, perm[local])
    return Permutation(dest)


def blocks_and_within(partition: JPartition,
                      outer: Permutation,
                      block_perms: PermSource) -> Permutation:
    """Theorem 5 constructor: block ``i``'s contents move to block
    ``outer[i]``, internally rearranged by ``G_i = block_perms(i)``.

    The result is in ``F(order)`` whenever every ``G_i`` is in ``F(r)``
    and ``outer`` is in ``F(order - r)``.
    """
    if outer.size != partition.n_blocks:
        raise SpecificationError(
            f"outer permutation of size {outer.size} for "
            f"{partition.n_blocks} blocks"
        )
    dest = [0] * (1 << partition.order)
    for block in range(partition.n_blocks):
        perm = _per_block(block_perms, block, partition.block_size)
        for local in range(partition.block_size):
            src = partition.element(block, local)
            dest[src] = partition.element(outer[block], perm[local])
    return Permutation(dest)


LevelPhi = Union[
    Sequence[Permutation],
    Callable[[int, Tuple[int, ...]], Permutation],
]


def hierarchical(order: int,
                 level_bits: Sequence[Sequence[int]],
                 phi: LevelPhi) -> Permutation:
    """Theorem 6 constructor over a ``J_1 x J_2 x ... x J_k``
    hierarchical partition.

    Args:
        order: ``n``; the ``level_bits`` must be disjoint and cover
            ``{0, ..., n-1}``.
        level_bits: ``level_bits[t]`` is ``J_{t+1}`` — the bit
            positions consumed at tree level ``t+1``.
        phi: either one :class:`Permutation` per level (size
            ``2^{|J_t|}``), or a callable
            ``(level, ancestor_values) -> Permutation`` where
            ``ancestor_values`` are the packed J-field values of the
            enclosing blocks at levels ``1 .. level`` (pre-mapping);
            the per-ancestor form is the Theorem 5 generality.

    Element ``e`` with field values ``(v_1, ..., v_k)`` maps to the
    element with field values ``(w_1, ..., w_k)`` where
    ``w_t = phi_t(v_t)`` in the per-level form.
    """
    covered: set = set()
    for level in level_bits:
        for b in level:
            if b in covered:
                raise SpecificationError(f"bit {b} appears in two levels")
            covered.add(b)
    if covered != set(range(order)):
        raise SpecificationError(
            f"levels cover bits {sorted(covered)}, need 0..{order - 1}"
        )

    def phi_for(level: int, ancestors: Tuple[int, ...]) -> Permutation:
        if callable(phi):
            return phi(level, ancestors)
        return phi[level]

    fields = [tuple(sorted(bits)) for bits in level_bits]
    dest = [0] * (1 << order)
    for i in range(1 << order):
        values = tuple(_gather(i, f) for f in fields)
        out = 0
        for t, f in enumerate(fields):
            mapper = phi_for(t, values[:t])
            if mapper.size != 1 << len(f):
                raise SpecificationError(
                    f"level {t} permutation has size {mapper.size}, "
                    f"expected {1 << len(f)}"
                )
            out |= _scatter(mapper[values[t]], f)
        dest[i] = out
    return Permutation(dest)
