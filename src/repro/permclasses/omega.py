"""Omega and inverse-omega permutation classes (Lawrie) — Section II,
Theorem 3.

``Omega(n)`` is exactly the set of permutations realizable by Lawrie's
omega network (``n`` stages of perfect shuffle + exchange columns);
``InverseOmega(n)`` those realizable by running the omega network
backwards.  The decision procedure is the classical *window* test: the
path of input ``i`` to destination ``D_i`` occupies, after stage ``b``,
the wire labelled by the low ``n-b`` bits of ``i`` followed by the high
``b`` bits of ``D_i``; the permutation passes iff these wire labels are
pairwise distinct at every stage.

The paper proves ``InverseOmega(n) ⊆ F(n)`` (Theorem 3) and notes that
``Omega(n) ⊄ F(n)`` (Fig. 5's ``D = (1,3,2,0)`` is in ``Omega(2)`` but
not ``F(2)``) — yet every omega permutation becomes self-routable when
the first ``n-1`` Benes stages are forced straight (the *omega bit*).
"""

from __future__ import annotations

from typing import Sequence, Union

from ..core.permutation import Permutation
from ..errors import InvalidParameterError

__all__ = [
    "is_omega",
    "is_inverse_omega",
    "omega_window",
    "omega_count",
]

PermutationLike = Union[Permutation, Sequence[int]]


def _as_perm(perm: PermutationLike) -> Permutation:
    return perm if isinstance(perm, Permutation) else Permutation(perm)


def omega_window(i: int, destination: int, stage: int, order: int) -> int:
    """The wire label occupied after ``stage`` switch columns of the
    omega network by the signal travelling from input ``i`` to
    ``destination``: the low ``order - stage`` bits of ``i`` followed by
    the high ``stage`` bits of ``destination``.
    """
    if not 0 <= stage <= order:
        raise InvalidParameterError(f"stage must be in 0..{order}, got {stage}")
    low = i & ((1 << (order - stage)) - 1)
    high = destination >> (order - stage)
    return (low << stage) | high


def is_omega(perm: PermutationLike) -> bool:
    """True iff ``perm`` is realizable by the omega network.

    Checks that at every intermediate stage the windows
    :func:`omega_window` of all ``N`` signals are pairwise distinct —
    two equal windows mean two signals need the same wire.

    >>> is_omega([1, 3, 2, 0])     # Fig. 5: in Omega(2) though not F(2)
    True
    >>> is_omega([0, 2, 1, 3])
    False
    """
    perm = _as_perm(perm)
    order = perm.order
    for stage in range(1, order):
        windows = {
            omega_window(i, perm[i], stage, order)
            for i in range(perm.size)
        }
        if len(windows) != perm.size:
            return False
    return True


def is_inverse_omega(perm: PermutationLike) -> bool:
    """True iff ``perm`` is realizable by the omega network run
    backwards, i.e. iff its inverse is an omega permutation.

    >>> is_inverse_omega([1, 2, 3, 0])     # cyclic shift
    True
    """
    return is_omega(_as_perm(perm).inverse())


def omega_count(order: int) -> int:
    """``|Omega(n)| = 2^{n * N/2}``: every assignment of the
    ``(N/2) log N`` omega switches realizes a distinct permutation (the
    switch states are recoverable from the input-output paths), so the
    class size equals the number of settings.

    ``|InverseOmega(n)|`` is the same by symmetry.
    """
    n_inputs = 1 << order
    return 1 << (order * (n_inputs // 2))
