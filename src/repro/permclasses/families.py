"""Named permutation families from Section II.

These are the "interesting permutations contained in InverseOmega(n)"
the paper lists (items 1-6 after Theorem 2), several of which coincide
with Lenfant's frequently-used-bijection families:

1. cyclic shift                 ``D_i = (i + k) mod N``
2. p-ordering                   ``D_i = (p * i) mod N``, p odd
3. inverse p-ordering           the q-ordering with ``p*q ≡ 1 (mod N)``
4. p-ordering and cyclic shift  ``D_i = (p*i + k) mod N``  (Lenfant λ)
5. cyclic shift within segments (Lenfant δ)
6. conditional exchange         (Lenfant η)

All are proved members of ``InverseOmega(n)`` — hence of ``F(n)`` by
Theorem 3 — and the test-suite checks each family against both the
class predicates and the self-routing network itself.
"""

from __future__ import annotations

from ..core import bits as _bits
from ..core.permutation import Permutation
from ..errors import SpecificationError

__all__ = [
    "cyclic_shift",
    "p_ordering",
    "inverse_p_ordering",
    "p_ordering_with_shift",
    "segment_cyclic_shift",
    "conditional_exchange",
    "modular_inverse_odd",
]


def cyclic_shift(order: int, k: int) -> Permutation:
    """``D_i = (i + k) mod N`` — family (1).

    >>> cyclic_shift(2, 1).as_tuple()
    (1, 2, 3, 0)
    """
    n_elements = 1 << order
    return Permutation((i + k) % n_elements for i in range(n_elements))


def p_ordering(order: int, p: int) -> Permutation:
    """``D_i = (p * i) mod N`` for odd ``p`` — family (2).

    Oddness makes multiplication by ``p`` invertible modulo ``N = 2^n``.
    """
    if p % 2 == 0:
        raise SpecificationError(f"p must be odd, got {p}")
    n_elements = 1 << order
    return Permutation((p * i) % n_elements for i in range(n_elements))


def modular_inverse_odd(p: int, order: int) -> int:
    """The odd ``q`` with ``p * q ≡ 1 (mod 2^order)``."""
    if p % 2 == 0:
        raise SpecificationError(f"p must be odd, got {p}")
    return pow(p, -1, 1 << order)


def inverse_p_ordering(order: int, p: int) -> Permutation:
    """Family (3): the q-ordering that unscrambles the p-ordering
    (``q = p^{-1} mod N``)."""
    return p_ordering(order, modular_inverse_odd(p, order))


def p_ordering_with_shift(order: int, p: int, k: int) -> Permutation:
    """``D_i = (p*i + k) mod N`` — family (4), Lenfant's FUB family λ(n).
    """
    if p % 2 == 0:
        raise SpecificationError(f"p must be odd, got {p}")
    n_elements = 1 << order
    return Permutation((p * i + k) % n_elements for i in range(n_elements))


def segment_cyclic_shift(order: int, segment_order: int,
                         k: int) -> Permutation:
    """Family (5), Lenfant's FUB family δ(n): partition the ``N``
    indices into segments of ``2^segment_order`` consecutive elements
    and cyclically shift by ``k`` within each segment; the high
    ``order - segment_order`` bits are untouched.
    """
    if not 1 <= segment_order <= order:
        raise SpecificationError(
            f"segment_order must be in 1..{order}, got {segment_order}"
        )
    seg = 1 << segment_order
    n_elements = 1 << order

    def dest(i: int) -> int:
        base = i - (i % seg)
        return base + (i + k) % seg

    return Permutation(dest(i) for i in range(n_elements))


def conditional_exchange(order: int, control_bit: int) -> Permutation:
    """Family (6), Lenfant's η^{(k)}: exchange each pair
    ``(2i, 2i+1)`` iff bit ``control_bit`` of ``2i`` is 1 — i.e.
    ``(D_i)_0 = (i)_0 XOR (i)_k`` with all other bits unchanged.
    """
    if not 1 <= control_bit < order:
        raise SpecificationError(
            f"control_bit must be in 1..{order - 1}, got {control_bit}"
        )
    n_elements = 1 << order

    def dest(i: int) -> int:
        flipped = _bits.bit(i, 0) ^ _bits.bit(i, control_bit)
        return (i & ~1) | flipped

    return Permutation(dest(i) for i in range(n_elements))
