"""Routing strategy planner: pick the cheapest way to realize a
permutation with the systems in this library.

Given a permutation (and, optionally, the machine it must run on), the
planner classifies it against every Section II class and returns an
ordered plan:

- on the **network** (an attached ``B(n)``): self-routing when the
  permutation is in F; omega-bit mode when it is in Omega(n) only;
  external Waksman setup otherwise;
- on an **SIMD machine** (CCC/PSC/MCC): the Section III simulation with
  the strongest applicable skip rule (BPC fixed dimensions, omega /
  inverse-omega loop halves), falling back to the bitonic sort for
  permutations outside F.

The plan carries the classification evidence (the BPC A-vector when one
exists, the Theorem 1 failure witness when self-routing is impossible),
so callers can log *why* a strategy was chosen.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

from . import obs as _obs
from .core.membership import first_failure, in_class_f
from .obs.spans import spanned as _spanned
from .core.permutation import Permutation
from .permclasses.bpc import BPCSpec, is_bpc
from .permclasses.omega import is_inverse_omega, is_omega

__all__ = ["RoutingPlan", "plan", "plan_batch"]

PermutationLike = Union[Permutation, Sequence[int]]


@dataclass(frozen=True)
class RoutingPlan:
    """The planner's verdict for one permutation.

    Attributes:
        permutation: the permutation planned for.
        in_f / in_omega / in_inverse_omega: class membership.
        bpc: the recovered A-vector, when the permutation is BPC.
        network_strategy: ``"self-routing"``, ``"omega-mode"`` or
            ``"external-setup"`` — how an attached B(n) should run it.
        simd_strategy: ``"simulate"`` (the Section III loop) or
            ``"sort"`` (bitonic fallback).
        skip_rule: ``"bpc"``, ``"omega"``, ``"inverse-omega"`` or
            ``None`` — the loop-shortening rule the SIMD simulation may
            apply.
        ccc_unit_routes: predicted CCC cost under the plan.
        failure_witness: the Theorem 1 conflict when the permutation is
            outside F (None otherwise).
        alternatives: other viable network strategies, e.g.
            ``"two-pass"`` (every permutation can be realized by two
            self-routed transits with zero setup — see
            :mod:`repro.core.twopass`).
    """

    permutation: Permutation
    in_f: bool
    in_omega: bool
    in_inverse_omega: bool
    bpc: Optional[BPCSpec]
    network_strategy: str
    simd_strategy: str
    skip_rule: Optional[str]
    ccc_unit_routes: int
    failure_witness: Optional[Tuple[int, ...]]
    alternatives: Tuple[str, ...] = ()


def _ccc_cost(order: int, skip_rule: Optional[str],
              bpc: Optional[BPCSpec], in_f: bool) -> int:
    if not in_f:
        return order * (order + 1) // 2  # bitonic compare steps
    full = 2 * order - 1
    if skip_rule in ("omega", "inverse-omega"):
        return order
    if skip_rule == "bpc" and bpc is not None:
        fixed = bpc.fixed_dimensions()
        saved = sum(2 if b != order - 1 else 1 for b in fixed)
        return full - saved
    return full


@_spanned("plan")
def plan(perm: PermutationLike) -> RoutingPlan:
    """Classify ``perm`` and choose routing strategies.

    >>> report = plan([1, 3, 2, 0])          # the Fig. 5 permutation
    >>> report.network_strategy
    'omega-mode'
    >>> plan([0, 1, 2, 3]).network_strategy
    'self-routing'
    """
    perm = perm if isinstance(perm, Permutation) else Permutation(perm)
    return _build_plan(perm, in_class_f(perm))


@_spanned("plan.batch")
def plan_batch(perms: Sequence[PermutationLike],
               *, parallel=False, engine=None) -> "list[RoutingPlan]":
    """:func:`plan` for a whole batch, with the F-membership test — the
    planner's dominant cost — pushed through the vectorized engine
    (:func:`repro.accel.batch_in_class_f`); ``parallel`` forwards to
    the shard executor and ``engine`` to the engine seam (``None`` =
    auto-pick among scalar / NumPy / bitslice from measured per-order
    crossover data, overridable via ``BENES_ENGINE``; at or above the
    composed threshold — order 14 by default, ``BENES_COMPOSED_ORDER``
    — auto picks ``"composed"``, the block-decomposing engine whose
    streamed chunks keep large-N memory bounded).  Plans are
    identical to ``[plan(p) for p in perms]``, order preserved.
    """
    from .accel.batch import batch_in_class_f

    normalized = [
        p if isinstance(p, Permutation) else Permutation(p)
        for p in perms
    ]
    if not normalized:
        return []
    # The engine needs rectangular batches; mixed sizes are grouped and
    # membership-tested per size, results re-scattered in input order.
    members: "list[bool]" = [False] * len(normalized)
    by_size: "dict[int, list[int]]" = {}
    for i, p in enumerate(normalized):
        by_size.setdefault(p.size, []).append(i)
    for indices in by_size.values():
        verdicts = batch_in_class_f(
            [normalized[i].as_tuple() for i in indices],
            parallel=parallel,
            engine=engine,
        )
        for i, verdict in zip(indices, verdicts):
            members[i] = bool(verdict)
    return [
        _build_plan(perm, member)
        for perm, member in zip(normalized, members)
    ]


def _build_plan(perm: Permutation, member: bool) -> RoutingPlan:
    """Assemble the :class:`RoutingPlan` given the (already computed)
    F-membership verdict — shared by the scalar and batch entry
    points."""
    order = perm.order
    omega = is_omega(perm)
    inverse_omega = is_inverse_omega(perm)
    bpc = is_bpc(perm)

    if member:
        network_strategy = "self-routing"
    elif omega:
        network_strategy = "omega-mode"
    else:
        network_strategy = "external-setup"

    if member:
        simd_strategy = "simulate"
        # prefer the rule that skips the most iterations
        candidates = []
        if bpc is not None:
            fixed = bpc.fixed_dimensions()
            saved = sum(2 if b != order - 1 else 1 for b in fixed)
            candidates.append(("bpc", saved))
        if inverse_omega:
            candidates.append(("inverse-omega", order - 1))
        if omega:
            candidates.append(("omega", order - 1))
        skip_rule = max(candidates, key=lambda c: c[1])[0] \
            if candidates and max(candidates, key=lambda c: c[1])[1] > 0 \
            else None
    else:
        simd_strategy = "sort"
        skip_rule = None

    alternatives: Tuple[str, ...] = ()
    if not member:
        # two self-routed transits realize any permutation without
        # external setup (core.twopass); omega-mode is its own row.
        alternatives = ("two-pass",)

    if _obs.enabled():
        # Planner decisions, keyed by the strategies chosen — the
        # "per permutation class" success/failure view: each network
        # strategy corresponds to a Section II class verdict.
        _obs.inc("planner.plan.calls")
        _obs.inc(f"planner.network_strategy.{network_strategy}")
        _obs.inc(f"planner.simd_strategy.{simd_strategy}")
        if skip_rule:
            _obs.inc(f"planner.skip_rule.{skip_rule}")

    return RoutingPlan(
        permutation=perm,
        in_f=member,
        in_omega=omega,
        in_inverse_omega=inverse_omega,
        bpc=bpc,
        network_strategy=network_strategy,
        simd_strategy=simd_strategy,
        skip_rule=skip_rule,
        ccc_unit_routes=_ccc_cost(order, skip_rule, bpc, member),
        failure_witness=first_failure(perm) if not member else None,
        alternatives=alternatives,
    )
