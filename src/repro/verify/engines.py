"""Engine adapters: every routing implementation behind one interface.

Six engine generations implement the paper's Theorem-1 self-routing
semantics — the structural :class:`~repro.core.benes.BenesNetwork`, the
integer :mod:`~repro.core.fastpath`, the vectorized
:mod:`repro.accel.batch` kernel (with and without NumPy), the
bit-sliced big-int kernel of :mod:`repro.accel.bitslice`, and the
sharded :mod:`repro.accel.executor` path.  Differential verification
needs them side by side under *identical* workloads, so this module
normalizes each into an :class:`EngineRun`: plain-Python success
flags, delivered mappings, and (where the engine can produce them)
full per-stage switch states, ready for byte-level comparison.

The adapters deliberately go through the same public entry points users
call — a verifier that routes around the production surface verifies
nothing.  Environment toggles (:func:`force_fallback`,
:func:`force_engine`, :func:`low_shard_threshold`) flip the NumPy
seam, the engine-resolution seam, and the executor threshold so one
process can drive every engine variant.

:func:`mutant_self_route_engine` builds a deliberately broken engine —
a fastpath clone whose control logic reads the *wrong* tag bit in one
chosen stage — used by the self-test harness to prove the fuzzer and
shrinker actually catch control-bit bugs.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..accel import executor as _executor
from ..accel import _np as _np_seam
from ..accel.batch import (
    batch_in_class_f,
    batch_route_with_states,
    batch_self_route,
)
from ..accel.plans import cached_topology
from ..core.benes import BenesNetwork
from ..core.bits import log2_exact
from ..core.fastpath import (
    fast_route_with_states,
    fast_self_route_states,
)
from ..core.membership import in_class_f
from ..errors import InvalidParameterError

__all__ = [
    "EngineRun",
    "MEMBERSHIP_ENGINES",
    "SELF_ROUTE_ENGINES",
    "STATES_ENGINES",
    "force_engine",
    "force_fallback",
    "low_shard_threshold",
    "mutant_self_route_engine",
    "run_engine",
    "run_membership_engine",
    "run_states_engine",
]

Row = Tuple[int, ...]
States = Tuple[Tuple[int, ...], ...]


@dataclass(frozen=True)
class EngineRun:
    """One engine's normalized answer for a batch of tag vectors.

    Attributes:
        engine: adapter name.
        success: per-instance routing success.
        mappings: per-instance delivered mapping — ``mappings[b][o]``
            is the input whose signal arrived at output ``o``.
        states: per-instance ``(2n-1, N/2)`` switch states as nested
            tuples, or ``None`` when the engine cannot expose them.
    """

    engine: str
    success: Tuple[bool, ...]
    mappings: Tuple[Row, ...]
    states: Optional[Tuple[States, ...]] = None


def _as_rows(rows: Sequence[Sequence[int]]) -> List[Row]:
    return [tuple(int(v) for v in row) for row in rows]


def _normalize_states(states) -> Optional[Tuple[States, ...]]:
    if states is None:
        return None
    return tuple(
        tuple(tuple(int(s) for s in column) for column in per_instance)
        for per_instance in states
    )


def _from_batch_result(engine: str, result) -> EngineRun:
    return EngineRun(
        engine=engine,
        success=tuple(bool(ok) for ok in result.success_mask),
        mappings=tuple(tuple(int(v) for v in row)
                       for row in result.mappings),
        states=_normalize_states(result.stage_states),
    )


# ----------------------------------------------------------------------
# Environment toggles
# ----------------------------------------------------------------------

@contextmanager
def force_fallback():
    """Run the body as if NumPy were not installed (flips the
    :data:`repro.accel._np.FORCE_FALLBACK` seam)."""
    previous = _np_seam.FORCE_FALLBACK
    _np_seam.FORCE_FALLBACK = True
    try:
        yield
    finally:
        _np_seam.FORCE_FALLBACK = previous


@contextmanager
def force_engine(name: Optional[str]):
    """Steer every engine resolution inside the body to ``name``
    (flips the :data:`repro.accel._np.FORCE_ENGINE` seam — the
    monkeypatch equivalent of exporting ``BENES_ENGINE``)."""
    previous = _np_seam.FORCE_ENGINE
    _np_seam.FORCE_ENGINE = name
    try:
        yield
    finally:
        _np_seam.FORCE_ENGINE = previous


@contextmanager
def low_shard_threshold(threshold: int = 2):
    """Temporarily lower the executor's sharding threshold so small
    verification batches exercise the dispatch/merge path."""
    previous = _executor.SHARD_THRESHOLD
    _executor.SHARD_THRESHOLD = threshold
    try:
        yield
    finally:
        _executor.SHARD_THRESHOLD = previous


# ----------------------------------------------------------------------
# Self-routing engines
# ----------------------------------------------------------------------

def _scalar_engine(rows, order, *, omega_mode=False,
                   stuck_switches=None) -> EngineRun:
    net = BenesNetwork(order)
    success, mappings, states = [], [], []
    for row in rows:
        result = net.route(row, omega_mode=omega_mode, trace=True,
                           stuck_switches=stuck_switches)
        success.append(result.success)
        mappings.append(tuple(int(v) for v in result.delivered))
        states.append(tuple(
            tuple(int(s) for s in trace.states)
            for trace in result.stages
        ))
    return EngineRun("scalar", tuple(success), tuple(mappings),
                     tuple(states))


def _fastpath_engine(rows, order, *, omega_mode=False,
                     stuck_switches=None) -> EngineRun:
    success, mappings, states = [], [], []
    for row in rows:
        ok, delivered, st = fast_self_route_states(
            row, omega_mode=omega_mode, stuck_switches=stuck_switches
        )
        success.append(ok)
        mappings.append(delivered)
        states.append(st)
    return EngineRun("fastpath", tuple(success), tuple(mappings),
                     tuple(states))


def _batch_engine(rows, order, *, omega_mode=False,
                  stuck_switches=None) -> EngineRun:
    result = batch_self_route(list(rows), omega_mode=omega_mode,
                              stuck_switches=stuck_switches,
                              stage_states=True)
    return _from_batch_result("batch", result)


def _batch_fallback_engine(rows, order, *, omega_mode=False,
                           stuck_switches=None) -> EngineRun:
    # engine="scalar" pins the scalar per-instance loop: under
    # force_fallback an unqualified auto could resolve to bitslice,
    # and this adapter exists to keep the loop leg under test.
    with force_fallback():
        result = batch_self_route(list(rows), omega_mode=omega_mode,
                                  stuck_switches=stuck_switches,
                                  stage_states=True, engine="scalar")
    return _from_batch_result("batch-fallback", result)


def _bitslice_engine(rows, order, *, omega_mode=False,
                     stuck_switches=None) -> EngineRun:
    result = batch_self_route(list(rows), omega_mode=omega_mode,
                              stuck_switches=stuck_switches,
                              stage_states=True, engine="bitslice")
    return _from_batch_result("bitslice", result)


def _sharded_engine(rows, order, *, omega_mode=False,
                    stuck_switches=None) -> EngineRun:
    with low_shard_threshold(2):
        result = batch_self_route(list(rows), omega_mode=omega_mode,
                                  stuck_switches=stuck_switches,
                                  stage_states=True, parallel=2)
    return _from_batch_result("sharded", result)


#: The self-routing engine matrix: every entry answers
#: ``(rows, order, omega_mode=..., stuck_switches=...)`` with a fully
#: populated :class:`EngineRun` (states included), so any pair can be
#: compared field-for-field.  ``scalar`` is the oracle.
SELF_ROUTE_ENGINES: Dict[str, Callable[..., EngineRun]] = {
    "scalar": _scalar_engine,
    "fastpath": _fastpath_engine,
    "batch": _batch_engine,
    "batch-fallback": _batch_fallback_engine,
    "bitslice": _bitslice_engine,
    "sharded": _sharded_engine,
}


def run_engine(name: str, rows: Sequence[Sequence[int]], order: int, *,
               omega_mode: bool = False,
               stuck_switches: Optional[dict] = None) -> EngineRun:
    """Run one named self-routing engine over ``rows`` — the public
    entry the shrinker's generated regression tests call."""
    try:
        engine = SELF_ROUTE_ENGINES[name]
    except KeyError:
        raise InvalidParameterError(
            f"unknown verify engine {name!r}; known: "
            f"{sorted(SELF_ROUTE_ENGINES)}"
        )
    return engine(_as_rows(rows), order, omega_mode=omega_mode,
                  stuck_switches=stuck_switches)


# ----------------------------------------------------------------------
# Membership engines — (B,) F(n) verdict masks over genuine permutations
# ----------------------------------------------------------------------

def _membership_theorem1(rows, order) -> Tuple[bool, ...]:
    return tuple(bool(in_class_f(row)) for row in rows)


def _membership_batch(rows, order) -> Tuple[bool, ...]:
    return tuple(bool(ok) for ok in batch_in_class_f(list(rows)))


def _membership_batch_fallback(rows, order) -> Tuple[bool, ...]:
    with force_fallback():
        mask = batch_in_class_f(list(rows), engine="scalar")
    return tuple(bool(ok) for ok in mask)


def _membership_bitslice(rows, order) -> Tuple[bool, ...]:
    mask = batch_in_class_f(list(rows), engine="bitslice")
    return tuple(bool(ok) for ok in mask)


def _membership_route_success(rows, order) -> Tuple[bool, ...]:
    # Theorem 1 states membership == routing success; feeding the
    # routed verdict into the same comparison pins that equivalence
    # across engine generations.
    return tuple(
        fast_self_route_states(row)[0] for row in rows
    )


MEMBERSHIP_ENGINES: Dict[str, Callable[..., Tuple[bool, ...]]] = {
    "theorem1": _membership_theorem1,
    "membership-batch": _membership_batch,
    "membership-batch-fallback": _membership_batch_fallback,
    "membership-bitslice": _membership_bitslice,
    "route-success": _membership_route_success,
}


def run_membership_engine(name: str, rows: Sequence[Sequence[int]],
                          order: int) -> Tuple[bool, ...]:
    """Run one named F(n)-membership engine over permutation ``rows``."""
    try:
        engine = MEMBERSHIP_ENGINES[name]
    except KeyError:
        raise InvalidParameterError(
            f"unknown membership engine {name!r}; known: "
            f"{sorted(MEMBERSHIP_ENGINES)}"
        )
    return engine(_as_rows(rows), order)


# ----------------------------------------------------------------------
# External-state engines — realized permutation under given switch states
# ----------------------------------------------------------------------

def _states_scalar(states_batch, order) -> Tuple[Row, ...]:
    net = BenesNetwork(order)
    return tuple(
        tuple(int(v) for v in net.route_with_states(states).realized)
        for states in states_batch
    )


def _states_fastpath(states_batch, order) -> Tuple[Row, ...]:
    return tuple(
        tuple(int(v) for v in fast_route_with_states(states, order))
        for states in states_batch
    )


def _states_batch(states_batch, order) -> Tuple[Row, ...]:
    # mappings rows are already the realized input -> output view, the
    # same convention as fast_route_with_states.
    result = batch_route_with_states(list(states_batch), order)
    return tuple(tuple(int(v) for v in row) for row in result.mappings)


def _states_batch_fallback(states_batch, order) -> Tuple[Row, ...]:
    with force_fallback():
        result = batch_route_with_states(list(states_batch), order,
                                         engine="scalar")
    return tuple(tuple(int(v) for v in row) for row in result.mappings)


def _states_bitslice(states_batch, order) -> Tuple[Row, ...]:
    result = batch_route_with_states(list(states_batch), order,
                                     engine="bitslice")
    return tuple(tuple(int(v) for v in row) for row in result.mappings)


STATES_ENGINES: Dict[str, Callable[..., Tuple[Row, ...]]] = {
    "states-scalar": _states_scalar,
    "states-fastpath": _states_fastpath,
    "states-batch": _states_batch,
    "states-batch-fallback": _states_batch_fallback,
    "states-bitslice": _states_bitslice,
}


def run_states_engine(name: str, states_batch, order: int
                      ) -> Tuple[Row, ...]:
    """Realized permutations of ``B(order)`` under each instance of
    ``states_batch``, per the named external-state engine."""
    try:
        engine = STATES_ENGINES[name]
    except KeyError:
        raise InvalidParameterError(
            f"unknown states engine {name!r}; known: "
            f"{sorted(STATES_ENGINES)}"
        )
    return engine(states_batch, order)


# ----------------------------------------------------------------------
# Deliberate mutants (self-test targets)
# ----------------------------------------------------------------------

def mutant_self_route_engine(mutate_stage: int
                             ) -> Callable[..., EngineRun]:
    """A self-routing engine with an injected control-bit bug: in
    column ``mutate_stage`` every switch reads bit ``b ^ 1`` of its
    upper input's tag instead of bit ``b``.  Everything else — links,
    omega forcing, fault injection — matches the fastpath engine, so
    any disagreement the fuzzer reports against the oracle is exactly
    the planted bug.  Used by the verify self-test to prove the
    pipeline catches (and shrinks) real control-logic regressions."""

    def _engine(rows, order, *, omega_mode=False,
                stuck_switches=None) -> EngineRun:
        topology = cached_topology(order)
        success_out, mappings, states_out = [], [], []
        omega_stages = order - 1 if omega_mode else 0
        stuck_all = stuck_switches or {}
        for row in rows:
            n = len(row)
            log2_exact(n)  # validates power-of-two width
            rows_tag = list(row)
            rows_src = list(range(n))
            per_stage: List[Tuple[int, ...]] = []
            for stage in range(topology.n_stages):
                ctrl = min(stage, 2 * order - 2 - stage)
                if stage == mutate_stage:
                    ctrl ^= 1  # the planted bug: wrong tag bit
                column = []
                for i in range(n // 2):
                    if (stage, i) in stuck_all:
                        s = 1 if stuck_all[(stage, i)] else 0
                    elif stage < omega_stages:
                        s = 0
                    else:
                        s = (rows_tag[2 * i] >> ctrl) & 1
                    if s:
                        rows_tag[2 * i], rows_tag[2 * i + 1] = (
                            rows_tag[2 * i + 1], rows_tag[2 * i]
                        )
                        rows_src[2 * i], rows_src[2 * i + 1] = (
                            rows_src[2 * i + 1], rows_src[2 * i]
                        )
                    column.append(s)
                per_stage.append(tuple(column))
                if stage < topology.n_stages - 1:
                    link = topology.links[stage]
                    new_tag = [0] * n
                    new_src = [0] * n
                    for r in range(n):
                        new_tag[link[r]] = rows_tag[r]
                        new_src[link[r]] = rows_src[r]
                    rows_tag, rows_src = new_tag, new_src
            success_out.append(all(rows_tag[r] == r for r in range(n)))
            mappings.append(tuple(rows_src))
            states_out.append(tuple(per_stage))
        return EngineRun(f"mutant(stage={mutate_stage})",
                         tuple(success_out), tuple(mappings),
                         tuple(states_out))

    return _engine
