"""Back-compat shim: the engine adapters now live in the first-class
registry :mod:`repro.engines`.

Historically this module owned the normalized :class:`EngineRun`
adapters the differential verifier fuzzes over.  PR 7 promoted them
into :mod:`repro.engines` so the accel seam, the verifier, the bench
CLI, and the ``benes serve`` daemon all resolve engines through one
registry — adding an engine is one :func:`repro.engines.register`
call, not five call sites.  Every public name this module used to
define is re-exported unchanged (the ``*_ENGINES`` tables are live
views of the registry, so late registrations appear here too).

What still lives here is the one verify-only construct:
:func:`mutant_self_route_engine` builds a deliberately broken engine —
a fastpath clone whose control logic reads the *wrong* tag bit in one
chosen stage — used by the self-test harness to prove the fuzzer and
shrinker actually catch control-bit bugs.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from ..accel.plans import cached_topology
from ..core.bits import log2_exact
from ..engines import (  # noqa: F401  (re-exported API)
    EngineRun,
    MEMBERSHIP_ENGINES,
    PARTIAL_ENGINES,
    SELF_ROUTE_ENGINES,
    STATES_ENGINES,
    force_engine,
    force_fallback,
    low_shard_threshold,
    run_engine,
    run_membership_engine,
    run_partial_engine,
    run_states_engine,
)

__all__ = [
    "EngineRun",
    "MEMBERSHIP_ENGINES",
    "PARTIAL_ENGINES",
    "SELF_ROUTE_ENGINES",
    "STATES_ENGINES",
    "force_engine",
    "force_fallback",
    "low_shard_threshold",
    "mutant_self_route_engine",
    "run_engine",
    "run_membership_engine",
    "run_partial_engine",
    "run_states_engine",
]


# ----------------------------------------------------------------------
# Deliberate mutants (self-test targets)
# ----------------------------------------------------------------------

def mutant_self_route_engine(mutate_stage: int
                             ) -> Callable[..., EngineRun]:
    """A self-routing engine with an injected control-bit bug: in
    column ``mutate_stage`` every switch reads bit ``b ^ 1`` of its
    upper input's tag instead of bit ``b``.  Everything else — links,
    omega forcing, fault injection — matches the fastpath engine, so
    any disagreement the fuzzer reports against the oracle is exactly
    the planted bug.  Used by the verify self-test to prove the
    pipeline catches (and shrinks) real control-logic regressions."""

    def _engine(rows, order, *, omega_mode=False,
                stuck_switches=None) -> EngineRun:
        topology = cached_topology(order)
        success_out, mappings, states_out = [], [], []
        omega_stages = order - 1 if omega_mode else 0
        stuck_all = stuck_switches or {}
        for row in rows:
            n = len(row)
            log2_exact(n)  # validates power-of-two width
            rows_tag = list(row)
            rows_src = list(range(n))
            per_stage: List[Tuple[int, ...]] = []
            for stage in range(topology.n_stages):
                ctrl = min(stage, 2 * order - 2 - stage)
                if stage == mutate_stage:
                    ctrl ^= 1  # the planted bug: wrong tag bit
                column = []
                for i in range(n // 2):
                    if (stage, i) in stuck_all:
                        s = 1 if stuck_all[(stage, i)] else 0
                    elif stage < omega_stages:
                        s = 0
                    else:
                        s = (rows_tag[2 * i] >> ctrl) & 1
                    if s:
                        rows_tag[2 * i], rows_tag[2 * i + 1] = (
                            rows_tag[2 * i + 1], rows_tag[2 * i]
                        )
                        rows_src[2 * i], rows_src[2 * i + 1] = (
                            rows_src[2 * i + 1], rows_src[2 * i]
                        )
                    column.append(s)
                per_stage.append(tuple(column))
                if stage < topology.n_stages - 1:
                    link = topology.links[stage]
                    new_tag = [0] * n
                    new_src = [0] * n
                    for r in range(n):
                        new_tag[link[r]] = rows_tag[r]
                        new_src[link[r]] = rows_src[r]
                    rows_tag, rows_src = new_tag, new_src
            success_out.append(all(rows_tag[r] == r for r in range(n)))
            mappings.append(tuple(rows_src))
            states_out.append(tuple(per_stage))
        return EngineRun(f"mutant(stage={mutate_stage})",
                        tuple(success_out), tuple(mappings),
                        tuple(states_out))

    return _engine
