"""``repro.verify`` — the differential verification subsystem.

Four engine generations claim to implement the same paper: the
structural scalar network, the integer fast path, the vectorized batch
kernel (NumPy and fallback), and the sharded executor.  This package
*proves* they agree instead of assuming it:

- :mod:`~repro.verify.engines` — every engine behind one normalized
  adapter interface (plus environment toggles and a deliberately
  broken mutant for self-testing);
- :mod:`~repro.verify.workloads` — seeded permutation / tag-vector
  generators mixing random, ``F(n)``, structured, and Theorem-4 inputs;
- :mod:`~repro.verify.fuzzer` — the pairwise comparison core across
  the self-routing, membership, universal-setup, and two-pass families;
- :mod:`~repro.verify.faults` — the exhaustive single-fault parity
  campaign and the paper's mask-vs-fatal stage dichotomy;
- :mod:`~repro.verify.shrink` — counterexample minimization emitting
  ready-to-paste regression tests;
- :mod:`~repro.verify.harness` — the seeded, time-budgeted campaign
  driver behind ``benes verify``.

Submodules load lazily (mirroring :mod:`repro.accel`) so importing
``repro`` never pays for the verifier.
"""

from __future__ import annotations

__all__ = [
    "Disagreement",
    "EngineRun",
    "FaultCampaignReport",
    "MEMBERSHIP_ENGINES",
    "PARTIAL_ENGINES",
    "SELF_ROUTE_ENGINES",
    "STATES_ENGINES",
    "ShrinkResult",
    "VerifyConfig",
    "VerifyReport",
    "check_membership",
    "check_partial",
    "check_selfroute",
    "check_twopass",
    "check_universal",
    "force_fallback",
    "low_shard_threshold",
    "mutant_self_route_engine",
    "regression_test_source",
    "run_campaign",
    "run_engine",
    "run_self_test",
    "run_verify",
    "shrink",
]

_EXPORTS = {
    "Disagreement": "fuzzer",
    "EngineRun": "engines",
    "FaultCampaignReport": "faults",
    "MEMBERSHIP_ENGINES": "engines",
    "PARTIAL_ENGINES": "engines",
    "SELF_ROUTE_ENGINES": "engines",
    "STATES_ENGINES": "engines",
    "ShrinkResult": "shrink",
    "VerifyConfig": "harness",
    "VerifyReport": "harness",
    "check_membership": "fuzzer",
    "check_partial": "fuzzer",
    "check_selfroute": "fuzzer",
    "check_twopass": "fuzzer",
    "check_universal": "fuzzer",
    "force_fallback": "engines",
    "low_shard_threshold": "engines",
    "mutant_self_route_engine": "engines",
    "regression_test_source": "shrink",
    "run_campaign": "faults",
    "run_engine": "engines",
    "run_self_test": "harness",
    "run_verify": "harness",
}

# ``shrink`` (the function) shares its name with the submodule it lives
# in; a lazy binding would be clobbered the first time the submodule is
# imported.  Binding it eagerly keeps ``repro.verify.shrink`` callable
# regardless of import order (the module stays reachable as
# ``repro.verify.shrink`` via sys.modules for anyone importing from it).
from .shrink import shrink  # noqa: E402


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    from importlib import import_module

    module = import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))
