"""The verification campaign driver behind ``benes verify``.

One :func:`run_verify` call is a seeded, time-budgeted bug hunt:

- every round sweeps all configured orders and comparison families
  (self-routing with plain / omega / fault-injected options, F(n)
  membership, Waksman universal setup, two-pass routing, composed
  block decomposition, partial k-of-N call patterns), drawing fresh
  seeded workloads each time;
- the first round always completes in full — the budget bounds *extra*
  rounds, so even ``--budget 0`` yields a complete sweep;
- fault-injection campaigns (:func:`~repro.verify.faults.run_campaign`)
  run once per configured fault order — they are exhaustive, not
  sampled, so repeating them adds nothing;
- every disagreement is minimized by :func:`~repro.verify.shrink.
  shrink` and rendered as a ready-to-paste regression test;
- a **self-test** plants a control-bit mutant engine and demands the
  pipeline catch and shrink it — a verifier that cannot find a planted
  bug is vacuous, so a missed mutant fails the whole report.

Progress is observable: the harness increments ``verify.*`` metrics
(rounds, per-family case counts, disagreements, shrink attempts)
through :mod:`repro.obs`, and :meth:`VerifyReport.to_json` is the
stable artifact CI archives.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs as _obs
from ..accel import have_numpy
from .engines import (
    MEMBERSHIP_ENGINES,
    PARTIAL_ENGINES,
    SELF_ROUTE_ENGINES,
    STATES_ENGINES,
    mutant_self_route_engine,
)
from .faults import run_campaign
from .fuzzer import (
    Disagreement,
    check_composed,
    check_membership,
    check_partial,
    check_selfroute,
    check_twopass,
    check_universal,
)
from .shrink import regression_test_source, shrink
from .workloads import partial_rows, perm_rows, tag_rows

__all__ = ["VerifyConfig", "VerifyReport", "run_self_test",
           "run_verify"]

REPORT_SCHEMA_VERSION = 1

Row = Tuple[int, ...]


@dataclass(frozen=True)
class VerifyConfig:
    """Campaign parameters (all seeded, all JSON-serializable)."""

    seed: int = 0
    budget_seconds: float = 30.0
    orders: Tuple[int, ...] = (2, 3, 4, 5, 6)
    batch: int = 64
    families: Tuple[str, ...] = ("selfroute", "membership",
                                 "universal", "twopass", "composed",
                                 "partial")
    fault_orders: Tuple[int, ...] = (2, 3, 4, 5)
    fault_perms: int = 8
    engines: Optional[Tuple[str, ...]] = None  # None = all self-route
    self_test: bool = True
    max_shrinks: int = 5


@dataclass
class VerifyReport:
    """Everything one campaign learned, JSON-ready."""

    config: VerifyConfig
    numpy: bool = False
    rounds: int = 0
    elapsed_seconds: float = 0.0
    cases: Dict[str, int] = field(default_factory=dict)
    engines: Dict[str, List[str]] = field(default_factory=dict)
    disagreements: List[Dict[str, object]] = field(default_factory=list)
    fault_campaigns: List[Dict[str, object]] = field(
        default_factory=list)
    self_test: Optional[Dict[str, object]] = None

    @property
    def ok(self) -> bool:
        return (
            not self.disagreements
            and all(c["ok"] for c in self.fault_campaigns)
            and (self.self_test is None
                 or bool(self.self_test.get("caught")))
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema_version": REPORT_SCHEMA_VERSION,
            "ok": self.ok,
            "seed": self.config.seed,
            "budget_seconds": self.config.budget_seconds,
            "elapsed_seconds": round(self.elapsed_seconds, 3),
            "orders": list(self.config.orders),
            "batch": self.config.batch,
            "families": list(self.config.families),
            "numpy": self.numpy,
            "rounds": self.rounds,
            "cases": dict(self.cases),
            "engines": {k: list(v) for k, v in self.engines.items()},
            "disagreements": list(self.disagreements),
            "fault_campaigns": list(self.fault_campaigns),
            "self_test": self.self_test,
        }

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent,
                          sort_keys=True)


def _signature(d: Disagreement) -> str:
    return (f"{d.family}/{d.field}: {d.engine_a} vs {d.engine_b} "
            f"(order {d.order})")


def _selfroute_check(engines):
    """Build the shrinker predicate for a self-routing disagreement."""

    def check(order: int, rows: List[Row],
              options: Dict[str, object]) -> Optional[str]:
        found = check_selfroute(
            rows, order,
            omega_mode=bool(options.get("omega_mode")),
            stuck_switches=options.get("stuck_switches"),
            engines=engines,
        )
        return _signature(found[0]) if found else None

    return check


def _family_check(family: str):
    if family == "membership":
        return lambda order, rows, options: (
            lambda found: _signature(found[0]) if found else None
        )(check_membership(rows, order))
    if family == "universal":
        return lambda order, rows, options: (
            lambda found: _signature(found[0]) if found else None
        )(check_universal(rows, order))
    if family == "twopass":
        return lambda order, rows, options: (
            lambda found: _signature(found[0]) if found else None
        )(check_twopass(rows, order))
    if family == "composed":
        return lambda order, rows, options: (
            lambda found: _signature(found[0]) if found else None
        )(check_composed(rows, order))
    if family == "partial":
        return lambda order, rows, options: (
            lambda found: _signature(found[0]) if found else None
        )(check_partial(
            rows, order,
            omega_mode=bool(options.get("omega_mode"))))
    raise AssertionError(family)


def _shrink_and_record(report: VerifyReport, disagreement: Disagreement,
                       rows: Sequence[Row], check,
                       rng: random.Random) -> None:
    """Minimize one disagreement and append it (with its regression
    test) to the report."""

    def order_probe(smaller: int):
        if disagreement.options.get("stuck_switches"):
            # fault coordinates are order-specific; probe without them
            options = dict(disagreement.options,
                           stuck_switches=None)
        else:
            options = dict(disagreement.options)
        probe_rows = perm_rows(smaller, max(4, min(len(rows), 16)), rng)
        return list(probe_rows), options

    result = shrink(disagreement.order, list(rows),
                    dict(disagreement.options), check,
                    order_probe=order_probe)
    entry = disagreement.to_dict()
    if result is not None:
        _obs.inc("verify.shrink.attempts", result.attempts)
        entry["shrunk"] = result.to_dict()
        entry["regression_test"] = regression_test_source(
            result, disagreement.engine_a, disagreement.engine_b,
            slug=f"{disagreement.family}_{disagreement.field}".replace(
                "-", "_"),
        )
    else:
        entry["shrunk"] = None
        entry["flaky"] = True
    report.disagreements.append(entry)
    _obs.inc("verify.disagreements")


def run_self_test(seed: int = 0, *, order: int = 3,
                  batch: int = 16) -> Dict[str, object]:
    """Plant a control-bit mutant (wrong tag bit in the first
    destination column) among the engines and prove the fuzzer catches
    it and the shrinker reduces it to a single-row counterexample."""
    rng = random.Random(seed)
    mutate_stage = order - 1
    engines = {
        "scalar": SELF_ROUTE_ENGINES["scalar"],
        "mutant": mutant_self_route_engine(mutate_stage),
    }
    rows = perm_rows(order, batch, rng)
    found = check_selfroute(rows, order, engines=engines)
    result: Dict[str, object] = {
        "order": order,
        "mutate_stage": mutate_stage,
        "caught": bool(found),
        "disagreements": len(found),
    }
    if found:
        shrunk = shrink(order, rows, dict(found[0].options),
                        _selfroute_check(engines))
        if shrunk is not None:
            result["shrunk"] = shrunk.to_dict()
            result["minimal"] = shrunk.batch_minimal
            result["regression_test"] = regression_test_source(
                shrunk, "scalar", "mutant", slug="self_test")
    return result


def run_verify(config: VerifyConfig) -> VerifyReport:
    """Run the full differential campaign described by ``config``."""
    rng = random.Random(config.seed)
    start = time.monotonic()
    if config.engines is None:
        selfroute_engines = dict(SELF_ROUTE_ENGINES)
    else:
        # Explicit subsets resolve through the FULL registry view so
        # opt-in engines (e.g. the live `serve` daemon adapter) can be
        # pulled into a campaign by name without joining the default
        # sweep.
        from ..engines import ALL_SELF_ROUTE_ENGINES

        selfroute_engines = {
            name: ALL_SELF_ROUTE_ENGINES[name]
            for name in config.engines
        }
    report = VerifyReport(
        config=config,
        numpy=have_numpy(),
        engines={
            "selfroute": list(selfroute_engines),
            "membership": list(MEMBERSHIP_ENGINES),
            "universal": list(STATES_ENGINES),
            "twopass": ["twopass-scalar", "twopass-batch"],
            "composed": ["waksman-scalar", "waksman-composed",
                         "composed-stream"],
            "partial": list(PARTIAL_ENGINES),
        },
    )
    cases = report.cases

    def family_round(order: int, family: str) -> None:
        cases[family] = cases.get(family, 0) + 1
        _obs.inc(f"verify.cases.{family}")
        if family == "selfroute":
            rows = perm_rows(order, config.batch, rng)
            variants: List[Dict[str, object]] = [
                {"omega_mode": False, "stuck_switches": None},
                {"omega_mode": True, "stuck_switches": None},
            ]
            # one random single fault per round keeps the injected
            # path exercised without an exhaustive sweep (faults.py
            # owns exhaustiveness)
            n_stages = 2 * order - 1
            stage = rng.randrange(n_stages)
            switch = rng.randrange((1 << order) // 2)
            variants.append({
                "omega_mode": False,
                "stuck_switches": {(stage, switch): rng.randrange(2)},
            })
            legs = [(selfroute_engines, rows)]
            # duplicate-destination tag vectors are legal self-routing
            # input but not Permutations, so the structural oracle
            # sits that leg out; fastpath (itself pinned against
            # scalar on the first leg) takes over as oracle
            nonscalar = {name: engine
                         for name, engine in selfroute_engines.items()
                         if name != "scalar"}
            if len(nonscalar) > 1:
                legs.append((
                    nonscalar,
                    tag_rows(order, max(8, config.batch // 4), rng),
                ))
            for engines, leg_rows in legs:
                check = _selfroute_check(engines)
                for options in variants:
                    found = check_selfroute(
                        leg_rows, order,
                        omega_mode=bool(options["omega_mode"]),
                        stuck_switches=options["stuck_switches"],
                        engines=engines,
                    )
                    for d in found[:config.max_shrinks]:
                        _shrink_and_record(report, d, leg_rows, check,
                                           rng)
        elif family == "partial":
            # the shrinker's order-probe falls back to perm_rows,
            # which is fine: a full permutation is a legal dense
            # partial row (k = N)
            rows = partial_rows(order, config.batch, rng)
            for options in ({"omega_mode": False},
                            {"omega_mode": True}):
                found = check_partial(
                    rows, order,
                    omega_mode=bool(options["omega_mode"]))
                check = _family_check(family)
                for d in found[:config.max_shrinks]:
                    _shrink_and_record(report, d, rows, check, rng)
            return
        else:
            rows = perm_rows(order, config.batch, rng)
            if family == "membership":
                found = check_membership(rows, order)
            elif family == "universal":
                found = check_universal(rows, order)
            elif family == "composed":
                found = check_composed(rows, order)
            else:
                found = check_twopass(rows, order)
            check = _family_check(family)
            for d in found[:config.max_shrinks]:
                _shrink_and_record(report, d, rows, check, rng)

    while True:
        for order in config.orders:
            for family in config.families:
                family_round(order, family)
        report.rounds += 1
        _obs.inc("verify.rounds")
        if time.monotonic() - start >= config.budget_seconds:
            break

    for order in config.fault_orders:
        campaign = run_campaign(order, rng=rng,
                                n_perms=config.fault_perms)
        _obs.inc("verify.faults.configs", campaign.n_faults)
        report.fault_campaigns.append(campaign.to_dict())
        for d in campaign.disagreements[:config.max_shrinks]:
            report.disagreements.append(d.to_dict())
            _obs.inc("verify.disagreements")

    if config.self_test:
        report.self_test = run_self_test(config.seed)

    report.elapsed_seconds = time.monotonic() - start
    _obs.observe("verify.seconds", report.elapsed_seconds)
    return report
