"""Counterexample minimization: from a fuzzer disagreement to the
smallest reproducer, plus a ready-to-paste regression test.

A raw fuzzer hit is a (order, batch, options) triple with dozens of
rows — useless as a bug report.  :func:`shrink` performs greedy
delta-debugging in four phases, re-running the *same* check after every
candidate reduction so only still-failing simplifications survive:

1. **batch** — drop rows (halves, quarters, ... single rows).  Most
   bugs are per-row and collapse to batch size 1; a reduction that
   stalls above 1 is itself a diagnosis (the bug is batch-dependent —
   e.g. a sharding merge or a cache warmed by an earlier row).
2. **order** — optional: re-sample the failing scenario at smaller
   orders via a caller-supplied probe, restarting the shrink there when
   the bug reproduces (smallest network wins).
3. **options** — drop ``omega_mode`` / ``stuck_switches`` if the
   disagreement survives without them.
4. **row** — move each position toward the identity permutation (for
   permutation rows: by swapping; for raw tag vectors: by overwriting),
   holding every change that keeps the check failing.

The result carries the minimization trace and
:func:`regression_test_source` renders it as a self-contained pytest
function, so a shrunken bug can be committed as a pinned test verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = ["ShrinkResult", "regression_test_source", "shrink"]

Row = Tuple[int, ...]
#: A check re-runs the scenario and returns a short failure signature
#: (any non-empty string) when it still disagrees, or None if the
#: candidate passes — the delta-debugging predicate.
CheckFn = Callable[[int, List[Row], Dict[str, object]], Optional[str]]


@dataclass
class ShrinkResult:
    """The minimized counterexample."""

    order: int
    rows: List[Row]
    options: Dict[str, object]
    signature: str
    steps: int = 0                 # successful reductions applied
    attempts: int = 0              # candidate re-runs, total
    batch_minimal: bool = False    # could not drop below one row
    trace: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        options = dict(self.options)
        stuck = options.get("stuck_switches")
        if stuck:
            options["stuck_switches"] = {
                f"{stage}:{idx}": int(state)
                for (stage, idx), state in stuck.items()
            }
        return {
            "order": self.order,
            "rows": [list(row) for row in self.rows],
            "options": options,
            "signature": self.signature,
            "steps": self.steps,
            "attempts": self.attempts,
            "batch_minimal": self.batch_minimal,
            "trace": list(self.trace),
        }


def _is_permutation(row: Row) -> bool:
    return sorted(row) == list(range(len(row)))


def _shrink_batch(state: ShrinkResult, check: CheckFn) -> None:
    """Greedy ddmin over the row list: try keeping ever-smaller
    chunks, then individual rows."""
    rows = state.rows
    # Phase A: binary chunk reduction
    while len(rows) > 1:
        half = (len(rows) + 1) // 2
        for candidate in (rows[:half], rows[half:]):
            state.attempts += 1
            sig = check(state.order, list(candidate), state.options)
            if sig:
                rows = list(candidate)
                state.signature = sig
                state.steps += 1
                break
        else:
            break  # neither half fails alone
    # Phase B: if chunking stalled above 1 row, scan for a single
    # failing row (the chunk may carry passengers)
    if len(rows) > 1:
        for row in rows:
            state.attempts += 1
            sig = check(state.order, [row], state.options)
            if sig:
                rows = [row]
                state.signature = sig
                state.steps += 1
                break
    state.rows = rows
    state.batch_minimal = len(rows) == 1
    if not state.batch_minimal:
        state.trace.append(
            f"batch stalled at {len(rows)} rows — batch-dependent bug"
        )


def _shrink_options(state: ShrinkResult, check: CheckFn) -> None:
    for key, neutral in (("stuck_switches", None),
                         ("omega_mode", False)):
        if state.options.get(key) in (None, False):
            continue
        candidate = dict(state.options)
        candidate[key] = neutral
        state.attempts += 1
        sig = check(state.order, list(state.rows), candidate)
        if sig:
            state.options = candidate
            state.signature = sig
            state.steps += 1
            state.trace.append(f"dropped option {key}")


def _shrink_rows_toward_identity(state: ShrinkResult,
                                 check: CheckFn) -> None:
    """Greedy per-position simplification, to a fixpoint: for each row
    and position, try making it the identity at that position —
    swapping for permutations (stays a permutation), overwriting for
    raw tag vectors."""
    changed = True
    while changed:
        changed = False
        for r, row in enumerate(list(state.rows)):
            is_perm = _is_permutation(row)
            for i in range(len(row)):
                if row[i] == i:
                    continue
                cells = list(row)
                if is_perm:
                    j = cells.index(i)
                    cells[i], cells[j] = cells[j], cells[i]
                else:
                    cells[i] = i
                candidate_row = tuple(cells)
                candidate = list(state.rows)
                candidate[r] = candidate_row
                state.attempts += 1
                sig = check(state.order, candidate, state.options)
                if sig:
                    state.rows = candidate
                    state.signature = sig
                    state.steps += 1
                    row = candidate_row
                    changed = True


def shrink(order: int, rows: Sequence[Row], options: Dict[str, object],
           check: CheckFn, *,
           order_probe: Optional[Callable[[int], Optional[Tuple[
               List[Row], Dict[str, object]]]]] = None,
           ) -> Optional[ShrinkResult]:
    """Minimize a failing scenario.  Returns None if the scenario does
    not actually fail under ``check`` (a flaky report — surfaced to the
    caller rather than silently 'minimized' to nonsense).

    ``order_probe(smaller_order)`` may return a replacement
    ``(rows, options)`` scenario at a smaller order to try; the shrink
    restarts there when that scenario still fails.
    """
    sig = check(order, list(rows), dict(options))
    if not sig:
        return None
    state = ShrinkResult(order=order, rows=[tuple(r) for r in rows],
                         options=dict(options), signature=sig,
                         attempts=1)
    _shrink_batch(state, check)
    if order_probe is not None:
        for smaller in range(1, state.order):
            probe = order_probe(smaller)
            if probe is None:
                continue
            probe_rows, probe_options = probe
            state.attempts += 1
            sig = check(smaller, list(probe_rows), dict(probe_options))
            if sig:
                state.trace.append(
                    f"reproduced at order {smaller} (from "
                    f"{state.order})"
                )
                state.order = smaller
                state.rows = [tuple(r) for r in probe_rows]
                state.options = dict(probe_options)
                state.signature = sig
                state.steps += 1
                _shrink_batch(state, check)
                break
    _shrink_options(state, check)
    _shrink_rows_toward_identity(state, check)
    return state


def regression_test_source(result: ShrinkResult,
                           engine_a: str, engine_b: str,
                           slug: str = "shrunk") -> str:
    """Render a shrunken counterexample as a standalone pytest function
    pinning the two engines' full agreement on that exact input."""
    options = result.options
    stuck = options.get("stuck_switches") or None
    lines = [
        f"def test_verify_regression_{slug}():",
        f'    """Pinned by repro.verify.shrink: {result.signature}',
        f'    ({engine_a} vs {engine_b}, order {result.order})."""',
        "    from repro.verify.engines import run_engine",
        "",
        f"    rows = {[list(r) for r in result.rows]!r}",
        f"    kwargs = dict(omega_mode="
        f"{bool(options.get('omega_mode'))!r},",
        f"                  stuck_switches={stuck!r})",
        f"    a = run_engine({engine_a!r}, rows, "
        f"order={result.order}, **kwargs)",
        f"    b = run_engine({engine_b!r}, rows, "
        f"order={result.order}, **kwargs)",
        "    assert a.success == b.success",
        "    assert a.mappings == b.mappings",
        "    assert a.states == b.states",
        "",
    ]
    return "\n".join(lines)
