"""Differential comparison core: run identical workloads through every
engine pair and report any field that differs.

Four comparison families mirror the repo's four public surfaces:

- **selfroute** — :data:`~repro.verify.engines.SELF_ROUTE_ENGINES`
  (scalar / fastpath / batch / batch-fallback / sharded) on the same
  tag vectors, with optional omega mode and fault injection; success
  flags, delivered mappings, and per-stage switch states must all be
  byte-identical, the strongest equivalence the engines promise.
- **partial** — :data:`~repro.engines.PARTIAL_ENGINES` on dense
  k-of-N partial permutations (idle lanes ``-1``): per-instance
  success and the active lanes' arrival outputs, masked through every
  engine via the one canonical completion, must match the scalar
  oracle byte-for-byte — the packet subsystem's call-model parity.
- **membership** — Theorem-1 recursion vs the batch verdict (both NumPy
  legs) vs actual routing success; the paper's membership ≡ routability
  equivalence, cross-engine.
- **universal** — Waksman looping setup: scalar vs batch setup states
  byte-for-byte, then the realized permutation under those states via
  every external-state engine, checked against the requested
  permutation itself (the oracle is algebra, not another engine).
- **twopass** — scalar vs batch two-pass factors, factor properties
  (``omega_2[omega_1] == p``), and the composed two-transit delivery
  realizing ``p`` exactly.
- **composed** — the block-composed engine's decomposition itself:
  assembled composed setup states vs the scalar looping oracle
  byte-for-byte, and the *streamed* form
  (:func:`repro.accel.iter_composed_states`) re-assembled chunk by
  chunk with every sub-block independently checked against the scalar
  oracle on its local permutation — the sub-block parity the
  million-port path rests on, verified at an order where the full
  tensor is still affordable.

Every discrepancy becomes a :class:`Disagreement` carrying enough
context (family, field, engine pair, batch index, row, options) for the
shrinker to reproduce and minimize it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..accel.composed import (
    composed_plan,
    composed_setup_states,
    iter_composed_states,
)
from ..accel.setup import (
    batch_route_two_pass,
    batch_setup_states,
    batch_two_pass,
)
from ..core.twopass import two_pass_decomposition
from ..core.waksman import setup_states
from .engines import (
    MEMBERSHIP_ENGINES,
    PARTIAL_ENGINES,
    SELF_ROUTE_ENGINES,
    STATES_ENGINES,
    EngineRun,
)

__all__ = [
    "Disagreement",
    "check_composed",
    "check_membership",
    "check_partial",
    "check_selfroute",
    "check_twopass",
    "check_universal",
]

Row = Tuple[int, ...]


@dataclass(frozen=True)
class Disagreement:
    """One observed divergence between two engines (or between an
    engine and an algebraic oracle).

    ``row`` and ``options`` reproduce the failing instance standalone;
    ``index`` locates it inside the original batch (batch-dependent
    bugs shrink differently from per-row bugs).
    """

    family: str
    field: str
    order: int
    engine_a: str
    engine_b: str
    index: int
    row: Row
    options: Dict[str, object] = field(default_factory=dict)
    detail: str = ""

    def to_dict(self) -> Dict[str, object]:
        options: Dict[str, object] = {}
        for key, value in self.options.items():
            if key == "stuck_switches" and value:
                # JSON-safe: tuple keys become "stage:switch" strings
                options[key] = {
                    f"{stage}:{idx}": int(state)
                    for (stage, idx), state in value.items()
                }
            else:
                options[key] = value
        return {
            "family": self.family,
            "field": self.field,
            "order": self.order,
            "engines": [self.engine_a, self.engine_b],
            "index": self.index,
            "row": list(self.row),
            "options": options,
            "detail": self.detail,
        }


def _first_diff(a: Sequence, b: Sequence) -> Optional[int]:
    """Index of the first differing element, or None if equal
    (length differences count as index ``min(len)``)."""
    for i, (va, vb) in enumerate(zip(a, b)):
        if va != vb:
            return i
    if len(a) != len(b):
        return min(len(a), len(b))
    return None


def _compare_runs(family: str, order: int, rows: Sequence[Row],
                  options: Dict[str, object], oracle: EngineRun,
                  candidate: EngineRun) -> List[Disagreement]:
    """Field-by-field comparison of two EngineRuns; at most one
    disagreement per field (the first differing batch index) so a
    systematically wrong engine doesn't flood the report."""
    out: List[Disagreement] = []

    def report(fld: str, index: int, detail: str) -> None:
        out.append(Disagreement(
            family=family, field=fld, order=order,
            engine_a=oracle.engine, engine_b=candidate.engine,
            index=index, row=tuple(rows[index]), options=dict(options),
            detail=detail,
        ))

    i = _first_diff(oracle.success, candidate.success)
    if i is not None:
        report("success", i,
               f"{oracle.success[i]} vs {candidate.success[i]}")
    i = _first_diff(oracle.mappings, candidate.mappings)
    if i is not None:
        report("mappings", i,
               f"{oracle.mappings[i]} vs {candidate.mappings[i]}")
    if oracle.states is not None and candidate.states is not None:
        i = _first_diff(oracle.states, candidate.states)
        if i is not None:
            stage = _first_diff(oracle.states[i], candidate.states[i])
            report("states", i,
                   f"first divergent column {stage}: "
                   f"{oracle.states[i][stage]} vs "
                   f"{candidate.states[i][stage]}")
    return out


def check_selfroute(rows: Sequence[Row], order: int, *,
                    omega_mode: bool = False,
                    stuck_switches: Optional[dict] = None,
                    engines: Optional[Dict[str, object]] = None,
                    ) -> List[Disagreement]:
    """Route ``rows`` through every self-routing engine and compare all
    of them against the scalar oracle (first engine in the mapping).

    ``engines`` overrides the engine set — the self-test injects a
    mutant here; tests can drop the spawn-pool ``sharded`` entry."""
    table = engines if engines is not None else SELF_ROUTE_ENGINES
    options = {"omega_mode": omega_mode,
               "stuck_switches": stuck_switches}
    names = list(table)
    runs = [
        table[name](list(rows), order, omega_mode=omega_mode,
                    stuck_switches=stuck_switches)
        for name in names
    ]
    oracle = runs[0]
    out: List[Disagreement] = []
    for candidate in runs[1:]:
        out.extend(_compare_runs("selfroute", order, rows, options,
                                 oracle, candidate))
    return out


def check_partial(rows: Sequence[Row], order: int, *,
                  omega_mode: bool = False,
                  engines: Optional[Dict[str, object]] = None,
                  ) -> List[Disagreement]:
    """Partial-permutation parity: route dense k-of-N rows (idle lanes
    ``-1``) through every partial engine and compare the masked
    active-lane view — per-instance success and arrival outputs — to
    the scalar oracle byte-for-byte.  ``rows`` may include full
    permutations (``k = N``): a full row is a valid partial row, which
    is what lets the shrinker's order probe reuse ``perm_rows``."""
    table = engines if engines is not None else PARTIAL_ENGINES
    options = {"omega_mode": omega_mode}
    names = list(table)
    runs = [
        table[name](list(rows), order, omega_mode=omega_mode)
        for name in names
    ]
    oracle = runs[0]
    out: List[Disagreement] = []
    for candidate in runs[1:]:
        out.extend(_compare_runs("partial", order, rows, options,
                                 oracle, candidate))
    return out


def check_membership(rows: Sequence[Row], order: int, *,
                     engines: Optional[Dict[str, object]] = None,
                     ) -> List[Disagreement]:
    """F(n) verdict masks from every membership engine must agree
    (Theorem 1: recursion == routing success, scalar == batch)."""
    table = engines if engines is not None else MEMBERSHIP_ENGINES
    names = list(table)
    masks = [table[name](list(rows), order) for name in names]
    out: List[Disagreement] = []
    for name, mask in zip(names[1:], masks[1:]):
        i = _first_diff(masks[0], mask)
        if i is not None:
            out.append(Disagreement(
                family="membership", field="verdict", order=order,
                engine_a=names[0], engine_b=name, index=i,
                row=tuple(rows[i]),
                detail=f"{masks[0][i]} vs {mask[i]}",
            ))
    return out


def _normalize_states_batch(states_batch):
    return tuple(
        tuple(tuple(int(s) for s in column) for column in per_instance)
        for per_instance in states_batch
    )


def check_universal(rows: Sequence[Row], order: int, *,
                    engines: Optional[Dict[str, object]] = None,
                    ) -> List[Disagreement]:
    """Waksman universal setup, differentially: batch setup states must
    equal the scalar looping algorithm byte-for-byte, and every
    external-state engine must realize exactly the requested
    permutation under those states."""
    table = engines if engines is not None else STATES_ENGINES
    out: List[Disagreement] = []
    scalar_states = [setup_states(row) for row in rows]
    batch_states = batch_setup_states(order, list(rows))
    i = _first_diff(_normalize_states_batch(scalar_states),
                    _normalize_states_batch(batch_states))
    if i is not None:
        out.append(Disagreement(
            family="universal", field="setup_states", order=order,
            engine_a="waksman-scalar", engine_b="waksman-batch",
            index=i, row=tuple(rows[i]),
            detail="batch Waksman states diverge from scalar looping",
        ))
        return out  # realized comparisons would only echo this
    for name in table:
        realized = table[name](scalar_states, order)
        for b, row in enumerate(rows):
            if tuple(realized[b]) != tuple(row):
                out.append(Disagreement(
                    family="universal", field="realized", order=order,
                    engine_a="requested-permutation", engine_b=name,
                    index=b, row=tuple(row),
                    detail=f"states realize {tuple(realized[b])}",
                ))
                break
    return out


def check_composed(rows: Sequence[Row], order: int, *,
                   sub_order: Optional[int] = None,
                   ) -> List[Disagreement]:
    """The composed engine's block decomposition, differentially.

    Two legs: the assembled form
    (:func:`~repro.accel.composed_setup_states`) must equal the scalar
    looping oracle byte-for-byte for every row, and the streamed form
    (:func:`~repro.accel.iter_composed_states`) on the first row must
    re-assemble to the same tensor with each sub-block's states
    matching ``setup_states`` of its *local* permutation — the
    chunk-level parity ``benes route --order N`` samples at orders
    where the full oracle is unaffordable, verified here exhaustively
    at an order where it is.
    """
    out: List[Disagreement] = []
    if order < 2 or not rows:
        return out
    scalar_states = [setup_states(list(row)) for row in rows]
    assembled = composed_setup_states(order, list(rows),
                                      sub_order=sub_order)
    i = _first_diff(_normalize_states_batch(scalar_states),
                    _normalize_states_batch(assembled))
    if i is not None:
        out.append(Disagreement(
            family="composed", field="setup_states", order=order,
            engine_a="waksman-scalar", engine_b="waksman-composed",
            index=i, row=tuple(rows[i]),
            detail="composed block assembly diverges from scalar "
                   "looping",
        ))
        return out  # the streamed form would only echo this
    plan = composed_plan(order, sub_order)
    row = rows[0]
    half = plan.n_terminals // 2
    streamed = [[0] * half for _ in range(plan.n_stages)]
    w = plan.block_half
    for chunk in iter_composed_states(order, row,
                                      sub_order=plan.sub_order):
        if chunk.kind == "column":
            streamed[chunk.stage] = [int(v) for v in chunk.states]
            continue
        for i in range(len(chunk.states)):
            k = chunk.block_start + i
            states = chunk.states[i]
            local = [int(v) for v in chunk.perms[i]]
            if plan.sub_order > 1:
                oracle = setup_states(local)
                got = [[int(v) for v in col] for col in states]
                if got != [list(col) for col in oracle]:
                    out.append(Disagreement(
                        family="composed", field="block_states",
                        order=order, engine_a="waksman-scalar",
                        engine_b="composed-chunk", index=0,
                        row=tuple(row),
                        detail=f"block {k} states diverge from the "
                               f"scalar oracle on its local "
                               f"permutation {tuple(local)}",
                    ))
                    return out
            for s_local in range(plan.mid_stages):
                streamed[plan.levels + s_local][k * w:(k + 1) * w] = [
                    int(v) for v in states[s_local]
                ]
    if streamed != [[int(v) for v in col] for col in scalar_states[0]]:
        out.append(Disagreement(
            family="composed", field="streamed_states", order=order,
            engine_a="waksman-scalar", engine_b="composed-stream",
            index=0, row=tuple(row),
            detail="re-assembled stream diverges from scalar looping",
        ))
    return out


def _as_row_list(factor_batch) -> List[Row]:
    return [tuple(int(v) for v in row) for row in factor_batch]


def check_twopass(rows: Sequence[Row], order: int) -> List[Disagreement]:
    """Two-pass universal routing, differentially: batch factors must
    match the scalar decomposition, compose back to ``p``, and the
    composed two-transit delivery must realize ``p`` exactly."""
    out: List[Disagreement] = []
    first_b, second_b = batch_two_pass(order, list(rows))
    first_b, second_b = _as_row_list(first_b), _as_row_list(second_b)
    scalar_first, scalar_second = [], []
    for row in rows:
        f, s = two_pass_decomposition(row)
        scalar_first.append(f.as_tuple())
        scalar_second.append(s.as_tuple())
    for fld, scalar, batch in (("factor-omega1", scalar_first, first_b),
                               ("factor-omega2", scalar_second,
                                second_b)):
        i = _first_diff(scalar, batch)
        if i is not None:
            out.append(Disagreement(
                family="twopass", field=fld, order=order,
                engine_a="twopass-scalar", engine_b="twopass-batch",
                index=i, row=tuple(rows[i]),
                detail=f"{scalar[i]} vs {batch[i]}",
            ))
    for b, row in enumerate(rows):
        composed = tuple(second_b[b][v] for v in first_b[b])
        if composed != tuple(row):
            out.append(Disagreement(
                family="twopass", field="factor-composition",
                order=order, engine_a="requested-permutation",
                engine_b="twopass-batch", index=b, row=tuple(row),
                detail=f"omega_2[omega_1] == {composed}",
            ))
            break
    routed = batch_route_two_pass(order, list(rows))
    for b, row in enumerate(rows):
        delivered = tuple(int(v) for v in routed.mappings[b])
        expected = tuple(sorted(range(len(row)), key=row.__getitem__))
        if not routed.success_mask[b] or delivered != expected:
            out.append(Disagreement(
                family="twopass", field="routed", order=order,
                engine_a="requested-permutation",
                engine_b="twopass-batch-routed", index=b,
                row=tuple(row),
                detail=(f"success={bool(routed.success_mask[b])}, "
                        f"delivered {delivered}, expected p^-1 "
                        f"{expected}"),
            ))
            break
    return out
