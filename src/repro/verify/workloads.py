"""Seeded workload generators for the differential verifier.

A fuzzer is only as strong as its inputs.  Pure random permutations
almost never land in ``F(n)`` (density ~1.3% already at order 4), so a
naive generator would exercise the *failure* path of every engine and
barely touch the success path, omega forcing, or the Theorem-4
structure.  These generators therefore mix:

- uniformly random permutations (the bulk failure path);
- constructive ``F(order)`` members via
  :func:`~repro.core.sampling.random_class_f` (the success path);
- structured classics — identity, reversal, the Fig. 4 bit-reversal
  BPC — that historically shake out off-by-one stage bugs;
- Theorem-4 block composites (:func:`~repro.permclasses.blocks.
  within_blocks` over a random J-partition with random ``F(r)`` block
  permutations), which are guaranteed ``F(order)`` members with
  non-trivial internal structure;
- for the self-routing family only: tag vectors with *duplicate*
  destinations (not permutations), because the paper's switches route
  whatever tags arrive and every engine must agree on the resulting
  collisions too;
- for the partial family: dense k-of-N call patterns (idle lanes
  ``-1``) always including the ``k = 0`` and ``k = 1`` edges, plus
  restrictions of ``F(order)`` members and random partial mappings.

Everything is driven by an explicit ``random.Random`` so a seed fully
determines the campaign.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from ..core.permutation import Permutation, random_permutation
from ..core.sampling import random_class_f
from ..permclasses.blocks import JPartition, within_blocks
from ..permclasses.bpc import bit_reversal

__all__ = ["partial_rows", "perm_rows", "tag_rows", "structured_rows"]

Row = Tuple[int, ...]


def structured_rows(order: int) -> List[Row]:
    """The deterministic corner cases every round replays: identity,
    full reversal, and the Fig. 4 bit-reversal permutation."""
    n = 1 << order
    rows = [
        tuple(range(n)),
        tuple(range(n - 1, -1, -1)),
        bit_reversal(order).to_permutation().as_tuple(),
    ]
    return rows


def _block_composite(order: int, rng: random.Random) -> Row:
    """A Theorem-4 ``F(order)`` member: random J-partition, random
    ``F(r)`` permutation inside each block."""
    if order < 2:
        return random_class_f(order, rng).as_tuple()
    j_size = rng.randrange(1, order)
    j_set = tuple(sorted(rng.sample(range(order), j_size)))
    partition = JPartition(order, j_set)
    r = order - j_size
    composite = within_blocks(
        partition, lambda block: random_class_f(r, rng)
    )
    return composite.as_tuple()


def perm_rows(order: int, batch: int, rng: random.Random) -> List[Row]:
    """``batch`` genuine permutations of ``0..2^order-1``: the
    structured classics first, then a seeded mix of random, ``F``
    members, and Theorem-4 composites."""
    n = 1 << order
    rows: List[Row] = list(structured_rows(order))[:batch]
    while len(rows) < batch:
        kind = rng.randrange(4)
        if kind == 0:
            rows.append(random_class_f(order, rng).as_tuple())
        elif kind == 1:
            rows.append(_block_composite(order, rng))
        else:
            rows.append(random_permutation(n, rng).as_tuple())
    return rows


def tag_rows(order: int, batch: int, rng: random.Random) -> List[Row]:
    """Like :func:`perm_rows` but roughly a quarter of the rows are
    tag vectors with duplicate destinations — legal self-routing input
    (switches just route what arrives), never a permutation.  Only the
    self-routing family may consume these."""
    n = 1 << order
    rows = perm_rows(order, batch, rng)
    for i in range(len(rows)):
        if i >= 3 and rng.randrange(4) == 0:
            rows[i] = tuple(rng.randrange(n) for _ in range(n))
    return rows


def partial_rows(order: int, batch: int,
                 rng: random.Random) -> List[Row]:
    """``batch`` dense **partial permutations** (idle lanes ``-1``) for
    the ``partial`` family: the ``k = 0`` and ``k = 1`` edges first
    (all-idle, single-call), then a seeded mix of full permutations
    (``k = N``), k-lane restrictions of ``F(order)`` members (active
    lanes of a routable permutation), and uniformly random k-of-N
    call patterns."""
    n = 1 << order
    rows: List[Row] = [(-1,) * n]
    single = [-1] * n
    single[rng.randrange(n)] = rng.randrange(n)
    rows.append(tuple(single))
    rows = rows[:batch]
    while len(rows) < batch:
        kind = rng.randrange(4)
        if kind == 0:
            rows.append(random_permutation(n, rng).as_tuple())
        elif kind == 1:
            base = random_class_f(order, rng).as_tuple()
            k = rng.randrange(1, n + 1)
            row = [-1] * n
            for src in rng.sample(range(n), k):
                row[src] = base[src]
            rows.append(tuple(row))
        else:
            k = rng.randrange(0, n + 1)
            row = [-1] * n
            for src, dst in zip(rng.sample(range(n), k),
                                rng.sample(range(n), k)):
                row[src] = dst
            rows.append(tuple(row))
    return rows


def as_permutations(rows: List[Row]) -> List[Permutation]:
    """Wrap raw tuples back into :class:`Permutation` (universal-family
    call sites need the object API)."""
    return [Permutation(row) for row in rows]
