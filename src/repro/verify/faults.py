"""Fault-injection parity: the exhaustive single-fault campaign.

The paper's fault story (Section on fault tolerance) splits ``B(n)``
into *distribution* stages (``0 .. n-2``) and *destination* stages
(``n-1 .. 2n-2``): a control flip in a distribution stage merely
permutes which sub-network carries a signal and can therefore be
**masked** (the vector still self-routes), while a flip in a
destination stage commits two signals to the wrong half and is
**always fatal**.  The flipped pair can further displace downstream
control decisions, so the total damage is any even misroute count
≥ 2 — exactly two only at the final column, where no downstream
switch is left to disturb.

:func:`run_campaign` turns that dichotomy into a checked artifact: for
every single stuck-at fault ``(stage, switch, state)`` — the exhaustive
sweep — it routes the same permutation batch through the structural
scalar oracle (``BenesNetwork.route``) and the vectorized batch engine,
demands byte-identical success masks, delivered mappings, *and* switch
states, and classifies each actual control flip as masked or fatal.
The resulting :class:`FaultCampaignReport` records the per-stage
dichotomy (destination stages must have zero masked flips, and every
fatal destination flip an even misroute count ≥ 2) alongside any
cross-engine disagreement.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.benes import BenesNetwork
from ..core.sampling import random_class_f
from .engines import SELF_ROUTE_ENGINES, EngineRun
from .fuzzer import Disagreement, _compare_runs

__all__ = ["FaultCampaignReport", "StageSummary", "run_campaign"]

Row = Tuple[int, ...]


@dataclass
class StageSummary:
    """Per-stage tally of the exhaustive fault sweep."""

    stage: int
    kind: str              # "distribution" | "destination"
    agree: int = 0         # stuck state matched the healthy state
    masked: int = 0        # actual flip, vector still routed
    fatal: int = 0         # actual flip, routing failed
    bad_misroute: int = 0  # fatal destination flip with a misroute
                           # count that is odd or < 2

    def to_dict(self) -> Dict[str, int]:
        return {
            "stage": self.stage, "kind": self.kind,  # type: ignore
            "agree": self.agree, "masked": self.masked,
            "fatal": self.fatal, "bad_misroute": self.bad_misroute,
        }


@dataclass
class FaultCampaignReport:
    """Outcome of one exhaustive single-fault campaign at one order."""

    order: int
    n_perms: int
    n_faults: int
    engines: Tuple[str, ...]
    stages: List[StageSummary] = field(default_factory=list)
    disagreements: List[Disagreement] = field(default_factory=list)

    @property
    def dichotomy_holds(self) -> bool:
        """The paper's mask-vs-fatal stage split: destination stages
        never mask a flip, and every fatal destination flip misroutes
        an even number (≥ 2) of signals."""
        return all(
            summary.masked == 0 and summary.bad_misroute == 0
            for summary in self.stages
            if summary.kind == "destination"
        )

    @property
    def ok(self) -> bool:
        return not self.disagreements and self.dichotomy_holds

    def to_dict(self) -> Dict[str, object]:
        return {
            "order": self.order,
            "n_perms": self.n_perms,
            "n_faults": self.n_faults,
            "engines": list(self.engines),
            "ok": self.ok,
            "dichotomy_holds": self.dichotomy_holds,
            "stages": [s.to_dict() for s in self.stages],
            "disagreements": [d.to_dict() for d in self.disagreements],
        }


def _campaign_perms(order: int, n_perms: int,
                    rng: random.Random) -> List[Row]:
    """Healthy-routable workload: the dichotomy is only observable on
    vectors that self-route without the fault, so draw ``F(order)``
    members (identity first, for the deterministic baseline)."""
    rows: List[Row] = [tuple(range(1 << order))]
    while len(rows) < n_perms:
        rows.append(random_class_f(order, rng).as_tuple())
    return rows[:n_perms]


def _scalar_oracle(net: BenesNetwork, rows: Sequence[Row],
                   stuck: Optional[dict]) -> EngineRun:
    success, mappings, states = [], [], []
    for row in rows:
        result = net.route(row, trace=True, stuck_switches=stuck)
        success.append(result.success)
        mappings.append(tuple(int(v) for v in result.delivered))
        states.append(tuple(
            tuple(int(s) for s in trace.states)
            for trace in result.stages
        ))
    return EngineRun("scalar", tuple(success), tuple(mappings),
                     tuple(states))


def run_campaign(order: int, *, rng: random.Random,
                 n_perms: int = 12,
                 engines: Sequence[str] = ("fastpath", "batch",
                                           "bitslice"),
                 ) -> FaultCampaignReport:
    """Exhaustive single-fault sweep at ``order``: every
    ``(stage, switch, stuck_state)`` triple, the same ``n_perms``-row
    batch of ``F(order)`` members, scalar oracle vs each engine in
    ``engines`` — state-for-state."""
    net = BenesNetwork(order)
    half = net.n_terminals // 2
    rows = _campaign_perms(order, n_perms, rng)
    healthy = _scalar_oracle(net, rows, None)
    report = FaultCampaignReport(
        order=order, n_perms=len(rows),
        n_faults=net.n_stages * half * 2, engines=tuple(engines),
    )
    summaries = {
        stage: StageSummary(
            stage=stage,
            kind="distribution" if stage < order - 1 else "destination",
        )
        for stage in range(net.n_stages)
    }
    for stage in range(net.n_stages):
        summary = summaries[stage]
        for switch in range(half):
            for state in (0, 1):
                stuck = {(stage, switch): state}
                oracle = _scalar_oracle(net, rows, stuck)
                options = {"omega_mode": False,
                           "stuck_switches": stuck}
                for name in engines:
                    candidate = SELF_ROUTE_ENGINES[name](
                        rows, order, stuck_switches=stuck
                    )
                    report.disagreements.extend(_compare_runs(
                        "faults", order, rows, options, oracle,
                        candidate,
                    ))
                for b in range(len(rows)):
                    if not healthy.success[b]:
                        continue  # dichotomy defined on routable input
                    if healthy.states[b][stage][switch] == state:
                        summary.agree += 1
                        continue
                    if oracle.success[b]:
                        summary.masked += 1
                    else:
                        summary.fatal += 1
                        if summary.kind == "destination":
                            expected = healthy.mappings[b]
                            got = oracle.mappings[b]
                            misrouted = sum(
                                1 for o in range(len(got))
                                if got[o] != expected[o]
                            )
                            if misrouted < 2 or misrouted % 2:
                                summary.bad_misroute += 1
    report.stages = [summaries[s] for s in sorted(summaries)]
    return report
