"""Baseline permutation networks compared against the self-routing
Benes network in Section I: Lawrie's omega network (and its inverse),
Batcher's bitonic sorter, and the full crossbar."""

from .base import PermutationNetwork
from .batcher import BitonicNetwork, bitonic_schedule
from .crossbar import Crossbar
from .delta import BaselineNetwork, ButterflyNetwork
from .gcn import GCNResult, GeneralizedConnectionNetwork
from .oddeven import OddEvenMergeNetwork, odd_even_schedule
from .omega_net import InverseOmegaNetwork, OmegaNetwork

__all__ = [
    "BaselineNetwork",
    "BitonicNetwork",
    "ButterflyNetwork",
    "Crossbar",
    "GCNResult",
    "GeneralizedConnectionNetwork",
    "InverseOmegaNetwork",
    "OddEvenMergeNetwork",
    "OmegaNetwork",
    "PermutationNetwork",
    "bitonic_schedule",
    "odd_even_schedule",
]
