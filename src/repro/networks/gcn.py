"""A generalized connection network (GCN) built around the Benes
network.

Section I: *"The network finds application as a subnetwork of a
generalized connection network [9]."*  A GCN realizes arbitrary
**mappings** — every output names the input it wants, sources may be
requested by many outputs or by none — where a permutation network only
realizes bijections.

The classical construction (Thompson [9]; also Nassimi & Sahni) is

    sort -> copy -> permute

1. **sort** the output requests by source index (a Batcher bitonic
   sorter), so equal requests become contiguous;
2. **copy** each requested input's data into its contiguous block of
   requesters (a log N-stage binary-fanout copy network — after the
   sort, a block needs only "take mine or propagate my neighbour's",
   which a tree of 2-cells does);
3. **permute** the filled block back to the requesting outputs — the
   inverse of the sorting permutation, an *arbitrary* permutation,
   realized on the embedded Benes network (self-routing when it happens
   to be in F, Waksman setup otherwise).

This module simulates that pipeline faithfully at the block level and
accounts hardware costs from the constituent networks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.benes import BenesNetwork
from ..core.membership import in_class_f
from ..core.permutation import Permutation
from ..core.waksman import setup_states
from ..errors import InvalidParameterError, SizeMismatchError, SpecificationError
from .batcher import BitonicNetwork

__all__ = ["GeneralizedConnectionNetwork", "GCNResult"]


@dataclass(frozen=True)
class GCNResult:
    """Outcome of one generalized connection.

    Attributes:
        outputs: the data delivered at each output terminal.
        sources: the request vector that was realized.
        permute_self_routed: True when the final Benes pass could use
            the self-routing control (the inverse sort permutation was
            in F); False when Waksman setup was needed.
    """

    outputs: Tuple
    sources: Tuple[int, ...]
    permute_self_routed: bool


class GeneralizedConnectionNetwork:
    """An ``N``-input / ``N``-output generalized connection network.

    >>> gcn = GeneralizedConnectionNetwork(2)
    >>> gcn.connect([0, 0, 3, 3], payloads=list("abcd")).outputs
    ('a', 'a', 'd', 'd')
    """

    def __init__(self, order: int):
        if order < 1:
            raise InvalidParameterError(f"order must be >= 1, got {order}")
        self._order = order
        self._sorter = BitonicNetwork(order)
        self._benes = BenesNetwork(order)

    @property
    def order(self) -> int:
        """``n = log2 N``."""
        return self._order

    @property
    def n_terminals(self) -> int:
        """Inputs (= outputs)."""
        return 1 << self._order

    @property
    def n_switches(self) -> int:
        """Total binary cells: sorter comparators + copy cells
        (``N log N``) + Benes switches."""
        copy_cells = self.n_terminals * self._order
        return (self._sorter.n_switches + copy_cells
                + self._benes.n_switches)

    @property
    def delay(self) -> int:
        """Stage delay: sort + copy (``log N``) + Benes."""
        return self._sorter.delay + self._order + self._benes.delay

    # ------------------------------------------------------------------

    def _sorted_request_order(self, sources: Sequence[int]
                              ) -> List[int]:
        """Output indices ordered by (requested source, output index) —
        what the bitonic sorter produces on the request keys."""
        return sorted(range(len(sources)),
                      key=lambda o: (sources[o], o))

    def connect(self, sources: Sequence[int],
                payloads: Optional[Sequence] = None) -> GCNResult:
        """Deliver ``payloads[sources[o]]`` to every output ``o``.

        ``sources`` is any function from outputs to inputs — repeats
        and omissions are allowed (that is the point of a GCN).
        """
        n = self.n_terminals
        if len(sources) != n:
            raise SizeMismatchError(
                f"{len(sources)} requests for {n} outputs"
            )
        for source in sources:
            if not 0 <= source < n:
                raise SpecificationError(
                    f"requested input {source} out of range 0..{n - 1}"
                )
        if payloads is None:
            payloads = list(range(n))
        elif len(payloads) != n:
            raise SizeMismatchError(
                f"{len(payloads)} payloads for {n} inputs"
            )

        # Phase 1+2 (sort + copy): position k of the intermediate block
        # holds the data of the k-th smallest request.  The copy
        # network's job — filling a contiguous block from one input —
        # is simulated by the lookup; its cost is in `delay`.
        order_of_outputs = self._sorted_request_order(sources)
        block = [payloads[sources[o]] for o in order_of_outputs]

        # Phase 3: route block position k back to the requesting
        # output order_of_outputs[k] — an arbitrary permutation on the
        # embedded Benes network (tags are the requesting outputs).
        route = Permutation(order_of_outputs)
        if in_class_f(route):
            result = self._benes.route(route, payloads=block,
                                       require_success=True)
            self_routed = True
        else:
            result = self._benes.route_with_states(
                setup_states(route), payloads=block
            )
            self_routed = False
        return GCNResult(
            outputs=tuple(result.payloads),
            sources=tuple(sources),
            permute_self_routed=self_routed,
        )
