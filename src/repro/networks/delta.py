"""Digit-controlled delta networks: butterfly and baseline.

The omega network of :mod:`repro.networks.omega_net` is one member of
the *delta network* family — ``log N`` columns of binary switches, each
output-port decision controlled by one destination-tag bit, wired so
that after all columns every tag bit has been consumed.  The family's
members (omega, butterfly, baseline, indirect cube, ...) are
topologically equivalent: each realizes exactly ``2^{(N/2) log N}``
permutations, but *different* sets, because the inter-stage wiring
differs.

This module adds the two other classic members the interconnection
literature compares against:

- :class:`ButterflyNetwork` — stage ``k`` pairs lines differing in bit
  ``n-1-k`` (the FFT wiring); no inter-stage permutation, the pairing
  distance halves at each stage;
- :class:`BaselineNetwork` — the Wu-Feng baseline: stage ``k`` splits
  the current blocks by their top remaining bit (an unshuffle confined
  to each block).

Both self-route on destination tags MSB-first, like the omega network,
and share its conflict semantics.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from ..core import bits as _bits
from ..core.permutation import Permutation
from ..core.routing import RouteResult, StageTrace, collect_result
from ..core.switch import CROSS, STRAIGHT, Signal, SwitchState
from ..errors import InvalidParameterError, SizeMismatchError
from .base import PermutationNetwork

__all__ = ["ButterflyNetwork", "BaselineNetwork"]

PermutationLike = Union[Permutation, Sequence[int]]


class _DeltaNetwork(PermutationNetwork):
    """Shared machinery: n columns, per-column line pairing, routing by
    one destination bit per column (MSB first)."""

    def __init__(self, order: int):
        if order < 1:
            raise InvalidParameterError(f"order must be >= 1, got {order}")
        self._order = order

    @property
    def order(self) -> int:
        return self._order

    @property
    def n_stages(self) -> int:
        """``log N`` switch columns."""
        return self._order

    @property
    def n_switches(self) -> int:
        """``(N/2) log N`` binary switches."""
        return self._order * (self.n_terminals // 2)

    @property
    def delay(self) -> int:
        return self._order

    def _partner(self, line: int, stage: int) -> int:
        """The line paired with ``line`` at ``stage`` — subclass
        specific."""
        raise NotImplementedError

    def route(self, tags: PermutationLike,
              payloads: Optional[Sequence] = None, *,
              trace: bool = False) -> RouteResult:
        perm = tags if isinstance(tags, Permutation) else Permutation(tags)
        if perm.size != self.n_terminals:
            raise SizeMismatchError(
                f"permutation of size {perm.size} on a network with "
                f"{self.n_terminals} terminals"
            )
        if payloads is None:
            payloads = list(range(self.n_terminals))
        elif len(payloads) != self.n_terminals:
            raise SizeMismatchError(
                f"{len(payloads)} payloads for {self.n_terminals} inputs"
            )
        rows: List[Signal] = [
            Signal(tag=perm[i], payload=payloads[i], source=i)
            for i in range(self.n_terminals)
        ]
        requested = [sig.tag for sig in rows]
        traces: List[StageTrace] = []
        for stage in range(self.n_stages):
            before = tuple(sig.tag for sig in rows)
            ctrl = self._order - 1 - stage
            out = list(rows)
            states: List[SwitchState] = []
            for line in range(self.n_terminals):
                partner = self._partner(line, stage)
                if partner < line:
                    continue
                upper, lower = rows[line], rows[partner]
                # each input claims the port named by its control bit;
                # on conflict the upper (lower-numbered) line wins
                want_up = _bits.bit(upper.tag, ctrl)
                state = CROSS if want_up else STRAIGHT
                if state is STRAIGHT:
                    out[line], out[partner] = upper, lower
                else:
                    out[line], out[partner] = lower, upper
                states.append(state)
            rows = out
            if trace:
                traces.append(StageTrace(
                    stage=stage,
                    control_bit=ctrl,
                    input_tags=before,
                    states=tuple(states),
                    output_tags=tuple(sig.tag for sig in rows),
                ))
        return collect_result(requested, rows, traces)


class ButterflyNetwork(_DeltaNetwork):
    """The FFT butterfly: stage ``k`` pairs lines differing in bit
    ``n-1-k`` and routes by the same destination bit, so the top bit of
    the line label is fixed first, then the next, and so on.

    >>> ButterflyNetwork(3).realizes(list(range(8)))
    True
    """

    def _partner(self, line: int, stage: int) -> int:
        return _bits.flip_bit(line, self._order - 1 - stage)


class BaselineNetwork(_DeltaNetwork):
    """The Wu-Feng baseline network: a column of adjacent-pair switches
    sends each packet to the top or bottom half (a global unshuffle
    link), then recurses within each half — structurally, the first
    ``n`` stages of the Benes network of Fig. 1.

    Self-routing control: stage ``k`` decides destination bit
    ``n-1-k`` (upper output = top half of the current block).

    Its realizable class has the same size as the omega/butterfly
    classes (``2^{(N/2) log N}``) but is a *different* subset — notably
    it excludes the identity (two adjacent inputs destined to adjacent
    outputs collide at the first column), while its all-straight
    setting realizes the **bit reversal**:

    >>> from repro.core.bits import reverse_bits
    >>> BaselineNetwork(3).realizes(
    ...     [reverse_bits(i, 3) for i in range(8)])
    True
    >>> BaselineNetwork(3).realizes(list(range(8)))
    False
    """

    def __init__(self, order: int):
        super().__init__(order)
        from ..core.topology import BenesTopology

        self._links = BenesTopology.build(order).links[: order - 1] \
            if order > 1 else ()

    def _partner(self, line: int, stage: int) -> int:
        return line ^ 1  # every column pairs adjacent lines

    def route(self, tags: PermutationLike,
              payloads: Optional[Sequence] = None, *,
              trace: bool = False) -> RouteResult:
        perm = tags if isinstance(tags, Permutation) else Permutation(tags)
        if perm.size != self.n_terminals:
            raise SizeMismatchError(
                f"permutation of size {perm.size} on a network with "
                f"{self.n_terminals} terminals"
            )
        if payloads is None:
            payloads = list(range(self.n_terminals))
        elif len(payloads) != self.n_terminals:
            raise SizeMismatchError(
                f"{len(payloads)} payloads for {self.n_terminals} inputs"
            )
        rows: List[Signal] = [
            Signal(tag=perm[i], payload=payloads[i], source=i)
            for i in range(self.n_terminals)
        ]
        requested = [sig.tag for sig in rows]
        traces: List[StageTrace] = []
        for stage in range(self.n_stages):
            before = tuple(sig.tag for sig in rows)
            ctrl = self._order - 1 - stage
            out = list(rows)
            states: List[SwitchState] = []
            for i in range(0, self.n_terminals, 2):
                upper, lower = rows[i], rows[i + 1]
                want_up = _bits.bit(upper.tag, ctrl)
                state = CROSS if want_up else STRAIGHT
                if state is STRAIGHT:
                    out[i], out[i + 1] = upper, lower
                else:
                    out[i], out[i + 1] = lower, upper
                states.append(state)
            rows = out
            if trace:
                traces.append(StageTrace(
                    stage=stage,
                    control_bit=ctrl,
                    input_tags=before,
                    states=tuple(states),
                    output_tags=tuple(sig.tag for sig in rows),
                ))
            if stage < len(self._links):
                link = self._links[stage]
                moved: List[Signal] = [None] * len(rows)  # type: ignore
                for r, sig in enumerate(rows):
                    moved[link[r]] = sig
                rows = moved
        return collect_result(requested, rows, traces)
