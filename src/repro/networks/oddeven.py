"""Batcher's odd-even merge sorting network.

Batcher proposed two sorting networks; the paper cites "Batcher's
sorting network [11]" for its self-routing baseline.  The bitonic
sorter (:mod:`repro.networks.batcher`) is the variant usually built in
hardware; the *odd-even merge* variant sorts with the same
``log N (log N + 1) / 2`` delay but strictly fewer comparators for
``N >= 8`` — worth having when comparing switch budgets in the
Section I landscape.

The construction: recursively sort both halves, then odd-even-merge
them; the iterative comparator schedule below is Knuth's (TAOCP vol. 3,
Merge Exchange M): for ``p = 2^{n-1}, 2^{n-2}, ..., 1`` and
``q = 2^{n-1} down to p`` (halving), compare lines ``i`` and ``i + p``
for the appropriate residues.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple, Union

from ..core.permutation import Permutation
from ..core.routing import RouteResult, StageTrace, collect_result
from ..core.switch import CROSS, STRAIGHT, Signal, SwitchState
from ..errors import InvalidParameterError, SizeMismatchError
from .base import PermutationNetwork

__all__ = ["OddEvenMergeNetwork", "odd_even_schedule",
           "odd_even_comparator_count"]

PermutationLike = Union[Permutation, Sequence[int]]


def odd_even_schedule(order: int) -> Iterator[List[Tuple[int, int]]]:
    """Yield the comparator stages of Batcher's merge-exchange sort on
    ``2^order`` lines; each stage is a list of disjoint ``(i, j)``
    pairs (``i < j``) compared in parallel."""
    n = 1 << order
    p = n // 2
    while p >= 1:
        q = n // 2
        r = 0
        d = p
        while True:
            stage = []
            for i in range(n - d):
                if (i & p) == r:
                    stage.append((i, i + d))
            yield stage
            if q == p:
                break
            d = q - p
            q //= 2
            r = p
        p //= 2


def odd_even_comparator_count(order: int) -> int:
    """Total comparators in the merge-exchange network."""
    return sum(len(stage) for stage in odd_even_schedule(order))


class OddEvenMergeNetwork(PermutationNetwork):
    """Batcher's odd-even merge-exchange sorter as a permutation
    network (route = sort on destination tags).

    >>> OddEvenMergeNetwork(2).realizes([1, 3, 2, 0])
    True
    """

    def __init__(self, order: int):
        if order < 1:
            raise InvalidParameterError(f"order must be >= 1, got {order}")
        self._order = order
        self._schedule = list(odd_even_schedule(order))

    @property
    def order(self) -> int:
        return self._order

    @property
    def n_stages(self) -> int:
        """``log N (log N + 1) / 2`` comparator stages."""
        return len(self._schedule)

    @property
    def n_switches(self) -> int:
        """Comparator count — fewer than the bitonic sorter's for
        ``N >= 8``."""
        return sum(len(stage) for stage in self._schedule)

    @property
    def delay(self) -> int:
        return self.n_stages

    def route(self, tags: PermutationLike,
              payloads: Optional[Sequence] = None, *,
              trace: bool = False) -> RouteResult:
        perm = tags if isinstance(tags, Permutation) else Permutation(tags)
        if perm.size != self.n_terminals:
            raise SizeMismatchError(
                f"permutation of size {perm.size} on a network with "
                f"{self.n_terminals} terminals"
            )
        if payloads is None:
            payloads = list(range(self.n_terminals))
        elif len(payloads) != self.n_terminals:
            raise SizeMismatchError(
                f"{len(payloads)} payloads for {self.n_terminals} inputs"
            )
        rows: List[Signal] = [
            Signal(tag=perm[i], payload=payloads[i], source=i)
            for i in range(self.n_terminals)
        ]
        requested = [sig.tag for sig in rows]
        traces: List[StageTrace] = []
        for index, stage in enumerate(self._schedule):
            before = tuple(sig.tag for sig in rows)
            states: List[SwitchState] = []
            for i, j in stage:
                if rows[i].tag > rows[j].tag:
                    rows[i], rows[j] = rows[j], rows[i]
                    states.append(CROSS)
                else:
                    states.append(STRAIGHT)
            if trace:
                traces.append(StageTrace(
                    stage=index,
                    control_bit=None,
                    input_tags=before,
                    states=tuple(states),
                    output_tags=tuple(sig.tag for sig in rows),
                ))
        return collect_result(requested, rows, traces)

    def sort(self, keys: Sequence) -> list:
        """Data-oblivious sort of arbitrary comparable keys."""
        if len(keys) != self.n_terminals:
            raise SizeMismatchError(
                f"{len(keys)} keys on a network with "
                f"{self.n_terminals} lines"
            )
        working = list(keys)
        for stage in self._schedule:
            for i, j in stage:
                if working[i] > working[j]:
                    working[i], working[j] = working[j], working[i]
        return working
