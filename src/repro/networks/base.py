"""Common interface for the permutation networks compared in Section I.

Every network exposes the same cost model the paper uses — number of
binary switches (or comparators / crosspoints) and transmission delay in
switch stages — plus a uniform ``route``/``realizes`` API returning
:class:`~repro.core.routing.RouteResult`, so the comparison benchmark
can sweep Benes, omega, Batcher and crossbar networks interchangeably.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Sequence, Union

from ..core.permutation import Permutation
from ..core.routing import RouteResult

__all__ = ["PermutationNetwork"]

PermutationLike = Union[Permutation, Sequence[int]]


class PermutationNetwork(ABC):
    """Abstract ``N``-input/``N``-output permutation network."""

    @property
    @abstractmethod
    def order(self) -> int:
        """``n = log2 N``."""

    @property
    def n_terminals(self) -> int:
        """Number of inputs (= outputs)."""
        return 1 << self.order

    @property
    @abstractmethod
    def n_switches(self) -> int:
        """Binary switch / comparator / crosspoint count — the paper's
        hardware-cost metric."""

    @property
    @abstractmethod
    def delay(self) -> int:
        """Transmission delay in switch stages (gate levels)."""

    @abstractmethod
    def route(self, tags: PermutationLike,
              payloads: Optional[Sequence] = None, *,
              trace: bool = False) -> RouteResult:
        """Attempt to realize the permutation under the network's own
        (self-routing) control; ``result.success`` reports whether it
        was realized."""

    def realizes(self, tags: PermutationLike) -> bool:
        """True iff the network realizes ``tags`` under self-routing."""
        return self.route(tags).success

    def permute(self, tags: PermutationLike, data: Sequence) -> list:
        """Route ``data`` by ``tags``; raises on failure via the
        concrete network's ``route``."""
        result = self.route(tags, payloads=list(data))
        if not result.success:
            from ..errors import RoutingError

            raise RoutingError(
                f"{type(self).__name__} cannot realize {tuple(tags)}"
            )
        return list(result.payloads)
