"""Batcher's bitonic sorting network (Section I baseline).

The paper positions Batcher's network as the self-routing alternative to
the Benes network: it realizes **all** ``N!`` permutations with no setup
(sort on the destination tags) but pays ``O(log^2 N)`` delay and
``O(N log^2 N)`` comparators, versus the Benes network's
``2 log N - 1`` delay and ``N log N - N/2`` switches restricted to
class ``F``.

The construction is the classic data-oblivious bitonic sorter on
``N = 2^n`` lines: for merge levels ``k = 1 .. n`` and sub-levels
``j = k-1 .. 0``, compare-exchange every pair of lines differing in bit
``j``, ascending or descending according to bit ``k`` of the line index.
A comparator is a binary switch whose state is computed from its two
keys, so the cost metrics are directly comparable.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple, Union

from ..core import bits as _bits
from ..core.permutation import Permutation
from ..core.routing import RouteResult, StageTrace, collect_result
from ..core.switch import CROSS, STRAIGHT, Signal, SwitchState
from ..errors import InvalidParameterError, SizeMismatchError
from .base import PermutationNetwork

__all__ = ["BitonicNetwork", "bitonic_schedule"]

PermutationLike = Union[Permutation, Sequence[int]]


def bitonic_schedule(order: int) -> Iterator[Tuple[int, int]]:
    """Yield ``(merge_level, compare_bit)`` pairs in network order.

    There are ``order * (order + 1) / 2`` compare stages; stage
    ``(k, j)`` compare-exchanges lines differing in bit ``j`` with the
    direction selected by bit ``k`` of the line index (bit ``order`` is
    always 0, making the final merge globally ascending).
    """
    for k in range(1, order + 1):
        for j in range(k - 1, -1, -1):
            yield k, j


class BitonicNetwork(PermutationNetwork):
    """A bitonic sorting network used as a permutation network.

    Routing sorts the signals by destination tag; because the tags are
    a permutation of ``0..N-1``, the sort is itself the routing and
    every permutation succeeds.

    >>> BitonicNetwork(2).realizes([1, 3, 2, 0])
    True
    """

    def __init__(self, order: int):
        if order < 1:
            raise InvalidParameterError(f"order must be >= 1, got {order}")
        self._order = order

    @property
    def order(self) -> int:
        return self._order

    @property
    def n_stages(self) -> int:
        """``log N (log N + 1) / 2`` compare stages."""
        return self._order * (self._order + 1) // 2

    @property
    def n_switches(self) -> int:
        """``(N/2) * log N (log N + 1) / 2`` comparators."""
        return (self.n_terminals // 2) * self.n_stages

    @property
    def delay(self) -> int:
        """Delay in comparator stages: ``log N (log N + 1) / 2``."""
        return self.n_stages

    def route(self, tags: PermutationLike,
              payloads: Optional[Sequence] = None, *,
              trace: bool = False) -> RouteResult:
        perm = tags if isinstance(tags, Permutation) else Permutation(tags)
        if perm.size != self.n_terminals:
            raise SizeMismatchError(
                f"permutation of size {perm.size} on a network with "
                f"{self.n_terminals} terminals"
            )
        if payloads is None:
            payloads = list(range(self.n_terminals))
        elif len(payloads) != self.n_terminals:
            raise SizeMismatchError(
                f"{len(payloads)} payloads for {self.n_terminals} inputs"
            )
        rows: List[Signal] = [
            Signal(tag=perm[i], payload=payloads[i], source=i)
            for i in range(self.n_terminals)
        ]
        requested = [sig.tag for sig in rows]
        traces: List[StageTrace] = []
        for stage, (k, j) in enumerate(bitonic_schedule(self._order)):
            before = tuple(sig.tag for sig in rows)
            rows, states = self._compare_stage(rows, k, j)
            if trace:
                traces.append(StageTrace(
                    stage=stage,
                    control_bit=j,
                    input_tags=before,
                    states=states,
                    output_tags=tuple(sig.tag for sig in rows),
                ))
        return collect_result(requested, rows, traces)

    def _compare_stage(self, rows: List[Signal], k: int, j: int
                       ) -> Tuple[List[Signal], Tuple[SwitchState, ...]]:
        out = list(rows)
        states: List[SwitchState] = []
        for i in range(self.n_terminals):
            partner = _bits.flip_bit(i, j)
            if partner < i:
                continue  # each pair handled once, from its low line
            ascending = _bits.bit(i, k) == 0
            swap = (rows[i].tag > rows[partner].tag) == ascending
            if swap:
                out[i], out[partner] = rows[partner], rows[i]
            states.append(CROSS if swap else STRAIGHT)
        return out, tuple(states)

    def sort(self, keys: Sequence) -> list:
        """Data-oblivious sort of arbitrary comparable ``keys`` through
        the same comparator schedule (exposes the sorter directly, not
        just the permutation-routing use of it)."""
        if len(keys) != self.n_terminals:
            raise SizeMismatchError(
                f"{len(keys)} keys on a network with "
                f"{self.n_terminals} lines"
            )
        order_key = list(keys)
        working = list(range(len(keys)))
        for k, j in bitonic_schedule(self._order):
            for i in range(self.n_terminals):
                partner = _bits.flip_bit(i, j)
                if partner < i:
                    continue
                ascending = _bits.bit(i, k) == 0
                a, b = order_key[working[i]], order_key[working[partner]]
                if (a > b) == ascending:
                    working[i], working[partner] = (
                        working[partner], working[i]
                    )
        return [keys[w] for w in working]
