"""Lawrie's omega network and its inverse (Section I/II baselines).

The omega network on ``N = 2^n`` lines is ``n`` identical stages, each a
perfect-shuffle wiring followed by a column of ``N/2`` binary switches.
Under destination-tag control, stage ``k``'s switches route each input
to the output port named by bit ``n-1-k`` of its tag; when both inputs
of a switch demand the same port the permutation is *blocked* (this is
what limits the network to the ``Omega(n)`` class — ``2^{nN/2}`` of the
``N!`` permutations).

The inverse omega network is the same hardware traversed backwards:
``n`` stages of a switch column followed by an *unshuffle* wiring, with
stage ``k`` controlled by tag bit ``n-1-k`` as well.  It realizes
exactly the inverse-omega class, which Theorem 3 proves is a subset of
the Benes self-routing class ``F(n)``.

Compared to the self-routing Benes network, an omega network has about
half the switches (``(N/2) log N``) and half the delay (``log N``
stages) but a much smaller realizable class — the quantitative
comparison is benchmark CLM-NETS.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from ..core import bits as _bits
from ..core.permutation import Permutation
from ..core.routing import RouteResult, StageTrace, collect_result
from ..core.switch import CROSS, STRAIGHT, Signal, SwitchState
from ..errors import InvalidParameterError, SizeMismatchError
from .base import PermutationNetwork

__all__ = ["OmegaNetwork", "InverseOmegaNetwork"]

PermutationLike = Union[Permutation, Sequence[int]]


class _ShuffleExchangeNetwork(PermutationNetwork):
    """Shared machinery for the omega network and its inverse."""

    def __init__(self, order: int):
        if order < 1:
            raise InvalidParameterError(f"order must be >= 1, got {order}")
        self._order = order

    @property
    def order(self) -> int:
        return self._order

    @property
    def n_stages(self) -> int:
        """``log N`` switch columns."""
        return self._order

    @property
    def n_switches(self) -> int:
        """``(N/2) log N`` binary switches."""
        return self._order * (self.n_terminals // 2)

    @property
    def delay(self) -> int:
        """``log N`` stages."""
        return self._order

    # ------------------------------------------------------------------

    def _make_signals(self, tags: PermutationLike,
                      payloads: Optional[Sequence]) -> List[Signal]:
        perm = tags if isinstance(tags, Permutation) else Permutation(tags)
        if perm.size != self.n_terminals:
            raise SizeMismatchError(
                f"permutation of size {perm.size} on a network with "
                f"{self.n_terminals} terminals"
            )
        if payloads is None:
            payloads = list(range(self.n_terminals))
        elif len(payloads) != self.n_terminals:
            raise SizeMismatchError(
                f"{len(payloads)} payloads for {self.n_terminals} inputs"
            )
        return [
            Signal(tag=perm[i], payload=payloads[i], source=i)
            for i in range(self.n_terminals)
        ]

    def _exchange_column(self, rows: List[Signal], ctrl: int
                         ) -> Tuple[List[Signal], Tuple[SwitchState, ...],
                                    int]:
        """One switch column under per-input destination-bit control.

        Each input demands the output port named by bit ``ctrl`` of its
        tag.  Returns the new rows, the states taken, and the number of
        *conflicts* (both inputs demanding the same port; resolved
        upper-first so routing can continue, but counted as failure).
        """
        out: List[Signal] = [None] * len(rows)  # type: ignore[list-item]
        states: List[SwitchState] = []
        conflicts = 0
        for i in range(len(rows) // 2):
            upper, lower = rows[2 * i], rows[2 * i + 1]
            want_up = _bits.bit(upper.tag, ctrl)
            want_low = _bits.bit(lower.tag, ctrl)
            if want_up == want_low:
                conflicts += 1
            # Upper input wins its port; lower takes the other one.
            state = CROSS if want_up else STRAIGHT
            # state CROSS: upper goes to lower output (port 1).
            if state is STRAIGHT:
                out[2 * i], out[2 * i + 1] = upper, lower
            else:
                out[2 * i], out[2 * i + 1] = lower, upper
            states.append(state)
        return out, tuple(states), conflicts

    @staticmethod
    def _shuffle_rows(rows: List[Signal], order: int) -> List[Signal]:
        out: List[Signal] = [None] * len(rows)  # type: ignore[list-item]
        for r, sig in enumerate(rows):
            out[_bits.rotate_left(r, order)] = sig
        return out

    @staticmethod
    def _unshuffle_rows(rows: List[Signal], order: int) -> List[Signal]:
        out: List[Signal] = [None] * len(rows)  # type: ignore[list-item]
        for r, sig in enumerate(rows):
            out[_bits.rotate_right(r, order)] = sig
        return out


class OmegaNetwork(_ShuffleExchangeNetwork):
    """Lawrie's omega network: ``n`` x (shuffle, exchange column).

    >>> OmegaNetwork(2).realizes([1, 3, 2, 0])
    True
    >>> OmegaNetwork(2).realizes([0, 2, 1, 3])
    False
    """

    def route(self, tags: PermutationLike,
              payloads: Optional[Sequence] = None, *,
              trace: bool = False) -> RouteResult:
        signals = self._make_signals(tags, payloads)
        requested = [sig.tag for sig in signals]
        rows = signals
        traces: List[StageTrace] = []
        blocked = 0
        for stage in range(self.n_stages):
            rows = self._shuffle_rows(rows, self._order)
            before = tuple(sig.tag for sig in rows)
            ctrl = self._order - 1 - stage
            rows, states, conflicts = self._exchange_column(rows, ctrl)
            blocked += conflicts
            if trace:
                traces.append(StageTrace(
                    stage=stage,
                    control_bit=ctrl,
                    input_tags=before,
                    states=states,
                    output_tags=tuple(sig.tag for sig in rows),
                ))
        result = collect_result(requested, rows, traces)
        if blocked and result.success:
            # A conflict always misroutes someone; this is unreachable,
            # but keep the invariant explicit for safety.
            raise AssertionError("conflicting route reported success")
        return result


class InverseOmegaNetwork(_ShuffleExchangeNetwork):
    """The omega network run backwards: ``n`` x (exchange column,
    unshuffle).

    Realizes exactly the inverse-omega class:
    ``InverseOmegaNetwork(n).realizes(D)`` iff
    ``OmegaNetwork(n).realizes(D.inverse())``.
    """

    def route(self, tags: PermutationLike,
              payloads: Optional[Sequence] = None, *,
              trace: bool = False) -> RouteResult:
        signals = self._make_signals(tags, payloads)
        requested = [sig.tag for sig in signals]
        rows = signals
        traces: List[StageTrace] = []
        for stage in range(self.n_stages):
            before = tuple(sig.tag for sig in rows)
            ctrl = stage  # LSB first: after the remaining n-stage
            # unshuffles, the port bit written here lands at position
            # `stage` of the output row label.
            rows, states, _conflicts = self._exchange_column(rows, ctrl)
            if trace:
                traces.append(StageTrace(
                    stage=stage,
                    control_bit=ctrl,
                    input_tags=before,
                    states=states,
                    output_tags=tuple(sig.tag for sig in rows),
                ))
            rows = self._unshuffle_rows(rows, self._order)
        # The n unshuffles compose to a full rotation, i.e. identity on
        # row labels; signals are already on their final rows.
        result = collect_result(requested, rows, traces)
        return result
