"""The full crossbar (Section I baseline): trivial to set up, ``N^2``
crosspoints.

A crossbar realizes every permutation in a single switching stage — the
paper cites it as the easy-setup extreme whose hardware cost
(``O(N^2)`` switches) the Benes network avoids.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from ..core.permutation import Permutation
from ..core.routing import RouteResult, StageTrace, collect_result
from ..core.switch import CROSS, STRAIGHT, Signal
from ..errors import InvalidParameterError, SizeMismatchError
from .base import PermutationNetwork

__all__ = ["Crossbar"]

PermutationLike = Union[Permutation, Sequence[int]]


class Crossbar(PermutationNetwork):
    """An ``N x N`` crosspoint matrix.

    Routing closes crosspoint ``(i, D_i)`` for every input — the "setup"
    is reading the tags once, which is why the paper calls it trivial.

    >>> Crossbar(2).realizes([1, 3, 2, 0])
    True
    """

    def __init__(self, order: int):
        if order < 1:
            raise InvalidParameterError(f"order must be >= 1, got {order}")
        self._order = order

    @property
    def order(self) -> int:
        return self._order

    @property
    def n_switches(self) -> int:
        """``N^2`` crosspoints."""
        return self.n_terminals * self.n_terminals

    @property
    def delay(self) -> int:
        """One switching stage."""
        return 1

    def route(self, tags: PermutationLike,
              payloads: Optional[Sequence] = None, *,
              trace: bool = False) -> RouteResult:
        perm = tags if isinstance(tags, Permutation) else Permutation(tags)
        if perm.size != self.n_terminals:
            raise SizeMismatchError(
                f"permutation of size {perm.size} on a crossbar with "
                f"{self.n_terminals} terminals"
            )
        if payloads is None:
            payloads = list(range(self.n_terminals))
        elif len(payloads) != self.n_terminals:
            raise SizeMismatchError(
                f"{len(payloads)} payloads for {self.n_terminals} inputs"
            )
        rows: List[Signal] = [None] * self.n_terminals  # type: ignore
        for i in range(self.n_terminals):
            rows[perm[i]] = Signal(tag=perm[i], payload=payloads[i],
                                   source=i)
        traces = ()
        if trace:
            traces = (StageTrace(
                stage=0,
                control_bit=None,
                input_tags=perm.as_tuple(),
                states=tuple(
                    CROSS if perm[i] != i else STRAIGHT
                    for i in range(self.n_terminals)
                ),
                output_tags=tuple(sig.tag for sig in rows),
            ),)
        return collect_result(perm.as_tuple(), rows, traces)
