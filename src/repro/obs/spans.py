"""Causally-linked **spans** over the JSON-lines trace stream.

A span is one timed unit of routing work — a batch route, a planner
pass, an executor dispatch, one shard inside a worker process — emitted
as a single ``span`` trace event when it finishes::

    {"ev": "span", "name": "executor.shard", "trace_id": "…",
     "span_id": "…", "parent_id": "…", "start_ts": …, "seconds": …, …}

Spans nest through a :mod:`contextvars` variable: a span opened while
another is active becomes its child (same ``trace_id``, ``parent_id`` =
the enclosing ``span_id``), so ``route -> plan -> shard[i] ->
setup/transit`` reassembles into one tree from the flat stream
(``tools/trace_tree.py`` pretty-prints it).  The shard executor carries
``(trace_id, span_id)`` into worker processes inside the task payload
and re-roots the worker's spans under the dispatch span with
:func:`adopt`, so per-shard events written from many processes — one
atomic appended line each, see :mod:`repro.obs.trace` — interleave
safely and still stitch back together.

Everything here is inert while no trace sink is configured:
:func:`start_span` returns ``None`` and the :func:`span` context
manager yields ``None`` after a single activity check, preserving the
observability layer's off-by-default cost contract.  Emitted span
counts are tallied under the ``obs.spans.emitted`` counter when
metrics are enabled.
"""

from __future__ import annotations

import contextvars
import functools
import os
import time
from contextlib import contextmanager
from time import perf_counter as _perf_counter
from typing import Optional

__all__ = [
    "SpanContext",
    "Span",
    "adopt",
    "current_context",
    "new_id",
    "span",
    "spanned",
    "start_span",
]


class SpanContext:
    """The identifiers that place one span in its trace tree."""

    __slots__ = ("trace_id", "span_id", "parent_id")

    def __init__(self, trace_id: str, span_id: str,
                 parent_id: Optional[str]):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id

    def __repr__(self) -> str:
        return (f"SpanContext(trace_id={self.trace_id!r}, "
                f"span_id={self.span_id!r}, "
                f"parent_id={self.parent_id!r})")


_CURRENT: "contextvars.ContextVar[Optional[SpanContext]]" = \
    contextvars.ContextVar("benes_current_span", default=None)


def new_id() -> str:
    """A fresh 64-bit hex identifier (collision-safe across the
    executor's worker processes, unlike a per-process counter)."""
    return os.urandom(8).hex()


def current_context() -> Optional[SpanContext]:
    """The active span's context in this thread/task, or ``None``."""
    return _CURRENT.get()


class Span:
    """A started span; call :meth:`finish` exactly once.

    Prefer the :func:`span` context manager; this manual form exists
    for hot paths that cannot wrap their body in a ``with`` block
    without restructuring (e.g. ``BenesNetwork.route``).
    """

    __slots__ = ("name", "context", "fields", "_start_ts", "_t0",
                 "_token", "_done")

    def __init__(self, name: str, context: SpanContext, fields: dict,
                 token: "contextvars.Token"):
        self.name = name
        self.context = context
        self.fields = fields
        self._start_ts = time.time()
        self._t0 = _perf_counter()
        self._token = token
        self._done = False

    def finish(self, **extra) -> None:
        """Emit the ``span`` event and restore the enclosing span."""
        if self._done:
            return
        self._done = True
        _CURRENT.reset(self._token)
        from . import inc, trace_event

        fields = dict(self.fields)
        fields.update(extra)
        trace_event(
            "span",
            name=self.name,
            trace_id=self.context.trace_id,
            span_id=self.context.span_id,
            parent_id=self.context.parent_id,
            start_ts=self._start_ts,
            seconds=_perf_counter() - self._t0,
            **fields,
        )
        inc("obs.spans.emitted")


def start_span(name: str, **fields) -> Optional[Span]:
    """Open a span as a child of the current one (or a new trace root)
    and make it current; returns ``None`` — and does no work beyond one
    activity check — when no trace sink is configured."""
    from . import trace_active

    if not trace_active():
        return None
    parent = _CURRENT.get()
    context = SpanContext(
        trace_id=parent.trace_id if parent is not None else new_id(),
        span_id=new_id(),
        parent_id=parent.span_id if parent is not None else None,
    )
    token = _CURRENT.set(context)
    return Span(name, context, fields, token)


@contextmanager
def span(name: str, **fields):
    """Context-manager form of :func:`start_span`: yields the
    :class:`Span` (or ``None`` while tracing is off) and finishes it on
    exit, success or not."""
    opened = start_span(name, **fields)
    if opened is None:
        yield None
        return
    try:
        yield opened
    finally:
        opened.finish()


def spanned(name: str):
    """Decorator form of :func:`span` for whole entry points: wraps
    each call of the decorated function in a span named ``name`` while
    a trace sink is active, and costs one activity check per call while
    it is not — cheap enough for the batch engine's public surface."""
    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            from . import trace_active

            if not trace_active():
                return fn(*args, **kwargs)
            opened = start_span(name)
            try:
                return fn(*args, **kwargs)
            finally:
                opened.finish()
        return wrapper
    return decorate


@contextmanager
def adopt(trace_id: str, span_id: str):
    """Install a *remote* parent context — used by executor workers to
    re-root their spans under the dispatching process's span.  Children
    opened inside the block carry ``trace_id`` and parent ``span_id``
    exactly as if the dispatch span were local."""
    token = _CURRENT.set(SpanContext(trace_id, span_id, None))
    try:
        yield
    finally:
        _CURRENT.reset(token)
