"""Process-wide metrics instruments and their registry.

Three instrument kinds cover every measurement the routing layers emit:

- :class:`Counter` — a monotonically increasing tally (route counts,
  successes, per-stage switch flips);
- :class:`Gauge` — a last-write-wins level (sizes, configuration);
- :class:`Histogram` — a bucketed distribution with count/sum/min/max
  (wall times, batch sizes).

Instruments live in a :class:`MetricsRegistry` keyed by flat dotted
names (the catalogue is in ``DESIGN.md`` § Observability).  Every
mutation and every snapshot is lock-guarded, so concurrent routing
threads may bump the same counter while another thread serializes a
snapshot.  Pull-style sources (the accel LRU caches, which already
track their own hits/misses) register a *provider* callable instead of
pushing on every access; providers are invoked only at snapshot time.

Registries are **mergeable across processes**: every instrument can
emit a *delta* — the change since its previous delta — in a
JSON-picklable wire form, and :meth:`MetricsRegistry.merge` folds such
a delta into another registry with counter-sum, gauge-last-write and
histogram-bucket-add semantics.  The shard executor ships each spawn
worker's delta back alongside its shard result, so the parent's
snapshot reflects executor-wide truth (see
:mod:`repro.accel.executor`).  Providers are pull-style and per-process
by design; they never travel in a delta.

The registry itself is always live — the near-zero-overhead no-op
behaviour of the disabled state is implemented one layer up, in
:mod:`repro.obs` (hot paths check ``obs.enabled()`` before touching
any instrument).
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional, Sequence, Tuple

from ..errors import InvalidParameterError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BOUNDS",
    "POW2_BOUNDS",
    "DELTA_SCHEMA_VERSION",
]

#: Version tag carried by every registry delta (bumped whenever the
#: wire form of :meth:`MetricsRegistry.snapshot_delta` changes).
DELTA_SCHEMA_VERSION = 1

#: Default histogram bucket upper bounds for wall-clock seconds:
#: geometric 1µs .. 10s (routing a vector takes µs-ms; a huge batch
#: or census can take seconds).
DEFAULT_TIME_BOUNDS: Tuple[float, ...] = tuple(
    base * scale
    for scale in (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0)
    for base in (1.0, 2.5, 5.0)
) + (10.0,)

#: Bucket bounds for cardinalities (batch sizes): powers of two.
POW2_BOUNDS: Tuple[float, ...] = tuple(float(1 << k) for k in range(21))


class Counter:
    """A named, thread-safe, monotonically increasing tally."""

    __slots__ = ("name", "_value", "_shipped", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._shipped = 0
        self._lock = threading.Lock()

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise InvalidParameterError(
                f"counter {self.name!r}: increment must be >= 0, "
                f"got {amount}"
            )
        with self._lock:
            self._value += amount

    def delta(self) -> int:
        """Increment since the previous :meth:`delta` call (and mark
        it shipped)."""
        with self._lock:
            change = self._value - self._shipped
            self._shipped = self._value
            return change

    def reset(self) -> None:
        with self._lock:
            self._value = 0
            self._shipped = 0


class Gauge:
    """A named, thread-safe, last-write-wins level."""

    __slots__ = ("name", "_value", "_dirty", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._dirty = False
        self._lock = threading.Lock()

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value
            self._dirty = True

    def delta(self) -> Optional[float]:
        """The current value if it was written since the previous
        :meth:`delta` call, else ``None`` (nothing to ship)."""
        with self._lock:
            if not self._dirty:
                return None
            self._dirty = False
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0
            self._dirty = False


class Histogram:
    """A named, thread-safe bucketed distribution.

    Buckets are cumulative-style upper bounds (``value <= bound``) plus
    an implicit overflow bucket; ``snapshot()`` additionally reports
    count, sum, min and max so mean latency is recoverable without
    bucket arithmetic.
    """

    __slots__ = ("name", "bounds", "_bucket_counts", "_count", "_sum",
                 "_min", "_max", "_shipped_buckets", "_shipped_count",
                 "_shipped_sum", "_win_min", "_win_max", "_lock")

    def __init__(self, name: str,
                 bounds: Optional[Sequence[float]] = None):
        bounds = tuple(bounds if bounds is not None
                       else DEFAULT_TIME_BOUNDS)
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise InvalidParameterError(
                f"histogram {name!r}: bucket bounds must be strictly "
                f"increasing, got {bounds}"
            )
        self.name = name
        self.bounds = bounds
        self._bucket_counts = [0] * (len(bounds) + 1)  # +overflow
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        # delta bookkeeping: what the previous delta() already shipped,
        # plus min/max of the current (unshipped) window.
        self._shipped_buckets = [0] * (len(bounds) + 1)
        self._shipped_count = 0
        self._shipped_sum = 0.0
        self._win_min = float("inf")
        self._win_max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        # Linear scan: bound lists are short (~20) and observations on
        # the hot path only happen with metrics enabled.
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        with self._lock:
            self._bucket_counts[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            if value < self._win_min:
                self._win_min = value
            if value > self._win_max:
                self._win_max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def snapshot(self) -> Dict:
        with self._lock:
            if not self._count:
                return {"count": 0, "sum": 0.0}
            buckets = {
                f"le_{bound:g}": n
                for bound, n in zip(self.bounds, self._bucket_counts)
                if n
            }
            overflow = self._bucket_counts[-1]
            if overflow:
                buckets["overflow"] = overflow
            return {
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
                "mean": self._sum / self._count,
                "buckets": buckets,
            }

    def delta(self) -> Optional[Dict]:
        """Observations since the previous :meth:`delta` call in wire
        form (``None`` when the window is empty): raw per-bucket counts
        (including overflow), count/sum, and the window's min/max, plus
        the bounds so a receiver can build a matching instrument."""
        with self._lock:
            count = self._count - self._shipped_count
            if not count:
                return None
            change = {
                "bounds": list(self.bounds),
                "bucket_counts": [
                    now - shipped
                    for now, shipped in zip(self._bucket_counts,
                                            self._shipped_buckets)
                ],
                "count": count,
                "sum": self._sum - self._shipped_sum,
                "min": self._win_min,
                "max": self._win_max,
            }
            self._shipped_buckets = list(self._bucket_counts)
            self._shipped_count = self._count
            self._shipped_sum = self._sum
            self._win_min = float("inf")
            self._win_max = float("-inf")
            return change

    def merge_delta(self, change: Dict) -> None:
        """Fold another histogram's delta (bucket-add semantics); the
        bucket bounds must match."""
        bounds = tuple(change.get("bounds", ()))
        if bounds != self.bounds:
            raise InvalidParameterError(
                f"histogram {self.name!r}: cannot merge a delta with "
                f"bounds {bounds} into bounds {self.bounds}"
            )
        with self._lock:
            for i, n in enumerate(change["bucket_counts"]):
                self._bucket_counts[i] += n
            self._count += change["count"]
            self._sum += change["sum"]
            if change["min"] < self._min:
                self._min = change["min"]
            if change["max"] > self._max:
                self._max = change["max"]
            if change["min"] < self._win_min:
                self._win_min = change["min"]
            if change["max"] > self._win_max:
                self._win_max = change["max"]

    def reset(self) -> None:
        with self._lock:
            self._bucket_counts = [0] * (len(self.bounds) + 1)
            self._count = 0
            self._sum = 0.0
            self._min = float("inf")
            self._max = float("-inf")
            self._shipped_buckets = [0] * (len(self.bounds) + 1)
            self._shipped_count = 0
            self._shipped_sum = 0.0
            self._win_min = float("inf")
            self._win_max = float("-inf")


class MetricsRegistry:
    """Name -> instrument mapping with lock-guarded lookup, snapshot
    and reset.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: the
    first caller fixes the instrument's kind, and asking for the same
    name with a different kind raises — silent kind confusion would
    corrupt the snapshot.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._providers: Dict[str, Callable[[], Dict]] = {}

    def _check_free(self, name: str, want: Dict) -> None:
        for kind, table in (("counter", self._counters),
                            ("gauge", self._gauges),
                            ("histogram", self._histograms)):
            if table is not want and name in table:
                raise InvalidParameterError(
                    f"metric {name!r} already registered as a {kind}"
                )

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                self._check_free(name, self._counters)
                instrument = self._counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                self._check_free(name, self._gauges)
                instrument = self._gauges[name] = Gauge(name)
            return instrument

    def histogram(self, name: str,
                  bounds: Optional[Sequence[float]] = None) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                self._check_free(name, self._histograms)
                instrument = self._histograms[name] = Histogram(
                    name, bounds
                )
            return instrument

    def register_provider(self, name: str,
                          provider: Callable[[], Dict]) -> None:
        """Attach a pull-style metrics source: ``provider()`` must
        return a JSON-ready dict, merged into every snapshot under
        ``providers[name]``.  Re-registering a name replaces it (module
        reloads in tests)."""
        with self._lock:
            self._providers[name] = provider

    def snapshot(self) -> Dict:
        """A consistent JSON-ready view of every instrument."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
            providers = dict(self._providers)
        snap = {
            "counters": {n: c.value for n, c in sorted(counters.items())},
            "gauges": {n: g.value for n, g in sorted(gauges.items())},
            "histograms": {n: h.snapshot()
                           for n, h in sorted(histograms.items())},
        }
        if providers:
            snap["providers"] = {
                name: provider()
                for name, provider in sorted(providers.items())
            }
        return snap

    def snapshot_delta(self) -> Dict:
        """The registry's change since the previous ``snapshot_delta``
        call, in a JSON-picklable wire form suitable for
        :meth:`merge` on another process's registry.

        Counters ship their increment, gauges their value (only when
        written since the last delta), histograms their raw bucket
        increments plus window min/max.  Instruments with nothing new
        are omitted, so an idle registry's delta is empty.  Providers
        are per-process pulls and never travel.
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        delta: Dict = {"v": DELTA_SCHEMA_VERSION,
                       "counters": {}, "gauges": {}, "histograms": {}}
        for name, counter in counters.items():
            change = counter.delta()
            if change:
                delta["counters"][name] = change
        for name, gauge in gauges.items():
            change = gauge.delta()
            if change is not None:
                delta["gauges"][name] = change
        for name, histogram in histograms.items():
            change = histogram.delta()
            if change is not None:
                delta["histograms"][name] = change
        return delta

    def merge(self, delta: Dict) -> None:
        """Fold a :meth:`snapshot_delta` wire form into this registry:
        counters sum, gauges take the shipped last write, histogram
        buckets add.  Instruments missing here are created on the fly
        (histograms adopt the delta's bounds), so a fresh parent
        registry absorbs any worker's delta."""
        if delta.get("v") != DELTA_SCHEMA_VERSION:
            raise InvalidParameterError(
                f"cannot merge a registry delta with schema version "
                f"{delta.get('v')!r} (expected {DELTA_SCHEMA_VERSION})"
            )
        for name, amount in delta.get("counters", {}).items():
            self.counter(name).inc(amount)
        for name, value in delta.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, change in delta.get("histograms", {}).items():
            self.histogram(name, change.get("bounds")) \
                .merge_delta(change)

    def reset(self) -> None:
        """Zero every instrument (providers are pull-style and keep
        their own state — e.g. ``repro.accel.cache_clear()``)."""
        with self._lock:
            instruments = (list(self._counters.values())
                           + list(self._gauges.values())
                           + list(self._histograms.values()))
        for instrument in instruments:
            instrument.reset()
