"""Process-wide metrics instruments and their registry.

Three instrument kinds cover every measurement the routing layers emit:

- :class:`Counter` — a monotonically increasing tally (route counts,
  successes, per-stage switch flips);
- :class:`Gauge` — a last-write-wins level (sizes, configuration);
- :class:`Histogram` — a bucketed distribution with count/sum/min/max
  (wall times, batch sizes).

Instruments live in a :class:`MetricsRegistry` keyed by flat dotted
names (the catalogue is in ``DESIGN.md`` § Observability).  Every
mutation and every snapshot is lock-guarded, so concurrent routing
threads may bump the same counter while another thread serializes a
snapshot.  Pull-style sources (the accel LRU caches, which already
track their own hits/misses) register a *provider* callable instead of
pushing on every access; providers are invoked only at snapshot time.

The registry itself is always live — the near-zero-overhead no-op
behaviour of the disabled state is implemented one layer up, in
:mod:`repro.obs` (hot paths check ``obs.enabled()`` before touching
any instrument).
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional, Sequence, Tuple

from ..errors import InvalidParameterError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BOUNDS",
    "POW2_BOUNDS",
]

#: Default histogram bucket upper bounds for wall-clock seconds:
#: geometric 1µs .. 10s (routing a vector takes µs-ms; a huge batch
#: or census can take seconds).
DEFAULT_TIME_BOUNDS: Tuple[float, ...] = tuple(
    base * scale
    for scale in (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0)
    for base in (1.0, 2.5, 5.0)
) + (10.0,)

#: Bucket bounds for cardinalities (batch sizes): powers of two.
POW2_BOUNDS: Tuple[float, ...] = tuple(float(1 << k) for k in range(21))


class Counter:
    """A named, thread-safe, monotonically increasing tally."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise InvalidParameterError(
                f"counter {self.name!r}: increment must be >= 0, "
                f"got {amount}"
            )
        with self._lock:
            self._value += amount

    def reset(self) -> None:
        with self._lock:
            self._value = 0


class Gauge:
    """A named, thread-safe, last-write-wins level."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Histogram:
    """A named, thread-safe bucketed distribution.

    Buckets are cumulative-style upper bounds (``value <= bound``) plus
    an implicit overflow bucket; ``snapshot()`` additionally reports
    count, sum, min and max so mean latency is recoverable without
    bucket arithmetic.
    """

    __slots__ = ("name", "bounds", "_bucket_counts", "_count", "_sum",
                 "_min", "_max", "_lock")

    def __init__(self, name: str,
                 bounds: Optional[Sequence[float]] = None):
        bounds = tuple(bounds if bounds is not None
                       else DEFAULT_TIME_BOUNDS)
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise InvalidParameterError(
                f"histogram {name!r}: bucket bounds must be strictly "
                f"increasing, got {bounds}"
            )
        self.name = name
        self.bounds = bounds
        self._bucket_counts = [0] * (len(bounds) + 1)  # +overflow
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        # Linear scan: bound lists are short (~20) and observations on
        # the hot path only happen with metrics enabled.
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        with self._lock:
            self._bucket_counts[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def snapshot(self) -> Dict:
        with self._lock:
            if not self._count:
                return {"count": 0, "sum": 0.0}
            buckets = {
                f"le_{bound:g}": n
                for bound, n in zip(self.bounds, self._bucket_counts)
                if n
            }
            overflow = self._bucket_counts[-1]
            if overflow:
                buckets["overflow"] = overflow
            return {
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
                "mean": self._sum / self._count,
                "buckets": buckets,
            }

    def reset(self) -> None:
        with self._lock:
            self._bucket_counts = [0] * (len(self.bounds) + 1)
            self._count = 0
            self._sum = 0.0
            self._min = float("inf")
            self._max = float("-inf")


class MetricsRegistry:
    """Name -> instrument mapping with lock-guarded lookup, snapshot
    and reset.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: the
    first caller fixes the instrument's kind, and asking for the same
    name with a different kind raises — silent kind confusion would
    corrupt the snapshot.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._providers: Dict[str, Callable[[], Dict]] = {}

    def _check_free(self, name: str, want: Dict) -> None:
        for kind, table in (("counter", self._counters),
                            ("gauge", self._gauges),
                            ("histogram", self._histograms)):
            if table is not want and name in table:
                raise InvalidParameterError(
                    f"metric {name!r} already registered as a {kind}"
                )

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                self._check_free(name, self._counters)
                instrument = self._counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                self._check_free(name, self._gauges)
                instrument = self._gauges[name] = Gauge(name)
            return instrument

    def histogram(self, name: str,
                  bounds: Optional[Sequence[float]] = None) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                self._check_free(name, self._histograms)
                instrument = self._histograms[name] = Histogram(
                    name, bounds
                )
            return instrument

    def register_provider(self, name: str,
                          provider: Callable[[], Dict]) -> None:
        """Attach a pull-style metrics source: ``provider()`` must
        return a JSON-ready dict, merged into every snapshot under
        ``providers[name]``.  Re-registering a name replaces it (module
        reloads in tests)."""
        with self._lock:
            self._providers[name] = provider

    def snapshot(self) -> Dict:
        """A consistent JSON-ready view of every instrument."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
            providers = dict(self._providers)
        snap = {
            "counters": {n: c.value for n, c in sorted(counters.items())},
            "gauges": {n: g.value for n, g in sorted(gauges.items())},
            "histograms": {n: h.snapshot()
                           for n, h in sorted(histograms.items())},
        }
        if providers:
            snap["providers"] = {
                name: provider()
                for name, provider in sorted(providers.items())
            }
        return snap

    def reset(self) -> None:
        """Zero every instrument (providers are pull-style and keep
        their own state — e.g. ``repro.accel.cache_clear()``)."""
        with self._lock:
            instruments = (list(self._counters.values())
                           + list(self._gauges.values())
                           + list(self._histograms.values()))
        for instrument in instruments:
            instrument.reset()
