"""Metric **exporters**: OpenMetrics / JSON text renderers and a
scrape endpoint.

The registry's :func:`repro.obs.snapshot` is a JSON-ready dict; this
module turns it into the two formats external tooling expects:

- :func:`render_json` — the snapshot, pretty-printed (the format
  ``benes metrics`` has always printed);
- :func:`render_openmetrics` — the OpenMetrics text exposition format
  (the Prometheus wire format): counters as ``<name>_total``,
  histograms as cumulative ``_bucket{le="..."}`` series plus
  ``_count`` / ``_sum``, terminated by ``# EOF``.  Dotted metric names
  are sanitized to underscore form (``accel.batch.calls`` ->
  ``accel_batch_calls``); provider pulls (the accel cache stats) are
  flattened to gauges.

:func:`serve` exposes ``GET /metrics`` on a :mod:`http.server`
endpoint rendering a fresh snapshot per scrape — stdlib only, wired to
``benes metrics serve --port``.  ``benes metrics dump`` prints either
format once (lintable by ``tools/check_openmetrics.py``).
"""

from __future__ import annotations

import json
import re
from typing import Optional, Tuple

__all__ = [
    "OPENMETRICS_CONTENT_TYPE",
    "render_json",
    "render_openmetrics",
    "build_server",
    "serve",
]

#: The content type Prometheus negotiates for OpenMetrics payloads.
OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(name: str) -> str:
    """Sanitize a dotted registry name to OpenMetrics form."""
    sanitized = _NAME_OK.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _format_value(value) -> str:
    """OpenMetrics sample value: integers bare, floats via repr."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _histogram_buckets(snap: dict) -> Tuple[list, int]:
    """``[(upper_bound, window_count), ...]`` sorted by bound, plus the
    overflow count, recovered from a histogram snapshot's sparse
    ``le_<bound>`` bucket dict."""
    buckets = snap.get("buckets", {})
    bounded = []
    overflow = 0
    for key, count in buckets.items():
        if key == "overflow":
            overflow = count
        else:
            bounded.append((float(key[len("le_"):]), count))
    bounded.sort(key=lambda pair: pair[0])
    return bounded, overflow


def _flatten_provider(prefix: str, value, out: list) -> None:
    """Flatten a provider pull (nested dicts of numbers) into
    ``(dotted_name, number)`` leaves; non-numeric leaves are dropped."""
    if isinstance(value, dict):
        for key, sub in sorted(value.items()):
            _flatten_provider(f"{prefix}.{key}", sub, out)
    elif isinstance(value, (int, float)):
        out.append((prefix, value))


def render_json(snapshot: Optional[dict] = None, *, indent: int = 2
                ) -> str:
    """The snapshot as pretty-printed JSON (``benes metrics``'s
    historical output format)."""
    if snapshot is None:
        from . import snapshot as take_snapshot

        snapshot = take_snapshot()
    return json.dumps(snapshot, indent=indent, sort_keys=True,
                      default=repr)


def render_openmetrics(snapshot: Optional[dict] = None) -> str:
    """The snapshot in the OpenMetrics text exposition format,
    ``# EOF``-terminated; pass ``snapshot`` to render a saved dict
    instead of the live registry."""
    if snapshot is None:
        from . import snapshot as take_snapshot

        snapshot = take_snapshot()
    lines = []
    for name, value in snapshot.get("counters", {}).items():
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}_total {_format_value(value)}")
    for name, value in snapshot.get("gauges", {}).items():
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(value)}")
    for name, hist in snapshot.get("histograms", {}).items():
        metric = _metric_name(name)
        count = hist.get("count", 0)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, bucket_count in _histogram_buckets(hist)[0]:
            cumulative += bucket_count
            lines.append(
                f'{metric}_bucket{{le="{bound:g}"}} {cumulative}'
            )
        lines.append(f'{metric}_bucket{{le="+Inf"}} {count}')
        lines.append(f"{metric}_sum {_format_value(hist.get('sum', 0.0))}")
        lines.append(f"{metric}_count {count}")
    provider_leaves: list = []
    for name, pulled in snapshot.get("providers", {}).items():
        _flatten_provider(name, pulled, provider_leaves)
    for name, value in provider_leaves:
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(value)}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def build_server(port: int, host: str = "127.0.0.1"):
    """An :class:`http.server.HTTPServer` answering ``GET /metrics``
    with a fresh OpenMetrics snapshot per request (anything else is a
    404).  Returned unstarted so tests and :func:`serve` share one
    construction path; call ``serve_forever()`` (or ``handle_request``)
    on it and ``server_close()`` when done."""
    from http.server import BaseHTTPRequestHandler, HTTPServer

    class ReusableHTTPServer(HTTPServer):
        # One lifecycle contract across endpoints: SO_REUSEADDR so a
        # restart never trades TIME_WAIT for EADDRINUSE (see
        # repro.serve.lifecycle).
        allow_reuse_address = True

    class MetricsHandler(BaseHTTPRequestHandler):
        def do_GET(self):  # noqa: N802 - http.server API
            if self.path.split("?", 1)[0] != "/metrics":
                self.send_error(404, "only /metrics is served")
                return
            body = render_openmetrics().encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", OPENMETRICS_CONTENT_TYPE)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, format, *args):  # noqa: A002
            pass  # scrapes should not spam stderr

    return ReusableHTTPServer((host, port), MetricsHandler)


def serve(port: int, host: str = "127.0.0.1") -> None:
    """Serve ``/metrics`` until interrupted (the ``benes metrics
    serve`` entry point).  Runs under the package-wide server
    lifecycle (:mod:`repro.serve.lifecycle`): ``SO_REUSEADDR`` on the
    socket, and a KeyboardInterrupt closes the socket and flushes the
    trace sink instead of printing a traceback."""
    from ..serve.lifecycle import run_http_server

    run_http_server(build_server(port, host))
