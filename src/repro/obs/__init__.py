"""``repro.obs`` — near-zero-overhead metrics and tracing.

The observability layer every routing surface reports through: a
process-wide :class:`~repro.obs.registry.MetricsRegistry` (counters,
gauges, histograms, pull-style providers) plus a JSON-lines
:class:`~repro.obs.trace.TraceEmitter` for per-stage route events.

**Off by default.**  Instrumented hot paths guard every measurement
with :func:`enabled` — a single module-global read — so the disabled
cost is one boolean check per routing call (benchmarked < 5 % on the
scalar and batch engines; see ``DESIGN.md`` § Observability for the
metric-name catalogue and overhead numbers).  Enable with::

    import repro.obs as obs
    obs.enable()                       # metrics only
    obs.enable(trace="route.jsonl")    # metrics + trace events
    ... route things ...
    print(obs.snapshot())

or from the environment (read once at import): ``BENES_METRICS=1``
turns metrics on, ``BENES_TRACE=<path>`` additionally streams trace
events to ``<path>``.  The CLI surfaces are ``benes metrics`` and the
``--profile`` flag of ``benes route`` / ``benes bench``.

This package deliberately imports nothing from ``repro`` beyond
:mod:`repro.errors`, so any layer (``core``, ``accel``, ``planner``,
``cli``) may instrument itself without import cycles.
"""

from __future__ import annotations

import os
from typing import IO, Optional, Sequence, Union

from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    DEFAULT_TIME_BOUNDS,
    DELTA_SCHEMA_VERSION,
    POW2_BOUNDS,
)
from .spans import (
    Span,
    SpanContext,
    current_context as current_span,
    span,
    start_span,
)
from .trace import TRACE_SCHEMA_VERSION, TraceEmitter

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanContext",
    "TraceEmitter",
    "DEFAULT_TIME_BOUNDS",
    "DELTA_SCHEMA_VERSION",
    "POW2_BOUNDS",
    "TRACE_SCHEMA_VERSION",
    "current_span",
    "enable",
    "disable",
    "enabled",
    "inc",
    "merge",
    "set_gauge",
    "observe",
    "registry",
    "reset",
    "snapshot",
    "snapshot_delta",
    "span",
    "start_span",
    "trace_active",
    "trace_event",
    "trace_off",
    "trace_path",
    "trace_to",
]

_REGISTRY = MetricsRegistry()
_TRACER = TraceEmitter()
_enabled = False


def registry() -> MetricsRegistry:
    """The process-wide metrics registry (always live; instruments
    only accumulate while :func:`enabled` is true)."""
    return _REGISTRY


def enabled() -> bool:
    """True when metrics collection is on.  Hot paths call this once
    per routing pass and skip all instrumentation when false."""
    return _enabled


def enable(trace: Union[str, IO[str], None] = None) -> None:
    """Turn metrics collection on; optionally also direct JSON-lines
    trace events to ``trace`` (a path or an open text file)."""
    global _enabled
    _enabled = True
    if trace is not None:
        _TRACER.configure(trace)


def disable() -> None:
    """Turn metrics collection off and detach any trace sink.
    Accumulated values survive until :func:`reset`."""
    global _enabled
    _enabled = False
    _TRACER.configure(None)


def reset() -> None:
    """Zero every instrument and the trace sequence number."""
    _REGISTRY.reset()
    _TRACER.reset_seq()


def snapshot() -> dict:
    """JSON-ready view of every instrument, including provider pulls
    (e.g. the accel LRU hit/miss stats)."""
    snap = _REGISTRY.snapshot()
    snap["enabled"] = _enabled
    return snap


def snapshot_delta() -> dict:
    """The registry's change since the previous ``snapshot_delta``
    call, in the mergeable wire form of
    :meth:`~repro.obs.registry.MetricsRegistry.snapshot_delta` —
    what an executor worker ships back with each shard result."""
    return _REGISTRY.snapshot_delta()


def merge(delta: dict) -> None:
    """Fold another process's :func:`snapshot_delta` into this
    process's registry (counter-sum / gauge-last-write /
    histogram-bucket-add)."""
    _REGISTRY.merge(delta)


# ----------------------------------------------------------------------
# Push helpers — each is a no-op unless metrics are enabled, so call
# sites stay single-line.
# ----------------------------------------------------------------------

def inc(name: str, amount: int = 1) -> None:
    """Bump counter ``name`` (no-op while disabled)."""
    if _enabled:
        _REGISTRY.counter(name).inc(amount)


def set_gauge(name: str, value: float) -> None:
    """Set gauge ``name`` (no-op while disabled)."""
    if _enabled:
        _REGISTRY.gauge(name).set(value)


def observe(name: str, value: float,
            bounds: Optional[Sequence[float]] = None) -> None:
    """Record ``value`` into histogram ``name`` (no-op while
    disabled).  ``bounds`` only applies on first creation."""
    if _enabled:
        _REGISTRY.histogram(name, bounds).observe(value)


# ----------------------------------------------------------------------
# Trace facade — orthogonal to the metrics flag: a sink may be attached
# without counters (and vice versa).
# ----------------------------------------------------------------------

def trace_to(sink: Union[str, IO[str]]) -> None:
    """Stream trace events to ``sink`` (a path or open text file)."""
    _TRACER.configure(sink)


def trace_off() -> None:
    """Detach the trace sink (closing it if the emitter opened it)."""
    _TRACER.configure(None)


def trace_active() -> bool:
    """True when routing should emit trace events."""
    return _TRACER.active


def trace_path() -> Optional[str]:
    """The trace sink's filesystem path when it has one (shippable to
    executor workers, which append to the same file), else ``None``."""
    return _TRACER.path


def trace_event(event: str, **fields) -> None:
    """Emit one JSON-lines trace record (no-op without a sink)."""
    _TRACER.emit(event, **fields)


# Environment opt-in, read once at import: BENES_METRICS truthy turns
# metrics on; BENES_TRACE names a trace sink path.
if os.environ.get("BENES_METRICS", "").strip().lower() in (
        "1", "true", "yes", "on"):
    enable()
if os.environ.get("BENES_TRACE"):
    trace_to(os.environ["BENES_TRACE"])
