"""Structured JSON-lines trace events.

A trace is a flat stream of one-line JSON records written to a
configured sink (a path or an open text file, e.g. ``sys.stderr`` for
``benes route D --profile``).  Routing emits four event kinds:

- ``route_start`` — a vector entered the network (size, mode, tags);
- ``stage`` — one switch column fired (its control bit, the states it
  took, how many switches crossed);
- ``deliver`` — the vector left the network (success, realized
  mapping, wall time);
- ``span`` — a finished unit of timed work carrying
  ``trace_id``/``span_id``/``parent_id`` so the flat stream reassembles
  into a causal tree (see :mod:`repro.obs.spans` and
  ``tools/trace_tree.py``).

Every record carries the schema version, a wall-clock timestamp and a
per-process monotonically increasing ``seq`` so interleaved writers
remain sortable; non-span records emitted while a span is active are
additionally stamped with its ``trace_id``/``span_id``.

**Multi-process safety.**  A path sink is opened with ``O_APPEND`` and
every record is serialized to one buffer written by a single
``os.write`` call — on POSIX, appends of a whole buffer to a regular
file do not interleave mid-line, so the shard executor's worker
processes may share one trace file and every line still parses as
JSON.  File-object sinks get the same one-``write``-per-record
discipline plus an immediate flush, so a crashed process loses at most
the record being written.

The emitter is inert until :func:`repro.obs.trace_to` (or
``repro.obs.enable(trace=...)`` / ``BENES_TRACE=<path>``) configures a
sink; with no sink, :meth:`TraceEmitter.emit` is a single attribute
check.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import IO, Optional, Union

__all__ = ["TRACE_SCHEMA_VERSION", "TraceEmitter"]

#: Bumped whenever an event's required fields change.  v2: ``span``
#: events and span-context stamping of enclosed records.
TRACE_SCHEMA_VERSION = 2


class TraceEmitter:
    """Serializes trace events to one JSON line each."""

    def __init__(self):
        self._lock = threading.Lock()
        self._sink: Optional[IO[str]] = None
        self._fd: Optional[int] = None
        self._path: Optional[str] = None
        self._seq = 0

    @property
    def active(self) -> bool:
        """True when a sink is configured and events will be written."""
        return self._sink is not None or self._fd is not None

    @property
    def path(self) -> Optional[str]:
        """The sink's filesystem path when configured with one —
        shippable to worker processes so they append to the same file —
        else ``None`` (opaque file-object sinks cannot cross a process
        boundary)."""
        return self._path

    def configure(self, sink: Union[str, IO[str], None]) -> None:
        """Direct events to ``sink`` — a path (opened ``O_APPEND`` for
        atomic multi-process line writes) or an open text file;
        ``None`` disables tracing and closes any emitter-owned file."""
        with self._lock:
            if self._fd is not None:
                os.close(self._fd)
            self._sink = None
            self._fd = None
            self._path = None
            if isinstance(sink, str):
                self._fd = os.open(
                    sink, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
                )
                self._path = sink
            else:
                self._sink = sink

    def emit(self, event: str, **fields) -> None:
        """Write one event record; a no-op without a configured sink.

        ``fields`` must be JSON-serializable; tuples become lists.
        Records other than ``span`` events inherit the active span's
        ``trace_id``/``span_id`` (explicit fields win), linking
        per-stage events to their enclosing span.
        """
        if self._sink is None and self._fd is None:
            return
        if event != "span":
            from .spans import current_context

            context = current_context()
            if context is not None:
                fields.setdefault("trace_id", context.trace_id)
                fields.setdefault("span_id", context.span_id)
        with self._lock:
            if self._sink is None and self._fd is None:
                return  # configure(None) raced us
            self._seq += 1
            record = {
                "v": TRACE_SCHEMA_VERSION,
                "seq": self._seq,
                "ts": time.time(),
                "ev": event,
            }
            record.update(fields)
            line = json.dumps(record, separators=(",", ":"),
                              default=_jsonable) + "\n"
            if self._fd is not None:
                # One write() of the whole line to an O_APPEND fd:
                # atomic on POSIX regular files, so concurrent worker
                # processes never interleave mid-line.
                os.write(self._fd, line.encode("utf-8"))
            else:
                self._sink.write(line)
                self._sink.flush()

    def reset_seq(self) -> None:
        with self._lock:
            self._seq = 0


def _jsonable(value):
    """Last-resort encoder: IntEnums and NumPy scalars to int, other
    unknown objects to their repr."""
    try:
        return int(value)
    except (TypeError, ValueError):
        return repr(value)
