"""Structured JSON-lines trace events.

A trace is a flat stream of one-line JSON records written to a
configured sink (a path or an open text file, e.g. ``sys.stderr`` for
``benes route D --profile``).  Routing emits three event kinds:

- ``route_start`` — a vector entered the network (size, mode, tags);
- ``stage`` — one switch column fired (its control bit, the states it
  took, how many switches crossed);
- ``deliver`` — the vector left the network (success, realized
  mapping, wall time).

Every record carries the schema version, a wall-clock timestamp and a
per-process monotonically increasing ``seq`` so interleaved writers
remain sortable.  Emission is lock-guarded and line-buffered: one
``write`` per record, flushed immediately, so a crashed process loses
at most the record being written.

The emitter is inert until :func:`repro.obs.trace_to` (or
``repro.obs.enable(trace=...)`` / ``BENES_TRACE=<path>``) configures a
sink; with no sink, :meth:`TraceEmitter.emit` is a single attribute
check.
"""

from __future__ import annotations

import json
import threading
import time
from typing import IO, Optional, Union

__all__ = ["TRACE_SCHEMA_VERSION", "TraceEmitter"]

#: Bumped whenever an event's required fields change.
TRACE_SCHEMA_VERSION = 1


class TraceEmitter:
    """Serializes trace events to one JSON line each."""

    def __init__(self):
        self._lock = threading.Lock()
        self._sink: Optional[IO[str]] = None
        self._owns_sink = False
        self._seq = 0

    @property
    def active(self) -> bool:
        """True when a sink is configured and events will be written."""
        return self._sink is not None

    def configure(self, sink: Union[str, IO[str], None]) -> None:
        """Direct events to ``sink`` — a path (opened for append) or an
        open text file; ``None`` disables tracing and closes any
        emitter-owned file."""
        with self._lock:
            if self._owns_sink and self._sink is not None:
                self._sink.close()
            if isinstance(sink, str):
                self._sink = open(sink, "a", encoding="utf-8")
                self._owns_sink = True
            else:
                self._sink = sink
                self._owns_sink = False

    def emit(self, event: str, **fields) -> None:
        """Write one event record; a no-op without a configured sink.

        ``fields`` must be JSON-serializable; tuples become lists.
        """
        if self._sink is None:
            return
        with self._lock:
            sink = self._sink
            if sink is None:  # configure(None) raced us
                return
            self._seq += 1
            record = {
                "v": TRACE_SCHEMA_VERSION,
                "seq": self._seq,
                "ts": time.time(),
                "ev": event,
            }
            record.update(fields)
            sink.write(json.dumps(record, separators=(",", ":"),
                                  default=_jsonable) + "\n")
            sink.flush()

    def reset_seq(self) -> None:
        with self._lock:
            self._seq = 0


def _jsonable(value):
    """Last-resort encoder: IntEnums and NumPy scalars to int, other
    unknown objects to their repr."""
    try:
        return int(value)
    except (TypeError, ValueError):
        return repr(value)
