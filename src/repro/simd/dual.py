"""The dual-network SIMD computer proposed in the paper's conclusion.

Section IV: *"We propose an SIMD computer with two interconnection
networks: 1) a network E(n) providing direct connections between PEs
... 2) the self-routing Benes network B(n) with O(log N) delay ...
Then some permutations are performed more efficiently through E(n),
while some others via B(n)."*

The paper's cost argument: a routing step on E(n) involves broadcasting
an instruction and gating registers — many gate delays per step —
whereas a transit of B(n) is ``2 log N - 1`` *gate* delays total.  So
for an F(n) permutation the attached network wins by roughly the
instruction-overhead factor, while permutations outside F (or cheap
single-step neighbour exchanges) still go through E(n).

:class:`DualNetworkComputer` models that machine: a PSC (or CCC) as
``E(n)``, an attached self-routing ``B(n)``, a cost model expressed in
gate delays, and a dispatcher that picks the cheaper path per
permutation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

from ..core.benes import BenesNetwork
from ..core.membership import in_class_f
from ..core.permutation import Permutation
from ..errors import MachineError
from .ccc import CCC
from .permute import permute_ccc, permute_psc
from .psc import PSC
from .sort import sort_permute_ccc, sort_permute_psc

__all__ = ["DualNetworkComputer", "DualRouteReport"]

PermutationLike = Union[Permutation, Sequence[int]]


@dataclass(frozen=True)
class DualRouteReport:
    """How a permutation was performed and what it cost.

    Attributes:
        chosen: ``"benes"`` or ``"e-network"``.
        in_f: whether the permutation is self-routable on B(n).
        gate_delays: total cost in gate delays under the machine's cost
            model.
        benes_gate_delays: what the attached network would cost (None
            when it cannot perform the permutation).
        e_network_gate_delays: what the direct network costs (via the
            F-simulation when possible, else via bitonic sort).
        unit_routes: E-network unit-routes actually spent (0 when the
            Benes path was chosen).
        data: the routed data vector.
    """

    chosen: str
    in_f: bool
    gate_delays: int
    benes_gate_delays: Optional[int]
    e_network_gate_delays: int
    unit_routes: int
    data: Tuple


class DualNetworkComputer:
    """An N-PE SIMD machine with a direct network E(n) and an attached
    self-routing Benes network B(n).

    Args:
        order: ``n`` — the machine has ``2^n`` PEs.
        e_network: ``"psc"`` (default) or ``"ccc"``.
        step_gate_cost: gate delays charged per E-network unit-route
            (instruction broadcast + register gating); the paper argues
            this is large compared to a single switch stage.
    """

    def __init__(self, order: int, e_network: str = "psc",
                 step_gate_cost: int = 10):
        if order < 1:
            raise MachineError(f"order must be >= 1, got {order}")
        if e_network not in ("psc", "ccc"):
            raise MachineError(
                f"e_network must be 'psc' or 'ccc', got {e_network!r}"
            )
        if step_gate_cost < 1:
            raise MachineError(
                f"step_gate_cost must be >= 1, got {step_gate_cost}"
            )
        self._order = order
        self._kind = e_network
        self._step_gate_cost = step_gate_cost
        self._benes = BenesNetwork(order)

    @property
    def order(self) -> int:
        """``n``: the machine has ``2^n`` PEs."""
        return self._order

    @property
    def n_pes(self) -> int:
        """Number of processing elements."""
        return 1 << self._order

    @property
    def benes(self) -> BenesNetwork:
        """The attached self-routing network."""
        return self._benes

    @property
    def step_gate_cost(self) -> int:
        """Gate delays per E-network unit-route."""
        return self._step_gate_cost

    # ------------------------------------------------------------------

    def _fresh_e_machine(self):
        return PSC(self._order) if self._kind == "psc" else CCC(self._order)

    def _e_route(self, perm: Permutation, data, member: bool):
        """Run the permutation on E(n): the F-simulation when the
        permutation is in F, otherwise the bitonic sort."""
        machine = self._fresh_e_machine()
        if member:
            if self._kind == "psc":
                run = permute_psc(machine, perm, data=data)
            else:
                run = permute_ccc(machine, perm, data=data)
        else:
            if self._kind == "psc":
                run = sort_permute_psc(machine, perm, data=data)
            else:
                run = sort_permute_ccc(machine, perm, data=data)
        return run

    def estimate_costs(self, perm: PermutationLike
                       ) -> Tuple[Optional[int], int, bool]:
        """``(benes_gate_delays, e_network_gate_delays, in_f)`` for a
        permutation, without moving data.

        The Benes transit costs ``2 log N - 1`` gate delays (None when
        the permutation is outside F); the E-network costs
        ``unit_routes * step_gate_cost``.
        """
        perm = perm if isinstance(perm, Permutation) else Permutation(perm)
        member = in_class_f(perm)
        benes_cost = self._benes.delay if member else None
        e_run = self._e_route(perm, None, member)
        return benes_cost, e_run.unit_routes * self._step_gate_cost, member

    def permute(self, perm: PermutationLike,
                data: Optional[Sequence] = None,
                force: Optional[str] = None) -> DualRouteReport:
        """Perform a permutation through whichever network is cheaper
        (or through ``force`` in {"benes", "e-network"}).

        Permutations outside F(n) always use E(n) (via sorting);
        forcing them onto the Benes path raises.
        """
        perm = perm if isinstance(perm, Permutation) else Permutation(perm)
        if perm.size != self.n_pes:
            raise MachineError(
                f"permutation of size {perm.size} on {self.n_pes} PEs"
            )
        if force not in (None, "benes", "e-network"):
            raise MachineError(f"unknown network {force!r}")
        member = in_class_f(perm)
        if force == "benes" and not member:
            raise MachineError(
                "permutation is outside F(n); the self-routing network "
                "cannot perform it"
            )

        benes_cost = self._benes.delay if member else None
        e_run = self._e_route(perm, data, member)
        e_cost = e_run.unit_routes * self._step_gate_cost

        if force == "benes" or (
            force is None and member and benes_cost <= e_cost
        ):
            result = self._benes.route(perm, payloads=data,
                                       require_success=True)
            return DualRouteReport(
                chosen="benes",
                in_f=member,
                gate_delays=benes_cost,
                benes_gate_delays=benes_cost,
                e_network_gate_delays=e_cost,
                unit_routes=0,
                data=result.payloads,
            )
        return DualRouteReport(
            chosen="e-network",
            in_f=member,
            gate_delays=e_cost,
            benes_gate_delays=benes_cost,
            e_network_gate_delays=e_cost,
            unit_routes=e_run.unit_routes,
            data=tuple(e_run.data),
        )
